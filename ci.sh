#!/usr/bin/env bash
# Workspace CI: formatting, lints, tests, and the `corun lint` gate over
# the shipped example specs and fixtures.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q

echo "== sanitizer-feature tests"
cargo test -q -p corun-verify -p apu-sim --features corun-verify/sanitize

echo "== corun lint: shipped inputs must be clean"
CORUN=target/release/corun
cargo build --release -p corun-cli
$CORUN lint
$CORUN lint --machine kaveri
$CORUN lint --spec examples/specs/rodinia_small.spec

echo "== corun lint: broken fixtures must fail"
expect_fail() {
    if "$@" >/dev/null 2>&1; then
        echo "FAIL: expected non-zero exit: $*" >&2
        exit 1
    fi
}
expect_fail $CORUN lint --spec examples/specs/broken.spec
expect_fail $CORUN lint --config examples/specs/broken_machine.cfg
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_duplicate.sched
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_schedule.sched

echo "CI OK"
