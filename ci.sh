#!/usr/bin/env bash
# Workspace CI: formatting, lints, tests, and the `corun lint` gate over
# the shipped example specs and fixtures.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q

echo "== sanitizer-feature tests"
cargo test -q -p corun-verify -p apu-sim --features corun-verify/sanitize

echo "== corun lint: shipped inputs must be clean"
CORUN=target/release/corun
cargo build --release -p corun-cli
$CORUN lint
$CORUN lint --machine kaveri
$CORUN lint --spec examples/specs/rodinia_small.spec

echo "== corun lint: broken fixtures must fail"
expect_fail() {
    if "$@" >/dev/null 2>&1; then
        echo "FAIL: expected non-zero exit: $*" >&2
        exit 1
    fi
}
expect_fail $CORUN lint --spec examples/specs/broken.spec
expect_fail $CORUN lint --config examples/specs/broken_machine.cfg
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_duplicate.sched
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_schedule.sched

echo "== corun serve: daemon smoke test"
SERVE_LOG=$(mktemp)
$CORUN serve --fast --port 0 --queue 4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
stop_daemon() {
    kill "$SERVE_PID" 2>/dev/null || true
}
trap stop_daemon EXIT

# The daemon prints `listening on HOST:PORT` once bound; wait for it.
ADDR=""
for _ in $(seq 1 150); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "FAIL: daemon exited during startup" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "FAIL: daemon did not report its address within 30s" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi

# Queue bound: an 8-job burst against --queue 4 must bounce, atomically.
SUBMIT_ERR=$(mktemp)
if $CORUN submit --addr "$ADDR" --spec examples/specs/burst_overflow.spec \
    >/dev/null 2>"$SUBMIT_ERR"; then
    echo "FAIL: oversized burst was admitted past the queue bound" >&2
    exit 1
fi
grep -q "queue_full" "$SUBMIT_ERR" || {
    echo "FAIL: expected queue_full backpressure, got:" >&2
    cat "$SUBMIT_ERR" >&2
    exit 1
}

# A fitting workload drains end to end (submit -> dispatch -> done).
timeout 120 $CORUN submit --addr "$ADDR" \
    --spec examples/specs/rodinia_small.spec --wait --timeout 90 >/dev/null

# Job status and the metrics snapshot must be well-formed JSON with the
# expected accounting (4 completed, empty queue, rejections recorded).
timeout 30 $CORUN status --addr "$ADDR" --id 0 | grep -q '"state":"done"'
METRICS=$(timeout 30 $CORUN status --addr "$ADDR")
echo "$METRICS" | grep -q '"completed":4' || {
    echo "FAIL: metrics completed != 4: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"queue_depth":0' || {
    echo "FAIL: metrics queue not drained: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"rejected":8' || {
    echo "FAIL: metrics missing the bounced burst: $METRICS" >&2
    exit 1
}

# Clean shutdown: the daemon must ack and exit on its own.
timeout 30 $CORUN shutdown --addr "$ADDR"
for _ in $(seq 1 150); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: daemon still running 30s after shutdown request" >&2
    kill -9 "$SERVE_PID"
    exit 1
fi
trap - EXIT
rm -f "$SERVE_LOG" "$SUBMIT_ERR"

echo "CI OK"
