#!/usr/bin/env bash
# Workspace CI: formatting, lints, tests, and the `corun lint` gate over
# the shipped example specs and fixtures.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings + curated pedantic subset)"
# Beyond the default lint set, a curated slice of clippy::pedantic the
# workspace keeps at zero. unsafe_code is forbidden workspace-wide via
# [workspace.lints] (sole exception: the CLI's libc signal shim).
PEDANTIC=(
    -D clippy::semicolon_if_nothing_returned
    -D clippy::redundant_closure_for_method_calls
    -D clippy::map_unwrap_or
    -D clippy::explicit_iter_loop
    -D clippy::needless_continue
    -D clippy::unnested_or_patterns
    -D clippy::uninlined_format_args
    -D clippy::manual_let_else
    -D clippy::elidable_lifetime_names
    -D clippy::cloned_instead_of_copied
    -D clippy::flat_map_option
    -D clippy::inefficient_to_string
    -D clippy::redundant_else
    -D clippy::sliced_string_as_bytes
)
cargo clippy --workspace --all-targets -- -D warnings "${PEDANTIC[@]}"

echo "== tier-1: build + tests"
cargo build --release
cargo test -q

echo "== sanitizer-feature tests"
cargo test -q -p corun-verify -p apu-sim --features corun-verify/sanitize

echo "== corun lint: shipped inputs must be clean"
CORUN=target/release/corun
cargo build --release -p corun-cli
$CORUN lint
$CORUN lint --machine kaveri
$CORUN lint --spec examples/specs/rodinia_small.spec

echo "== corun lint --wall-clock: no unmarked time/entropy reads (SRV011)"
# Deterministic replay (docs/REPLAY.md) requires decision paths to take
# time and randomness only through injected sources.
$CORUN lint --wall-clock

echo "== corun lint: broken fixtures must fail"
expect_fail() {
    if "$@" >/dev/null 2>&1; then
        echo "FAIL: expected non-zero exit: $*" >&2
        exit 1
    fi
}
expect_fail $CORUN lint --spec examples/specs/broken.spec
expect_fail $CORUN lint --config examples/specs/broken_machine.cfg
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_duplicate.sched
expect_fail $CORUN lint --spec examples/specs/rodinia_small.spec \
    --schedule examples/specs/broken_schedule.sched

echo "== corun mc: prove the smoke scope, convict every seeded bug"
# --smoke proves the clean scope exhaustively, then seeds each known-bad
# transition and requires a minimal MC0xx counterexample for it — a
# checker that cannot find planted bugs proves nothing.
$CORUN mc --smoke
expect_fail $CORUN mc --jobs 2 --seed-bug double-dispatch

echo "== schedule certificates: issue, verify, reject tampering"
CERT=$(mktemp)
$CORUN schedule --workload sec3 --cap 15 --fast --method hcs+ --cert "$CERT" >/dev/null
$CORUN lint --cert "$CERT"
sed 's/makespan_s = /makespan_s = 9/' "$CERT" >"$CERT.tampered"
expect_fail $CORUN lint --cert "$CERT.tampered"
rm -f "$CERT" "$CERT.tampered"

echo "== corun serve: daemon smoke test"
SERVE_LOG=$(mktemp)
$CORUN serve --fast --port 0 --queue 4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
stop_daemon() {
    kill "$SERVE_PID" 2>/dev/null || true
}
trap stop_daemon EXIT

# The daemon prints `listening on HOST:PORT` once bound; wait for it.
ADDR=""
for _ in $(seq 1 150); do
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "FAIL: daemon exited during startup" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "FAIL: daemon did not report its address within 30s" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi

# Queue bound: an 8-job burst against --queue 4 must bounce, atomically.
# --no-retry: the burst can never fit, so backing off would only stall CI.
SUBMIT_ERR=$(mktemp)
if $CORUN submit --addr "$ADDR" --no-retry --spec examples/specs/burst_overflow.spec \
    >/dev/null 2>"$SUBMIT_ERR"; then
    echo "FAIL: oversized burst was admitted past the queue bound" >&2
    exit 1
fi
grep -q "queue_full" "$SUBMIT_ERR" || {
    echo "FAIL: expected queue_full backpressure, got:" >&2
    cat "$SUBMIT_ERR" >&2
    exit 1
}

# A fitting workload drains end to end (submit -> dispatch -> done).
timeout 120 $CORUN submit --addr "$ADDR" \
    --spec examples/specs/rodinia_small.spec --wait --timeout 90 >/dev/null

# Job status and the metrics snapshot must be well-formed JSON with the
# expected accounting (4 completed, empty queue, rejections recorded).
timeout 30 $CORUN status --addr "$ADDR" --id 0 | grep -q '"state":"done"'
METRICS=$(timeout 30 $CORUN status --addr "$ADDR")
echo "$METRICS" | grep -q '"completed":4' || {
    echo "FAIL: metrics completed != 4: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"queue_depth":0' || {
    echo "FAIL: metrics queue not drained: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"rejected":8' || {
    echo "FAIL: metrics missing the bounced burst: $METRICS" >&2
    exit 1
}

# Clean shutdown: the daemon must ack and exit on its own.
timeout 30 $CORUN shutdown --addr "$ADDR"
for _ in $(seq 1 150); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: daemon still running 30s after shutdown request" >&2
    kill -9 "$SERVE_PID"
    exit 1
fi
trap - EXIT
rm -f "$SERVE_LOG" "$SUBMIT_ERR"

echo "== corun serve: chaos smoke (faults + kill -9 + --recover)"
CHAOS_LOG=$(mktemp)
CHAOS_JOURNAL=$(mktemp)
CHAOS_SPEC=examples/specs/chaos_smoke.spec

wait_for_addr() {
    # Prints the HOST:PORT a daemon logged, or fails after ~30s.
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 150); do
        addr=$(sed -n 's/^listening on //p' "$log")
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: daemon exited during startup" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.2
    done
    if [ -z "$addr" ]; then
        echo "FAIL: daemon did not report its address within 30s" >&2
        cat "$log" >&2
        return 1
    fi
    echo "$addr"
}

metric() {
    # metric '<json>' completed -> the integer value, or empty.
    echo "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"
}

$CORUN serve --fast --port 0 --machines 2 --journal "$CHAOS_JOURNAL" \
    --fault-plan "$CHAOS_SPEC" >"$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
trap 'kill -9 "$CHAOS_PID" 2>/dev/null || true' EXIT
CHAOS_ADDR=$(wait_for_addr "$CHAOS_LOG" "$CHAOS_PID")

# Submit the faulted batch, then hard-kill the daemon mid-flight: no
# drain, no goodbye — only the fsync'd journal survives.
timeout 60 $CORUN submit --addr "$CHAOS_ADDR" --spec "$CHAOS_SPEC" >/dev/null
kill -9 "$CHAOS_PID"
wait "$CHAOS_PID" 2>/dev/null || true

# The kill -9'd journal is an arbitrary fsync-boundary prefix (possibly
# with a torn tail); its valid records must already replay with zero
# divergence, before any recovery runs.
timeout 60 $CORUN replay "$CHAOS_JOURNAL" --quiet || {
    echo "FAIL: kill -9 journal prefix did not replay cleanly" >&2
    timeout 60 $CORUN replay "$CHAOS_JOURNAL" >&2 || true
    exit 1
}

# Restart from the journal: every accepted job must be recovered and
# driven to a terminal state (done or dead-letter), nothing dispatched
# twice, and the books must balance.
$CORUN serve --fast --port 0 --machines 2 --journal "$CHAOS_JOURNAL" --recover \
    --fault-plan "$CHAOS_SPEC" >"$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
trap 'kill -9 "$CHAOS_PID" 2>/dev/null || true' EXIT
CHAOS_ADDR=$(wait_for_addr "$CHAOS_LOG" "$CHAOS_PID")

BALANCED=""
for _ in $(seq 1 300); do
    M=$(timeout 30 $CORUN status --addr "$CHAOS_ADDR")
    SUB=$(metric "$M" submitted)
    DONE_N=$(metric "$M" completed)
    DEAD_N=$(metric "$M" dead_lettered)
    REJ_N=$(metric "$M" rejected)
    if [ -n "$SUB" ] && [ "$SUB" -ge 8 ] &&
        [ "$((DONE_N + DEAD_N + REJ_N))" -eq "$SUB" ]; then
        BALANCED=yes
        break
    fi
    sleep 0.2
done
if [ -z "$BALANCED" ]; then
    echo "FAIL: recovered batch never balanced: $M" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
fi
echo "$M" | grep -q '"queue_depth":0' || {
    echo "FAIL: recovered queue not drained: $M" >&2
    exit 1
}

# Injected faults must surface as stable SRV0xx diagnostics; the
# always-on straggler makes SRV004 deterministic.
DIAG=$(timeout 30 $CORUN status --addr "$CHAOS_ADDR" --diag)
echo "$DIAG" | grep -q 'SRV004' || {
    echo "FAIL: straggler faults missing from diagnostics: $DIAG" >&2
    exit 1
}

# Live-ops: the watch stream must carry nonempty metrics-ring history
# (line 1 is the column header, so a drained run needs > 1 lines).
WATCH=$(timeout 30 $CORUN status --addr "$CHAOS_ADDR" --watch)
if [ "$(echo "$WATCH" | wc -l)" -le 1 ]; then
    echo "FAIL: watch returned no metrics points: $WATCH" >&2
    exit 1
fi

# Clean exit via SIGTERM: the signal handler must drain and stop the
# daemon exactly like the shutdown RPC.
kill -TERM "$CHAOS_PID"
for _ in $(seq 1 150); do
    kill -0 "$CHAOS_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$CHAOS_PID" 2>/dev/null; then
    echo "FAIL: daemon still running 30s after SIGTERM" >&2
    kill -9 "$CHAOS_PID"
    exit 1
fi
trap - EXIT

# Event-sourcing gate: the full journal (kill -9, recovery boundary,
# chaos retries, drain, SIGTERM shutdown) must re-execute with zero
# divergence, and the shutdown snapshot pins the terminal fingerprint —
# so a verified snapshot count >= 1 is bit-identical reproduction.
REPLAY_OUT=$(timeout 60 $CORUN replay "$CHAOS_JOURNAL") || {
    echo "FAIL: chaos journal did not replay cleanly: $REPLAY_OUT" >&2
    exit 1
}
echo "$REPLAY_OUT" | grep -Eq 'verified [1-9][0-9]* snapshot' || {
    echo "FAIL: replay verified no snapshot checkpoints: $REPLAY_OUT" >&2
    exit 1
}
rm -f "$CHAOS_LOG" "$CHAOS_JOURNAL"

echo "== corun fleet: sharded smoke (4 daemons, 10k jobs, kill -9 + recover)"
FLEET_DIR=$(mktemp -d)
FLEET_PIDS=()
FLEET_ADDRS=()
stop_fleet() {
    for pid in "${FLEET_PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
}
trap stop_fleet EXIT

start_shard_daemon() {
    # start_shard_daemon INDEX PORT EXTRA... — sets FLEET_PIDS[i] and
    # FLEET_ADDRS[i] (must run in this shell, not a substitution).
    local idx=$1 port=$2
    shift 2
    $CORUN serve --fast --port "$port" --machines 2 --queue 64 \
        --cache "$FLEET_DIR/cache" --journal "$FLEET_DIR/shard-$idx.jsonl" "$@" \
        >"$FLEET_DIR/shard-$idx.log" 2>&1 &
    FLEET_PIDS[idx]=$!
    FLEET_ADDRS[idx]=$(wait_for_addr "$FLEET_DIR/shard-$idx.log" "${FLEET_PIDS[$idx]}")
}

# Sequential starts share the characterization cache: shard 0 pays once.
for i in 0 1 2 3; do
    start_shard_daemon "$i" 0
done
ADDRS_CSV=$(
    IFS=,
    echo "${FLEET_ADDRS[*]}"
)

# Drive 10k jobs across the daemons under a 60 W cluster cap.
FLEET_LOG="$FLEET_DIR/fleet.log"
timeout 300 $CORUN fleet --addrs "$ADDRS_CSV" --cluster-cap 60 \
    --spec examples/specs/fleet_smoke.spec --repeat 100 --timeout 240 \
    >"$FLEET_LOG" 2>&1 &
FLEET_DRIVER=$!

# Hard-kill shard 2 as soon as the drain starts, then restart it on the
# same port with --recover: the coordinator must re-dial it and the
# books must balance.
for _ in $(seq 1 300); do
    grep -q 'draining' "$FLEET_LOG" 2>/dev/null && break
    sleep 0.1
done
kill -9 "${FLEET_PIDS[2]}"
wait "${FLEET_PIDS[2]}" 2>/dev/null || true
VICTIM_PORT=${FLEET_ADDRS[2]##*:}
FLEET_ADDRS[2]=""
sleep 0.5
# The dead socket may linger briefly; retry the rebind a few times.
for _ in $(seq 1 10); do
    if start_shard_daemon 2 "$VICTIM_PORT" --recover; then
        break
    fi
    FLEET_ADDRS[2]=""
    sleep 1
done
if [ -z "${FLEET_ADDRS[2]}" ]; then
    echo "FAIL: could not restart the killed shard on port $VICTIM_PORT" >&2
    exit 1
fi

if ! wait "$FLEET_DRIVER"; then
    echo "FAIL: fleet driver did not drain cleanly" >&2
    cat "$FLEET_LOG" >&2
    exit 1
fi

# Books must balance: 10k jobs, all terminal, nothing stuck.
grep -q 'jobs: 10000 total' "$FLEET_LOG" || {
    echo "FAIL: fleet did not account for all 10000 jobs:" >&2
    cat "$FLEET_LOG" >&2
    exit 1
}
grep -q '(0 backlog, 0 in flight)' "$FLEET_LOG" || {
    echo "FAIL: fleet left jobs stuck:" >&2
    cat "$FLEET_LOG" >&2
    exit 1
}
awk '/^jobs:/ {
    total = $2; sum = $5 + $8 + $11
    if (sum != total) { print "FAIL: books do not balance: " $0; exit 1 }
}' "$FLEET_LOG"

# The cap invariant must have held for the whole run: the peak hand-out
# never exceeds the cluster cap.
awk '/^power:/ {
    cluster = $4; peak = $12
    if (peak > cluster + 1e-6) {
        print "FAIL: peak cap hand-out " peak " W exceeds cluster cap " cluster " W"
        exit 1
    }
}' "$FLEET_LOG"

# `fleet status` aggregates the daemons and re-checks the live cap sum.
timeout 30 $CORUN fleet status --addrs "$ADDRS_CSV" --cluster-cap 60 >/dev/null

for i in 0 1 2 3; do
    timeout 30 $CORUN shutdown --addr "${FLEET_ADDRS[$i]}" || true
done
for pid in "${FLEET_PIDS[@]}"; do
    for _ in $(seq 1 150); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.2
    done
done
trap - EXIT
stop_fleet

# Every shard journal from the 10k-job drain must replay
# deterministically — shard 2's includes a kill -9 and a recovery
# boundary in the middle.
for i in 0 1 2 3; do
    timeout 120 $CORUN replay "$FLEET_DIR/shard-$i.jsonl" --quiet || {
        echo "FAIL: shard $i journal did not replay cleanly" >&2
        timeout 120 $CORUN replay "$FLEET_DIR/shard-$i.jsonl" >&2 || true
        exit 1
    }
done
rm -rf "$FLEET_DIR"

echo "== corun fleet: partition + coordinator kill -9 + --recover smoke"
# 4 daemons again, this time the *coordinator* is the victim: two of the
# four daemons are partitioned away mid-drain (SIGSTOP), the coordinator
# is killed outright while they are unreachable, the partition heals,
# and a second coordinator rebuilds the books from the write-ahead
# fleetlog with --recover. Every RPC also runs through a seeded
# @netchaos fault plan, so drops/dups/truncation over real TCP are
# exercised on the same run. Books must balance: every admitted job
# terminal exactly once, caps within the cluster cap throughout.
FLEET_DIR=$(mktemp -d)
FLEET_PIDS=()
FLEET_ADDRS=()
trap stop_fleet EXIT
for i in 0 1 2 3; do
    start_shard_daemon "$i" 0
done
ADDRS_CSV=$(
    IFS=,
    echo "${FLEET_ADDRS[*]}"
)
printf '@netchaos seed=9 drop=0.05 dup=0.05 truncate=0.03\n' >"$FLEET_DIR/net.plan"
FLEETLOG="$FLEET_DIR/fleet.jsonl"
NETC_LOG="$FLEET_DIR/netchaos.log"
timeout 240 $CORUN fleet --addrs "$ADDRS_CSV" --cluster-cap 60 \
    --journal "$FLEETLOG" --netchaos "$FLEET_DIR/net.plan" --op-timeout 3 \
    --spec examples/specs/fleet_smoke.spec --repeat 20 --timeout 200 \
    >"$NETC_LOG" 2>&1 &
NETC_DRIVER=$!
for _ in $(seq 1 300); do
    grep -q 'draining' "$NETC_LOG" 2>/dev/null && break
    sleep 0.1
done
# Partition two of the four daemons, then kill the coordinator while
# they are unreachable — the worst moment it could die.
kill -STOP "${FLEET_PIDS[1]}" "${FLEET_PIDS[2]}"
sleep 2
# kill -9 both the timeout wrapper and the coordinator under it: killing
# only the wrapper would orphan a live coordinator into the recovery run.
pkill -9 -P "$NETC_DRIVER" 2>/dev/null || true
kill -9 "$NETC_DRIVER" 2>/dev/null || true
wait "$NETC_DRIVER" 2>/dev/null || true
kill -CONT "${FLEET_PIDS[1]}" "${FLEET_PIDS[2]}"

RECOVER_LOG="$FLEET_DIR/recover.log"
timeout 240 $CORUN fleet --recover --addrs "$ADDRS_CSV" --cluster-cap 60 \
    --journal "$FLEETLOG" --netchaos "$FLEET_DIR/net.plan" --op-timeout 3 \
    --timeout 200 >"$RECOVER_LOG" 2>&1 || {
    echo "FAIL: recovered coordinator did not drain cleanly" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
}
grep -q 'recovered coordinator books' "$RECOVER_LOG" || {
    echo "FAIL: --recover did not adopt the fleetlog:" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
}
grep -q 'jobs: 2000 total' "$RECOVER_LOG" || {
    echo "FAIL: recovered books did not account for all 2000 jobs:" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
}
grep -q '(0 backlog, 0 in flight)' "$RECOVER_LOG" || {
    echo "FAIL: recovered fleet left jobs stuck:" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
}
grep -q '^net: ' "$RECOVER_LOG" || {
    echo "FAIL: no transport summary in the recovered fleet output:" >&2
    cat "$RECOVER_LOG" >&2
    exit 1
}
awk '/^jobs:/ {
    total = $2; sum = $5 + $8 + $11
    if (sum != total) { print "FAIL: recovered books do not balance: " $0; exit 1 }
}' "$RECOVER_LOG"
awk '/^power:/ {
    cluster = $4; peak = $12
    if (peak > cluster + 1e-6) {
        print "FAIL: peak cap hand-out " peak " W exceeds cluster cap " cluster " W"
        exit 1
    }
}' "$RECOVER_LOG"

for i in 0 1 2 3; do
    timeout 30 $CORUN shutdown --addr "${FLEET_ADDRS[$i]}" || true
done
for pid in "${FLEET_PIDS[@]}"; do
    for _ in $(seq 1 150); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.2
    done
done
trap - EXIT
stop_fleet
rm -rf "$FLEET_DIR"

echo "== corun fleet: event-driven smoke (8 shards x 16 machines, 20k jobs)"
# The discrete-event engine makes this in-process scale CI-affordable:
# each shard's batched workers pull the earliest wake-up across their
# resident machines instead of ticking fixed steps. Asserts the books
# balance and the cap-sum invariant under a mid-drain shard crash.
timeout 1200 cargo test --release -q -p corun-fleet --test fleet_chaos \
    event_driven_fleet_smoke -- --ignored

echo "== perf gate: simulator throughput vs committed BENCH_sim.json"
# Fails if simulated-seconds-per-wall-second regresses more than 30%
# below the committed trajectory baseline.
cargo run --release -q -p bench --bin perf_gate

echo "CI OK"
