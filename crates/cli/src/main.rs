//! `corun` — co-run scheduling for power-capped integrated CPU-GPU packages.
//!
//! ```text
//! corun machines
//! corun programs   [--machine ivy|kaveri]
//! corun schedule   [--workload rodinia8|rodinia16|sec3] [--spec FILE]
//!                  [--method hcs+|hcs|random|default|bnb] [--cap W]
//!                  [--machine ivy|kaveri] [--seed N] [--fast]
//! corun predict    --cpu PROG --gpu PROG [--machine ivy|kaveri] [--fast]
//! corun characterize --out FILE [--machine ivy|kaveri] [--fast]
//! corun lint       [--machine ivy|kaveri] [--config FILE] [--spec FILE]
//!                  [--schedule FILE] [--cap W] [--format human|json]
//!                  [--wall-clock [DIR]]
//! corun serve      [--port N] [--machine ivy|kaveri] [--cap W] [--queue N]
//!                  [--machines N] [--threads N] [--fast] [--cache DIR]
//!                  [--journal FILE] [--recover] [--fault-plan SPEC]
//!                  [--max-retries N]
//! corun fleet      [--shards N] [--machines-per-shard M] [--cluster-cap W]
//!                  [--addrs H:P,H:P,...] [--spec FILE] [--repeat N]
//!                  [--placement ring|least-loaded] [--journal-dir DIR]
//! corun fleet status --addrs H:P,H:P,... [--cluster-cap W]
//! corun submit     --addr HOST:PORT --spec FILE [--wait] [--timeout S]
//!                  [--no-retry] [--retries N]
//! corun replay     JOURNAL [--until SEQ] [--diff] [--expect HEXFP]
//! corun status     --addr HOST:PORT [--id N] [--diag]
//! corun status     --addr HOST:PORT --watch [--since N] [--follow]
//!                  [--interval S]
//! corun shutdown   --addr HOST:PORT
//! ```

mod args;
mod fleet_cmd;
mod mc_cmd;
mod replay_cmd;
mod serve_cmd;

use apu_sim::{Bias, Device, MachineConfig};
use args::Args;
use corun_core::{branch_and_bound, BnbConfig, CoRunModel};
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        print_help();
        std::process::exit(2);
    }
    match run(raw) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or("missing subcommand")?;
    match cmd {
        "machines" => cmd_machines(),
        "programs" => cmd_programs(&args),
        "schedule" => cmd_schedule(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "online" => cmd_online(&args),
        "predict" => cmd_predict(&args),
        "characterize" => cmd_characterize(&args),
        "lint" => cmd_lint(&args),
        "mc" => mc_cmd::cmd_mc(&args),
        "serve" => serve_cmd::cmd_serve(&args),
        "fleet" => fleet_cmd::cmd_fleet(&args),
        "submit" => serve_cmd::cmd_submit(&args),
        "replay" => replay_cmd::cmd_replay(&args),
        "status" => serve_cmd::cmd_status(&args),
        "shutdown" => serve_cmd::cmd_shutdown(&args),
        "help" | "--help" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `corun help`)")),
    }
}

fn print_help() {
    println!(
        "corun — co-run scheduling for power-capped integrated CPU-GPU packages\n\n\
         subcommands:\n\
         \x20 machines                      list machine presets\n\
         \x20 programs                      list calibrated programs (Table I)\n\
         \x20 schedule                      schedule and execute a workload\n\
         \x20 compare                       run every scheduler on one workload\n\
         \x20 sweep                         sweep power caps x methods\n\
         \x20 online                        online scheduling with job arrivals\n\
         \x20 predict --cpu A --gpu B       predict one pair's co-run behaviour\n\
         \x20 characterize --out FILE      cache the degradation space to disk\n\
         \x20 lint                          statically check configs, specs, and schedules;\n\
         \x20                               --cert FILE validates a schedule certificate\n\
         \x20 mc                            exhaustively model-check the service state\n\
         \x20                               machine at small scope (--smoke for the CI\n\
         \x20                               gate, --seed-bug NAME to plant a known bug)\n\
         \x20 serve                         run the scheduling daemon (TCP, line-JSON);\n\
         \x20                               --journal F [--recover] for crash safety,\n\
         \x20                               --fault-plan F injects @chaos faults\n\
         \x20 fleet                         shard a workload across many services under\n\
         \x20                               one cluster power cap (--addrs for remote\n\
         \x20                               daemons; `fleet status` aggregates metrics)\n\
         \x20 submit --addr H:P --spec F    send a workload spec to a running daemon\n\
         \x20                               (retries queue_full; --no-retry to fail fast)\n\
         \x20 replay JOURNAL                deterministically re-execute a service journal\n\
         \x20                               and verify its snapshot fingerprints\n\
         \x20                               ([--until SEQ] [--diff] [--expect HEXFP])\n\
         \x20 status --addr H:P [--id N]    query a job, the metrics snapshot, or\n\
         \x20                               [--diag] the SRV0xx fault diagnostics;\n\
         \x20                               --watch streams the live metrics ring\n\
         \x20 shutdown --addr H:P           drain the daemon and exit\n\n\
         common options: --machine ivy|kaveri  --cap WATTS  --fast"
    );
}

fn machine_for(args: &Args) -> Result<MachineConfig, String> {
    match args.opt_or("machine", "ivy") {
        "ivy" | "ivy-bridge" => Ok(MachineConfig::ivy_bridge()),
        "kaveri" => Ok(MachineConfig::kaveri()),
        other => Err(format!("unknown machine `{other}` (ivy, kaveri)")),
    }
}

fn cmd_machines() -> Result<(), String> {
    for (name, m) in [
        ("ivy", MachineConfig::ivy_bridge()),
        ("kaveri", MachineConfig::kaveri()),
    ] {
        let busy = m.power_model().package_power_busy(m.freqs.max_setting());
        println!(
            "{name:<8} cpu {:>4.1}-{:.1} GHz x{} levels, {:.0} GFLOP/s peak | \
             gpu {:.2}-{:.2} GHz x{} levels, {:.0} GFLOP/s peak | \
             DRAM {:.1} GB/s | busy power {:.1} W",
            m.freqs.cpu.min_ghz(),
            m.freqs.cpu.max_ghz(),
            m.freqs.cpu.len(),
            m.cpu.compute_rate(m.f_max(Device::Cpu)),
            m.freqs.gpu.min_ghz(),
            m.freqs.gpu.max_ghz(),
            m.freqs.gpu.len(),
            m.gpu.compute_rate(m.f_max(Device::Gpu)),
            m.memory.total_bw_gbps,
            busy,
        );
    }
    Ok(())
}

fn cmd_programs(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["machine"])?;
    let machine = machine_for(args)?;
    println!(
        "{:<15} {:>9} {:>9} {:>9} {:>7}",
        "program", "cpu (s)", "gpu (s)", "demand", "prefers"
    );
    for def in kernels::program_defs() {
        let job = kernels::build_program(&machine, &def);
        let t_cpu = job.solo_time(
            &machine.cpu,
            Device::Cpu,
            machine.f_max(Device::Cpu),
            machine.f_max(Device::Cpu),
        );
        let t_gpu = job.solo_time(
            &machine.gpu,
            Device::Gpu,
            machine.f_max(Device::Gpu),
            machine.f_max(Device::Gpu),
        );
        let demand = job.avg_demand(
            &machine.gpu,
            Device::Gpu,
            machine.f_max(Device::Gpu),
            machine.f_max(Device::Gpu),
        );
        let pref = if t_cpu < t_gpu * 0.8 {
            "CPU"
        } else if t_gpu < t_cpu * 0.8 {
            "GPU"
        } else {
            "-"
        };
        println!(
            "{:<15} {:>9.2} {:>9.2} {:>7.1}GB/s {:>6}",
            def.name, t_cpu, t_gpu, demand, pref
        );
    }
    Ok(())
}

fn runtime_for(args: &Args, jobs: Vec<apu_sim::JobSpec>) -> Result<CoScheduleRuntime, String> {
    let machine = machine_for(args)?;
    let mut cfg = if args.flag("fast") {
        RuntimeConfig::fast(&machine)
    } else {
        RuntimeConfig::paper(&machine)
    };
    cfg.cap_w = args.num_or("cap", 15.0)?;
    if let Some(dir) = args.opt("cache") {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    Ok(CoScheduleRuntime::new(machine, jobs, cfg))
}

fn workload_for(args: &Args, machine: &MachineConfig) -> Result<Vec<apu_sim::JobSpec>, String> {
    if let Some(path) = args.opt("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
        return corun_verify::build_jobs(machine, &corun_verify::parse_spec(&text)?);
    }
    Ok(match args.opt_or("workload", "rodinia8") {
        "rodinia8" => kernels::rodinia8(machine).jobs,
        "rodinia16" => kernels::rodinia16(machine, args.num_or("seed", 2024)?).jobs,
        "sec3" => kernels::section3_four(machine).jobs,
        other => return Err(format!("unknown workload `{other}`")),
    })
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine", "cap", "workload", "spec", "seed", "fast", "cache",
    ])?;
    let machine = machine_for(args)?;
    let jobs = workload_for(args, &machine)?;
    let n = jobs.len();
    println!("offline stage: profiling {n} jobs + characterizing the machine ...");
    let rt = runtime_for(args, jobs)?;
    let cap = rt.config().cap_w;

    let random = rt.random_avg_makespan(0..10);
    let default_g = rt
        .execute_default(&rt.schedule_default(), Bias::Gpu)
        .makespan_s;
    let hcs = rt.execute_planned(&rt.schedule_hcs().schedule).makespan_s;
    let hcs_plus_sched = rt.schedule_hcs_plus();
    let hcs_plus = rt.execute_planned(&hcs_plus_sched).makespan_s;
    let annealed = corun_core::anneal(
        rt.model(),
        &hcs_plus_sched,
        &corun_core::AnnealConfig::new(cap),
    );
    let anneal_truth = rt.execute_planned(&annealed.schedule).makespan_s;
    let bound = rt.lower_bound().t_low_s;

    println!();
    println!("{:<16} {:>10} {:>10}", "method", "makespan", "vs random");
    let show = |name: &str, span: f64| {
        println!(
            "{name:<16} {span:>9.1}s {:>9.1}%",
            (random / span - 1.0) * 100.0
        );
    };
    show("random (avg)", random);
    show("default_g", default_g);
    show("hcs", hcs);
    show("hcs+", hcs_plus);
    show("anneal", anneal_truth);
    if n <= 8 {
        let bnb = branch_and_bound(rt.model(), &BnbConfig::new(cap));
        let bnb_truth = rt.execute_planned(&bnb.schedule).makespan_s;
        show("bnb (oracle)", bnb_truth);
    }
    show("lower bound", bound);
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine", "workload", "spec", "seed", "fast", "cache", "caps",
    ])?;
    let machine = machine_for(args)?;
    let jobs = workload_for(args, &machine)?;
    let caps: Vec<f64> = args
        .opt_or("caps", "18,15,12")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad cap `{t}`"))
        })
        .collect::<Result<_, _>>()?;
    let mut base = if args.flag("fast") {
        RuntimeConfig::fast(&machine)
    } else {
        RuntimeConfig::paper(&machine)
    };
    if let Some(dir) = args.opt("cache") {
        base.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    println!(
        "sweeping {} caps x 4 methods over {} jobs ...",
        caps.len(),
        jobs.len()
    );
    let r = runtime::cap_sweep(&machine, &jobs, &base, &caps, &runtime::Method::ALL, 5);
    println!();
    println!("{}", r.render());
    Ok(())
}

fn cmd_online(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine", "cap", "workload", "spec", "seed", "fast", "cache", "trace", "gap",
    ])?;
    let machine = machine_for(args)?;
    let jobs = workload_for(args, &machine)?;
    let n = jobs.len();
    let seed = args.num_or("seed", 7u64)?;
    let gap = args.num_or("gap", 10.0)?;
    let arrivals: Vec<corun_core::Arrival> = match args.opt_or("trace", "poisson") {
        "batch" => kernels::batch_arrivals(n),
        "poisson" => kernels::poisson(n, gap, gap * 4.0, seed),
        "bursty" => kernels::bursty(n, 3, gap * 6.0, gap, seed),
        "staircase" => kernels::staircase(n, gap),
        other => return Err(format!("unknown trace `{other}`")),
    }
    .into_iter()
    .map(|a| corun_core::Arrival {
        job: a.job,
        at_s: a.at_s,
    })
    .collect();

    println!("offline stage: profiling {n} jobs + characterizing the machine ...");
    let rt = runtime_for(args, jobs)?;
    let policy = corun_core::OnlinePolicy::new(
        rt.model(),
        corun_core::HcsConfig::with_cap(rt.config().cap_w),
    );
    let mut gov = apu_sim::NullGovernor;
    let report = runtime::execute_online(
        rt.machine(),
        rt.jobs(),
        rt.model(),
        &policy,
        &arrivals,
        &mut gov,
        rt.machine().freqs.min_setting(),
    )
    .map_err(|e| e.to_string())?;
    println!();
    println!(
        "arrivals 0..{:.0}s | {}",
        arrivals.iter().map(|a| a.at_s).fold(0.0, f64::max),
        runtime::summary(&report)
    );
    println!("{}", runtime::gantt(&report, 64));
    Ok(())
}

fn cmd_schedule(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine", "cap", "workload", "spec", "method", "seed", "fast", "cache", "cert",
    ])?;
    let machine = machine_for(args)?;
    let jobs = workload_for(args, &machine)?;
    let n = jobs.len();
    println!("offline stage: profiling {n} jobs + characterizing the machine ...");
    let rt = runtime_for(args, jobs)?;
    let cap = rt.config().cap_w;

    let method = args.opt_or("method", "hcs+");
    let seed = args.num_or("seed", 0u64)?;
    let (label, planned, report) = match method {
        "hcs" => {
            let s = rt.schedule_hcs().schedule;
            let r = rt.execute_planned(&s);
            ("HCS", Some(s), r)
        }
        "hcs+" => {
            let s = rt.schedule_hcs_plus();
            let r = rt.execute_planned(&s);
            ("HCS+", Some(s), r)
        }
        "random" => (
            "Random",
            None,
            rt.execute_governed(&rt.schedule_random(seed), Bias::Gpu),
        ),
        "default" => (
            "Default",
            None,
            rt.execute_default(&rt.schedule_default(), Bias::Gpu),
        ),
        "bnb" => {
            if n > 9 {
                return Err(format!("bnb is exponential; {n} jobs is too many (max 9)"));
            }
            let r = branch_and_bound(rt.model(), &BnbConfig::new(cap));
            println!(
                "branch-and-bound: expanded {} nodes, pruned {}",
                r.expanded, r.pruned
            );
            let rep = rt.execute_planned(&r.schedule);
            ("BnB", Some(r.schedule), rep)
        }
        other => return Err(format!("unknown method `{other}`")),
    };

    println!();
    println!(
        "{label} | peak power {:.1} W (cap {cap} W)",
        report.trace.max_w()
    );
    println!("{}", runtime::full_report(&report, 64));
    let bound = rt.lower_bound();
    println!(
        "lower bound on the optimal makespan: {:.1}s (achieved is {:.0}% above)",
        bound.t_low_s,
        (report.makespan_s / bound.t_low_s - 1.0) * 100.0
    );
    if let Some(path) = args.opt("cert") {
        let schedule = planned.as_ref().ok_or(
            "--cert needs a planned method (hcs, hcs+, bnb); governed runs have no \
             static schedule to certify",
        )?;
        let cert = corun_core::certify(rt.model(), schedule, cap);
        let text = cert.render();
        // Self-check before writing: an issued certificate that our own
        // independent checker rejects is a bug, not a deliverable.
        let selfcheck = corun_verify::check_certificate_text(&text);
        if !selfcheck.is_empty() {
            return Err(format!(
                "refusing to issue a certificate that fails self-check:\n{}",
                selfcheck.render_human()
            ));
        }
        std::fs::write(path, &text).map_err(|e| format!("--cert {path}: {e}"))?;
        println!(
            "certificate: {path} ({} segment(s), {} pair witness(es); self-check clean)",
            cert.segments.len(),
            cert.pairs.len()
        );
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["machine", "cap", "cpu", "gpu", "fast"])?;
    let cpu_name = args.opt("cpu").ok_or("--cpu PROG is required")?.to_owned();
    let gpu_name = args.opt("gpu").ok_or("--gpu PROG is required")?.to_owned();
    let machine = machine_for(args)?;
    let jobs = vec![
        kernels::by_name(&machine, &cpu_name).ok_or(format!("unknown program {cpu_name}"))?,
        kernels::by_name(&machine, &gpu_name).ok_or(format!("unknown program {gpu_name}"))?,
    ];
    let rt = runtime_for(args, jobs)?;
    let m = rt.model();
    let cap = rt.config().cap_w;
    let feas = corun_core::feasible_pair_settings(m, 0, 1, cap);
    let (f, g) = feas
        .iter()
        .copied()
        .min_by(|&(f1, g1), &(f2, g2)| {
            let t1 = m.corun_time(0, Device::Cpu, f1, 1, g1).max(m.corun_time(
                1,
                Device::Gpu,
                g1,
                0,
                f1,
            ));
            let t2 = m.corun_time(0, Device::Cpu, f2, 1, g2).max(m.corun_time(
                1,
                Device::Gpu,
                g2,
                0,
                f2,
            ));
            t1.total_cmp(&t2)
        })
        .ok_or(format!(
            "no frequency setting fits the {cap} W cap for this pair"
        ))?;
    println!(
        "best cap-feasible setting: CPU level {f} ({:.2} GHz), GPU level {g} ({:.2} GHz)",
        rt.machine().freqs.cpu.ghz(f),
        rt.machine().freqs.gpu.ghz(g)
    );
    let d_cpu = m.degradation(0, Device::Cpu, f, 1, g);
    let d_gpu = m.degradation(1, Device::Gpu, g, 0, f);
    println!(
        "{cpu_name}(CPU): {:.1}s solo -> {:.1}s co-run (+{:.0}%)",
        m.standalone(0, Device::Cpu, f),
        m.corun_time(0, Device::Cpu, f, 1, g),
        d_cpu * 100.0
    );
    println!(
        "{gpu_name}(GPU): {:.1}s solo -> {:.1}s co-run (+{:.0}%)",
        m.standalone(1, Device::Gpu, g),
        m.corun_time(1, Device::Gpu, g, 0, f),
        d_gpu * 100.0
    );
    println!(
        "predicted pair power: {:.1} W (cap {cap} W)",
        m.corun_power(Some((0, f)), Some((1, g)))
    );
    println!(
        "co-run beneficial vs sequential: {}",
        corun_core::corun_beneficial(
            m.standalone(0, Device::Cpu, f),
            d_cpu,
            m.standalone(1, Device::Gpu, g),
            d_gpu
        )
    );
    Ok(())
}

/// `corun lint`: statically verify a machine config, a workload spec,
/// and optionally a schedule file against that spec, without executing
/// anything. Exit code is non-zero iff any error-severity diagnostic
/// fires; warnings alone exit 0.
fn cmd_lint(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine",
        "config",
        "spec",
        "schedule",
        "cap",
        "format",
        "cache",
        "cert",
        "wall-clock",
    ])?;
    let format = args.opt_or("format", "human");
    if !matches!(format, "human" | "json") {
        return Err(format!("unknown format `{format}` (human, json)"));
    }

    let mut report = corun_verify::Report::new();
    if args.flag("wall-clock") || args.opt("wall-clock").is_some() {
        // The SRV011 determinism lint: no unmarked wall-clock/entropy
        // reads anywhere under DIR (default: the whole workspace's
        // crates tree), or replay (`docs/REPLAY.md`) cannot be exact.
        let root = args.opt_or("wall-clock", "crates");
        report.merge(corun_verify::lint_wall_clock(std::path::Path::new(root)));
    }
    let mut machine = machine_for(args)?;
    if let Some(path) = args.opt("config") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--config {path}: {e}"))?;
        report.merge(corun_verify::Report::from_diagnostics(
            corun_verify::apply_overrides(&mut machine, &text),
        ));
    }
    report.merge(corun_verify::lint_machine(&machine));

    let mut spec_lines = None;
    if let Some(path) = args.opt("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
        let (lines, spec_report) = corun_verify::lint_spec_full(&text);
        report.merge(spec_report);
        spec_lines = Some(lines);
    }

    if let Some(path) = args.opt("cert") {
        // Certificates are self-contained: every claim ships with its
        // witnesses, so no machine, spec, or model is needed to check one.
        let text = std::fs::read_to_string(path).map_err(|e| format!("--cert {path}: {e}"))?;
        report.merge(corun_verify::check_certificate_text(&text));
    }

    if let Some(path) = args.opt("schedule") {
        let lines = spec_lines
            .as_ref()
            .ok_or("--schedule needs --spec to know which jobs it schedules")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("--schedule {path}: {e}"))?;
        let file = corun_verify::parse_schedule_file(&text)
            .map_err(|e| format!("--schedule {path}: {e}"))?;
        // Semantic schedule lints need a co-run model; the fast
        // characterization is plenty for lint fidelity and keeps the
        // command interactive.
        if let Ok(jobs) = corun_verify::build_jobs(&machine, lines) {
            let mut cfg = RuntimeConfig::fast(&machine);
            let cap = args.num::<f64>("cap")?.or(file.cap_w).unwrap_or(15.0);
            cfg.cap_w = cap;
            if let Some(dir) = args.opt("cache") {
                cfg.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            let rt = CoScheduleRuntime::new(machine, jobs, cfg);
            report.merge(match file.makespan_s {
                Some(ms) => {
                    corun_verify::lint_run_report(rt.model(), &file.schedule, Some(cap), true, ms)
                }
                None => corun_verify::lint_schedule(rt.model(), &file.schedule, Some(cap), true),
            });
        }
        // build_jobs only fails on unknown programs, which the spec
        // lint above already reported as SPC003.
    }

    match format {
        "json" => println!("{}", report.render_json()),
        _ => print!("{}", report.render_human()),
    }
    if report.has_errors() {
        let n = report.errors().count();
        Err(format!(
            "lint found {n} error{}",
            if n == 1 { "" } else { "s" }
        ))
    } else {
        Ok(())
    }
}

fn cmd_characterize(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["machine", "out", "fast"])?;
    let out = args.opt("out").ok_or("--out FILE is required")?;
    let machine = machine_for(args)?;
    let ccfg = if args.flag("fast") {
        perf_model::CharacterizeConfig::fast(&machine)
    } else {
        perf_model::CharacterizeConfig::paper(&machine)
    };
    println!(
        "characterizing {} stages x {}x{} demand grid ...",
        ccfg.cpu_stage_levels.len() * ccfg.gpu_stage_levels.len(),
        ccfg.grid_points,
        ccfg.grid_points
    );
    let stages = perf_model::characterize(&machine, &ccfg);
    perf_model::save_stages(std::path::Path::new(out), &stages)
        .map_err(|e| format!("saving {out}: {e}"))?;
    println!("wrote {} stages to {out}", stages.len());
    Ok(())
}
