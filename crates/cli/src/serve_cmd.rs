//! The service-mode subcommands: `corun serve` (daemon) and its clients
//! `corun submit`, `corun status`, `corun shutdown`.

use crate::args::Args;
use apu_sim::MachineConfig;
use corun_serve::{Client, Json, Server, Service, ServiceConfig};

fn machine_for(args: &Args) -> Result<MachineConfig, String> {
    match args.opt_or("machine", "ivy") {
        "ivy" | "ivy-bridge" => Ok(MachineConfig::ivy_bridge()),
        "kaveri" => Ok(MachineConfig::kaveri()),
        other => Err(format!("unknown machine `{other}` (ivy, kaveri)")),
    }
}

/// `corun serve`: characterize the machine, bind the TCP endpoint, and
/// run until a client sends `shutdown` (the queue drains first).
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine", "cap", "port", "queue", "machines", "slice", "fast", "cache",
    ])?;
    let machine = machine_for(args)?;
    let mut cfg = ServiceConfig::fast(&machine);
    if !args.flag("fast") {
        cfg.characterization = perf_model::CharacterizeConfig::paper(&machine);
    }
    cfg.cap_w = args.num_or("cap", 15.0)?;
    cfg.machines = args.num_or("machines", 1usize)?;
    cfg.queue_capacity = args.num_or("queue", 64usize)?;
    cfg.slice_s = args.num_or("slice", 5.0)?;
    if let Some(dir) = args.opt("cache") {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    let port: u16 = args.num_or("port", 7077u16)?;

    println!(
        "characterizing the machine ({} stages x {}x{} grid) ...",
        cfg.characterization.cpu_stage_levels.len() * cfg.characterization.gpu_stage_levels.len(),
        cfg.characterization.grid_points,
        cfg.characterization.grid_points
    );
    let service = Service::start(cfg);
    let server =
        Server::bind(service, &format!("127.0.0.1:{port}")).map_err(|e| format!("bind: {e}"))?;
    // The smoke test parses this line to discover the ephemeral port.
    println!("listening on {}", server.addr());
    server.run_to_shutdown();
    println!("shutdown complete");
    Ok(())
}

fn connect(args: &Args) -> Result<Client, String> {
    let addr = args.opt("addr").ok_or("--addr HOST:PORT is required")?;
    Client::connect(addr)
}

/// `corun submit`: send a workload spec to a running daemon.
pub fn cmd_submit(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr", "spec", "wait", "timeout"])?;
    let path = args.opt("spec").ok_or("--spec FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
    let mut client = connect(args)?;
    let ids = client.submit(&text)?;
    println!(
        "submitted {} job(s): {}",
        ids.len(),
        ids.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    if args.flag("wait") {
        let timeout_s = args.num_or("timeout", 300.0)?;
        for &id in &ids {
            let status = client.wait_done(id, timeout_s)?;
            println!("{}", status.render());
        }
    }
    Ok(())
}

/// `corun status`: query one job (`--id N`) or the metrics snapshot.
pub fn cmd_status(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr", "id"])?;
    let mut client = connect(args)?;
    let response = match args.num::<usize>("id")? {
        Some(id) => client.status(id)?,
        None => {
            let metrics = client.metrics()?;
            if !metrics_look_sane(&metrics) {
                return Err(format!("malformed metrics snapshot: {}", metrics.render()));
            }
            metrics
        }
    };
    println!("{}", response.render());
    Ok(())
}

/// `corun shutdown`: ask the daemon to drain and exit.
pub fn cmd_shutdown(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr"])?;
    let mut client = connect(args)?;
    client.shutdown()?;
    println!("shutdown requested");
    Ok(())
}

/// True if a `metrics` response looks structurally sound; `corun status`
/// (and the CI smoke test through it) fails loudly on malformed output.
fn metrics_look_sane(metrics: &Json) -> bool {
    metrics.get("ok").and_then(Json::as_bool) == Some(true)
        && metrics
            .get("queue_depth")
            .and_then(Json::as_index)
            .is_some()
        && metrics.get("util").and_then(Json::as_arr).is_some()
}
