//! The service-mode subcommands: `corun serve` (daemon) and its clients
//! `corun submit`, `corun status`, `corun shutdown`.

use crate::args::Args;
use apu_sim::MachineConfig;
use corun_serve::{Client, Json, RetryConfig, Server, Service, ServiceConfig};

/// SIGINT/SIGTERM plumbing: a handler just flags the request; a monitor
/// thread in [`cmd_serve`] turns the flag into the same graceful
/// drain-and-exit as the `shutdown` RPC (workers drain the queue, the
/// journal stays flushed — it is fsync'd per record anyway).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn mark(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Install the flag-setting handler for SIGINT and SIGTERM.
    // The workspace forbids unsafe code; this is the sole exception —
    // two libc signal(2) registrations of an async-signal-safe handler
    // that only stores to an AtomicBool.
    #[allow(unsafe_code)]
    pub fn install() {
        unsafe {
            signal(SIGINT, mark);
            signal(SIGTERM, mark);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

fn machine_for(args: &Args) -> Result<MachineConfig, String> {
    match args.opt_or("machine", "ivy") {
        "ivy" | "ivy-bridge" => Ok(MachineConfig::ivy_bridge()),
        "kaveri" => Ok(MachineConfig::kaveri()),
        other => Err(format!("unknown machine `{other}` (ivy, kaveri)")),
    }
}

/// `corun serve`: characterize the machine, bind the TCP endpoint, and
/// run until a client sends `shutdown` or the process receives
/// SIGINT/SIGTERM (the queue drains first either way). `--journal FILE`
/// makes the daemon crash-safe; add `--recover` to resume a prior
/// journal after a hard kill. `--fault-plan SPEC` loads `@chaos`
/// directives for deterministic fault injection (see `docs/FAULTS.md`).
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machine",
        "cap",
        "port",
        "queue",
        "machines",
        "threads",
        "slice",
        "fast",
        "cache",
        "fault-plan",
        "journal",
        "recover",
        "max-retries",
    ])?;
    let machine = machine_for(args)?;
    let mut cfg = ServiceConfig::fast(&machine);
    if !args.flag("fast") {
        cfg.characterization = perf_model::CharacterizeConfig::paper(&machine);
    }
    cfg.cap_w = args.num_or("cap", 15.0)?;
    cfg.machines = args.num_or("machines", 1usize)?;
    // --threads N batch-steps the simulated machines on N worker
    // threads (0 = one thread per machine); see docs/SIM.md.
    cfg.worker_threads = args.num_or("threads", 0usize)?;
    cfg.queue_capacity = args.num_or("queue", 64usize)?;
    cfg.slice_s = args.num_or("slice", 5.0)?;
    if let Some(dir) = args.opt("cache") {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(path) = args.opt("fault-plan") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("--fault-plan {path}: {e}"))?;
        let (plan, report) = corun_verify::lint_chaos(&text);
        if report.has_errors() {
            print!("{}", report.render_human());
            return Err(format!("--fault-plan {path}: invalid @chaos directives"));
        }
        cfg.fault_plan =
            Some(plan.ok_or(format!("--fault-plan {path}: no @chaos directives found"))?);
    }
    if let Some(path) = args.opt("journal") {
        cfg.journal_path = Some(std::path::PathBuf::from(path));
        cfg.recover = args.flag("recover");
    } else if args.flag("recover") {
        return Err("--recover needs --journal FILE".into());
    }
    if let Some(n) = args.num::<u32>("max-retries")? {
        cfg.retry.max_retries = n;
    }
    let port: u16 = args.num_or("port", 7077u16)?;

    println!(
        "characterizing the machine ({} stages x {}x{} grid) ...",
        cfg.characterization.cpu_stage_levels.len() * cfg.characterization.gpu_stage_levels.len(),
        cfg.characterization.grid_points,
        cfg.characterization.grid_points
    );
    let service = Service::start(cfg);
    let server =
        Server::bind(service, &format!("127.0.0.1:{port}")).map_err(|e| format!("bind: {e}"))?;
    // The smoke test parses this line to discover the ephemeral port.
    println!("listening on {}", server.addr());

    // SIGINT/SIGTERM take the exact same graceful path as the shutdown
    // RPC; the monitor also retires itself once any shutdown begins.
    signals::install();
    let svc = server.service_handle();
    let monitor = std::thread::Builder::new()
        .name("corun-signals".into())
        .spawn(move || loop {
            if signals::requested() {
                svc.begin_shutdown();
                break;
            }
            if svc.is_shutting_down() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        })
        .map_err(|e| format!("spawn signal monitor: {e}"))?;

    server.run_to_shutdown();
    let _ = monitor.join();
    println!("shutdown complete");
    Ok(())
}

fn connect(args: &Args) -> Result<Client, String> {
    let addr = args.opt("addr").ok_or("--addr HOST:PORT is required")?;
    Client::connect(addr)
}

/// `corun submit`: send a workload spec to a running daemon. By default
/// `queue_full` backpressure is retried with capped exponential back-off
/// (honoring the server's `retry_after_s` hint); `--no-retry` fails fast
/// and `--retries N` bounds the attempts.
pub fn cmd_submit(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr", "spec", "wait", "timeout", "no-retry", "retries"])?;
    let path = args.opt("spec").ok_or("--spec FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
    let mut client = connect(args)?;
    let ids = if args.flag("no-retry") {
        client.submit(&text)?
    } else {
        let mut retry = RetryConfig::default();
        if let Some(n) = args.num::<u32>("retries")? {
            retry.max_attempts = n.max(1);
        }
        client.submit_with_retry(&text, &retry)?
    };
    println!(
        "submitted {} job(s): {}",
        ids.len(),
        ids.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    if args.flag("wait") {
        let timeout_s = args.num_or("timeout", 300.0)?;
        for &id in &ids {
            let status = client.wait_done(id, timeout_s)?;
            println!("{}", status.render());
        }
    }
    Ok(())
}

/// `corun status`: query one job (`--id N`), the accumulated `SRV0xx`
/// fault diagnostics (`--diag`), or the metrics snapshot.
pub fn cmd_status(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr", "id", "diag", "watch", "since", "follow", "interval"])?;
    let mut client = connect(args)?;
    if args.flag("watch") {
        return watch_ring(&mut client, args);
    }
    let response = if args.flag("diag") {
        client.diagnostics()?
    } else {
        match args.num::<usize>("id")? {
            Some(id) => client.status(id)?,
            None => {
                let metrics = client.metrics()?;
                if !metrics_look_sane(&metrics) {
                    return Err(format!("malformed metrics snapshot: {}", metrics.render()));
                }
                metrics
            }
        }
    };
    println!("{}", response.render());
    Ok(())
}

/// `corun status --watch`: print the daemon's metrics ring, one point
/// per line. By default drains whatever the ring retains past `--since`
/// (cursor `0`) and exits; `--follow` keeps polling every `--interval`
/// seconds (default 1) until the daemon goes away, a live-ops tail of
/// queue depth, power headroom, and per-machine utilization.
fn watch_ring(client: &mut Client, args: &Args) -> Result<(), String> {
    let mut cursor = args.num::<u64>("since")?.unwrap_or(0);
    let follow = args.flag("follow");
    let interval_s = args.num_or::<f64>("interval", 1.0)?;
    println!(
        "{:>6} {:>10} {:>10} {:>6} {:>10} {:>6} {:>5}  util",
        "seq", "wall_s", "sim_s", "queue", "headroom", "done", "dead"
    );
    loop {
        let response = client.watch(cursor)?;
        let points = response
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("malformed watch response: no points array")?;
        for p in points {
            println!("{}", render_point(p)?);
        }
        cursor = response
            .get("next")
            .and_then(Json::as_index)
            .ok_or("malformed watch response: no next cursor")? as u64;
        if !follow {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval_s.max(0.05)));
    }
}

/// One fixed-width line per metrics point.
fn render_point(p: &Json) -> Result<String, String> {
    let num = |k: &str| {
        p.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("malformed watch point: no `{k}`"))
    };
    let util: Vec<String> = p
        .get("util")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .map(|u| format!("{:.2}", u.as_f64().unwrap_or(0.0)))
                .collect()
        })
        .unwrap_or_default();
    Ok(format!(
        "{:>6} {:>10.3} {:>10.3} {:>6} {:>10.2} {:>6} {:>5}  [{}]",
        num("seq")? as u64,
        num("wall_s")?,
        num("sim_s")?,
        num("queue_depth")? as u64,
        num("headroom_w")?,
        num("completed")? as u64,
        num("dead_lettered")? as u64,
        util.join(" ")
    ))
}

/// `corun shutdown`: ask the daemon to drain and exit.
pub fn cmd_shutdown(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addr"])?;
    let mut client = connect(args)?;
    client.shutdown()?;
    println!("shutdown requested");
    Ok(())
}

/// True if a `metrics` response looks structurally sound; `corun status`
/// (and the CI smoke test through it) fails loudly on malformed output.
fn metrics_look_sane(metrics: &Json) -> bool {
    metrics.get("ok").and_then(Json::as_bool) == Some(true)
        && metrics
            .get("queue_depth")
            .and_then(Json::as_index)
            .is_some()
        && metrics.get("util").and_then(Json::as_arr).is_some()
}
