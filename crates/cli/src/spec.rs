//! Workload specification files.
//!
//! A spec is a plain text file, one job per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! streamcluster            # one instance, default input
//! dwt2d x1.5               # one instance, input scaled 1.5x
//! lud x0.8 *3              # three instances at 0.8x input
//! ```

use apu_sim::{JobSpec, MachineConfig};
use kernels::{by_name, with_input_scale};

/// One parsed spec line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecLine {
    /// Program name (must exist in the calibrated suite).
    pub name: String,
    /// Input scale.
    pub scale: f64,
    /// Instance count.
    pub count: usize,
}

/// Parse a workload spec.
pub fn parse_spec(text: &str) -> Result<Vec<SpecLine>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut name = None;
        let mut scale = 1.0;
        let mut count = 1usize;
        for tok in line.split_whitespace() {
            if let Some(s) = tok.strip_prefix('x') {
                scale = s
                    .parse()
                    .map_err(|_| format!("line {}: bad scale `{tok}`", lineno + 1))?;
                if scale <= 0.0 {
                    return Err(format!("line {}: scale must be positive", lineno + 1));
                }
            } else if let Some(c) = tok.strip_prefix('*') {
                count = c
                    .parse()
                    .map_err(|_| format!("line {}: bad count `{tok}`", lineno + 1))?;
                if count == 0 {
                    return Err(format!("line {}: count must be at least 1", lineno + 1));
                }
            } else if name.is_none() {
                name = Some(tok.to_owned());
            } else {
                return Err(format!("line {}: unexpected token `{tok}`", lineno + 1));
            }
        }
        let name = name.ok_or_else(|| format!("line {}: missing program name", lineno + 1))?;
        out.push(SpecLine { name, scale, count });
    }
    if out.is_empty() {
        return Err("spec contains no jobs".into());
    }
    Ok(out)
}

/// Materialize a parsed spec into jobs on `machine`.
pub fn build_jobs(machine: &MachineConfig, spec: &[SpecLine]) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for line in spec {
        let base = by_name(machine, &line.name)
            .ok_or_else(|| format!("unknown program `{}`", line.name))?;
        for k in 0..line.count {
            let mut j = if (line.scale - 1.0).abs() < 1e-12 {
                base.clone()
            } else {
                with_input_scale(&base, line.scale)
            };
            if line.count > 1 {
                j.name = format!("{}@{k}", j.name);
            }
            jobs.push(j);
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let spec = parse_spec(
            "# batch\nstreamcluster\ndwt2d x1.5\nlud x0.8 *3\n\nhotspot *2 # trailing\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 4);
        assert_eq!(spec[0], SpecLine { name: "streamcluster".into(), scale: 1.0, count: 1 });
        assert_eq!(spec[1], SpecLine { name: "dwt2d".into(), scale: 1.5, count: 1 });
        assert_eq!(spec[2], SpecLine { name: "lud".into(), scale: 0.8, count: 3 });
        assert_eq!(spec[3], SpecLine { name: "hotspot".into(), scale: 1.0, count: 2 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("lud xbad").is_err());
        assert!(parse_spec("lud *0").is_err());
        assert!(parse_spec("lud extra tokens").is_err());
        assert!(parse_spec("x1.5").is_err());
    }

    #[test]
    fn builds_jobs_with_instancing() {
        let machine = MachineConfig::ivy_bridge();
        let spec = parse_spec("lud x0.5 *2\ndwt2d").unwrap();
        let jobs = build_jobs(&machine, &spec).unwrap();
        assert_eq!(jobs.len(), 3);
        assert!(jobs[0].name.contains("@0"));
        assert!(jobs[1].name.contains("@1"));
        assert_eq!(jobs[2].name, "dwt2d");
    }

    #[test]
    fn unknown_program_is_an_error() {
        let machine = MachineConfig::ivy_bridge();
        let spec = parse_spec("doesnotexist").unwrap();
        assert!(build_jobs(&machine, &spec).is_err());
    }
}
