//! Minimal flag parsing (no external dependencies): `--key value` pairs,
//! `--flag` booleans, and positional arguments.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag`s.
    flags: Vec<String>,
}

impl Args {
    /// Parse an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag `--`".into());
                }
                // a value follows unless the next token is another flag
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.options.insert(key.to_owned(), v);
                    }
                    _ => out.flags.push(key.to_owned()),
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with default.
    pub fn opt_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.opt(key).unwrap_or(default)
    }

    /// Numeric option.
    pub fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.opt(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("--{key}: `{v}` is not a valid number")),
        }
    }

    /// Numeric option with default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.num(key)?.unwrap_or(default))
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// All option keys plus flags, for unknown-argument detection.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
    }

    /// Error if any provided key is not in `allowed`.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.keys() {
            if !allowed.contains(&k) {
                return Err(format!("unknown option --{k} (allowed: {allowed:?})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn positional_and_options() {
        let a = parse("schedule --cap 15 --machine ivy rodinia8");
        assert_eq!(a.positional, vec!["schedule", "rodinia8"]);
        assert_eq!(a.opt("cap"), Some("15"));
        assert_eq!(a.opt_or("machine", "x"), "ivy");
        assert_eq!(a.opt_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn flags_without_values() {
        let a = parse("run --fast --cap 12");
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
        assert_eq!(a.num::<f64>("cap").unwrap(), Some(12.0));
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--fast --verbose");
        assert!(a.flag("fast") && a.flag("verbose"));
    }

    #[test]
    fn numeric_errors() {
        let a = parse("--cap banana");
        assert!(a.num::<f64>("cap").is_err());
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn unknown_rejection() {
        let a = parse("--cap 15 --bogus x");
        assert!(a.reject_unknown(&["cap"]).is_err());
        assert!(a.reject_unknown(&["cap", "bogus"]).is_ok());
    }
}
