//! `corun fleet` — drive a sharded fleet under one cluster power cap.
//!
//! Two modes:
//!
//! * **In-process** (default): spin up `--shards` local shard services,
//!   each simulating `--machines-per-shard` APUs, route `--spec` across
//!   them, drain, and print the aggregated books.
//! * **Remote** (`--addrs a:p,b:p,...`): each shard is a running
//!   `corun serve` daemon; the coordinator drives them over the
//!   line-JSON protocol and partitions the cluster cap with `set_cap`.
//!
//! Robustness knobs (see `docs/FLEET.md#network-faults`):
//!
//! * `--netchaos FILE` routes every coordinator↔shard RPC through a
//!   seeded fault layer (`@netchaos` directives: drops, delays,
//!   duplicates, truncation, partitions) — in both modes.
//! * `--journal PATH` write-ahead-logs the coordinator books;
//!   `--recover` rebuilds them after a coordinator crash and settles
//!   in-doubt jobs by keyed resubmission.
//! * `--op-timeout SECS` bounds each RPC (deadline across retries).
//!
//! `corun fleet status --addrs ...` aggregates the metrics of running
//! daemons without submitting anything.

use crate::args::Args;
use corun_core::WallClock;
use corun_fleet::net::{FaultyRaw, TcpRaw};
use corun_fleet::{
    lint_netchaos, over_local, start_local_shards, Circuit, Fleet, FleetConfig, FleetMetrics,
    NetConfig, NetFaultPlan, PlacementKind, RawTransport, RemoteShard, RpcShard, ShardBackend,
};
use corun_serve::{Service, ServiceConfig};
use std::sync::Arc;

/// Split a `--addrs` list on commas, rejecting empties.
fn parse_addrs(list: &str) -> Result<Vec<String>, String> {
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if addrs.is_empty() {
        return Err("--addrs needs at least one HOST:PORT".into());
    }
    Ok(addrs)
}

/// Read and lint a `--netchaos` file into a fault plan.
fn load_netchaos(args: &Args) -> Result<Option<NetFaultPlan>, String> {
    let Some(path) = args.opt("netchaos") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("--netchaos {path}: {e}"))?;
    let (plan, report) = lint_netchaos(&text);
    if report.has_errors() {
        return Err(format!(
            "netchaos plan failed lint:\n{}",
            report.render_human()
        ));
    }
    plan.map(Some)
        .ok_or_else(|| format!("--netchaos {path}: no `@netchaos` directive found"))
}

fn connect_remote_shards(
    addrs: &[String],
    net: NetConfig,
    plan: Option<&NetFaultPlan>,
) -> Result<Vec<Box<dyn ShardBackend>>, String> {
    addrs
        .iter()
        .enumerate()
        .map(|(s, a)| match plan {
            None => RemoteShard::connect_with(a, net)
                .map(|sh| Box::new(sh) as Box<dyn ShardBackend>)
                .map_err(|e| format!("shard {a}: {e}")),
            Some(plan) => {
                let mut raw = TcpRaw::new(a, net.io_timeout_s);
                raw.reconnect().map_err(|e| format!("shard {a}: {e}"))?;
                let faulty = FaultyRaw::new(raw, plan.clone(), s);
                Ok(
                    Box::new(RpcShard::over(faulty, net, Arc::new(WallClock::new())))
                        as Box<dyn ShardBackend>,
                )
            }
        })
        .collect()
}

/// Start local shard services behind the full RPC + fault stack (the
/// `--netchaos` local mode). Returns the backends plus the service
/// handles — the RPC layer does not own its service, so the caller must
/// shut them down after the fleet finishes.
fn start_chaos_local_shards(
    template: &ServiceConfig,
    shards: usize,
    machines_per_shard: usize,
    journal_dir: Option<&std::path::Path>,
    plan: &NetFaultPlan,
    net: NetConfig,
) -> (Vec<Box<dyn ShardBackend>>, Vec<Arc<Service>>) {
    let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(shards);
    let mut services = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut cfg = template.clone();
        cfg.machines = machines_per_shard;
        cfg.journal_path = journal_dir.map(|d| d.join(format!("shard-{s}.jsonl")));
        let svc = Arc::new(Service::start(cfg));
        backends.push(Box::new(over_local(
            Arc::clone(&svc),
            Some(plan.clone()),
            s,
            net,
            Arc::new(WallClock::new()),
        )));
        services.push(svc);
    }
    (backends, services)
}

/// `corun fleet [status]`.
pub fn cmd_fleet(args: &Args) -> Result<(), String> {
    if args.positional.get(1).map(String::as_str) == Some("status") {
        return cmd_fleet_status(args);
    }
    args.reject_unknown(&[
        "shards",
        "machines-per-shard",
        "cluster-cap",
        "addrs",
        "spec",
        "repeat",
        "placement",
        "machine",
        "cache",
        "journal-dir",
        "shard-floor",
        "steal-threshold",
        "rebalance-every",
        "timeout",
        "paranoid",
        "journal",
        "recover",
        "netchaos",
        "op-timeout",
    ])?;

    let addrs = args.opt("addrs").map(parse_addrs).transpose()?;
    let shards = match &addrs {
        Some(a) => a.len(),
        None => args.num_or("shards", 4usize)?,
    };
    let machines_per_shard = args.num_or("machines-per-shard", 2usize)?;
    let cluster_cap_w = args.num_or("cluster-cap", 15.0 * shards as f64)?;

    let mut cfg = FleetConfig::new(shards, machines_per_shard, cluster_cap_w);
    cfg.shard_floor_w = args.num_or("shard-floor", cfg.shard_floor_w)?;
    cfg.steal_threshold = args.num_or("steal-threshold", cfg.steal_threshold)?;
    cfg.rebalance_every = args.num_or("rebalance-every", cfg.rebalance_every)?;
    cfg.placement = PlacementKind::parse(args.opt_or("placement", "ring"))?;
    cfg.paranoid = args.flag("paranoid");
    cfg.journal_path = args.opt("journal").map(std::path::PathBuf::from);

    let recover = args.flag("recover");
    if recover && cfg.journal_path.is_none() {
        return Err("--recover needs --journal PATH (the coordinator's write-ahead log)".into());
    }
    let net = NetConfig {
        op_timeout_s: args.num_or("op-timeout", NetConfig::default().op_timeout_s)?,
        ..NetConfig::default()
    };
    let plan = load_netchaos(args)?;

    // Chaos-local services outlive the fleet; shut down after `finish`.
    let mut services: Vec<Arc<Service>> = Vec::new();
    let backends = match &addrs {
        Some(addrs) => connect_remote_shards(addrs, net, plan.as_ref())?,
        None => {
            let machine = match args.opt_or("machine", "ivy") {
                "ivy" | "ivy-bridge" => apu_sim::MachineConfig::ivy_bridge(),
                "kaveri" => apu_sim::MachineConfig::kaveri(),
                other => return Err(format!("unknown machine `{other}` (ivy, kaveri)")),
            };
            let mut template = ServiceConfig::fast(&machine);
            if let Some(dir) = args.opt("cache") {
                template.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            let journal_dir = args.opt("journal-dir").map(std::path::PathBuf::from);
            if let Some(dir) = &journal_dir {
                std::fs::create_dir_all(dir).map_err(|e| format!("--journal-dir {dir:?}: {e}"))?;
            }
            println!("starting {shards} local shards x {machines_per_shard} machines ...");
            if let Some(plan) = &plan {
                let (backends, svcs) = start_chaos_local_shards(
                    &template,
                    shards,
                    machines_per_shard,
                    journal_dir.as_deref(),
                    plan,
                    net,
                );
                services = svcs;
                backends
            } else {
                start_local_shards(
                    &template,
                    shards,
                    machines_per_shard,
                    journal_dir.as_deref(),
                    |_| None,
                )
            }
        }
    };

    let mut fleet = if recover {
        let fleet = Fleet::recover(cfg, backends)?;
        let m = fleet.metrics();
        println!(
            "recovered coordinator books: {} job(s), {} in doubt, recovery #{}",
            m.jobs_total, m.in_doubt, m.fleet_recoveries
        );
        fleet
    } else {
        Fleet::new(cfg, backends)?
    };
    println!(
        "fleet up: {shards} shards, {} machines, {cluster_cap_w} W cluster cap",
        shards * machines_per_shard
    );

    let mut total = 0usize;
    if let Some(path) = args.opt("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
        let repeat: usize = args.num_or("repeat", 1usize)?;
        for _ in 0..repeat.max(1) {
            total += fleet.submit_spec(&text)?.len();
            fleet.pump();
        }
    }
    let mut failure = None;
    if args.opt("spec").is_some() || recover {
        // Recovery drains the restored books even with no new spec.
        println!("admitted {total} job(s); draining ...");
        let timeout_s = args.num_or("timeout", 600.0)?;
        match drain_with_progress(&mut fleet, timeout_s) {
            Ok(m) => print!("{}", render_metrics(&m)),
            Err(e) => {
                print!("{}", render_metrics(&fleet.metrics()));
                failure = Some(e);
            }
        }
    } else {
        // No spec: just report the fleet's aggregated state.
        print!("{}", render_metrics(&fleet.metrics()));
    }
    if !fleet.chaos_report().is_empty() {
        print!("{}", fleet.chaos_report().render_human());
    }

    // Local shards are ours to stop; remote daemons keep running (use
    // `corun shutdown` per daemon to stop them).
    if addrs.is_none() {
        fleet.begin_shutdown();
        fleet.finish();
        for svc in &services {
            svc.shutdown();
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// [`Fleet::drain`] plus an operator progress line every few seconds:
/// terminal counts, in-doubt jobs, and any non-live circuits.
fn drain_with_progress(fleet: &mut Fleet, timeout_s: f64) -> Result<FleetMetrics, String> {
    const TICK_S: f64 = 5.0;
    // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
    let start = std::time::Instant::now();
    let deadline = start + std::time::Duration::from_secs_f64(timeout_s);
    let mut next_tick = start + std::time::Duration::from_secs_f64(TICK_S);
    loop {
        let folded = fleet.pump();
        let m = fleet.metrics();
        if m.drained() {
            return Ok(m);
        }
        // corun-lint: allow(wall-clock) — operator-facing drain deadline, an I/O edge.
        let now = std::time::Instant::now();
        if now >= deadline {
            return Err(format!(
                "fleet did not drain within {timeout_s}s: {}/{} terminal \
                 ({} backlog, {} in flight, {} in doubt)",
                m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
                m.jobs_total,
                m.backlog,
                m.in_flight,
                m.in_doubt
            ));
        }
        if now >= next_tick {
            next_tick = now + std::time::Duration::from_secs_f64(TICK_S);
            println!("progress: {}", progress_line(&m));
        }
        if folded == 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

/// One-line drain progress: `17/100 terminal, 8 in flight, 1 in doubt
/// [shard 2 dead]`.
fn progress_line(m: &FleetMetrics) -> String {
    let troubled: Vec<String> = m
        .circuits
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != Circuit::Live)
        .map(|(s, c)| format!("shard {s} {}", c.as_str()))
        .collect();
    format!(
        "{}/{} terminal, {} in flight, {} in doubt{}",
        m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
        m.jobs_total,
        m.in_flight,
        m.in_doubt,
        if troubled.is_empty() {
            String::new()
        } else {
            format!(" [{}]", troubled.join(", "))
        }
    )
}

/// `corun fleet status --addrs a,b,c`: aggregate running daemons.
fn cmd_fleet_status(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addrs", "cluster-cap", "op-timeout"])?;
    let addrs = parse_addrs(
        args.opt("addrs")
            .ok_or("--addrs HOST:PORT,... is required")?,
    )?;
    let net = NetConfig {
        op_timeout_s: args.num_or("op-timeout", NetConfig::default().op_timeout_s)?,
        ..NetConfig::default()
    };
    let mut backends = connect_remote_shards(&addrs, net, None)?;
    let mut total_done = 0usize;
    let mut total_submitted = 0usize;
    let mut total_queue = 0usize;
    let mut cap_sum = 0.0f64;
    println!(
        "shard  addr                   queue  submitted  done  dead  cap_w  \
         p50_ms  p99_ms  retries"
    );
    for (s, backend) in backends.iter_mut().enumerate() {
        let m = backend
            .metrics()
            .map_err(|e| format!("{}: {e}", addrs[s]))?;
        let r = backend.rpc_stats();
        println!(
            "{s:>5}  {:<21}  {:>5}  {:>9}  {:>4}  {:>4}  {:>5.1}  {:>6.1}  {:>6.1}  {:>7}",
            addrs[s],
            m.queue_depth,
            m.submitted,
            m.completed,
            m.dead_lettered,
            m.cap_w,
            r.p50_ms,
            r.p99_ms,
            r.retries
        );
        total_done += m.completed;
        total_submitted += m.submitted;
        total_queue += m.queue_depth;
        cap_sum += m.cap_w;
    }
    println!(
        "total: {n} shard(s), {total_submitted} submitted, {total_done} done, \
         {total_queue} queued, caps sum {cap_sum:.1} W",
        n = addrs.len()
    );
    if let Some(cluster) = args.num::<f64>("cluster-cap")? {
        let report = corun_verify::lint_shard_caps(
            &backends
                .iter_mut()
                .filter_map(|b| b.metrics().ok().map(|m| m.cap_w))
                .collect::<Vec<_>>(),
            cluster,
        );
        if report.is_empty() {
            println!("cap check: OK (sum within the {cluster} W cluster cap)");
        } else {
            print!("{}", report.render_human());
            return Err("shard caps exceed the cluster cap".into());
        }
    }
    Ok(())
}

/// Human rendering of the fleet books (the smoke test greps these
/// lines — the `jobs:` and `power:` field positions are load-bearing).
fn render_metrics(m: &FleetMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet: {} shard(s) ({} alive), placement {}, round {}\n",
        m.shards.len(),
        m.alive.iter().filter(|&&a| a).count(),
        m.placement,
        m.rounds
    ));
    out.push_str(&format!(
        "jobs: {} total = {} done + {} dead-letter + {} rejected ({} backlog, {} in flight)\n",
        m.jobs_total, m.jobs_done, m.jobs_dead_letter, m.jobs_rejected, m.backlog, m.in_flight
    ));
    out.push_str(&format!(
        "power: cluster cap {:.1} W, caps sum {:.1} W, peak hand-out {:.1} W\n",
        m.cluster_cap_w, m.cap_sum_w, m.max_cap_sum_w
    ));
    out.push_str(&format!(
        "moves: {} steal(s), {} rebalance(s), {} lost-requeue(s)\n",
        m.steals, m.rebalances, m.lost_requeues
    ));
    let (ops, retries, reconnects, fenced) = m.rpc.iter().fold((0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.ops,
            acc.1 + r.retries,
            acc.2 + r.reconnects,
            acc.3 + r.fenced,
        )
    });
    out.push_str(&format!(
        "net: {ops} rpc op(s), {retries} retr(ies), {reconnects} reconnect(s), {fenced} fenced, \
         {} in doubt, {} coordinator recover(ies)\n",
        m.in_doubt, m.fleet_recoveries
    ));
    for (s, sm) in m.shards.iter().enumerate() {
        out.push_str(&format!(
            "shard {s}: {} queued, {} submitted, {} done, {} dead, cap {:.1} W, {}\n",
            sm.queue_depth,
            sm.submitted,
            sm.completed,
            sm.dead_lettered,
            sm.cap_w,
            if m.alive[s] { "alive" } else { "DOWN" }
        ));
        let r = &m.rpc[s];
        if r.ops > 0 {
            out.push_str(&format!(
                "shard {s} net: circuit {}, p50 {:.1} ms, p99 {:.1} ms, {} retries, \
                 {} reconnects, {} fenced, {} desyncs\n",
                m.circuits[s].as_str(),
                r.p50_ms,
                r.p99_ms,
                r.retries,
                r.reconnects,
                r.fenced,
                r.desyncs
            ));
        }
    }
    out
}
