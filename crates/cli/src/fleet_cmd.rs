//! `corun fleet` — drive a sharded fleet under one cluster power cap.
//!
//! Two modes:
//!
//! * **In-process** (default): spin up `--shards` local shard services,
//!   each simulating `--machines-per-shard` APUs, route `--spec` across
//!   them, drain, and print the aggregated books.
//! * **Remote** (`--addrs a:p,b:p,...`): each shard is a running
//!   `corun serve` daemon; the coordinator drives them over the
//!   line-JSON protocol and partitions the cluster cap with `set_cap`.
//!
//! `corun fleet status --addrs ...` aggregates the metrics of running
//! daemons without submitting anything.

use crate::args::Args;
use corun_fleet::{
    start_local_shards, Fleet, FleetConfig, FleetMetrics, PlacementKind, RemoteShard, ShardBackend,
};
use corun_serve::ServiceConfig;

/// Split a `--addrs` list on commas, rejecting empties.
fn parse_addrs(list: &str) -> Result<Vec<String>, String> {
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if addrs.is_empty() {
        return Err("--addrs needs at least one HOST:PORT".into());
    }
    Ok(addrs)
}

fn connect_remote_shards(addrs: &[String]) -> Result<Vec<Box<dyn ShardBackend>>, String> {
    addrs
        .iter()
        .map(|a| {
            RemoteShard::connect(a)
                .map(|s| Box::new(s) as Box<dyn ShardBackend>)
                .map_err(|e| format!("shard {a}: {e}"))
        })
        .collect()
}

/// `corun fleet [status]`.
pub fn cmd_fleet(args: &Args) -> Result<(), String> {
    if args.positional.get(1).map(String::as_str) == Some("status") {
        return cmd_fleet_status(args);
    }
    args.reject_unknown(&[
        "shards",
        "machines-per-shard",
        "cluster-cap",
        "addrs",
        "spec",
        "repeat",
        "placement",
        "machine",
        "cache",
        "journal-dir",
        "shard-floor",
        "steal-threshold",
        "rebalance-every",
        "timeout",
        "paranoid",
    ])?;

    let addrs = args.opt("addrs").map(parse_addrs).transpose()?;
    let shards = match &addrs {
        Some(a) => a.len(),
        None => args.num_or("shards", 4usize)?,
    };
    let machines_per_shard = args.num_or("machines-per-shard", 2usize)?;
    let cluster_cap_w = args.num_or("cluster-cap", 15.0 * shards as f64)?;

    let mut cfg = FleetConfig::new(shards, machines_per_shard, cluster_cap_w);
    cfg.shard_floor_w = args.num_or("shard-floor", cfg.shard_floor_w)?;
    cfg.steal_threshold = args.num_or("steal-threshold", cfg.steal_threshold)?;
    cfg.rebalance_every = args.num_or("rebalance-every", cfg.rebalance_every)?;
    cfg.placement = PlacementKind::parse(args.opt_or("placement", "ring"))?;
    cfg.paranoid = args.flag("paranoid");

    let backends = match &addrs {
        Some(addrs) => connect_remote_shards(addrs)?,
        None => {
            let machine = match args.opt_or("machine", "ivy") {
                "ivy" | "ivy-bridge" => apu_sim::MachineConfig::ivy_bridge(),
                "kaveri" => apu_sim::MachineConfig::kaveri(),
                other => return Err(format!("unknown machine `{other}` (ivy, kaveri)")),
            };
            let mut template = ServiceConfig::fast(&machine);
            if let Some(dir) = args.opt("cache") {
                template.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            let journal_dir = args.opt("journal-dir").map(std::path::PathBuf::from);
            if let Some(dir) = &journal_dir {
                std::fs::create_dir_all(dir).map_err(|e| format!("--journal-dir {dir:?}: {e}"))?;
            }
            println!("starting {shards} local shards x {machines_per_shard} machines ...");
            start_local_shards(
                &template,
                shards,
                machines_per_shard,
                journal_dir.as_deref(),
                |_| None,
            )
        }
    };

    let mut fleet = Fleet::new(cfg, backends)?;
    println!(
        "fleet up: {shards} shards, {} machines, {cluster_cap_w} W cluster cap",
        shards * machines_per_shard
    );

    if let Some(path) = args.opt("spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--spec {path}: {e}"))?;
        let repeat: usize = args.num_or("repeat", 1usize)?;
        let mut total = 0usize;
        for _ in 0..repeat.max(1) {
            total += fleet.submit_spec(&text)?.len();
            fleet.pump();
        }
        println!("admitted {total} job(s); draining ...");
        let timeout_s = args.num_or("timeout", 600.0)?;
        match fleet.drain(timeout_s) {
            Ok(m) => print!("{}", render_metrics(&m)),
            Err(e) => {
                print!("{}", render_metrics(&fleet.metrics()));
                return Err(e);
            }
        }
    } else {
        // No spec: just report the fleet's aggregated state.
        print!("{}", render_metrics(&fleet.metrics()));
    }

    // Local shards are ours to stop; remote daemons keep running (use
    // `corun shutdown` per daemon to stop them).
    if addrs.is_none() {
        fleet.begin_shutdown();
        fleet.finish();
    }
    Ok(())
}

/// `corun fleet status --addrs a,b,c`: aggregate running daemons.
fn cmd_fleet_status(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["addrs", "cluster-cap"])?;
    let addrs = parse_addrs(
        args.opt("addrs")
            .ok_or("--addrs HOST:PORT,... is required")?,
    )?;
    let mut backends = connect_remote_shards(&addrs)?;
    let mut total_done = 0usize;
    let mut total_submitted = 0usize;
    let mut total_queue = 0usize;
    let mut cap_sum = 0.0f64;
    println!("shard  addr                   queue  submitted  done  dead  cap_w");
    for (s, backend) in backends.iter_mut().enumerate() {
        let m = backend
            .metrics()
            .map_err(|e| format!("{}: {e}", addrs[s]))?;
        println!(
            "{s:>5}  {:<21}  {:>5}  {:>9}  {:>4}  {:>4}  {:>5.1}",
            addrs[s], m.queue_depth, m.submitted, m.completed, m.dead_lettered, m.cap_w
        );
        total_done += m.completed;
        total_submitted += m.submitted;
        total_queue += m.queue_depth;
        cap_sum += m.cap_w;
    }
    println!(
        "total: {n} shard(s), {total_submitted} submitted, {total_done} done, \
         {total_queue} queued, caps sum {cap_sum:.1} W",
        n = addrs.len()
    );
    if let Some(cluster) = args.num::<f64>("cluster-cap")? {
        let report = corun_verify::lint_shard_caps(
            &backends
                .iter_mut()
                .filter_map(|b| b.metrics().ok().map(|m| m.cap_w))
                .collect::<Vec<_>>(),
            cluster,
        );
        if report.is_empty() {
            println!("cap check: OK (sum within the {cluster} W cluster cap)");
        } else {
            print!("{}", report.render_human());
            return Err("shard caps exceed the cluster cap".into());
        }
    }
    Ok(())
}

/// Human rendering of the fleet books (the smoke test greps these
/// lines).
fn render_metrics(m: &FleetMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet: {} shard(s) ({} alive), placement {}, round {}\n",
        m.shards.len(),
        m.alive.iter().filter(|&&a| a).count(),
        m.placement,
        m.rounds
    ));
    out.push_str(&format!(
        "jobs: {} total = {} done + {} dead-letter + {} rejected ({} backlog, {} in flight)\n",
        m.jobs_total, m.jobs_done, m.jobs_dead_letter, m.jobs_rejected, m.backlog, m.in_flight
    ));
    out.push_str(&format!(
        "power: cluster cap {:.1} W, caps sum {:.1} W, peak hand-out {:.1} W\n",
        m.cluster_cap_w, m.cap_sum_w, m.max_cap_sum_w
    ));
    out.push_str(&format!(
        "moves: {} steal(s), {} rebalance(s), {} lost-requeue(s)\n",
        m.steals, m.rebalances, m.lost_requeues
    ));
    for (s, sm) in m.shards.iter().enumerate() {
        out.push_str(&format!(
            "shard {s}: {} queued, {} submitted, {} done, {} dead, cap {:.1} W, {}\n",
            sm.queue_depth,
            sm.submitted,
            sm.completed,
            sm.dead_lettered,
            sm.cap_w,
            if m.alive[s] { "alive" } else { "DOWN" }
        ));
    }
    out
}
