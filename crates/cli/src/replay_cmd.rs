//! `corun replay` — deterministically re-execute a service journal.
//!
//! The daemon is event-sourced (`docs/REPLAY.md`): its journal is a
//! complete transcript of every scheduling decision, so re-applying the
//! records through the pure state machine reproduces the recorded run
//! bit-identically. This command does exactly that, verifies every
//! embedded snapshot checkpoint on the way, and exits non-zero on any
//! divergence (`RPL0xx`) — the post-mortem and regression tool for
//! "what did the daemon actually do, and does today's code still agree".

use crate::args::Args;
use corun_replay::{check_terminal, replay_journal, ReplayOptions};
use std::path::Path;

/// `corun replay JOURNAL [--until SEQ] [--diff] [--expect HEXFP]`.
pub fn cmd_replay(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["until", "diff", "expect", "quiet"])?;
    let journal = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("usage: corun replay JOURNAL [--until SEQ] [--diff] [--expect HEXFP]")?;
    let opts = ReplayOptions {
        until: args.num::<u64>("until")?,
        diff: args.flag("diff"),
    };
    let mut outcome = replay_journal(Path::new(journal), &opts);

    // --expect pins the terminal fingerprint to an external value: the
    // live daemon's own (CI smoke), or one recorded in a bug report.
    if let Some(hex) = args.opt("expect") {
        let expected = u64::from_str_radix(hex, 16)
            .map_err(|e| format!("--expect {hex}: not a hex fingerprint: {e}"))?;
        check_terminal(&mut outcome, expected, "expected");
    }

    if !args.flag("quiet") {
        println!(
            "replayed {} record(s), verified {} snapshot(s){}",
            outcome.records_applied,
            outcome.snapshots_verified,
            outcome
                .last_snapshot_at
                .map_or_else(String::new, |at| format!(" (last at record {at})")),
        );
        if let Some(cap_w) = outcome.cap_w {
            println!("final journaled cap: {cap_w} W");
        }
        println!("terminal fingerprint: {:016x}", outcome.fingerprint());
        let c = &outcome.state.counters;
        println!(
            "terminal state: {} job(s), {} queued, {} completed, {} dead-lettered, {} eviction(s)",
            outcome.state.jobs.len(),
            outcome.state.queue.len(),
            c.completed,
            c.dead_lettered,
            c.evictions
        );
    }
    for d in &outcome.diffs {
        println!("diff: {d}");
    }
    if !outcome.report.is_empty() {
        print!("{}", outcome.report.render_human());
    }
    if outcome.is_clean() {
        Ok(())
    } else {
        let n = outcome.report.errors().count();
        Err(format!(
            "replay diverged: {n} error{}",
            if n == 1 { "" } else { "s" }
        ))
    }
}
