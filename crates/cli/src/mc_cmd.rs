//! `corun mc` — exhaustive bounded model checking of the service state
//! machine, from the command line.
//!
//! Two modes:
//!
//! * **Exploration** (default): enumerate every client / worker / crash
//!   / kill interleaving within the scope given by `--machines`,
//!   `--jobs`, `--kills`, `--crashes`, `--retries`, checking the
//!   daemon's safety invariants at every state. A violation prints the
//!   minimal counterexample trace (MC0001–MC0004) and exits non-zero;
//!   hitting `--max-states` downgrades the verdict to MC0005.
//!   `--seed-bug NAME` deliberately breaks one transition so the
//!   counterexample machinery can be demonstrated (and distrusted less).
//!
//! * **`--smoke`**: the CI gate. Proves the smoke scope clean, then
//!   seeds each known-bad mutation in turn and *requires* the explorer
//!   to convict it with the expected diagnostic. A checker that cannot
//!   find planted bugs proves nothing; this mode makes that failure
//!   loud.

use crate::args::Args;
use corun_mc::{explore, Mutation, Scope};
use corun_verify::Code;

pub fn cmd_mc(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "machines",
        "jobs",
        "retries",
        "kills",
        "crashes",
        "max-states",
        "seed-bug",
        "smoke",
        "format",
    ])?;
    if args.flag("smoke") {
        return smoke();
    }

    let scope = Scope {
        machines: args.num_or("machines", Scope::default().machines)?,
        jobs: args.num_or("jobs", Scope::default().jobs)?,
        max_retries: args.num_or("retries", Scope::default().max_retries)?,
        max_kills: args.num_or("kills", Scope::default().max_kills)?,
        max_crashes: args.num_or("crashes", Scope::default().max_crashes)?,
        max_states: args.num_or("max-states", Scope::default().max_states)?,
        ..Scope::default()
    };
    if scope.machines == 0 || scope.jobs == 0 {
        return Err("the scope needs at least one machine and one job".to_string());
    }
    let mutation = match args.opt("seed-bug") {
        None => Mutation::None,
        Some(name) => Mutation::parse(name).ok_or_else(|| {
            let known: Vec<&str> = Mutation::SEEDABLE.iter().map(|(n, _)| *n).collect();
            format!("unknown --seed-bug `{name}` (known: {})", known.join(", "))
        })?,
    };

    println!(
        "mc: exploring {} machine(s) x {} job(s), retries {}, kills {}, crashes {}{}",
        scope.machines,
        scope.jobs,
        scope.max_retries,
        scope.max_kills,
        scope.max_crashes,
        match mutation {
            Mutation::None => String::new(),
            m => format!(", seeded bug {m:?}"),
        }
    );
    let ex = explore(&scope, mutation);
    println!("mc: {}", ex.summary());
    let report = ex.report();
    match args.opt_or("format", "human") {
        "json" => println!("{}", report.render_json()),
        _ => print!("{}", report.render_human()),
    }
    if report.has_errors() {
        Err("mc found an invariant violation".to_string())
    } else {
        Ok(())
    }
}

/// The CI gate: the clean smoke scope must prove, and every seeded
/// mutation must be convicted with its expected diagnostic code.
fn smoke() -> Result<(), String> {
    let scope = Scope::smoke();
    let ex = explore(&scope, Mutation::None);
    println!("mc smoke: clean scope — {}", ex.summary());
    if !ex.proved() {
        print!("{}", ex.report().render_human());
        return Err("smoke scope did not prove clean".to_string());
    }

    let expect: [(Mutation, Code); 4] = [
        (Mutation::LoseEvictedJob, Code::Mc0001),
        (Mutation::DoubleDispatch, Code::Mc0002),
        (Mutation::SkipDeadRecord, Code::Mc0003),
        (Mutation::DoubleCountCompletion, Code::Mc0004),
    ];
    for (mutation, code) in expect {
        let ex = explore(&scope, mutation);
        let convicted = ex
            .counterexample
            .as_ref()
            .map(|c| c.events.len())
            .filter(|_| ex.report().has(code));
        match convicted {
            Some(len) => println!(
                "mc smoke: seeded {mutation:?} — convicted as {} in {len} event(s)",
                code.as_str()
            ),
            None => {
                print!("{}", ex.report().render_human());
                return Err(format!(
                    "seeded {mutation:?} was NOT convicted as {} — the checker is blind",
                    code.as_str()
                ));
            }
        }
    }
    println!("mc smoke: ok — clean scope proved, all seeded bugs convicted");
    Ok(())
}
