//! The replay contract, end to end: a real journaled [`Service`] run —
//! including injected chaos failures, retries, and dead-letters — must
//! replay bit-identically from its journal alone.
//!
//! Three properties per sampled run:
//!
//! 1. **Terminal equality** (`RPL002`): replaying the whole journal
//!    reproduces the live daemon's terminal `fingerprint()`.
//! 2. **Snapshot equality** (`RPL001`): replaying the prefix before any
//!    embedded `Snapshot` record reproduces that snapshot's recorded
//!    fingerprint.
//! 3. **kill -9 closure**: every record-boundary prefix of the journal
//!    (what a kill at any fsync boundary leaves behind) replays with no
//!    divergence at all.

use corun_core::RetryPolicy;
use corun_replay::{check_terminal, replay_journal, replay_records, ReplayOptions};
use corun_serve::{scan_journal, JobState, Record, Service, ServiceConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_journal(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "corun-replay-props-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn journaled_cfg(path: &Path) -> ServiceConfig {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = 32;
    cfg.journal_path = Some(path.to_path_buf());
    // Small enough that even a short run crosses several checkpoints.
    cfg.snapshot_every = 4;
    cfg.retry = RetryPolicy {
        max_retries: 2,
        backoff_base_s: 0.01,
        backoff_max_s: 0.02,
    };
    cfg
}

/// Run a journaled service over `spec` (optionally under a chaos plan)
/// until every job is terminal; return the live terminal fingerprint.
fn run_service(path: &Path, spec: &str, chaos: Option<&str>) -> u64 {
    let mut cfg = journaled_cfg(path);
    if let Some(plan) = chaos {
        cfg.fault_plan = Some(apu_sim::FaultPlan::parse(plan).expect("chaos plan"));
    }
    let svc = Service::start(cfg);
    let ids = svc.submit_spec(spec).expect("submit");
    for &id in &ids {
        let st = svc.wait_job(id).expect("known id");
        assert!(
            matches!(
                st.state,
                JobState::Done { .. } | JobState::DeadLetter { .. } | JobState::Rejected
            ),
            "job {id} not terminal: {st:?}"
        );
    }
    svc.wait_idle();
    // The live-ops ring must have observed the run.
    let (points, next) = svc.watch(0);
    assert!(!points.is_empty(), "metrics ring empty after a run");
    assert_eq!(points.last().unwrap().seq, next);
    svc.shutdown();
    svc.state_fingerprint()
}

/// All three replay properties against the journal `path` left behind.
fn check_replay_properties(path: &Path, live_fingerprint: u64) {
    // 1. Whole-journal replay is clean and reproduces the live state.
    let mut outcome = replay_journal(path, &ReplayOptions::default());
    assert!(outcome.is_clean(), "{}", outcome.report.render_human());
    assert!(
        outcome.snapshots_verified >= 1,
        "no snapshot checkpoints were taken"
    );
    assert!(
        check_terminal(&mut outcome, live_fingerprint, "live service"),
        "replay fingerprint {:016x} != live {live_fingerprint:016x}",
        outcome.fingerprint()
    );

    let scan = scan_journal(path);
    assert!(!scan.report.has_errors(), "{}", scan.report.render_human());

    // 2. Each snapshot's recorded fingerprint is exactly what replaying
    //    its prefix produces (snapshot-boundary equality).
    let mut snapshots = 0;
    for (k, rec) in scan.records.iter().enumerate() {
        if let Record::Snapshot { fingerprint, .. } = rec {
            let prefix = replay_records(&scan.records[..k], &ReplayOptions::default());
            assert!(prefix.is_clean(), "{}", prefix.report.render_human());
            assert_eq!(
                prefix.fingerprint(),
                *fingerprint,
                "snapshot at record {k} does not match its replayed prefix"
            );
            snapshots += 1;
        }
    }
    assert!(snapshots >= 1);

    // 3. kill -9 closure: every record-boundary prefix replays cleanly.
    for n in 0..=scan.records.len() {
        let prefix = replay_records(&scan.records[..n], &ReplayOptions::default());
        assert!(
            prefix.is_clean(),
            "prefix of {n} record(s): {}",
            prefix.report.render_human()
        );
        assert_eq!(prefix.records_applied, n);
    }
}

proptest! {
    // Each case is a full service lifecycle plus O(n^2) prefix replays;
    // keep the count modest (the replays themselves are microseconds).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A chaos-faulted run — retries, dead-letters, back-off — replays
    /// bit-identically from its journal at every boundary.
    #[test]
    fn faulted_runs_replay_bit_identically(
        njobs in 1usize..4,
        seed in 0u64..1000,
        fail_idx in 0usize..3,
    ) {
        let fail_pct = [0u32, 30, 100][fail_idx];
        let path = temp_journal("prop");
        let spec = "srad x0.05\nlud x0.05\nhotspot x0.05\n"
            .lines()
            .take(njobs)
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        let chaos = format!(
            "@chaos seed={seed} job-fail={}\n",
            f64::from(fail_pct) / 100.0
        );
        let live = run_service(&path, &spec, Some(&chaos));
        check_replay_properties(&path, live);
        std::fs::remove_file(&path).ok();
    }
}

/// The deterministic anchor: a clean (chaos-free) run replays exactly,
/// and `--until` past the end equals the full replay.
#[test]
fn clean_run_replays_and_until_clamps() {
    let path = temp_journal("clean");
    let live = run_service(&path, "srad x0.05 *2\n", None);
    check_replay_properties(&path, live);

    let full = replay_journal(&path, &ReplayOptions::default());
    let clamped = replay_journal(
        &path,
        &ReplayOptions {
            until: Some(u64::MAX),
            diff: false,
        },
    );
    assert_eq!(full.fingerprint(), clamped.fingerprint());
    assert_eq!(full.records_applied, clamped.records_applied);
    std::fs::remove_file(&path).ok();
}

/// Every job dead-lettered under `job-fail=1`: the harshest outcome mix
/// (evictions of nothing, requeues, give-ups) still replays exactly.
#[test]
fn all_dead_letters_replay_exactly() {
    let path = temp_journal("dead");
    let live = run_service(&path, "srad x0.05 *2\n", Some("@chaos seed=7 job-fail=1\n"));
    check_replay_properties(&path, live);

    let outcome = replay_journal(&path, &ReplayOptions::default());
    assert_eq!(outcome.state.counters.dead_lettered, 2);
    std::fs::remove_file(&path).ok();
}
