//! # corun-replay — deterministic re-execution of service journals
//!
//! The corun-serve daemon is event-sourced: every nondeterministic
//! input that can change a scheduling outcome (admissions, dispatch
//! decisions, completions, failures and their retry outcomes, machine
//! crashes, cap changes, shutdown) is durably journaled as a typed
//! [`Record`] *before* its effects become observable, and decision
//! paths read time and entropy only through injected sources
//! (`corun_core::Clock` / `DetRng`, enforced by the `SRV011` lint).
//! A journal is therefore a complete transcript: re-applying its
//! records through the same pure [`ServiceState`] transition functions
//! reproduces the live daemon's state bit-for-bit, and
//! [`ServiceState::fingerprint`] equality proves it.
//!
//! This crate is that re-execution engine, behind `corun replay`:
//!
//! - [`replay_journal`] / [`replay_records`] re-run a transcript,
//!   verifying every embedded `Snapshot` checkpoint on the way
//!   (`RPL001`), and report any divergence between a record and the
//!   transition it re-applies (`RPL003`) or an undecodable snapshot
//!   (`RPL004`).
//! - [`check_terminal`] compares the replayed terminal fingerprint
//!   against an external expectation — the live daemon's fingerprint,
//!   or the journal's own terminal snapshot (`RPL002`).
//! - [`diff_states`] renders a field-level diff for `corun replay
//!   --diff`, so a divergence names the exact job, slot, or counter
//!   that drifted instead of just two hashes.
//!
//! Replay is pure: nothing here touches the simulation engine, the
//! model, or any clock. That is what makes it fast (hundreds of
//! thousands of events/sec even while verifying every checkpoint over
//! thousands of jobs — see `BENCH_replay.json`) and exact. See `docs/REPLAY.md`
//! for the event-sourcing contract the daemon upholds.

use corun_core::RequeueOutcome;
use corun_serve::{decode_state, replay as recover_replay, scan_journal, Record, ServiceState};
use corun_verify::{Code, Diagnostic, Report};
use std::path::Path;

/// Knobs for one replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayOptions {
    /// Stop after applying this many records (`records[..until]`);
    /// `None` replays the whole journal. The CLI's `--until SEQ`.
    pub until: Option<u64>,
    /// Collect field-level diffs against every mismatching snapshot
    /// (the CLI's `--diff`). Fingerprint checks run either way.
    pub diff: bool,
}

/// What a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The re-executed state after the last applied record.
    pub state: ServiceState,
    /// Records actually applied (may stop early on `until` or a hard
    /// divergence).
    pub records_applied: usize,
    /// `Snapshot` checkpoints whose fingerprints were verified.
    pub snapshots_verified: usize,
    /// The journal index of the last verified snapshot, if any.
    pub last_snapshot_at: Option<u64>,
    /// The last journaled power cap, if any `cap` record was seen.
    pub cap_w: Option<f64>,
    /// Field-level differences collected under [`ReplayOptions::diff`].
    pub diffs: Vec<String>,
    /// `RPL0xx` findings; empty report = bit-identical reproduction.
    pub report: Report,
}

impl ReplayOutcome {
    /// Fingerprint of the replayed terminal state.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.state.fingerprint()
    }

    /// Whether the replay reproduced the journal without any
    /// error-severity divergence.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Scan `path` and replay its records. Scan findings (torn tail,
/// version mismatch — `SRV007`) merge into the outcome's report ahead
/// of any replay finding.
pub fn replay_journal(path: &Path, opts: &ReplayOptions) -> ReplayOutcome {
    let scan = scan_journal(path);
    let mut outcome = replay_records(&scan.records, opts);
    let mut report = scan.report;
    report.merge(std::mem::take(&mut outcome.report));
    outcome.report = report;
    outcome
}

/// Re-execute `records` through the pure state machine. A hard
/// divergence (`RPL003`) stops the replay at the offending record —
/// every transition after it would inherit the drift.
pub fn replay_records(records: &[Record], opts: &ReplayOptions) -> ReplayOutcome {
    let mut outcome = ReplayOutcome {
        state: ServiceState::new(0),
        records_applied: 0,
        snapshots_verified: 0,
        last_snapshot_at: None,
        cap_w: None,
        diffs: Vec::new(),
        report: Report::new(),
    };
    for (k, rec) in records.iter().enumerate() {
        if opts.until.is_some_and(|until| k as u64 >= until) {
            break;
        }
        if !apply(&mut outcome, records, k, rec, opts) {
            break;
        }
        outcome.records_applied = k + 1;
    }
    outcome
}

/// Apply one record; `false` stops the replay (hard divergence).
fn apply(
    out: &mut ReplayOutcome,
    records: &[Record],
    k: usize,
    rec: &Record,
    opts: &ReplayOptions,
) -> bool {
    let at = |k: usize| format!("record {k}");
    match rec {
        Record::Meta { machines, .. } => {
            // Version problems are the scanner's job (SRV007); replay
            // just takes the shape.
            out.state = ServiceState::new(*machines);
            true
        }
        Record::Recovered { machines, .. } => {
            // A restart boundary: the daemon rebuilt its state by
            // replaying everything above this line, exactly like this.
            let (recovered, report) = recover_replay(&records[..k]);
            for d in report.diagnostics {
                out.report.push(d);
            }
            out.state = ServiceState::restore_from(&recovered, *machines);
            true
        }
        Record::Accept {
            name,
            program,
            scale,
            ..
        } => match out.state.accept(name, program, *scale) {
            Ok((_, got)) => expect_same(out, k, rec, &got),
            Err(e) => refused(out, &at(k), rec, &e.to_string()),
        },
        Record::Reject { id } => match out.state.reject(*id) {
            Ok(got) => expect_same(out, k, rec, &got),
            Err(e) => refused(out, &at(k), rec, &e.to_string()),
        },
        Record::Dispatch {
            id,
            machine,
            device,
            start_s,
            predicted_s,
            ..
        } => {
            // Mirror the live driver: the engine's poll clears the slot
            // the previous occupant held before the dispatch transition
            // runs (the occupant's own Done/Requeue record follows later
            // in the journal).
            out.state.vacate(*machine, *device);
            match out
                .state
                .dispatch(*id, *machine, *device, *start_s, *predicted_s)
            {
                Ok(got) => expect_same(out, k, rec, &got),
                Err(e) => refused(out, &at(k), rec, &e.to_string()),
            }
        }
        Record::Done { id, end_s, .. } => match out.state.complete(*id, *end_s) {
            Ok(got) => expect_same(out, k, rec, &got),
            Err(e) => refused(out, &at(k), rec, &e.to_string()),
        },
        Record::Requeue {
            id,
            attempt,
            backoff_s,
            reason,
        } => {
            let outcome = RequeueOutcome::Retry {
                attempt: *attempt,
                backoff_s: *backoff_s,
            };
            match out.state.fail_with(*id, outcome, reason) {
                Ok(fail) => expect_same(out, k, rec, &fail.record),
                Err(e) => refused(out, &at(k), rec, &e.to_string()),
            }
        }
        Record::Dead { id, reason } => {
            let attempts = out.state.jobs.get(*id).map_or(1, |j| j.retries + 1);
            match out
                .state
                .fail_with(*id, RequeueOutcome::DeadLetter { attempts }, reason)
            {
                Ok(fail) => expect_same(out, k, rec, &fail.record),
                Err(e) => refused(out, &at(k), rec, &e.to_string()),
            }
        }
        Record::Evict { machine, .. } => {
            // The per-victim Requeue/Dead records follow in the journal;
            // only the down-marking happens here.
            match out.state.evict_only(*machine) {
                Ok(()) => true,
                Err(e) => refused(out, &at(k), rec, &e.to_string()),
            }
        }
        Record::CapChange { cap_w } => {
            out.cap_w = Some(*cap_w);
            true
        }
        Record::ShutdownBegin => {
            out.state.begin_shutdown();
            true
        }
        Record::Snapshot {
            seq,
            fingerprint,
            state,
        } => check_snapshot(out, k, *seq, *fingerprint, state, opts),
    }
}

/// Verify one `Snapshot` checkpoint against the re-executed state.
fn check_snapshot(
    out: &mut ReplayOutcome,
    k: usize,
    seq: u64,
    fingerprint: u64,
    encoded: &str,
    opts: &ReplayOptions,
) -> bool {
    if seq != k as u64 {
        out.report.push(Diagnostic::new(
            Code::Rpl003,
            format!("record {k}"),
            format!("snapshot claims journal index {seq} but sits at index {k}"),
        ));
    }
    let got = out.state.fingerprint();
    if got == fingerprint {
        out.snapshots_verified += 1;
        out.last_snapshot_at = Some(k as u64);
        return true;
    }
    out.report.push(
        Diagnostic::new(
            Code::Rpl001,
            format!("record {k}"),
            format!(
                "snapshot fingerprint {fingerprint:016x} but replaying its prefix \
                 produced {got:016x}"
            ),
        )
        .with_help("the journal and the code disagree on a transition; see --diff"),
    );
    match decode_state(encoded) {
        Ok(recorded) => {
            if opts.diff {
                let mut d = diff_states(&out.state, &recorded);
                out.diffs.append(&mut d);
            }
        }
        Err(e) => {
            out.report.push(Diagnostic::new(
                Code::Rpl004,
                format!("record {k}"),
                format!("embedded snapshot state does not decode: {e}"),
            ));
        }
    }
    false
}

/// Record a transition that re-applied to something other than what the
/// journal recorded. Always returns `false` (stop).
fn expect_same(out: &mut ReplayOutcome, k: usize, want: &Record, got: &Record) -> bool {
    if got == want {
        return true;
    }
    out.report.push(Diagnostic::new(
        Code::Rpl003,
        format!("record {k}"),
        format!("journal recorded {want:?} but re-applying produced {got:?}"),
    ));
    false
}

/// Record a transition the pure state machine refused outright. Always
/// returns `false` (stop).
fn refused(out: &mut ReplayOutcome, loc: &str, rec: &Record, err: &str) -> bool {
    out.report.push(Diagnostic::new(
        Code::Rpl003,
        loc.to_string(),
        format!("re-applying {rec:?} was refused: {err}"),
    ));
    false
}

/// Compare the replayed terminal fingerprint against an external
/// expectation (the live daemon, or the journal's terminal snapshot);
/// pushes `RPL002` on mismatch. `what` names the expectation in the
/// diagnostic (e.g. `"live service"`).
pub fn check_terminal(outcome: &mut ReplayOutcome, expected_fingerprint: u64, what: &str) -> bool {
    let got = outcome.fingerprint();
    if got == expected_fingerprint {
        return true;
    }
    outcome.report.push(
        Diagnostic::new(
            Code::Rpl002,
            what.to_string(),
            format!(
                "replay terminal fingerprint {got:016x} does not reproduce the \
                 {what} fingerprint {expected_fingerprint:016x}"
            ),
        )
        .with_help("re-run with --diff against the last snapshot to localize the drift"),
    );
    false
}

/// Render the field-level differences between the replayed state and a
/// recorded one, most significant first. Empty iff the states are equal.
#[must_use]
pub fn diff_states(replayed: &ServiceState, recorded: &ServiceState) -> Vec<String> {
    const MAX_DIFFS: usize = 48;
    let mut out = Vec::new();
    if replayed.jobs.len() != recorded.jobs.len() {
        out.push(format!(
            "job table: replayed {} jobs, recorded {}",
            replayed.jobs.len(),
            recorded.jobs.len()
        ));
    }
    for (id, (a, b)) in replayed.jobs.iter().zip(&recorded.jobs).enumerate() {
        if a == b {
            continue;
        }
        if out.len() >= MAX_DIFFS {
            break;
        }
        out.push(format!("job {id}: replayed {a:?}, recorded {b:?}"));
    }
    if replayed.queue != recorded.queue {
        out.push(format!(
            "queue: replayed {:?}, recorded {:?}",
            replayed.queue, recorded.queue
        ));
    }
    if replayed.machines.len() != recorded.machines.len() {
        out.push(format!(
            "machines: replayed {}, recorded {}",
            replayed.machines.len(),
            recorded.machines.len()
        ));
    }
    for (m, (a, b)) in replayed.machines.iter().zip(&recorded.machines).enumerate() {
        if a != b {
            out.push(format!("machine {m}: replayed {a:?}, recorded {b:?}"));
        }
    }
    if replayed.shutdown != recorded.shutdown {
        out.push(format!(
            "shutdown: replayed {}, recorded {}",
            replayed.shutdown, recorded.shutdown
        ));
    }
    if replayed.counters != recorded.counters {
        out.push(format!(
            "counters: replayed {:?}, recorded {:?}",
            replayed.counters, recorded.counters
        ));
    }
    if out.len() >= MAX_DIFFS {
        out.push(format!("... (truncated at {MAX_DIFFS} differences)"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::Device;
    use corun_core::RetryPolicy;
    use corun_serve::encode_state;

    /// Drive a live trajectory through the pure state machine, journal
    /// every emitted record, and sprinkle snapshots at quiescent points —
    /// exactly what the daemon does, minus the threads.
    fn trajectory() -> (Vec<Record>, ServiceState) {
        let retry = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let mut st = ServiceState::new(2);
        let mut recs = vec![Record::Meta {
            version: corun_serve::JOURNAL_FORMAT_VERSION,
            machines: 2,
        }];
        let snapshot = |st: &ServiceState, recs: &mut Vec<Record>| {
            recs.push(Record::Snapshot {
                seq: recs.len() as u64,
                fingerprint: st.fingerprint(),
                state: encode_state(st),
            });
        };
        for k in 0..4 {
            let (_, rec) = st.accept(&format!("srad#{k}"), "srad", 0.3).unwrap();
            recs.push(rec);
        }
        snapshot(&st, &mut recs);
        recs.push(st.dispatch(0, 0, Device::Gpu, 0.0, 2.0).unwrap());
        recs.push(st.dispatch(1, 1, Device::Cpu, 0.0, 3.0).unwrap());
        recs.push(st.complete(0, 2.1).unwrap());
        recs.push(Record::CapChange { cap_w: 12.5 });
        let fail = st.fail(1, &retry, "injected job failure").unwrap();
        recs.push(fail.record);
        snapshot(&st, &mut recs);
        recs.push(st.dispatch(1, 1, Device::Cpu, 4.0, 3.0).unwrap());
        let fail = st.fail(1, &retry, "injected job failure").unwrap();
        recs.push(fail.record); // dead-letters
        recs.push(st.dispatch(2, 0, Device::Cpu, 3.0, 1.5).unwrap());
        let (evict, victims) = st.crash(0, 4.0, &retry, "machine crash").unwrap();
        recs.push(evict);
        for v in victims {
            recs.push(v.record);
        }
        st.begin_shutdown();
        recs.push(Record::ShutdownBegin);
        snapshot(&st, &mut recs);
        (recs, st)
    }

    #[test]
    fn replay_reproduces_a_trajectory_bit_identically() {
        let (recs, live) = trajectory();
        let mut outcome = replay_records(&recs, &ReplayOptions::default());
        assert!(outcome.is_clean(), "{}", outcome.report.render_human());
        assert_eq!(outcome.records_applied, recs.len());
        assert_eq!(outcome.snapshots_verified, 3);
        assert_eq!(outcome.cap_w, Some(12.5));
        assert_eq!(outcome.state, live);
        assert_eq!(outcome.fingerprint(), live.fingerprint());
        assert!(check_terminal(
            &mut outcome,
            live.fingerprint(),
            "live state"
        ));
        assert!(diff_states(&outcome.state, &live).is_empty());
    }

    #[test]
    fn every_prefix_of_a_trajectory_replays_cleanly() {
        // kill -9 can truncate the journal after any record; every
        // prefix must still replay without divergence.
        let (recs, _) = trajectory();
        for n in 0..=recs.len() {
            let outcome = replay_records(&recs[..n], &ReplayOptions::default());
            assert!(
                outcome.is_clean(),
                "prefix {n}: {}",
                outcome.report.render_human()
            );
            assert_eq!(outcome.records_applied, n);
        }
    }

    #[test]
    fn until_stops_early() {
        let (recs, _) = trajectory();
        let outcome = replay_records(
            &recs,
            &ReplayOptions {
                until: Some(5),
                diff: false,
            },
        );
        assert_eq!(outcome.records_applied, 5);
        // Meta + 4 accepts: all four jobs queued.
        assert_eq!(outcome.state.queue.len(), 4);
    }

    #[test]
    fn a_tampered_record_is_a_detected_divergence() {
        let (mut recs, _) = trajectory();
        // Flip the first dispatch's device: the journal now disagrees
        // with what re-execution produces at the next snapshot (and the
        // record-level check catches it immediately).
        let Record::Dispatch { device, .. } = &mut recs[6] else {
            panic!("record 6 should be the first dispatch");
        };
        *device = Device::Cpu;
        let outcome = replay_records(&recs, &ReplayOptions::default());
        assert!(!outcome.is_clean());
        assert!(outcome.report.has(Code::Rpl001) || outcome.report.has(Code::Rpl003));
    }

    #[test]
    fn a_corrupt_snapshot_fingerprint_fails_rpl001_with_diff() {
        let (mut recs, _) = trajectory();
        let snap_at = recs
            .iter()
            .position(|r| matches!(r, Record::Snapshot { .. }))
            .unwrap();
        let Record::Snapshot { fingerprint, .. } = &mut recs[snap_at] else {
            unreachable!()
        };
        *fingerprint ^= 1;
        let outcome = replay_records(
            &recs,
            &ReplayOptions {
                until: None,
                diff: true,
            },
        );
        assert!(outcome.report.has(Code::Rpl001));
        // The embedded state still matches the replayed one, so the
        // diff comes out empty — the fingerprint field itself lied.
        assert!(outcome.diffs.is_empty());
        assert_eq!(outcome.records_applied, snap_at);
    }

    #[test]
    fn terminal_mismatch_is_rpl002() {
        let (recs, live) = trajectory();
        let mut outcome = replay_records(&recs, &ReplayOptions::default());
        assert!(!check_terminal(
            &mut outcome,
            live.fingerprint() ^ 0xdead,
            "live service"
        ));
        assert!(outcome.report.has(Code::Rpl002));
    }

    #[test]
    fn recovery_boundaries_replay_through() {
        // Build: run, then a Recovered boundary (as a restart writes),
        // then more work. Replay must restore across the boundary.
        let (mut recs, _) = trajectory();
        // Simulate what open_journal does on restart: replay, restore,
        // append Recovered, continue with a fresh incarnation.
        let (recovered, _) = recover_replay(&recs);
        let mut st = ServiceState::restore_from(&recovered, 2);
        recs.push(Record::Recovered {
            jobs: st.jobs.len(),
            machines: 2,
        });
        recs.push(Record::Snapshot {
            seq: recs.len() as u64,
            fingerprint: st.fingerprint(),
            state: encode_state(&st),
        });
        // The recovered queue holds the evicted job; drain it.
        if let Some(&next) = st.queue.front() {
            recs.push(st.dispatch(next, 1, Device::Gpu, 5.0, 1.0).unwrap());
            recs.push(st.complete(next, 6.0).unwrap());
        }
        recs.push(Record::Snapshot {
            seq: recs.len() as u64,
            fingerprint: st.fingerprint(),
            state: encode_state(&st),
        });
        let outcome = replay_records(&recs, &ReplayOptions::default());
        assert!(outcome.is_clean(), "{}", outcome.report.render_human());
        assert_eq!(outcome.state, st);
    }

    #[test]
    fn diff_states_names_the_drift() {
        let (_, live) = trajectory();
        let mut other = live.clone();
        other.counters.completed += 1;
        other.jobs[0].retries += 1;
        let diffs = diff_states(&live, &other);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().any(|d| d.starts_with("job 0:")));
        assert!(diffs.iter().any(|d| d.starts_with("counters:")));
    }
}
