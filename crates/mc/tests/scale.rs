//! The default scope must stay exhaustively explorable: if a state-space
//! regression (a new field leaking into the fingerprint, a memoization
//! bug un-merging interleavings) blows it up past the budget, this
//! catches it before `corun mc` starts reporting MC0005 truncation.

use corun_mc::{explore, Mutation, Scope};

#[test]
fn default_scope_is_exhaustible_and_clean() {
    let ex = explore(&Scope::default(), Mutation::None);
    assert!(ex.proved(), "{}", ex.report().render_human());
    // Sanity floor: the scope genuinely covers crash/kill interleavings.
    assert!(
        ex.states > 50_000,
        "scope collapsed to {} states",
        ex.states
    );
}
