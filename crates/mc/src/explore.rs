//! The exhaustive bounded explorer: breadth-first search over every
//! interleaving of [`Event`]s within a [`Scope`], with visited-state
//! memoization and minimal counterexample extraction.
//!
//! BFS (rather than DFS) means the first violation found is reached by
//! the fewest possible events — the counterexample trace is minimal in
//! schedule length by construction. Memoization keys on what a node can
//! still *do* (state fingerprint + what its journal replays to + fault
//! budgets), so interleavings that converge are explored once.
//!
//! At every visited node the explorer checks, through the same code the
//! daemon runs:
//!
//! * [`ServiceState::check_invariants`] — no job lost, no double
//!   dispatch, books balanced (MC0001/MC0002/MC0004);
//! * [`ServiceState::check_replay_consistency`] against a replay of the
//!   node's journal, plus replay idempotence across a recovery boundary
//!   and journal causality (MC0003).

use crate::model::{apply, enabled, memo_key, Event, Mutation, Node, Scope};
use corun_serve::journal::{check_causality, replay, Record};
use corun_serve::state::{ServiceState, Violation, ViolationKind};
use corun_verify::{Code, Diagnostic, Report};
use std::collections::{HashSet, VecDeque};

/// A minimal event schedule that drives the service from its initial
/// state into a state violating an invariant.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The events, in order, from the initial state.
    pub events: Vec<Event>,
    /// Every invariant violated in the final state.
    pub violations: Vec<Violation>,
}

impl Counterexample {
    /// Re-execute the trace and render it step by step: each event with
    /// a digest of the state it produces, then the violations. The
    /// per-step digests are recomputed (transitions are deterministic),
    /// so the render shows exactly the states the explorer saw.
    pub fn render(&self, scope: &Scope, mutation: Mutation) -> String {
        let retry = scope.retry();
        let mut node = Node::root(scope);
        let mut out = String::new();
        out.push_str(&format!("  0. (initial) {}\n", digest(&node.st)));
        for (k, ev) in self.events.iter().enumerate() {
            match apply(&mut node, ev, scope, &retry, mutation) {
                Ok(()) => out.push_str(&format!(
                    "  {}. {ev}\n        {}\n",
                    k + 1,
                    digest(&node.st)
                )),
                Err(e) => {
                    out.push_str(&format!("  {}. {ev} — REFUSED: {e}\n", k + 1));
                    break;
                }
            }
        }
        for v in &self.violations {
            out.push_str(&format!("  violated: {v}\n"));
        }
        out
    }
}

/// One-line state digest for trace rendering.
fn digest(st: &ServiceState) -> String {
    use corun_serve::state::JobState;
    let jobs: Vec<String> = st
        .jobs
        .iter()
        .enumerate()
        .map(|(id, j)| {
            let s = match &j.state {
                JobState::Queued => "queued".to_string(),
                JobState::Rejected => "rejected".to_string(),
                JobState::Running {
                    machine, device, ..
                } => format!("running@m{machine}/{device:?}"),
                JobState::Done { .. } => "done".to_string(),
                JobState::DeadLetter { .. } => "dead".to_string(),
            };
            format!("j{id}={s}(r{})", j.retries)
        })
        .collect();
    let machines: Vec<String> = st
        .machines
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let slot = |d: usize| match m.running[d] {
                Some(id) => format!("j{id}"),
                None => "-".to_string(),
            };
            format!(
                "m{mi}{}[{},{}]",
                if m.down { "(down)" } else { "" },
                slot(0),
                slot(1)
            )
        })
        .collect();
    format!(
        "jobs{{{}}} queue{:?} {}",
        jobs.join(" "),
        st.queue.iter().collect::<Vec<_>>(),
        machines.join(" ")
    )
}

/// What one exploration run found.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The scope that was explored.
    pub scope: Scope,
    /// The seeded mutation (usually [`Mutation::None`]).
    pub mutation: Mutation,
    /// Distinct states visited.
    pub states: usize,
    /// Events applied (edges traversed).
    pub events: usize,
    /// The longest event schedule fully explored.
    pub depth: usize,
    /// Whether the state budget truncated exploration before the scope
    /// was exhausted.
    pub truncated: bool,
    /// The minimal counterexample, if any invariant broke.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// `true` when the scope was fully explored and no invariant broke.
    pub fn proved(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }

    /// Surface the outcome as diagnostics: one MC0xx error per violated
    /// invariant kind (with the rendered minimal trace as help), and an
    /// MC0005 warning if the state budget truncated exploration.
    pub fn report(&self) -> Report {
        let mut report = Report::new();
        if let Some(cex) = &self.counterexample {
            let trace = cex.render(&self.scope, self.mutation);
            let mut kinds_seen: Vec<ViolationKind> = Vec::new();
            for v in &cex.violations {
                let first_of_kind = !kinds_seen.contains(&v.kind);
                kinds_seen.push(v.kind);
                let mut d = Diagnostic::new(
                    code_for(v.kind),
                    format!("mc: after {} event(s)", cex.events.len()),
                    v.detail.clone(),
                );
                if first_of_kind {
                    d = d.with_help(format!("minimal counterexample:\n{trace}"));
                }
                report.push(d);
            }
        }
        if self.truncated {
            report.push(Diagnostic::new(
                Code::Mc0005,
                "mc: exploration".to_string(),
                format!(
                    "state budget ({}) hit after {} state(s); the verdict covers only the visited part of the scope",
                    self.scope.max_states, self.states
                ),
            ).with_help("raise --max-states or shrink the scope for an exhaustive verdict".to_string()));
        }
        report
    }

    /// Human summary line for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} state(s), {} event(s), depth {} — {}",
            self.states,
            self.events,
            self.depth,
            if self.counterexample.is_some() {
                "counterexample found"
            } else if self.truncated {
                "no violation in the visited part (truncated)"
            } else {
                "all invariants proved at this scope"
            }
        )
    }
}

/// The stable diagnostic code for each violated invariant family.
pub fn code_for(kind: ViolationKind) -> Code {
    match kind {
        ViolationKind::JobLost => Code::Mc0001,
        ViolationKind::DoubleDispatch => Code::Mc0002,
        ViolationKind::ReplayMismatch => Code::Mc0003,
        ViolationKind::BooksImbalance => Code::Mc0004,
    }
}

/// Exhaustively explore `scope` under `mutation`, stopping at the first
/// violation (whose trace is minimal, by BFS) or when the scope — or
/// the state budget — is exhausted.
pub fn explore(scope: &Scope, mutation: Mutation) -> Exploration {
    let retry = scope.retry();
    let root = Node::root(scope);

    // Parent pointers for trace reconstruction: one entry per *edge*
    // taken, holding (parent edge index, event). Roots hold `None`.
    let mut parents: Vec<Option<(usize, Event)>> = vec![None];
    let mut frontier: VecDeque<(Node, usize, usize)> = VecDeque::new(); // (node, edge idx, depth)
    let mut seen: HashSet<u64> = HashSet::new();
    let (recovered, _) = replay(&root.journal);
    seen.insert(memo_key(&root, &recovered));
    frontier.push_back((root, 0, 0));

    let mut states = 1usize;
    let mut events_applied = 0usize;
    let mut max_depth = 0usize;
    let mut truncated = false;

    while let Some((node, idx, depth)) = frontier.pop_front() {
        max_depth = max_depth.max(depth);
        for ev in enabled(&node, scope) {
            let mut next = node.clone();
            if let Err(e) = apply(&mut next, &ev, scope, &retry, mutation) {
                // `enabled` said this event was possible; the transition
                // disagreed. That is a checker bug, not a model bug —
                // surface it loudly rather than mis-reporting.
                panic!("enabled event refused: {e}");
            }
            events_applied += 1;
            let edge = parents.len();
            parents.push(Some((idx, ev.clone())));

            let (recovered, _) = replay(&next.journal);
            let mut violations = next.st.check_invariants();
            violations.extend(next.st.check_replay_consistency(&recovered));
            violations.extend(replay_idempotence(
                &next.journal,
                &recovered,
                scope.machines,
            ));
            let causality = check_causality(&next.journal);
            if causality.has_errors() {
                violations.extend(causality.errors().map(|d| Violation {
                    kind: ViolationKind::ReplayMismatch,
                    detail: format!("journal causality: {} ({})", d.message, d.location),
                }));
            }
            if !violations.is_empty() {
                return Exploration {
                    scope: scope.clone(),
                    mutation,
                    states,
                    events: events_applied,
                    depth: depth + 1,
                    truncated,
                    counterexample: Some(Counterexample {
                        events: trace_to(&parents, edge),
                        violations,
                    }),
                };
            }

            if seen.insert(memo_key(&next, &recovered)) {
                if states < scope.max_states {
                    states += 1;
                    frontier.push_back((next, edge, depth + 1));
                } else {
                    truncated = true;
                }
            }
        }
    }

    Exploration {
        scope: scope.clone(),
        mutation,
        states,
        events: events_applied,
        depth: max_depth,
        truncated,
        counterexample: None,
    }
}

/// Replay must be idempotent across a recovery boundary: appending the
/// `Recovered` record a restart writes and replaying again yields the
/// same per-job dispositions.
fn replay_idempotence(
    journal: &[Record],
    recovered: &corun_serve::Recovered,
    machines: usize,
) -> Vec<Violation> {
    let mut with_boundary = journal.to_vec();
    with_boundary.push(Record::Recovered {
        jobs: recovered.jobs.len(),
        machines,
    });
    let (again, _) = replay(&with_boundary);
    if again.jobs != recovered.jobs {
        vec![Violation {
            kind: ViolationKind::ReplayMismatch,
            detail: "replay is not idempotent: replaying past a recovery boundary changed the dispositions".to_string(),
        }]
    } else {
        Vec::new()
    }
}

/// Walk parent pointers from an edge back to the root; the events in
/// forward order form the counterexample schedule.
fn trace_to(parents: &[Option<(usize, Event)>], mut edge: usize) -> Vec<Event> {
    let mut events = Vec::new();
    while let Some((parent, ev)) = &parents[edge] {
        events.push(ev.clone());
        edge = *parent;
    }
    events.reverse();
    events
}
