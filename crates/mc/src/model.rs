//! The model the checker explores: a scope (how big a world), an event
//! alphabet (what can happen), and a deterministic `apply` that drives
//! the *production* transition functions of
//! [`corun_serve::ServiceState`] — the checker proves properties of the
//! code the daemon runs, not of a hand-written abstraction.
//!
//! Events are atomic: each one performs exactly one transition plus its
//! journal appends, the way the daemon does under its state lock. Times
//! are logical and constant (`start_s = 0`, `end_s = 1`) so that
//! interleavings which reach the same configuration by different routes
//! fingerprint identically and merge in the visited set.

use apu_sim::Device;
use corun_core::{JobId, RetryPolicy};
use corun_serve::journal::{replay, Record, Recovered};
use corun_serve::state::ServiceState;

/// How big a world the checker enumerates. Every bound is a *scope*
/// bound, not a sampling rate: within the scope, exploration is
/// exhaustive (unless the state budget truncates it, which is reported).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Simulated machines (each with a CPU and a GPU slot).
    pub machines: usize,
    /// Jobs clients may submit.
    pub jobs: usize,
    /// Retry budget per job before dead-lettering.
    pub max_retries: u32,
    /// Daemon kills (`kill -9` + `--recover` replay) per run. A kill can
    /// happen after *every* journal append — each explored event is a
    /// journal boundary.
    pub max_kills: usize,
    /// Machine crashes (evictions) per run.
    pub max_crashes: usize,
    /// Visited-state budget; hitting it truncates exploration (MC0005).
    pub max_states: usize,
    /// Also model admission rejection (accept immediately followed by
    /// reject, the daemon's cap-infeasible path).
    pub model_rejects: bool,
    /// Also model the shutdown transition (no further admissions).
    pub model_shutdown: bool,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            machines: 2,
            jobs: 3,
            max_retries: 1,
            max_kills: 1,
            max_crashes: 1,
            max_states: 1_500_000,
            model_rejects: true,
            model_shutdown: false,
        }
    }
}

impl Scope {
    /// The CI smoke scope: small enough to finish in seconds, big enough
    /// that every transition (dispatch, complete, fail, requeue,
    /// dead-letter, crash, kill/replay, reject) fires.
    pub fn smoke() -> Self {
        Scope {
            machines: 2,
            jobs: 2,
            max_states: 400_000,
            ..Scope::default()
        }
    }

    /// The retry policy the explored daemon uses.
    pub fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.max_retries,
            ..RetryPolicy::default()
        }
    }
}

/// One atomic thing that can happen to the service. The explorer tries
/// every enabled event in every reachable state.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A client submits the next job and admission accepts it.
    Submit,
    /// A client submits the next job and admission rejects it
    /// (cap-infeasible after profiling).
    SubmitRejected,
    /// A worker dispatches a queued job to a free device slot.
    Dispatch {
        /// The queued job being placed.
        job: JobId,
        /// Hosting machine index.
        machine: usize,
        /// Target device.
        device: Device,
    },
    /// The job running on a slot completes.
    Complete {
        /// Hosting machine index.
        machine: usize,
        /// The device whose occupant finishes.
        device: Device,
    },
    /// The job running on a slot fails (injected fault); it is requeued
    /// or dead-lettered by the retry policy.
    Fail {
        /// Hosting machine index.
        machine: usize,
        /// The device whose occupant fails.
        device: Device,
    },
    /// A machine crashes; its in-flight jobs are evicted.
    Crash {
        /// The crashing machine.
        machine: usize,
    },
    /// The daemon is killed and restarted with `--recover`: the state is
    /// rebuilt by replaying the journal.
    Kill,
    /// The daemon begins shutdown (no further admissions).
    Shutdown,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Submit => write!(f, "submit"),
            Event::SubmitRejected => write!(f, "submit (rejected at admission)"),
            Event::Dispatch {
                job,
                machine,
                device,
            } => write!(f, "dispatch job {job} -> machine {machine} {device:?}"),
            Event::Complete { machine, device } => {
                write!(f, "complete on machine {machine} {device:?}")
            }
            Event::Fail { machine, device } => {
                write!(f, "fail on machine {machine} {device:?}")
            }
            Event::Crash { machine } => write!(f, "crash machine {machine}"),
            Event::Kill => write!(f, "kill daemon + recover from journal"),
            Event::Shutdown => write!(f, "begin shutdown"),
        }
    }
}

/// A deliberately broken transition, for proving the checker *can*
/// find bugs (the `corun mc --smoke` CI gate) and for tests. Each
/// mutation corrupts one transition the way a real regression might,
/// and must be caught by exactly one invariant family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Faithful transitions.
    #[default]
    None,
    /// A crash eviction "forgets" to requeue one victim: the job stays
    /// `Queued` in the table but vanishes from the queue (MC0001).
    LoseEvictedJob,
    /// Dispatch also writes the job into another machine's slot, as a
    /// double-send race would (MC0002).
    DoubleDispatch,
    /// Dead-lettering skips its journal append, so replay resurrects
    /// the job as pending (MC0003).
    SkipDeadRecord,
    /// Completion bumps the completed counter twice (MC0004).
    DoubleCountCompletion,
}

impl Mutation {
    /// Parse a CLI spelling; `None` on unknown input.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "lose-evicted" => Some(Mutation::LoseEvictedJob),
            "double-dispatch" => Some(Mutation::DoubleDispatch),
            "skip-dead-record" => Some(Mutation::SkipDeadRecord),
            "double-count-completion" => Some(Mutation::DoubleCountCompletion),
            _ => None,
        }
    }

    /// Every seedable mutation with its CLI spelling.
    pub const SEEDABLE: [(&'static str, Mutation); 4] = [
        ("lose-evicted", Mutation::LoseEvictedJob),
        ("double-dispatch", Mutation::DoubleDispatch),
        ("skip-dead-record", Mutation::SkipDeadRecord),
        ("double-count-completion", Mutation::DoubleCountCompletion),
    ];
}

/// One explored configuration: the service state, the journal that got
/// it there, and the consumed fault budgets.
#[derive(Debug, Clone)]
pub struct Node {
    /// The service state after the path's events.
    pub st: ServiceState,
    /// The journal the daemon would have written along this path.
    pub journal: Vec<Record>,
    /// Kills consumed.
    pub kills: usize,
    /// Crashes consumed.
    pub crashes: usize,
}

impl Node {
    /// The initial configuration: empty state, empty journal.
    pub fn root(scope: &Scope) -> Node {
        Node {
            st: ServiceState::new(scope.machines),
            journal: Vec::new(),
            kills: 0,
            crashes: 0,
        }
    }
}

/// Every event enabled in `node`, in a deterministic order (the trace a
/// violation renders is therefore reproducible run to run).
pub fn enabled(node: &Node, scope: &Scope) -> Vec<Event> {
    let st = &node.st;
    let mut evs = Vec::new();
    if !st.shutdown && st.jobs.len() < scope.jobs {
        evs.push(Event::Submit);
        if scope.model_rejects {
            evs.push(Event::SubmitRejected);
        }
    }
    for &job in &st.queue {
        for (machine, m) in st.machines.iter().enumerate() {
            if m.down {
                continue;
            }
            for &device in &Device::ALL {
                if m.running[device.index()].is_none() {
                    evs.push(Event::Dispatch {
                        job,
                        machine,
                        device,
                    });
                }
            }
        }
    }
    for (machine, m) in st.machines.iter().enumerate() {
        for &device in &Device::ALL {
            if m.running[device.index()].is_some() {
                evs.push(Event::Complete { machine, device });
                evs.push(Event::Fail { machine, device });
            }
        }
    }
    if node.crashes < scope.max_crashes {
        for (machine, m) in st.machines.iter().enumerate() {
            if !m.down {
                evs.push(Event::Crash { machine });
            }
        }
    }
    if node.kills < scope.max_kills {
        evs.push(Event::Kill);
    }
    if scope.model_shutdown && !st.shutdown {
        evs.push(Event::Shutdown);
    }
    evs
}

/// Apply one event to a node, mutating state and journal exactly the way
/// the daemon would (modulo the seeded `mutation`). Returns `Err` with
/// the refusing transition's message if the event was not actually
/// enabled — the explorer treats that as a bug in `enabled`, not a
/// counterexample.
pub fn apply(
    node: &mut Node,
    event: &Event,
    scope: &Scope,
    retry: &RetryPolicy,
    mutation: Mutation,
) -> Result<(), String> {
    let err = |e: corun_serve::TransitionError| format!("{event}: {e}");
    match event {
        Event::Submit => {
            let n = node.st.jobs.len();
            let (_, rec) = node
                .st
                .accept(&format!("job#{n}"), "prog", 1.0)
                .map_err(err)?;
            node.journal.push(rec);
        }
        Event::SubmitRejected => {
            let n = node.st.jobs.len();
            let (id, rec) = node
                .st
                .accept(&format!("job#{n}"), "prog", 1.0)
                .map_err(err)?;
            node.journal.push(rec);
            let rec = node.st.reject(id).map_err(err)?;
            node.journal.push(rec);
        }
        Event::Dispatch {
            job,
            machine,
            device,
        } => {
            let rec = node
                .st
                .dispatch(*job, *machine, *device, 0.0, 1.0)
                .map_err(err)?;
            node.journal.push(rec);
            if mutation == Mutation::DoubleDispatch {
                // The double-send race: another machine's slot also ends
                // up pointing at the job.
                if let Some((_, m)) =
                    node.st.machines.iter_mut().enumerate().find(|(mi, m)| {
                        mi != machine && !m.down && m.running[device.index()].is_none()
                    })
                {
                    m.running[device.index()] = Some(*job);
                }
            }
        }
        Event::Complete { machine, device } => {
            let id = node.st.machines[*machine].running[device.index()]
                .ok_or_else(|| format!("{event}: slot is empty"))?;
            let rec = node.st.complete(id, 1.0).map_err(err)?;
            node.journal.push(rec);
            if mutation == Mutation::DoubleCountCompletion {
                node.st.counters.completed += 1;
            }
        }
        Event::Fail { machine, device } => {
            let id = node.st.machines[*machine].running[device.index()]
                .ok_or_else(|| format!("{event}: slot is empty"))?;
            let fail = node
                .st
                .fail(id, retry, "injected job failure")
                .map_err(err)?;
            let skip =
                mutation == Mutation::SkipDeadRecord && matches!(fail.record, Record::Dead { .. });
            if !skip {
                node.journal.push(fail.record);
            }
        }
        Event::Crash { machine } => {
            let (evict, reports) = node
                .st
                .crash(*machine, 0.0, retry, "machine crash")
                .map_err(err)?;
            node.journal.push(evict);
            for r in &reports {
                node.journal.push(r.record.clone());
            }
            node.crashes += 1;
            if mutation == Mutation::LoseEvictedJob {
                if let Some(first) = reports.first() {
                    let victim = first.job;
                    node.st.queue.retain(|&j| j != victim);
                }
            }
        }
        Event::Kill => {
            let (recovered, _report) = replay(&node.journal);
            node.st = ServiceState::restore_from(&recovered, scope.machines);
            node.journal.push(Record::Recovered {
                jobs: recovered.jobs.len(),
                machines: scope.machines,
            });
            node.kills += 1;
        }
        Event::Shutdown => node.st.begin_shutdown(),
    }
    Ok(())
}

/// Fingerprint the behaviorally relevant part of a node for the visited
/// set: the state itself, what the journal *replays to* (which is all a
/// future `Kill` can observe of it), and the fault budgets. Journals
/// that differ only in record order but replay identically merge.
pub fn memo_key(node: &Node, recovered: &Recovered) -> u64 {
    let mut h = Fnv::new();
    h.u64(node.st.fingerprint());
    h.u64(recovered.jobs.len() as u64);
    for j in &recovered.jobs {
        h.str(&j.name);
        h.str(&j.program);
        h.u64(u64::from(j.retries));
        match &j.disposition {
            corun_serve::Disposition::Pending => h.u64(0),
            corun_serve::Disposition::Rejected => h.u64(1),
            corun_serve::Disposition::Done {
                machine,
                device,
                end_s,
                ..
            } => {
                h.u64(2);
                h.u64(*machine as u64);
                h.u64(device.index() as u64);
                h.u64(end_s.to_bits());
            }
            corun_serve::Disposition::Dead { reason } => {
                h.u64(3);
                h.str(reason);
            }
        }
    }
    h.u64(node.kills as u64);
    h.u64(node.crashes as u64);
    h.finish()
}

/// FNV-1a, 64-bit; deterministic across runs so visited-set membership
/// (and therefore traces) reproduce exactly.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}
