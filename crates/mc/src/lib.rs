//! # corun-mc — bounded model checking for the co-scheduling service
//!
//! The daemon in `corun-serve` claims safety properties — no accepted
//! job is ever lost, nothing is double-dispatched, the crash journal
//! replays to exactly the state the daemon held, the books balance —
//! and backs them with tests that *sample* interleavings and kill
//! points. This crate checks them exhaustively at small scope instead:
//! every interleaving of client, worker, crash, and kill/recover events
//! within a [`Scope`] (e.g. 2 machines × 3 jobs × 1 kill × 1 crash),
//! with a kill considered at every journal boundary.
//!
//! The checked model **is** the production code: events drive the same
//! [`ServiceState`](corun_serve::ServiceState) transition functions the
//! live daemon uses (`crates/serve/src/state.rs`), journal records are
//! the daemon's own [`Record`](corun_serve::Record)s, and recovery is
//! the daemon's own `replay` + `restore_from`. What the checker proves
//! holds for the daemon, modulo only the thin driver layer (locks,
//! sockets, wall-clock gates).
//!
//! [`explore`] runs a breadth-first search with visited-state
//! memoization; the first violation is therefore reached by a minimal
//! event schedule, rendered as an MC0xx diagnostic with the full trace
//! (see `docs/MODELCHECK.md` for the catalog). [`Mutation`] seeds a
//! deliberately broken transition so CI can prove the checker finds
//! bugs — a model checker that never fails is indistinguishable from
//! one that checks nothing.
//!
//! ```
//! use corun_mc::{explore, Mutation, Scope};
//!
//! let ex = explore(&Scope { jobs: 1, max_kills: 1, ..Scope::default() }, Mutation::None);
//! assert!(ex.proved(), "{}", ex.report().render_human());
//! ```

pub mod explore;
pub mod model;

pub use explore::{code_for, explore, Counterexample, Exploration};
pub use model::{apply, enabled, memo_key, Event, Mutation, Node, Scope};

#[cfg(test)]
mod tests {
    use super::*;
    use corun_serve::state::ViolationKind;
    use corun_verify::Code;

    #[test]
    fn smoke_scope_proves_all_invariants() {
        let ex = explore(&Scope::smoke(), Mutation::None);
        assert!(
            ex.counterexample.is_none(),
            "unexpected violation:\n{}",
            ex.report().render_human()
        );
        assert!(!ex.truncated, "smoke scope must be exhaustible");
        assert!(ex.proved());
        assert!(ex.report().is_empty());
        assert!(ex.summary().contains("proved"));
        // The scope is not degenerate: thousands of distinct states.
        assert!(ex.states > 1_000, "only {} states", ex.states);
    }

    #[test]
    fn every_seeded_mutation_yields_a_counterexample() {
        let expect = [
            (
                Mutation::LoseEvictedJob,
                ViolationKind::JobLost,
                Code::Mc0001,
            ),
            (
                Mutation::DoubleDispatch,
                ViolationKind::DoubleDispatch,
                Code::Mc0002,
            ),
            (
                Mutation::SkipDeadRecord,
                ViolationKind::ReplayMismatch,
                Code::Mc0003,
            ),
            (
                Mutation::DoubleCountCompletion,
                ViolationKind::BooksImbalance,
                Code::Mc0004,
            ),
        ];
        for (mutation, kind, code) in expect {
            let ex = explore(&Scope::smoke(), mutation);
            let cex = ex
                .counterexample
                .as_ref()
                .unwrap_or_else(|| panic!("{mutation:?} produced no counterexample"));
            assert!(
                cex.violations.iter().any(|v| v.kind == kind),
                "{mutation:?}: wrong violation kinds: {:?}",
                cex.violations
            );
            let report = ex.report();
            assert!(report.has(code), "{mutation:?}: {}", report.render_human());
            assert!(report.has_errors());
            // The trace renders and ends in the violation.
            let trace = cex.render(&ex.scope, mutation);
            assert!(trace.contains("violated:"), "{trace}");
            assert!(!cex.events.is_empty());
        }
    }

    #[test]
    fn counterexamples_are_minimal_schedules() {
        // Losing an evicted job takes submit, dispatch, crash — three
        // events. BFS must find a trace of exactly that length.
        let ex = explore(&Scope::smoke(), Mutation::LoseEvictedJob);
        let cex = ex.counterexample.expect("must find the seeded bug");
        assert_eq!(cex.events.len(), 3, "not minimal: {:?}", cex.events);
        // Double dispatch needs only submit + dispatch.
        let ex = explore(&Scope::smoke(), Mutation::DoubleDispatch);
        let cex = ex.counterexample.expect("must find the seeded bug");
        assert_eq!(cex.events.len(), 2, "not minimal: {:?}", cex.events);
    }

    #[test]
    fn state_budget_truncation_is_reported_as_mc0005() {
        let scope = Scope {
            max_states: 50,
            ..Scope::smoke()
        };
        let ex = explore(&scope, Mutation::None);
        assert!(ex.truncated);
        assert!(!ex.proved());
        let report = ex.report();
        assert!(report.has(Code::Mc0005));
        assert!(!report.has_errors(), "truncation is a warning, not a bug");
    }

    #[test]
    fn mutation_cli_spellings_roundtrip() {
        assert_eq!(Mutation::parse("none"), Some(Mutation::None));
        for (name, m) in Mutation::SEEDABLE {
            assert_eq!(Mutation::parse(name), Some(m));
        }
        assert_eq!(Mutation::parse("nope"), None);
    }

    #[test]
    fn kills_at_every_boundary_are_actually_explored() {
        // With kills enabled the state count strictly grows versus a
        // kill-free scope: recovery paths are genuinely new states.
        let with = explore(&Scope::smoke(), Mutation::None);
        let without = explore(
            &Scope {
                max_kills: 0,
                ..Scope::smoke()
            },
            Mutation::None,
        );
        assert!(
            with.states > without.states,
            "kills added no states ({} vs {})",
            with.states,
            without.states
        );
        assert!(without.proved());
    }
}
