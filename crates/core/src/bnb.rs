//! Branch-and-bound optimal co-schedule search for small batches.
//!
//! The paper notes that prior work used A*-search to co-schedule jobs on
//! homogeneous multicores (Tian et al.), and argues such searches do not
//! answer the frequency/placement questions of the integrated, power-capped
//! setting. This module generalizes the idea to that setting: it searches
//! over device placements and dispatch orders, assigns each job the
//! cap-feasible level that maximizes its performance against the co-runner
//! present at its dispatch (the same level rule HCS uses), and prunes with
//! an admissible bound. Exponential — use for `n <= ~9` as an oracle to
//! measure how far HCS/HCS+ sit from the constrained optimum.

use crate::evaluate::evaluate;
use crate::freqgrid::{best_solo_run, feasible_pair_settings};
use crate::model::{CoRunModel, JobId};
use crate::schedule::{Assignment, Schedule};
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Result of the branch-and-bound search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BnbResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its model-predicted makespan.
    pub makespan_s: f64,
    /// Nodes expanded.
    pub expanded: usize,
    /// Nodes pruned by the bound.
    pub pruned: usize,
}

/// Search configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BnbConfig {
    /// Power cap (infinite to disable).
    pub cap_w: f64,
    /// Hard limit on expanded nodes (the search returns the best schedule
    /// found so far once exceeded). Guards against misuse on large batches.
    pub node_limit: usize,
}

impl BnbConfig {
    /// Default configuration for a given cap.
    pub fn new(cap_w: f64) -> Self {
        BnbConfig {
            cap_w,
            node_limit: 2_000_000,
        }
    }
}

struct SearchState<'a> {
    model: &'a dyn CoRunModel,
    cfg: &'a BnbConfig,
    /// Fastest possible time of each job anywhere under the cap (for the
    /// admissible remaining-work bound).
    min_time: Vec<f64>,
    best: Option<(Schedule, f64)>,
    expanded: usize,
    pruned: usize,
}

/// Run the search.
///
/// # Panics
/// Panics on an empty batch.
pub fn branch_and_bound(model: &dyn CoRunModel, cfg: &BnbConfig) -> BnbResult {
    let n = model.len();
    assert!(n >= 1, "empty batch");

    let min_time: Vec<f64> = (0..n)
        .map(|i| {
            Device::ALL
                .iter()
                .filter_map(|&d| best_solo_run(model, i, d, cfg.cap_w).map(|(_, t)| t))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut st = SearchState {
        model,
        cfg,
        min_time,
        best: None,
        expanded: 0,
        pruned: 0,
    };

    // Seed with the refined greedy solution so pruning bites immediately
    // (and the search result is never worse than HCS+).
    let seed = crate::hcs::hcs(model, &crate::hcs::HcsConfig::with_cap(cfg.cap_w));
    let refined = crate::refine::refine(
        model,
        &seed.schedule,
        &crate::refine::RefineConfig::new(cfg.cap_w),
    );
    st.best = Some((refined.schedule, refined.after_s));

    let mut partial = Schedule::new();
    let mut used = vec![false; n];
    expand(&mut st, &mut partial, &mut used, 0);

    let (schedule, makespan_s) = st.best.expect("seeded");
    BnbResult {
        schedule,
        makespan_s,
        expanded: st.expanded,
        pruned: st.pruned,
    }
}

fn finite(cap: f64) -> Option<f64> {
    cap.is_finite().then_some(cap)
}

fn expand(st: &mut SearchState<'_>, partial: &mut Schedule, used: &mut [bool], depth: usize) {
    if st.expanded >= st.cfg.node_limit {
        return;
    }
    st.expanded += 1;
    let n = used.len();

    if depth == n {
        let r = evaluate(st.model, partial, finite(st.cfg.cap_w));
        if r.cap_ok {
            let better = st.best.as_ref().is_none_or(|(_, b)| r.makespan_s < *b);
            if better {
                st.best = Some((partial.clone(), r.makespan_s));
            }
        }
        return;
    }

    // Admissible bound: the makespan of what's already placed cannot shrink,
    // and the remaining jobs need at least half their total best-case time
    // across the two devices.
    let placed = evaluate(st.model, partial, finite(st.cfg.cap_w));
    if !placed.cap_ok {
        st.pruned += 1;
        return;
    }
    let remaining: f64 = (0..n).filter(|&i| !used[i]).map(|i| st.min_time[i]).sum();
    let optimistic = placed.makespan_s.max(remaining / 2.0);
    if let Some((_, best)) = &st.best {
        if optimistic >= *best - 1e-9 {
            st.pruned += 1;
            return;
        }
    }

    // Branch: next job onto either device. To curb symmetric orderings,
    // only the lowest-indexed unused job and every *distinct* job after it
    // are tried in first position of a fresh region; a simple and safe
    // variant is to try all unused jobs (schedules are order-sensitive).
    for j in 0..n {
        if used[j] {
            continue;
        }
        used[j] = true;
        for device in Device::ALL {
            let level = pick_level(st.model, st.cfg.cap_w, partial, j, device);
            let Some(level) = level else { continue };
            partial.queue_mut(device).push(Assignment { job: j, level });
            expand(st, partial, used, depth + 1);
            partial.queue_mut(device).pop();
        }
        used[j] = false;
    }
}

/// Level for job `j` appended to `device`: the fastest cap-feasible level
/// against the co-runner it is most likely to face (the last job queued on
/// the other device), falling back to the best solo level.
fn pick_level(
    model: &dyn CoRunModel,
    cap_w: f64,
    partial: &Schedule,
    j: JobId,
    device: Device,
) -> Option<usize> {
    let other_last = partial.queue(device.other()).last().copied();
    match other_last {
        Some(co) => {
            let (cpu_job, gpu_job) = match device {
                Device::Cpu => (j, co.job),
                Device::Gpu => (co.job, j),
            };
            let mut best: Option<(usize, f64)> = None;
            for (f, g) in feasible_pair_settings(model, cpu_job, gpu_job, cap_w) {
                let own = match device {
                    Device::Cpu => f,
                    Device::Gpu => g,
                };
                let co_level = match device {
                    Device::Cpu => g,
                    Device::Gpu => f,
                };
                if co_level != co.level {
                    continue; // the co-runner's level is already fixed
                }
                let t = model.corun_time(j, device, own, co.job, co.level);
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((own, t));
                }
            }
            best.map(|(l, _)| l)
                .or_else(|| best_solo_run(model, j, device, cap_w).map(|(l, _)| l))
        }
        None => best_solo_run(model, j, device, cap_w).map(|(l, _)| l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::refine::{refine, RefineConfig};

    #[test]
    fn finds_at_least_the_greedy_solution() {
        let m = synthetic(5, 4, 3);
        let r = branch_and_bound(&m, &BnbConfig::new(f64::INFINITY));
        let g = hcs(&m, &HcsConfig::uncapped());
        let g_span = evaluate(&m, &g.schedule, None).makespan_s;
        assert!(r.makespan_s <= g_span + 1e-9);
        assert!(r.schedule.is_complete_for(5));
    }

    #[test]
    fn beats_or_matches_refined_heuristic() {
        let m = synthetic(6, 4, 3);
        let cap = 16.0;
        let r = branch_and_bound(&m, &BnbConfig::new(cap));
        let g = hcs(&m, &HcsConfig::with_cap(cap));
        let refined = refine(&m, &g.schedule, &RefineConfig::new(cap));
        let span = evaluate(&m, &refined.schedule, Some(cap)).makespan_s;
        assert!(
            r.makespan_s <= span + 1e-9,
            "bnb {} vs hcs+ {span}",
            r.makespan_s
        );
    }

    #[test]
    fn respects_cap() {
        let m = synthetic(5, 4, 3);
        let cap = 14.0;
        let r = branch_and_bound(&m, &BnbConfig::new(cap));
        let check = evaluate(&m, &r.schedule, Some(cap));
        assert!(check.cap_ok);
    }

    #[test]
    fn bound_above_lower_bound() {
        let m = synthetic(5, 4, 3);
        let r = branch_and_bound(&m, &BnbConfig::new(f64::INFINITY));
        let lb = crate::bound::lower_bound(&m, f64::INFINITY);
        assert!(r.makespan_s + 1e-9 >= lb.t_low_s);
    }

    #[test]
    fn single_job_optimal() {
        let m = synthetic(1, 4, 3);
        let r = branch_and_bound(&m, &BnbConfig::new(f64::INFINITY));
        let best = m
            .standalone(0, Device::Cpu, 3)
            .min(m.standalone(0, Device::Gpu, 2));
        assert!((r.makespan_s - best).abs() < 1e-9);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let m = synthetic(7, 4, 3);
        let mut cfg = BnbConfig::new(f64::INFINITY);
        cfg.node_limit = 50;
        let r = branch_and_bound(&m, &cfg);
        // Still returns a valid (seeded) schedule.
        assert!(r.schedule.is_complete_for(7));
        assert!(r.expanded <= 51);
    }

    #[test]
    fn prunes_something_on_nontrivial_input() {
        let m = synthetic(6, 3, 3);
        let r = branch_and_bound(&m, &BnbConfig::new(f64::INFINITY));
        assert!(r.pruned > 0, "bound should prune");
        assert!(r.expanded > 6);
    }
}
