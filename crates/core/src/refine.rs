//! HCS+ post local refinement (paper Section IV-A.3).
//!
//! Three linear-cost passes over a schedule produced by the heuristic:
//!
//! 1. swap every two *adjacent* jobs in each device's queue, keeping a swap
//!    when it reduces the predicted makespan;
//! 2. swap two *randomly picked* jobs within a device's queue, a bounded
//!    number of samples;
//! 3. swap two jobs *across* devices (re-leveling each moved job to its
//!    best cap-feasible level on its new device), a bounded number of
//!    samples.
//!
//! Swaps that would violate the power cap (as judged by the model-based
//! evaluator) are rejected regardless of makespan.

use crate::evaluate::evaluate;
use crate::freqgrid::best_solo_level;
use crate::model::CoRunModel;
use crate::objective::{objective_value, Objective};
use crate::schedule::Schedule;
use apu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Refinement parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Power cap (must match the cap the schedule was built for).
    pub cap_w: f64,
    /// Random same-device swap attempts per device (step 2).
    pub random_swaps: usize,
    /// Random cross-device swap attempts (step 3).
    pub cross_swaps: usize,
    /// RNG seed (refinement is deterministic given the seed).
    pub seed: u64,
    /// What to minimize (the paper minimizes makespan).
    pub objective: Objective,
}

impl RefineConfig {
    /// Defaults: 32 random swaps per device, 32 cross swaps.
    pub fn new(cap_w: f64) -> Self {
        RefineConfig {
            cap_w,
            random_swaps: 32,
            cross_swaps: 32,
            seed: 0x5eed,
            objective: Objective::Makespan,
        }
    }
}

/// Outcome of refinement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefineOutcome {
    /// The refined schedule.
    pub schedule: Schedule,
    /// Objective value before refinement (seconds for makespan, joules for
    /// energy, joule-seconds for EDP).
    pub before_s: f64,
    /// Objective value after refinement.
    pub after_s: f64,
    /// Number of accepted swaps.
    pub accepted: usize,
}

/// Run the three refinement passes.
pub fn refine(model: &dyn CoRunModel, schedule: &Schedule, cfg: &RefineConfig) -> RefineOutcome {
    let cap = if cfg.cap_w.is_finite() {
        Some(cfg.cap_w)
    } else {
        None
    };
    let objective = cfg.objective;
    let mut best = schedule.clone();
    let before = objective_value(objective, &evaluate(model, &best, cap));
    let mut best_span = before;
    let mut accepted = 0;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let try_accept = |cand: Schedule, best: &mut Schedule, best_span: &mut f64| -> bool {
        let r = evaluate(model, &cand, cap);
        let v = objective_value(objective, &r);
        if r.cap_ok && v < *best_span - 1e-9 {
            *best = cand;
            *best_span = v;
            true
        } else {
            false
        }
    };

    // Pass 1: adjacent swaps on each device.
    for device in Device::ALL {
        let len = best.queue(device).len();
        if len < 2 {
            continue;
        }
        for i in 0..len - 1 {
            let mut cand = best.clone();
            cand.queue_mut(device).swap(i, i + 1);
            if try_accept(cand, &mut best, &mut best_span) {
                accepted += 1;
            }
        }
    }

    // Pass 2: random intra-device swaps.
    for device in Device::ALL {
        let len = best.queue(device).len();
        if len < 2 {
            continue;
        }
        for _ in 0..cfg.random_swaps {
            let i = rng.gen_range(0..len);
            let j = rng.gen_range(0..len);
            if i == j {
                continue;
            }
            let mut cand = best.clone();
            cand.queue_mut(device).swap(i, j);
            if try_accept(cand, &mut best, &mut best_span) {
                accepted += 1;
            }
        }
    }

    // Pass 2b (our extension beyond the paper's three swap passes): try
    // *moving* each job from one queue to the tail of the other, which
    // repairs device-load imbalance that pure swaps cannot (e.g. a
    // GPU-preferred job the greedy stole onto the CPU near the end).
    for device in Device::ALL {
        let len = best.queue(device).len();
        for i in (0..len).rev() {
            let mut cand = best.clone();
            let a = cand.queue_mut(device).remove(i);
            let target = device.other();
            // Highest level that fits the cap against every possible
            // co-runner left in the source queue.
            let Some(start) = best_solo_level(model, a.job, target, cfg.cap_w) else {
                continue;
            };
            let level = (0..=start).rev().find(|&f| {
                cand.queue(device).iter().all(|other| {
                    let power = match target {
                        Device::Cpu => {
                            model.corun_power(Some((a.job, f)), Some((other.job, other.level)))
                        }
                        Device::Gpu => {
                            model.corun_power(Some((other.job, other.level)), Some((a.job, f)))
                        }
                    };
                    power <= cfg.cap_w
                })
            });
            let Some(level) = level else { continue };
            cand.queue_mut(target)
                .push(crate::schedule::Assignment { job: a.job, level });
            if try_accept(cand, &mut best, &mut best_span) {
                accepted += 1;
            }
        }
    }

    // Pass 3: random cross-device swaps with re-leveling.
    for _ in 0..cfg.cross_swaps {
        let nc = best.cpu.len();
        let ng = best.gpu.len();
        if nc == 0 || ng == 0 {
            break;
        }
        let i = rng.gen_range(0..nc);
        let j = rng.gen_range(0..ng);
        let mut cand = best.clone();
        let a = cand.cpu[i];
        let b = cand.gpu[j];
        // `a` moves to the GPU, `b` to the CPU. Levels are re-picked
        // conservatively: the highest level that fits the cap against
        // *every* job queued on the other device (so any overlap the
        // evaluator produces is feasible).
        let Some(a_level) = safe_level(model, a.job, Device::Gpu, &cand.cpu, i, b, cfg.cap_w)
        else {
            continue;
        };
        let Some(b_level) = safe_level(model, b.job, Device::Cpu, &cand.gpu, j, a, cfg.cap_w)
        else {
            continue;
        };
        cand.cpu[i] = crate::schedule::Assignment {
            job: b.job,
            level: b_level,
        };
        cand.gpu[j] = crate::schedule::Assignment {
            job: a.job,
            level: a_level,
        };
        if try_accept(cand, &mut best, &mut best_span) {
            accepted += 1;
        }
    }

    RefineOutcome {
        schedule: best,
        before_s: before,
        after_s: best_span,
        accepted,
    }
}

/// Highest level of `job` on `device` that keeps the pair power under the
/// cap against every assignment in the other device's queue (`other_queue`;
/// the entry at `swap_pos` is about to be replaced by `incoming`).
fn safe_level(
    model: &dyn CoRunModel,
    job: crate::model::JobId,
    device: Device,
    other_queue: &[crate::schedule::Assignment],
    swap_pos: usize,
    incoming: crate::schedule::Assignment,
    cap_w: f64,
) -> Option<usize> {
    let start = best_solo_level(model, job, device, cap_w)?;
    // `incoming` still carries its level from the device it came from; clamp
    // it to the ladder it is moving onto (a placeholder — the evaluator is
    // the final cap gate).
    let co_ladder_max = model.levels(device.other()) - 1;
    'level: for f in (0..=start).rev() {
        for (pos, other) in other_queue.iter().enumerate() {
            let (co_job, co_level) = if pos == swap_pos {
                (incoming.job, incoming.level.min(co_ladder_max))
            } else {
                (other.job, other.level)
            };
            let power = match device {
                Device::Cpu => model.corun_power(Some((job, f)), Some((co_job, co_level))),
                Device::Gpu => model.corun_power(Some((co_job, co_level)), Some((job, f))),
            };
            if power > cap_w {
                continue 'level;
            }
        }
        return Some(f);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::schedule::Assignment;

    #[test]
    fn refinement_never_worsens() {
        let m = synthetic(10, 6, 5);
        let out = hcs(&m, &HcsConfig::with_cap(18.0));
        let r = refine(&m, &out.schedule, &RefineConfig::new(18.0));
        assert!(r.after_s <= r.before_s + 1e-9);
        assert!(r.schedule.is_complete_for(10));
    }

    #[test]
    fn refinement_deterministic_per_seed() {
        let m = synthetic(9, 5, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        let a = refine(&m, &out.schedule, &RefineConfig::new(f64::INFINITY));
        let b = refine(&m, &out.schedule, &RefineConfig::new(f64::INFINITY));
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.after_s, b.after_s);
    }

    #[test]
    fn improves_a_deliberately_bad_order() {
        // Build a pessimal schedule by hand: pair the two most hostile jobs
        // together; refinement should find something better.
        let m = synthetic(8, 5, 4);
        let mut bad = Schedule::new();
        for i in 0..4 {
            bad.cpu.push(Assignment { job: i, level: 4 });
        }
        for i in 4..8 {
            bad.gpu.push(Assignment { job: i, level: 3 });
        }
        let before = evaluate(&m, &bad, None).makespan_s;
        let mut cfg = RefineConfig::new(f64::INFINITY);
        cfg.random_swaps = 64;
        cfg.cross_swaps = 64;
        let r = refine(&m, &bad, &cfg);
        assert!(r.after_s <= before);
        assert!(r.schedule.is_complete_for(8));
    }

    #[test]
    fn cap_violating_swaps_rejected() {
        let m = synthetic(6, 5, 4);
        let cap = 14.0;
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let base = evaluate(&m, &out.schedule, Some(cap));
        assert!(base.cap_ok);
        let r = refine(&m, &out.schedule, &RefineConfig::new(cap));
        let after = evaluate(&m, &r.schedule, Some(cap));
        assert!(after.cap_ok, "refinement must preserve cap compliance");
    }

    #[test]
    fn energy_objective_prefers_lower_clocks() {
        use crate::objective::{energy_j, Objective};
        let m = synthetic(6, 5, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        let mut rc = RefineConfig::new(f64::INFINITY);
        rc.objective = Objective::Energy;
        rc.random_swaps = 64;
        let r = refine(&m, &out.schedule, &rc);
        let base = evaluate(&m, &out.schedule, None);
        let tuned = evaluate(&m, &r.schedule, None);
        assert!(
            energy_j(&tuned) <= energy_j(&base) + 1e-9,
            "energy objective must not raise energy"
        );
    }

    #[test]
    fn empty_and_tiny_schedules_are_noops() {
        let m = synthetic(1, 4, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        let r = refine(&m, &out.schedule, &RefineConfig::new(f64::INFINITY));
        assert_eq!(r.before_s, r.after_s);
    }
}
