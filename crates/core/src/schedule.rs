//! Schedule representation: two ordered co-run queues plus a solo tail.

use crate::model::JobId;
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// One scheduled execution: a job with its frequency level on the device it
/// is queued for (the paper's "associate each job with a frequency level").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The job.
    pub job: JobId,
    /// Frequency level on the queue's device.
    pub level: usize,
}

/// A solo execution appended after the co-run queues drain: the job runs
/// with the other device left idle (how the heuristic handles `S_seq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoloRun {
    /// The job.
    pub job: JobId,
    /// Device it runs on.
    pub device: Device,
    /// Frequency level on that device.
    pub level: usize,
}

/// A complete co-schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// CPU co-run queue, executed in order.
    pub cpu: Vec<Assignment>,
    /// GPU co-run queue, executed in order.
    pub gpu: Vec<Assignment>,
    /// Jobs executed alone after both queues drain, in order.
    pub solo_tail: Vec<SoloRun>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Total number of scheduled executions.
    pub fn len(&self) -> usize {
        self.cpu.len() + self.gpu.len() + self.solo_tail.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue for `device`.
    pub fn queue(&self, device: Device) -> &Vec<Assignment> {
        match device {
            Device::Cpu => &self.cpu,
            Device::Gpu => &self.gpu,
        }
    }

    /// Mutable queue for `device`.
    pub fn queue_mut(&mut self, device: Device) -> &mut Vec<Assignment> {
        match device {
            Device::Cpu => &mut self.cpu,
            Device::Gpu => &mut self.gpu,
        }
    }

    /// All scheduled job ids, in queue order (CPU, GPU, solo tail).
    pub fn job_ids(&self) -> Vec<JobId> {
        self.cpu
            .iter()
            .map(|a| a.job)
            .chain(self.gpu.iter().map(|a| a.job))
            .chain(self.solo_tail.iter().map(|s| s.job))
            .collect()
    }

    /// Check the schedule covers each of `n` jobs exactly once.
    pub fn is_complete_for(&self, n: usize) -> bool {
        self.coverage(n).is_complete()
    }

    /// Structural analysis of job coverage against a workload of `n`
    /// jobs: which jobs are scheduled more than once, never, or are not
    /// jobs of the workload at all. A clean coverage is exactly
    /// [`is_complete_for`](Self::is_complete_for).
    pub fn coverage(&self, n: usize) -> Coverage {
        let mut times = vec![0usize; n];
        let mut out_of_range = Vec::new();
        for id in self.job_ids() {
            if id >= n {
                out_of_range.push(id);
            } else {
                times[id] += 1;
            }
        }
        let duplicates = (0..n).filter(|&j| times[j] > 1).collect();
        let missing = (0..n).filter(|&j| times[j] == 0).collect();
        Coverage {
            duplicates,
            missing,
            out_of_range,
        }
    }
}

/// Result of [`Schedule::coverage`]: how a schedule's job assignments
/// deviate from "each of the workload's jobs exactly once".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Jobs scheduled more than once, ascending.
    pub duplicates: Vec<JobId>,
    /// Jobs never scheduled, ascending.
    pub missing: Vec<JobId>,
    /// Scheduled ids outside `0..n`, in queue order.
    pub out_of_range: Vec<JobId>,
}

impl Coverage {
    /// Whether every job is scheduled exactly once.
    pub fn is_complete(&self) -> bool {
        self.duplicates.is_empty() && self.missing.is_empty() && self.out_of_range.is_empty()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu: [")?;
        for a in &self.cpu {
            write!(f, "j{}@L{} ", a.job, a.level)?;
        }
        write!(f, "] gpu: [")?;
        for a in &self.gpu {
            write!(f, "j{}@L{} ", a.job, a.level)?;
        }
        write!(f, "] solo: [")?;
        for s in &self.solo_tail {
            write!(f, "j{}@{}L{} ", s.job, s.device, s.level)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            cpu: vec![
                Assignment { job: 0, level: 3 },
                Assignment { job: 2, level: 1 },
            ],
            gpu: vec![Assignment { job: 1, level: 5 }],
            solo_tail: vec![SoloRun {
                job: 3,
                device: Device::Gpu,
                level: 9,
            }],
        }
    }

    #[test]
    fn counts_and_ids() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.job_ids(), vec![0, 2, 1, 3]);
    }

    #[test]
    fn completeness() {
        let s = sample();
        assert!(s.is_complete_for(4));
        assert!(!s.is_complete_for(5)); // job 4 missing
        let mut dup = s.clone();
        dup.solo_tail.push(SoloRun {
            job: 0,
            device: Device::Cpu,
            level: 0,
        });
        assert!(!dup.is_complete_for(4)); // duplicate job 0
    }

    #[test]
    fn coverage_reports_each_defect_class() {
        let mut s = sample();
        s.solo_tail.push(SoloRun {
            job: 0,
            device: Device::Cpu,
            level: 0,
        });
        s.gpu.push(Assignment { job: 7, level: 2 });
        let cov = s.coverage(5);
        assert_eq!(cov.duplicates, vec![0]);
        assert_eq!(cov.missing, vec![4]);
        assert_eq!(cov.out_of_range, vec![7]);
        assert!(!cov.is_complete());
        assert!(sample().coverage(4).is_complete());
    }

    #[test]
    fn queue_accessors() {
        let mut s = sample();
        assert_eq!(s.queue(Device::Cpu).len(), 2);
        s.queue_mut(Device::Gpu)
            .push(Assignment { job: 9, level: 0 });
        assert_eq!(s.queue(Device::Gpu).len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let text = sample().to_string();
        assert!(text.contains("j0@L3"));
        assert!(text.contains("gpu"));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert!(s.is_empty());
        assert!(s.is_complete_for(0));
        assert!(!s.is_complete_for(1));
    }
}
