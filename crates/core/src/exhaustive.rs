//! Exhaustive search over co-schedules for small batches.
//!
//! Used to reproduce the Section III observation ("the optimal setting
//! yields performance 2.3X better than the worst case co-schedule of the
//! four programs") and as an oracle in tests. The search enumerates every
//! device partition, every per-device order, and every *uniform* frequency
//! setting (one `(f, g)` pair for the whole run — exactly the enumeration
//! the paper's example performs), keeping the best and worst cap-compliant
//! schedules.

use crate::evaluate::evaluate;
use crate::model::{CoRunModel, JobId};
use crate::schedule::{Assignment, Schedule};
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Result of the exhaustive enumeration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Best cap-compliant schedule and its makespan.
    pub best: (Schedule, f64),
    /// Worst cap-compliant schedule and its makespan.
    pub worst: (Schedule, f64),
    /// Number of schedules evaluated (including cap-violating ones).
    pub evaluated: usize,
    /// Number of schedules that satisfied the cap.
    pub feasible: usize,
}

/// Exhaustively enumerate schedules of up to `MAX_JOBS` jobs.
///
/// # Panics
/// Panics if the batch exceeds 8 jobs (the enumeration is factorial) or if
/// no schedule satisfies the cap.
pub fn exhaustive_uniform(model: &dyn CoRunModel, cap_w: f64) -> ExhaustiveResult {
    exhaustive_uniform_opts(model, cap_w, false)
}

/// Like [`exhaustive_uniform`], but optionally restricted to schedules that
/// actually use both processors (the space the paper's Section III example
/// enumerates: `C_4^2 * C_2^1 * 10 * 16` settings all place jobs on both).
pub fn exhaustive_uniform_opts(
    model: &dyn CoRunModel,
    cap_w: f64,
    require_both_devices: bool,
) -> ExhaustiveResult {
    const MAX_JOBS: usize = 8;
    let n = model.len();
    assert!(
        (1..=MAX_JOBS).contains(&n),
        "exhaustive search is for small batches"
    );
    let kc = model.levels(Device::Cpu);
    let kg = model.levels(Device::Gpu);
    let cap = cap_w.is_finite().then_some(cap_w);

    let mut best: Option<(Schedule, f64)> = None;
    let mut worst: Option<(Schedule, f64)> = None;
    let mut evaluated = 0usize;
    let mut feasible = 0usize;

    // Every subset of jobs on the CPU...
    for mask in 0..(1u32 << n) {
        let cpu_jobs: Vec<JobId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let gpu_jobs: Vec<JobId> = (0..n).filter(|&i| mask & (1 << i) == 0).collect();
        if require_both_devices && (cpu_jobs.is_empty() || gpu_jobs.is_empty()) {
            continue;
        }
        // ...every order on each side...
        for cpu_perm in permutations(&cpu_jobs) {
            for gpu_perm in permutations(&gpu_jobs) {
                // ...every uniform frequency setting.
                for f in 0..kc {
                    for g in 0..kg {
                        let s = Schedule {
                            cpu: cpu_perm
                                .iter()
                                .map(|&job| Assignment { job, level: f })
                                .collect(),
                            gpu: gpu_perm
                                .iter()
                                .map(|&job| Assignment { job, level: g })
                                .collect(),
                            solo_tail: vec![],
                        };
                        let r = evaluate(model, &s, cap);
                        evaluated += 1;
                        if !r.cap_ok {
                            continue;
                        }
                        feasible += 1;
                        if best.as_ref().is_none_or(|(_, b)| r.makespan_s < *b) {
                            best = Some((s.clone(), r.makespan_s));
                        }
                        if worst.as_ref().is_none_or(|(_, w)| r.makespan_s > *w) {
                            worst = Some((s, r.makespan_s));
                        }
                    }
                }
            }
        }
    }

    ExhaustiveResult {
        best: best.expect("no cap-compliant schedule exists"),
        worst: worst.expect("no cap-compliant schedule exists"),
        evaluated,
        feasible,
    }
}

/// All permutations of a slice (iterative heap's algorithm, collected).
fn permutations(items: &[JobId]) -> Vec<Vec<JobId>> {
    let mut out = Vec::new();
    let mut a = items.to_vec();
    let n = a.len();
    if n == 0 {
        return vec![vec![]];
    }
    let mut c = vec![0usize; n];
    out.push(a.clone());
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            out.push(a.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::refine::{refine, RefineConfig};

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(&[]).len(), 1);
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[1, 2, 3, 4]).len(), 24);
    }

    #[test]
    fn best_not_worse_than_worst() {
        let m = synthetic(3, 3, 3);
        let r = exhaustive_uniform(&m, f64::INFINITY);
        assert!(r.best.1 <= r.worst.1);
        assert!(r.best.0.is_complete_for(3));
        assert!(r.worst.0.is_complete_for(3));
        assert_eq!(r.evaluated, r.feasible, "no cap, everything feasible");
    }

    #[test]
    fn hcs_close_to_exhaustive_optimum() {
        let m = synthetic(4, 3, 3);
        let cap = 16.0;
        let ex = exhaustive_uniform(&m, cap);
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let refined = refine(&m, &out.schedule, &RefineConfig::new(cap));
        let span = crate::evaluate::evaluate(&m, &refined.schedule, Some(cap)).makespan_s;
        // The heuristic can use per-job levels the uniform exhaustive
        // search cannot, so it may even beat it; it must never be more than
        // 30% worse.
        assert!(
            span <= ex.best.1 * 1.30,
            "hcs+ {span} vs exhaustive best {}",
            ex.best.1
        );
    }

    #[test]
    fn cap_reduces_feasible_count() {
        let m = synthetic(3, 3, 3);
        let loose = exhaustive_uniform(&m, f64::INFINITY);
        let tight = exhaustive_uniform(&m, 12.0);
        assert!(tight.feasible < loose.feasible);
        assert!(tight.feasible > 0);
        // With fewer (slower) feasible settings, the best cannot improve.
        assert!(tight.best.1 >= loose.best.1 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "small batches")]
    fn too_many_jobs_rejected() {
        let m = synthetic(9, 3, 3);
        let _ = exhaustive_uniform(&m, f64::INFINITY);
    }

    #[test]
    fn single_job() {
        let m = synthetic(1, 3, 3);
        let r = exhaustive_uniform(&m, f64::INFINITY);
        // best: job on its faster device at max level
        let t_best = r.best.1;
        let expect = m
            .standalone(0, Device::Cpu, 2)
            .min(m.standalone(0, Device::Gpu, 2));
        assert!((t_best - expect).abs() < 1e-9);
    }
}
