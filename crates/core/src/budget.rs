//! Cluster-wide power-budget partitioning.
//!
//! A fleet coordinator owns one datacenter-level power cap and must hand
//! each shard a cap of its own. The paper's scheduler (and this repo's
//! [`crate::online::OnlinePolicy`]) takes the cap as a given per machine;
//! this module decides *what cap each shard gets* so that the shard caps
//! never sum past the cluster cap — the fleet-level invariant checked by
//! [`respects_cluster_cap`] and asserted by the coordinator after every
//! rebalance.
//!
//! The split is proportional to per-shard demand with a per-shard floor:
//! an idle shard keeps enough budget to admit its first job, and busy
//! shards absorb the surplus in proportion to the work they already
//! carry. Shards reported as down ([`ShardDemand::Down`]) get exactly
//! zero so their budget flows to the survivors.

/// One shard's demand signal for a partitioning round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardDemand {
    /// Shard is reachable; `watts` is its current admitted demand
    /// (e.g. the power its running + queued jobs would like to draw).
    /// Non-finite or negative values are treated as zero demand.
    Up {
        /// Admitted demand, watts.
        watts: f64,
    },
    /// Shard is unreachable / crashed: it receives a zero cap and its
    /// share flows to the surviving shards.
    Down,
}

/// Relative tolerance for the cap-sum invariant: partitioning is exact
/// in real arithmetic, so only accumulated rounding can push the sum
/// over the cluster cap.
const CAP_SUM_REL_EPS: f64 = 1e-9;

/// True iff `sum(shard_caps) <= cluster_cap_w` up to floating-point
/// rounding (relative tolerance [`CAP_SUM_REL_EPS`]) and every cap is
/// finite and non-negative.
#[must_use]
pub fn respects_cluster_cap(shard_caps_w: &[f64], cluster_cap_w: f64) -> bool {
    if shard_caps_w.iter().any(|c| !c.is_finite() || *c < 0.0) {
        return false;
    }
    let sum: f64 = shard_caps_w.iter().sum();
    sum <= cluster_cap_w * (1.0 + CAP_SUM_REL_EPS) + f64::EPSILON
}

/// Partition `cluster_cap_w` across shards proportionally to demand.
///
/// Every *up* shard receives at least `floor_w` (so an idle shard can
/// still admit work); the surplus above the floors is split in
/// proportion to demand, or evenly when no shard reports demand. Down
/// shards receive exactly `0.0`.
///
/// Degenerate inputs degrade instead of panicking: if the cluster cap
/// cannot cover every up shard's floor (a misconfiguration
/// [`corun_verify`-level lints reject up front), the cap is split
/// evenly across up shards. The result always satisfies
/// [`respects_cluster_cap`]; in real arithmetic the caps sum to exactly
/// `cluster_cap_w` whenever at least one shard is up.
///
/// # Panics
/// Panics if `cluster_cap_w` or `floor_w` is negative or non-finite.
#[must_use]
pub fn partition_cluster_cap(
    cluster_cap_w: f64,
    demands: &[ShardDemand],
    floor_w: f64,
) -> Vec<f64> {
    assert!(
        cluster_cap_w.is_finite() && cluster_cap_w >= 0.0,
        "cluster cap must be finite and non-negative, got {cluster_cap_w}"
    );
    assert!(
        floor_w.is_finite() && floor_w >= 0.0,
        "shard floor must be finite and non-negative, got {floor_w}"
    );
    let up: Vec<usize> = demands
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, ShardDemand::Up { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut caps = vec![0.0; demands.len()];
    if up.is_empty() {
        return caps;
    }
    #[allow(clippy::cast_precision_loss)]
    let n_up = up.len() as f64;
    if cluster_cap_w < floor_w * n_up {
        // Infeasible floors: degrade to an even split so the invariant
        // still holds while lints flag the misconfiguration.
        for &i in &up {
            caps[i] = cluster_cap_w / n_up;
        }
        return caps;
    }
    let weight = |i: usize| -> f64 {
        match demands[i] {
            ShardDemand::Up { watts } if watts.is_finite() && watts > 0.0 => watts,
            _ => 0.0,
        }
    };
    let total: f64 = up.iter().map(|&i| weight(i)).sum();
    let surplus = cluster_cap_w - floor_w * n_up;
    for &i in &up {
        let share = if total > 0.0 {
            surplus * weight(i) / total
        } else {
            surplus / n_up
        };
        caps[i] = floor_w + share;
    }
    debug_assert!(respects_cluster_cap(&caps, cluster_cap_w));
    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up(watts: f64) -> ShardDemand {
        ShardDemand::Up { watts }
    }

    #[test]
    fn proportional_split_with_floor() {
        let caps = partition_cluster_cap(100.0, &[up(10.0), up(30.0)], 10.0);
        // floors: 10 + 10; surplus 80 split 1:3 -> 20 and 60.
        assert!((caps[0] - 30.0).abs() < 1e-9);
        assert!((caps[1] - 70.0).abs() < 1e-9);
        assert!(respects_cluster_cap(&caps, 100.0));
    }

    #[test]
    fn zero_demand_splits_evenly() {
        let caps = partition_cluster_cap(90.0, &[up(0.0), up(0.0), up(0.0)], 5.0);
        for c in &caps {
            assert!((c - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn down_shards_get_zero_and_share_flows_to_survivors() {
        let caps = partition_cluster_cap(100.0, &[up(10.0), ShardDemand::Down, up(10.0)], 10.0);
        assert_eq!(caps[1], 0.0);
        assert!((caps[0] - 50.0).abs() < 1e-9);
        assert!((caps[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_floor_degrades_to_even_split() {
        let caps = partition_cluster_cap(10.0, &[up(1.0), up(99.0)], 20.0);
        assert!((caps[0] - 5.0).abs() < 1e-9);
        assert!((caps[1] - 5.0).abs() < 1e-9);
        assert!(respects_cluster_cap(&caps, 10.0));
    }

    #[test]
    fn all_down_yields_zeros() {
        let caps = partition_cluster_cap(100.0, &[ShardDemand::Down, ShardDemand::Down], 10.0);
        assert_eq!(caps, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_fleet() {
        assert!(partition_cluster_cap(100.0, &[], 10.0).is_empty());
    }

    #[test]
    fn pathological_demands_are_treated_as_zero() {
        let caps = partition_cluster_cap(60.0, &[up(f64::NAN), up(f64::INFINITY), up(-5.0)], 10.0);
        // All weights sanitize to zero -> even surplus split on top of floors.
        for c in &caps {
            assert!((c - 20.0).abs() < 1e-9, "{caps:?}");
        }
        assert!(respects_cluster_cap(&caps, 60.0));
    }

    #[test]
    fn sum_never_exceeds_cluster_cap_across_sweep() {
        // Deterministic pseudo-random sweep (no RNG dep): splitmix-ish.
        let mut z = 0x9E37_79B9u64;
        let mut nextf = |scale: f64| {
            z = z
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (z >> 11) as f64 / (1u64 << 53) as f64 * scale
        };
        for n in 1..40 {
            let cap = nextf(1000.0);
            let floor = nextf(20.0);
            let demands: Vec<ShardDemand> = (0..n)
                .map(|i| {
                    if i % 7 == 3 {
                        ShardDemand::Down
                    } else {
                        up(nextf(200.0))
                    }
                })
                .collect();
            let caps = partition_cluster_cap(cap, &demands, floor);
            assert!(
                respects_cluster_cap(&caps, cap),
                "n={n} cap={cap} floor={floor} caps={caps:?}"
            );
        }
    }
}
