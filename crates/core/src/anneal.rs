//! Simulated-annealing co-schedule search.
//!
//! A stronger (but slower) offline optimizer than HCS+: starts from the
//! refined heuristic schedule and explores the same neighborhood moves
//! (intra-device swaps, cross-device swaps, device moves, level nudges)
//! under a geometric cooling schedule, accepting uphill moves with the
//! Metropolis criterion. Useful to quantify how much headroom HCS+ leaves
//! at batch sizes where branch-and-bound is too expensive.

use crate::evaluate::evaluate;
use crate::freqgrid::best_solo_level;
use crate::model::CoRunModel;
use crate::objective::{objective_value, Objective};
use crate::schedule::{Assignment, Schedule};
use apu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Annealing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Power cap.
    pub cap_w: f64,
    /// Iterations.
    pub iterations: usize,
    /// Initial temperature as a fraction of the starting objective value.
    pub t0_frac: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Objective to minimize.
    pub objective: Objective,
}

impl AnnealConfig {
    /// Defaults: 4000 iterations, T0 = 5% of the initial objective,
    /// cooling 0.999.
    pub fn new(cap_w: f64) -> Self {
        AnnealConfig {
            cap_w,
            iterations: 4000,
            t0_frac: 0.05,
            cooling: 0.999,
            seed: 0xa11ea1,
            objective: Objective::Makespan,
        }
    }
}

/// Annealing outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnealOutcome {
    /// Best schedule found.
    pub schedule: Schedule,
    /// Its objective value.
    pub value: f64,
    /// Objective value of the starting schedule.
    pub start_value: f64,
    /// Accepted moves (including uphill).
    pub accepted: usize,
}

/// Anneal from `start` (typically the HCS+ schedule).
pub fn anneal(model: &dyn CoRunModel, start: &Schedule, cfg: &AnnealConfig) -> AnnealOutcome {
    let cap = cfg.cap_w.is_finite().then_some(cfg.cap_w);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let eval = |s: &Schedule| {
        let r = evaluate(model, s, cap);
        (objective_value(cfg.objective, &r), r.cap_ok)
    };

    let mut current = start.clone();
    let (mut cur_v, start_ok) = eval(&current);
    let start_value = cur_v;
    let mut best = current.clone();
    let mut best_v = cur_v;
    let mut temp = (cur_v * cfg.t0_frac).max(1e-9);
    let mut accepted = 0;
    debug_assert!(
        start_ok,
        "annealing must start from a cap-feasible schedule"
    );

    for _ in 0..cfg.iterations {
        let Some(cand) = neighbor(model, &current, cfg.cap_w, &mut rng) else {
            temp *= cfg.cooling;
            continue;
        };
        let (v, ok) = eval(&cand);
        if ok {
            let delta = v - cur_v;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                current = cand;
                cur_v = v;
                accepted += 1;
                if cur_v < best_v {
                    best = current.clone();
                    best_v = cur_v;
                }
            }
        }
        temp *= cfg.cooling;
    }

    AnnealOutcome {
        schedule: best,
        value: best_v,
        start_value,
        accepted,
    }
}

/// Generate a random neighbor; `None` when the move is inapplicable.
fn neighbor(
    model: &dyn CoRunModel,
    s: &Schedule,
    cap_w: f64,
    rng: &mut StdRng,
) -> Option<Schedule> {
    let mut cand = s.clone();
    match rng.gen_range(0..4u8) {
        // Intra-device swap.
        0 => {
            let device = if rng.gen() { Device::Cpu } else { Device::Gpu };
            let q = cand.queue_mut(device);
            if q.len() < 2 {
                return None;
            }
            let i = rng.gen_range(0..q.len());
            let j = rng.gen_range(0..q.len());
            if i == j {
                return None;
            }
            q.swap(i, j);
        }
        // Move a job to the other device's tail.
        1 => {
            let device = if rng.gen() { Device::Cpu } else { Device::Gpu };
            if cand.queue(device).is_empty() {
                return None;
            }
            let i = rng.gen_range(0..cand.queue(device).len());
            let a = cand.queue_mut(device).remove(i);
            let target = device.other();
            let level = best_solo_level(model, a.job, target, cap_w)?;
            cand.queue_mut(target)
                .push(Assignment { job: a.job, level });
        }
        // Nudge a job's level by +-1.
        2 => {
            let device = if rng.gen() { Device::Cpu } else { Device::Gpu };
            let k = model.levels(device);
            let q = cand.queue_mut(device);
            if q.is_empty() {
                return None;
            }
            let i = rng.gen_range(0..q.len());
            let a = &mut q[i];
            if rng.gen() {
                if a.level + 1 >= k {
                    return None;
                }
                a.level += 1;
            } else {
                if a.level == 0 {
                    return None;
                }
                a.level -= 1;
            }
        }
        // Pull a solo-tail job back into a queue (undo a demotion).
        _ => {
            if cand.solo_tail.is_empty() {
                return None;
            }
            let i = rng.gen_range(0..cand.solo_tail.len());
            let solo = cand.solo_tail.remove(i);
            let device = if rng.gen() { Device::Cpu } else { Device::Gpu };
            let level = best_solo_level(model, solo.job, device, cap_w)?;
            cand.queue_mut(device).push(Assignment {
                job: solo.job,
                level,
            });
        }
    }
    Some(cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::refine::{refine, RefineConfig};

    #[test]
    fn never_worse_than_start() {
        let m = synthetic(10, 5, 4);
        let cap = 16.0;
        let start = refine(
            &m,
            &hcs(&m, &HcsConfig::with_cap(cap)).schedule,
            &RefineConfig::new(cap),
        )
        .schedule;
        let mut cfg = AnnealConfig::new(cap);
        cfg.iterations = 1500;
        let out = anneal(&m, &start, &cfg);
        assert!(out.value <= out.start_value + 1e-9);
        assert!(out.schedule.is_complete_for(10));
        let check = evaluate(&m, &out.schedule, Some(cap));
        assert!(check.cap_ok);
    }

    #[test]
    fn improves_a_poor_start() {
        let m = synthetic(8, 5, 4);
        // Pessimal start: everything on the CPU at the floor.
        let mut bad = Schedule::new();
        for i in 0..8 {
            bad.cpu.push(Assignment { job: i, level: 0 });
        }
        let mut cfg = AnnealConfig::new(f64::INFINITY);
        cfg.iterations = 3000;
        let out = anneal(&m, &bad, &cfg);
        assert!(
            out.value < out.start_value * 0.6,
            "anneal should fix an awful start: {} -> {}",
            out.start_value,
            out.value
        );
        assert!(out.schedule.is_complete_for(8));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = synthetic(6, 4, 4);
        let start = hcs(&m, &HcsConfig::uncapped()).schedule;
        let mut cfg = AnnealConfig::new(f64::INFINITY);
        cfg.iterations = 500;
        let a = anneal(&m, &start, &cfg);
        let b = anneal(&m, &start, &cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let m = synthetic(5, 4, 4);
        let start = hcs(&m, &HcsConfig::uncapped()).schedule;
        let mut cfg = AnnealConfig::new(f64::INFINITY);
        cfg.iterations = 0;
        let out = anneal(&m, &start, &cfg);
        assert_eq!(out.schedule, start);
        assert_eq!(out.value, out.start_value);
        assert_eq!(out.accepted, 0);
    }
}
