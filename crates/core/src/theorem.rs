//! The Co-Run Theorem (paper Section IV-A) and the paper's partial-overlap
//! co-run-length arithmetic (the "side note" of Section IV-B).

/// Co-Run Theorem: for two jobs with standalone lengths `l1`, `l2` and
/// fractional co-run degradations `d1`, `d2`, the co-run produces higher
/// throughput than running them sequentially **iff** `l_a * d_a < l_b`,
/// where `a` is the job whose co-run length `l * (1 + d)` is the larger.
///
/// Proof (paper): the co-run makespan is `T_c = l_a (1 + d_a)`, the
/// sequential makespan is `T_s = l_a + l_b`, and
/// `(l_a d_a < l_b) == (T_c < T_s)`.
pub fn corun_beneficial(l1: f64, d1: f64, l2: f64, d2: f64) -> bool {
    debug_assert!(l1 >= 0.0 && l2 >= 0.0 && d1 >= 0.0 && d2 >= 0.0);
    let c1 = l1 * (1.0 + d1);
    let c2 = l2 * (1.0 + d2);
    if c1 >= c2 {
        l1 * d1 < l2
    } else {
        l2 * d2 < l1
    }
}

/// Makespan of co-running the pair (the longer co-run length), assuming
/// both are degraded for their entire execution — the conservative figure
/// the theorem reasons about.
pub fn corun_makespan_conservative(l1: f64, d1: f64, l2: f64, d2: f64) -> f64 {
    (l1 * (1.0 + d1)).max(l2 * (1.0 + d2))
}

/// Completion times of two jobs started together, accounting for partial
/// overlap (paper Section IV-B side note): once the shorter job finishes,
/// the survivor's remaining work proceeds un-degraded.
///
/// With slowdown factors `s = 1 + d`: if job 1 finishes first
/// (`l1 s1 <= l2 s2`), it completes at `t1 = l1 s1`; job 2 then has
/// `l2 - t1 / s2` standalone work left, so `t2 = t1 + l2 - t1 / s2` —
/// exactly the paper's `l1 d1 + l2 - l1 d1 / d2` with `d` as slowdown
/// factors.
pub fn pair_completion(l1: f64, d1: f64, l2: f64, d2: f64) -> (f64, f64) {
    debug_assert!(l1 >= 0.0 && l2 >= 0.0 && d1 >= 0.0 && d2 >= 0.0);
    if l1 <= 0.0 {
        return (0.0, l2);
    }
    if l2 <= 0.0 {
        return (l1, 0.0);
    }
    let s1 = 1.0 + d1;
    let s2 = 1.0 + d2;
    let c1 = l1 * s1;
    let c2 = l2 * s2;
    if c1 <= c2 {
        let t1 = c1;
        let t2 = t1 + (l2 - t1 / s2);
        (t1, t2)
    } else {
        let t2 = c2;
        let t1 = t2 + (l1 - t2 / s1);
        (t1, t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beneficial_when_interference_small() {
        // 10s and 8s jobs with 10% mutual degradation: co-run makespan 11
        // vs sequential 18.
        assert!(corun_beneficial(10.0, 0.1, 8.0, 0.1));
    }

    #[test]
    fn not_beneficial_when_interference_huge() {
        // Degradation so large that the longer co-run exceeds the sum:
        // l1*d1 = 10*1.5 = 15 > l2 = 8.
        assert!(!corun_beneficial(10.0, 1.5, 8.0, 0.2));
    }

    #[test]
    fn boundary_case_equality_is_not_beneficial() {
        // l1*d1 == l2 exactly: T_c == T_s, strict inequality fails.
        assert!(!corun_beneficial(10.0, 0.8, 8.0, 0.0));
    }

    #[test]
    fn theorem_is_symmetric_in_argument_order() {
        for (l1, d1, l2, d2) in [
            (10.0, 0.3, 7.0, 0.6),
            (5.0, 0.05, 50.0, 0.4),
            (20.0, 1.2, 3.0, 0.0),
        ] {
            assert_eq!(
                corun_beneficial(l1, d1, l2, d2),
                corun_beneficial(l2, d2, l1, d1)
            );
        }
    }

    #[test]
    fn theorem_agrees_with_direct_makespan_comparison() {
        // Exhaustive sweep: the predicate must equal T_c < T_s.
        for li in 1..20 {
            for lj in 1..20 {
                for di in 0..10 {
                    for dj in 0..10 {
                        let (l1, l2) = (li as f64, lj as f64);
                        let (d1, d2) = (di as f64 * 0.15, dj as f64 * 0.15);
                        let tc = corun_makespan_conservative(l1, d1, l2, d2);
                        let ts = l1 + l2;
                        assert_eq!(
                            corun_beneficial(l1, d1, l2, d2),
                            tc < ts,
                            "l1={l1} d1={d1} l2={l2} d2={d2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pair_completion_equal_jobs() {
        let (t1, t2) = pair_completion(10.0, 0.2, 10.0, 0.2);
        assert!((t1 - 12.0).abs() < 1e-12);
        assert!((t2 - 12.0).abs() < 1e-12);
    }

    #[test]
    fn pair_completion_short_long() {
        // short job (5s, 10% deg) finishes at 5.5; long job (20s, 25% deg)
        // covered 5.5/1.25 = 4.4s of standalone work, then runs clean.
        let (ts, tl) = pair_completion(5.0, 0.1, 20.0, 0.25);
        assert!((ts - 5.5).abs() < 1e-12);
        assert!((tl - (5.5 + 20.0 - 4.4)).abs() < 1e-9);
    }

    #[test]
    fn pair_completion_survivor_faster_than_conservative() {
        let (_, t2) = pair_completion(5.0, 0.1, 20.0, 0.25);
        assert!(t2 < 20.0 * 1.25);
        assert!(t2 > 20.0, "still slower than fully solo");
    }

    #[test]
    fn pair_completion_zero_length_jobs() {
        assert_eq!(pair_completion(0.0, 0.5, 7.0, 0.5), (0.0, 7.0));
        assert_eq!(pair_completion(7.0, 0.5, 0.0, 0.5), (7.0, 0.0));
    }

    #[test]
    fn pair_completion_no_degradation() {
        let (t1, t2) = pair_completion(8.0, 0.0, 3.0, 0.0);
        assert_eq!((t1, t2), (8.0, 3.0));
    }

    #[test]
    fn pair_completion_symmetric() {
        let (a1, a2) = pair_completion(9.0, 0.3, 14.0, 0.45);
        let (b2, b1) = pair_completion(14.0, 0.45, 9.0, 0.3);
        assert!((a1 - b1).abs() < 1e-12);
        assert!((a2 - b2).abs() < 1e-12);
    }
}
