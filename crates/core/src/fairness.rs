//! Fairness metrics over evaluated schedules.
//!
//! The paper optimizes throughput; much of the related work it cites
//! (Baymax, SMiTe, ...) instead polices *fairness* — no job should pay an
//! outsized price for sharing. These metrics quantify that trade-off for
//! any schedule: per-job slowdown relative to its best standalone run, and
//! the usual aggregate indices.

use crate::evaluate::EvalReport;
use crate::freqgrid::best_solo_run;
use crate::model::CoRunModel;
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Fairness view of one evaluated schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Per-job slowdown: finish time divided by the job's best cap-feasible
    /// standalone time (>= 1 even for the luckiest job, since waiting
    /// counts). `None` if the job never ran.
    pub slowdown: Vec<Option<f64>>,
    /// Largest slowdown.
    pub max_slowdown: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Jain's fairness index over job *rates* (1 / slowdown): 1.0 is
    /// perfectly fair, 1/n is maximally unfair.
    pub jain_index: f64,
}

/// Compute fairness metrics. `finish_s` comes from the evaluator (the
/// per-job completion time includes queueing, which is the user-visible
/// delay in a batch system).
pub fn fairness(model: &dyn CoRunModel, report: &EvalReport, cap_w: f64) -> FairnessReport {
    let n = model.len();
    let mut slowdown: Vec<Option<f64>> = vec![None; n];
    for (i, slot) in slowdown.iter_mut().enumerate() {
        let Some(finish) = report.finish_s.get(i).copied().flatten() else {
            continue;
        };
        let best = Device::ALL
            .iter()
            .filter_map(|&d| best_solo_run(model, i, d, cap_w).map(|(_, t)| t))
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() && best > 0.0 {
            *slot = Some(finish / best);
        }
    }
    let vals: Vec<f64> = slowdown.iter().flatten().copied().collect();
    let max = vals.iter().copied().fold(0.0, f64::max);
    let mean = if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Jain over rates x_i = 1/slowdown_i.
    let jain = if vals.is_empty() {
        1.0
    } else {
        let rates: Vec<f64> = vals.iter().map(|&s| 1.0 / s).collect();
        let sum: f64 = rates.iter().sum();
        let sumsq: f64 = rates.iter().map(|r| r * r).sum();
        (sum * sum) / (rates.len() as f64 * sumsq)
    };
    FairnessReport {
        slowdown,
        max_slowdown: max,
        mean_slowdown: mean,
        jain_index: jain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::schedule::{Assignment, Schedule};

    #[test]
    fn hcs_schedule_fairness_is_sane() {
        let m = synthetic(8, 5, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        let r = evaluate(&m, &out.schedule, None);
        let f = fairness(&m, &r, f64::INFINITY);
        assert!(f.slowdown.iter().all(std::option::Option::is_some));
        // every job's completion includes queueing, so slowdown >= ~1
        assert!(f.slowdown.iter().flatten().all(|&s| s >= 0.99));
        assert!(f.max_slowdown >= f.mean_slowdown);
        assert!(f.jain_index > 0.0 && f.jain_index <= 1.0 + 1e-12);
    }

    #[test]
    fn single_job_is_perfectly_fair() {
        let m = synthetic(1, 4, 4);
        let mut s = Schedule::new();
        s.gpu.push(Assignment { job: 0, level: 3 });
        let r = evaluate(&m, &s, None);
        let f = fairness(&m, &r, f64::INFINITY);
        assert!((f.jain_index - 1.0).abs() < 1e-9);
        // If the GPU at max level is the job's best device, slowdown == 1.
        let best = m
            .standalone(0, Device::Cpu, 3)
            .min(m.standalone(0, Device::Gpu, 3));
        let expect = r.finish_s[0].unwrap() / best;
        assert!((f.slowdown[0].unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn serializing_everything_is_maximally_unfair_to_the_last_job() {
        let m = synthetic(6, 4, 4);
        let mut s = Schedule::new();
        for i in 0..6 {
            s.gpu.push(Assignment { job: i, level: 3 });
        }
        let r = evaluate(&m, &s, None);
        let f = fairness(&m, &r, f64::INFINITY);
        // The last job waits for all the others: slowdown far above 1.
        assert!(f.max_slowdown > 3.0, "got {}", f.max_slowdown);
        assert!(
            f.jain_index < 0.9,
            "serialization is unfair: {}",
            f.jain_index
        );
    }

    #[test]
    fn unscheduled_jobs_have_no_slowdown() {
        let m = synthetic(3, 4, 4);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 3 });
        let r = evaluate(&m, &s, None);
        let f = fairness(&m, &r, f64::INFINITY);
        assert!(f.slowdown[0].is_some());
        assert!(f.slowdown[1].is_none());
        assert!(f.slowdown[2].is_none());
    }
}
