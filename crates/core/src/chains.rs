//! Long-job / short-jobs chain analysis.
//!
//! The paper's introduction singles this interplay out: "a long job may
//! need to co-run with a sequence of short jobs and the lengths of a job
//! vary along with the power allocation and memory contention." This module
//! provides the arithmetic and a solver for exactly that sub-problem: one
//! long job pinned to a device, a set of short jobs to be sequenced on the
//! other device, the long job's remaining work stretching under each
//! partner in turn (the evaluator's partial-overlap rule applied
//! repeatedly).

use crate::model::{CoRunModel, JobId};
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Completion outcome of a chain co-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainOutcome {
    /// When the long job finishes.
    pub long_finish_s: f64,
    /// When each short job finishes, in sequence order.
    pub short_finish_s: Vec<f64>,
    /// Makespan (max of all finishes).
    pub makespan_s: f64,
}

/// Simulate (in the model) the long job `long` on `long_device` at
/// `long_level`, co-running against `sequence` executed in order on the
/// other device at the given levels. Short jobs past the long job's
/// completion run un-degraded; the long job runs un-degraded once the
/// sequence drains.
pub fn chain_completion(
    model: &dyn CoRunModel,
    long: JobId,
    long_device: Device,
    long_level: usize,
    sequence: &[(JobId, usize)],
) -> ChainOutcome {
    let short_device = long_device.other();
    let mut t = 0.0_f64;
    let mut long_remaining = model.standalone(long, long_device, long_level);
    let mut short_finish = Vec::with_capacity(sequence.len());

    for &(short, short_level) in sequence {
        let mut short_remaining = model.standalone(short, short_device, short_level);
        if long_remaining > 1e-12 {
            let s_long = 1.0 + model.degradation(long, long_device, long_level, short, short_level);
            let s_short =
                1.0 + model.degradation(short, short_device, short_level, long, long_level);
            let t_long = long_remaining * s_long;
            let t_short = short_remaining * s_short;
            if t_short <= t_long {
                // Short finishes first: long ran degraded the whole time.
                t += t_short;
                long_remaining -= t_short / s_long;
                short_remaining = 0.0;
            } else {
                // Long finishes first: short continues clean.
                t += t_long;
                short_remaining -= t_long / s_short;
                long_remaining = 0.0;
            }
        }
        // Whatever remains of the short job runs un-degraded.
        t += short_remaining;
        short_finish.push(t);
        // If the long job is done, the remaining shorts just queue up; if
        // the short finished first, loop to the next short with the long
        // still running.
    }
    // Drain the long job after the sequence.
    let long_finish = if long_remaining > 1e-12 {
        // time so far spent co-running; shorts consumed `t` seconds total,
        // but the long job only ran while shorts overlapped it. The long
        // job has been running since t=0 continuously, so its finish is
        // now + remaining clean time.
        t.max(0.0) + long_remaining
    } else {
        // finished during some short's window; reconstruct: it finished
        // when remaining hit zero, which was at the segment boundary time
        // recorded in `t` at that moment. For reporting, recompute below.
        f64::NAN
    };

    // Recompute the long finish exactly with a second pass when it ended
    // mid-sequence (cheap and keeps the hot loop simple).
    let long_finish = if long_finish.is_nan() {
        let mut t2 = 0.0_f64;
        let mut rem = model.standalone(long, long_device, long_level);
        let mut out = 0.0;
        for &(short, short_level) in sequence {
            let s_long = 1.0 + model.degradation(long, long_device, long_level, short, short_level);
            let s_short =
                1.0 + model.degradation(short, short_device, short_level, long, long_level);
            let t_long = rem * s_long;
            let t_short = model.standalone(short, short_device, short_level) * s_short;
            if t_long <= t_short {
                out = t2 + t_long;
                break;
            }
            t2 += t_short;
            rem -= t_short / s_long;
        }
        out
    } else {
        long_finish
    };

    let makespan = short_finish.iter().copied().fold(long_finish, f64::max);
    ChainOutcome {
        long_finish_s: long_finish,
        short_finish_s: short_finish,
        makespan_s: makespan,
    }
}

/// Find the ordering of `shorts` (each with a fixed level) that minimizes
/// the chain makespan against `long`. Exhaustive for up to 8 shorts,
/// greedy (least marginal makespan growth) beyond.
pub fn best_sequence(
    model: &dyn CoRunModel,
    long: JobId,
    long_device: Device,
    long_level: usize,
    shorts: &[(JobId, usize)],
) -> (Vec<(JobId, usize)>, ChainOutcome) {
    if shorts.len() <= 8 {
        let mut best: Option<(Vec<(JobId, usize)>, ChainOutcome)> = None;
        permute(&mut shorts.to_vec(), 0, &mut |perm| {
            let out = chain_completion(model, long, long_device, long_level, perm);
            if best
                .as_ref()
                .is_none_or(|(_, b)| out.makespan_s < b.makespan_s)
            {
                best = Some((perm.to_vec(), out));
            }
        });
        best.expect("non-empty permutation set")
    } else {
        // Greedy: repeatedly append the short job that grows the makespan
        // the least.
        let mut remaining: Vec<(JobId, usize)> = shorts.to_vec();
        let mut seq: Vec<(JobId, usize)> = Vec::with_capacity(shorts.len());
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &cand)| {
                    let mut trial = seq.clone();
                    trial.push(cand);
                    let out = chain_completion(model, long, long_device, long_level, &trial);
                    (i, out.makespan_s)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            seq.push(remaining.remove(idx));
        }
        let out = chain_completion(model, long, long_device, long_level, &seq);
        (seq, out)
    }
}

fn permute<T: Clone>(items: &mut Vec<T>, k: usize, visit: &mut impl FnMut(&[T])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::test_model::synthetic;
    use crate::model::TableModel;
    use crate::schedule::{Assignment, Schedule};

    #[test]
    fn chain_matches_evaluator() {
        // The chain arithmetic must agree with the general evaluator when
        // expressed as a schedule.
        let m = synthetic(5, 4, 4);
        let long = 0;
        let seq = [(1usize, 3usize), (2, 2), (3, 3), (4, 1)];
        let chain = chain_completion(&m, long, Device::Gpu, 3, &seq);
        let mut s = Schedule::new();
        s.gpu.push(Assignment {
            job: long,
            level: 3,
        });
        for &(j, l) in &seq {
            s.cpu.push(Assignment { job: j, level: l });
        }
        let ev = evaluate(&m, &s, None);
        assert!(
            (chain.makespan_s - ev.makespan_s).abs() < 1e-6,
            "chain {} vs evaluator {}",
            chain.makespan_s,
            ev.makespan_s
        );
        assert!(
            (chain.long_finish_s - ev.finish_s[long].unwrap()).abs() < 1e-6,
            "long finish"
        );
        for (k, &(j, _)) in seq.iter().enumerate() {
            assert!(
                (chain.short_finish_s[k] - ev.finish_s[j].unwrap()).abs() < 1e-6,
                "short {j}"
            );
        }
    }

    #[test]
    fn empty_sequence_is_solo() {
        let m = synthetic(3, 4, 4);
        let c = chain_completion(&m, 1, Device::Cpu, 3, &[]);
        assert!((c.long_finish_s - m.standalone(1, Device::Cpu, 3)).abs() < 1e-9);
        assert!(c.short_finish_s.is_empty());
    }

    #[test]
    fn best_sequence_no_worse_than_given_order() {
        let m = synthetic(6, 4, 4);
        let shorts: Vec<(usize, usize)> = (1..6).map(|j| (j, 3)).collect();
        let given = chain_completion(&m, 0, Device::Gpu, 3, &shorts);
        let (seq, best) = best_sequence(&m, 0, Device::Gpu, 3, &shorts);
        assert!(best.makespan_s <= given.makespan_s + 1e-9);
        assert_eq!(seq.len(), 5);
        let mut sorted: Vec<usize> = seq.iter().map(|&(j, _)| j).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5], "a permutation of the shorts");
    }

    #[test]
    fn ordering_matters_with_asymmetric_interference() {
        // Long job 0; short job 1 interferes heavily with it, job 2 hardly.
        // Running the hostile short while the long job still runs hurts;
        // the best order schedules the hostile one late if the long job
        // can finish first.
        let m = TableModel::build(
            vec!["long".into(), "hostile".into(), "gentle".into()],
            2,
            2,
            4.0,
            |i, _d, _f| match i {
                0 => 10.0,
                _ => 8.0,
            },
            |i, _d, _f, j, _g| match (i, j) {
                (0, 1) | (1, 0) => 0.9, // hostile pair
                _ => 0.02,
            },
            |_i, _d, _f| 5.0,
        );
        let a = chain_completion(&m, 0, Device::Gpu, 1, &[(1, 1), (2, 1)]);
        let b = chain_completion(&m, 0, Device::Gpu, 1, &[(2, 1), (1, 1)]);
        assert!(
            b.makespan_s < a.makespan_s,
            "gentle-first {} must beat hostile-first {}",
            b.makespan_s,
            a.makespan_s
        );
        let (seq, _) = best_sequence(&m, 0, Device::Gpu, 1, &[(1, 1), (2, 1)]);
        assert_eq!(seq[0].0, 2, "solver must put the gentle job first");
    }

    #[test]
    fn greedy_path_used_for_large_sets() {
        let m = synthetic(12, 3, 3);
        let shorts: Vec<(usize, usize)> = (1..12).map(|j| (j, 2)).collect();
        let (seq, out) = best_sequence(&m, 0, Device::Gpu, 2, &shorts);
        assert_eq!(seq.len(), 11);
        assert!(out.makespan_s > 0.0);
    }
}
