//! The comparison schedulers of Section VI-A: Random co-scheduling and the
//! system's Default co-scheduling.
//!
//! Neither controls power by itself; at execution time a reactive
//! GPU-biased or CPU-biased governor (in `apu-sim`) trims frequencies when
//! the sampled power exceeds the cap.

use crate::model::{CoRunModel, JobId};
use crate::schedule::{Assignment, Schedule, SoloRun};
use apu_sim::Device;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random co-scheduling: jobs are placed on a random device in a random
/// order; occasionally a job is left to run alone ("it just leaves the idle
/// processor idle as some jobs prefer to be executed alone"). At most one
/// job occupies each device at a time. Frequency levels are left at the
/// maximum — the runtime governor handles the cap.
pub fn random_schedule(model: &dyn CoRunModel, seed: u64, solo_prob: f64) -> Schedule {
    let n = model.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<JobId> = (0..n).collect();
    order.shuffle(&mut rng);
    let kc = model.levels(Device::Cpu) - 1;
    let kg = model.levels(Device::Gpu) - 1;
    let mut s = Schedule::new();
    for job in order {
        let r: f64 = rng.gen();
        if r < solo_prob {
            let device = if rng.gen() { Device::Cpu } else { Device::Gpu };
            let level = match device {
                Device::Cpu => kc,
                Device::Gpu => kg,
            };
            s.solo_tail.push(SoloRun { job, device, level });
        } else if rng.gen() {
            s.cpu.push(Assignment { job, level: kc });
        } else {
            s.gpu.push(Assignment { job, level: kg });
        }
    }
    s
}

/// The Default scheduler's device partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefaultPartition {
    /// Jobs sent to the GPU, in rank order (most GPU-preferring first).
    pub gpu: Vec<JobId>,
    /// Jobs sent to the CPU, in rank order.
    pub cpu: Vec<JobId>,
}

/// Default co-scheduling (paper Section VI-A): rank programs by the ratio
/// of standalone CPU time to GPU time at the highest frequency; the top of
/// the ranking (most GPU-preferring) forms the GPU partition, the rest run
/// on the CPU; the split point minimizes the larger partition's total
/// standalone execution time.
pub fn default_partition(model: &dyn CoRunModel) -> DefaultPartition {
    let n = model.len();
    let kc = model.levels(Device::Cpu) - 1;
    let kg = model.levels(Device::Gpu) - 1;
    let mut ranked: Vec<JobId> = (0..n).collect();
    ranked.sort_by(|&a, &b| {
        let ra = model.standalone(a, Device::Cpu, kc) / model.standalone(a, Device::Gpu, kg);
        let rb = model.standalone(b, Device::Cpu, kc) / model.standalone(b, Device::Gpu, kg);
        rb.total_cmp(&ra) // descending: most GPU-preferring first
    });

    let mut best: Option<(usize, f64)> = None;
    for k in 0..=n {
        let gpu_sum: f64 = ranked[..k]
            .iter()
            .map(|&j| model.standalone(j, Device::Gpu, kg))
            .sum();
        let cpu_sum: f64 = ranked[k..]
            .iter()
            .map(|&j| model.standalone(j, Device::Cpu, kc))
            .sum();
        let longer = gpu_sum.max(cpu_sum);
        if best.is_none_or(|(_, b)| longer < b) {
            best = Some((k, longer));
        }
    }
    let (k, _) = best.expect("at least one split exists");
    DefaultPartition {
        gpu: ranked[..k].to_vec(),
        cpu: ranked[k..].to_vec(),
    }
}

impl DefaultPartition {
    /// Sequential-per-device schedule form (used for model-based
    /// evaluation; the runtime executor instead launches the whole CPU
    /// partition at once, as Linux would, which is what hurts the Default
    /// baseline in the paper's 16-job study).
    pub fn to_schedule(&self, model: &dyn CoRunModel) -> Schedule {
        let kc = model.levels(Device::Cpu) - 1;
        let kg = model.levels(Device::Gpu) - 1;
        Schedule {
            cpu: self
                .cpu
                .iter()
                .map(|&job| Assignment { job, level: kc })
                .collect(),
            gpu: self
                .gpu
                .iter()
                .map(|&job| Assignment { job, level: kg })
                .collect(),
            solo_tail: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::test_model::synthetic;
    use crate::model::TableModel;

    #[test]
    fn random_schedule_complete_and_deterministic() {
        let m = synthetic(10, 5, 4);
        let a = random_schedule(&m, 7, 0.1);
        let b = random_schedule(&m, 7, 0.1);
        let c = random_schedule(&m, 8, 0.1);
        assert!(a.is_complete_for(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedules_vary_in_quality() {
        let m = synthetic(10, 5, 4);
        let spans: Vec<f64> = (0..10)
            .map(|s| evaluate(&m, &random_schedule(&m, s, 0.1), None).makespan_s)
            .collect();
        let min = spans.iter().copied().fold(f64::INFINITY, f64::min);
        let max = spans.iter().copied().fold(0.0, f64::max);
        assert!(max > min * 1.05, "random spread expected: {min}..{max}");
    }

    #[test]
    fn random_uses_max_levels() {
        let m = synthetic(6, 5, 4);
        let s = random_schedule(&m, 3, 0.2);
        for a in &s.cpu {
            assert_eq!(a.level, 4);
        }
        for a in &s.gpu {
            assert_eq!(a.level, 3);
        }
    }

    #[test]
    fn default_partition_ranks_by_ratio() {
        // Job 0 strongly GPU-preferring, job 1 strongly CPU-preferring.
        let m = TableModel::build(
            vec!["g".into(), "c".into()],
            2,
            2,
            4.0,
            |i, d, _f| match (i, d) {
                (0, Device::Cpu) => 30.0,
                (0, Device::Gpu) => 10.0,
                (1, Device::Cpu) => 10.0,
                (1, Device::Gpu) => 30.0,
                _ => unreachable!(),
            },
            |_i, _d, _f, _j, _g| 0.1,
            |_i, _d, _f| 5.0,
        );
        let p = default_partition(&m);
        assert_eq!(p.gpu, vec![0]);
        assert_eq!(p.cpu, vec![1]);
    }

    #[test]
    fn default_partition_balances_longer_side() {
        let m = synthetic(8, 6, 5);
        let p = default_partition(&m);
        assert_eq!(p.gpu.len() + p.cpu.len(), 8);
        let kg = 4;
        let kc = 5;
        let gpu_sum: f64 = p
            .gpu
            .iter()
            .map(|&j| m.standalone(j, Device::Gpu, kg))
            .sum();
        let cpu_sum: f64 = p
            .cpu
            .iter()
            .map(|&j| m.standalone(j, Device::Cpu, kc))
            .sum();
        // moving the boundary job either way must not shrink the longer side
        let longer = gpu_sum.max(cpu_sum);
        for k in 0..=8usize {
            let p2 = DefaultPartition {
                gpu: p.gpu.iter().chain(p.cpu.iter()).copied().take(k).collect(),
                cpu: p.gpu.iter().chain(p.cpu.iter()).copied().skip(k).collect(),
            };
            let g2: f64 = p2
                .gpu
                .iter()
                .map(|&j| m.standalone(j, Device::Gpu, kg))
                .sum();
            let c2: f64 = p2
                .cpu
                .iter()
                .map(|&j| m.standalone(j, Device::Cpu, kc))
                .sum();
            assert!(longer <= g2.max(c2) + 1e-9, "split {k} would be better");
        }
    }

    #[test]
    fn default_schedule_form_is_complete() {
        let m = synthetic(7, 5, 4);
        let p = default_partition(&m);
        let s = p.to_schedule(&m);
        assert!(s.is_complete_for(7));
        assert!(s.solo_tail.is_empty());
    }

    #[test]
    fn zero_solo_probability_never_solos() {
        let m = synthetic(12, 5, 4);
        let s = random_schedule(&m, 11, 0.0);
        assert!(s.solo_tail.is_empty());
    }
}
