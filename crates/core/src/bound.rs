//! Lower bound on the optimal makespan (paper Section IV-B).
//!
//! `T_low = (1/2) * sum_i l'_i`, where per device `p`:
//!
//! * `l'_{i,p}` is the job's minimal cap-feasible co-run time (against the
//!   least-interfering partner over all frequency pairs) when that is less
//!   than twice its minimal cap-feasible standalone time, and twice the
//!   standalone time otherwise (soundness follows from the Co-Run Theorem:
//!   when the best co-run is worse than 2x solo, running solo and "wasting"
//!   the other processor is charged at the solo time itself);
//! * `l'_i = min_p l'_{i,p}`.

use crate::freqgrid::{best_solo_run, feasible_pair_settings};
use crate::model::{CoRunModel, JobId};
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Per-job decomposition of the bound, for reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundReport {
    /// The bound itself, seconds.
    pub t_low_s: f64,
    /// `l'_i` per job.
    pub l_prime_s: Vec<f64>,
    /// A slightly tighter variant: `max(T_low, longest job's best solo
    /// time)` — the makespan can never undercut the longest single job.
    /// (Our extension; the paper reports the plain `T_low`.)
    pub t_low_tight_s: f64,
}

impl BoundReport {
    /// The bound adjusted for `lost_s` seconds of work destroyed by
    /// faults (evicted or failed executions that must re-run). Lost
    /// demand re-enters the two-processor halving, so the bound rises by
    /// `lost_s / 2` — keeping makespan/lower-bound comparisons
    /// consistent in degraded mode.
    pub fn with_lost_work(&self, lost_s: f64) -> f64 {
        self.t_low_s + lost_s.max(0.0) / 2.0
    }
}

/// Best cap-feasible co-run time of job `i` on `device`: minimized over
/// partners `j` and feasible frequency pairs.
fn best_corun_time(model: &dyn CoRunModel, i: JobId, device: Device, cap_w: f64) -> Option<f64> {
    let n = model.len();
    let mut best: Option<f64> = None;
    for j in 0..n {
        if j == i {
            continue;
        }
        let (cpu_job, gpu_job) = match device {
            Device::Cpu => (i, j),
            Device::Gpu => (j, i),
        };
        for (f, g) in feasible_pair_settings(model, cpu_job, gpu_job, cap_w) {
            let own_level = match device {
                Device::Cpu => f,
                Device::Gpu => g,
            };
            let co_level = match device {
                Device::Cpu => g,
                Device::Gpu => f,
            };
            let t = model.standalone(i, device, own_level)
                * (1.0 + model.degradation(i, device, own_level, j, co_level));
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        }
    }
    best
}

/// Compute the lower bound and its per-job decomposition.
pub fn lower_bound(model: &dyn CoRunModel, cap_w: f64) -> BoundReport {
    let n = model.len();
    let mut l_prime = Vec::with_capacity(n);
    let mut longest_solo: f64 = 0.0;
    for i in 0..n {
        let mut per_dev: Vec<f64> = Vec::with_capacity(2);
        for device in Device::ALL {
            let solo = best_solo_run(model, i, device, cap_w).map(|(_, t)| t);
            let corun = best_corun_time(model, i, device, cap_w);
            let v = match (corun, solo) {
                (Some(c), Some(s)) => c.min(2.0 * s),
                (Some(c), None) => c,
                (None, Some(s)) => 2.0 * s,
                (None, None) => continue,
            };
            per_dev.push(v);
            if let Some(s) = solo {
                // track for the tight variant
                let _ = s;
            }
        }
        let li = per_dev.iter().copied().fold(f64::INFINITY, f64::min);
        let li = if li.is_finite() { li } else { 0.0 };
        l_prime.push(li);
        let solo_i = Device::ALL
            .iter()
            .filter_map(|&d| best_solo_run(model, i, d, cap_w).map(|(_, t)| t))
            .fold(f64::INFINITY, f64::min);
        if solo_i.is_finite() {
            longest_solo = longest_solo.max(solo_i);
        }
    }
    let t_low = 0.5 * l_prime.iter().sum::<f64>();
    BoundReport {
        t_low_s: t_low,
        l_prime_s: l_prime,
        t_low_tight_s: t_low.max(longest_solo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;
    use crate::refine::{refine, RefineConfig};

    #[test]
    fn bound_below_hcs_makespan() {
        for n in [4, 8, 12] {
            let m = synthetic(n, 6, 5);
            let cap = 18.0;
            let b = lower_bound(&m, cap);
            let out = hcs(&m, &HcsConfig::with_cap(cap));
            let r = refine(&m, &out.schedule, &RefineConfig::new(cap));
            let span = evaluate(&m, &r.schedule, Some(cap)).makespan_s;
            assert!(
                b.t_low_s <= span + 1e-6,
                "n={n}: bound {} above achieved {span}",
                b.t_low_s
            );
            assert!(b.t_low_tight_s >= b.t_low_s);
            assert!(b.t_low_tight_s <= span + 1e-6);
        }
    }

    #[test]
    fn bound_positive_for_nonempty_batch() {
        let m = synthetic(5, 4, 4);
        let b = lower_bound(&m, f64::INFINITY);
        assert!(b.t_low_s > 0.0);
        assert_eq!(b.l_prime_s.len(), 5);
        assert!(b.l_prime_s.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn lost_work_raises_bound_by_half() {
        let m = synthetic(5, 4, 4);
        let b = lower_bound(&m, f64::INFINITY);
        assert_eq!(b.with_lost_work(0.0), b.t_low_s);
        assert!((b.with_lost_work(8.0) - (b.t_low_s + 4.0)).abs() < 1e-12);
        // Negative "lost" work (clock skew artifacts) never lowers it.
        assert_eq!(b.with_lost_work(-3.0), b.t_low_s);
    }

    #[test]
    fn tighter_cap_raises_bound() {
        let m = synthetic(8, 6, 5);
        let loose = lower_bound(&m, 30.0).t_low_s;
        let tight = lower_bound(&m, 10.0).t_low_s;
        assert!(
            tight >= loose - 1e-9,
            "a tighter cap cannot lower the bound: {tight} vs {loose}"
        );
    }

    #[test]
    fn friendly_pair_bound_uses_corun_time() {
        // Two identical friendly jobs: best co-run time l*(1+d) < 2l, so
        // l' = l*(1+d) and T_low = l*(1+d) — the true optimum.
        let m = crate::model::TableModel::build(
            vec!["a".into(), "b".into()],
            2,
            2,
            4.0,
            |_i, _d, _f| 10.0,
            |_i, _d, _f, _j, _g| 0.2,
            |_i, _d, _f| 5.0,
        );
        let b = lower_bound(&m, f64::INFINITY);
        assert!((b.t_low_s - 12.0).abs() < 1e-9, "got {}", b.t_low_s);
    }

    #[test]
    fn hostile_pair_bound_uses_double_solo() {
        // Degradation 150%: co-run time 25 > 2*10, so l' = 20 each,
        // T_low = 20 — matching sequential execution.
        let m = crate::model::TableModel::build(
            vec!["a".into(), "b".into()],
            2,
            2,
            4.0,
            |_i, _d, _f| 10.0,
            |_i, _d, _f, _j, _g| 1.5,
            |_i, _d, _f| 5.0,
        );
        let b = lower_bound(&m, f64::INFINITY);
        assert!((b.t_low_s - 20.0).abs() < 1e-9, "got {}", b.t_low_s);
    }
}
