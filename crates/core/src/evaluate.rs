//! Model-based schedule evaluation: predicted makespan, per-job finish
//! times, and power-cap compliance.
//!
//! The evaluator replays a [`Schedule`] against a [`CoRunModel`] as a
//! sequence of steady segments. Within a segment the device occupancy is
//! fixed, so each running job progresses at `1 / (1 + d)` of its standalone
//! rate, where `d` comes from the model for the current pair and levels;
//! when either job completes, the next segment begins (this generalizes the
//! partial-overlap arithmetic of the paper's Section IV-B side note to whole
//! queues).

use crate::model::{CoRunModel, JobId};
use crate::schedule::Schedule;
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// One steady segment of the evaluated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start, seconds.
    pub t0: f64,
    /// Segment end, seconds.
    pub t1: f64,
    /// `(job, level)` on the CPU, if any.
    pub cpu: Option<(JobId, usize)>,
    /// `(job, level)` on the GPU, if any.
    pub gpu: Option<(JobId, usize)>,
    /// Predicted package power over the segment, watts.
    pub power_w: f64,
}

/// Result of evaluating a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Predicted makespan, seconds.
    pub makespan_s: f64,
    /// Per-job predicted finish time (`None` if the job was not scheduled).
    pub finish_s: Vec<Option<f64>>,
    /// Peak predicted power across segments, watts.
    pub peak_power_w: f64,
    /// Whether every segment fit under the cap (always true without a cap).
    pub cap_ok: bool,
    /// The steady segments of the timeline.
    pub segments: Vec<Segment>,
}

struct Active {
    job: JobId,
    level: usize,
    /// Remaining work in standalone-seconds.
    remaining: f64,
}

/// Evaluate `schedule` under `model`; if `cap_w` is given, segments whose
/// predicted power exceeds it are flagged (`cap_ok = false`).
pub fn evaluate(model: &dyn CoRunModel, schedule: &Schedule, cap_w: Option<f64>) -> EvalReport {
    const EPS: f64 = 1e-9;
    let n = model.len();
    let mut finish: Vec<Option<f64>> = vec![None; n];
    let mut segments = Vec::new();
    let mut peak: f64 = 0.0;
    let mut cap_ok = true;
    let mut t = 0.0_f64;

    let mut cpu_q = schedule.cpu.iter();
    let mut gpu_q = schedule.gpu.iter();
    let mut cpu: Option<Active> = None;
    let mut gpu: Option<Active> = None;

    loop {
        if cpu.is_none() {
            cpu = cpu_q.next().map(|a| Active {
                job: a.job,
                level: a.level,
                remaining: model.standalone(a.job, Device::Cpu, a.level),
            });
        }
        if gpu.is_none() {
            gpu = gpu_q.next().map(|a| Active {
                job: a.job,
                level: a.level,
                remaining: model.standalone(a.job, Device::Gpu, a.level),
            });
        }
        if cpu.is_none() && gpu.is_none() {
            break;
        }

        // Slowdown factors for the current occupancy.
        let (s_cpu, s_gpu) = match (&cpu, &gpu) {
            (Some(c), Some(g)) => (
                1.0 + model.degradation(c.job, Device::Cpu, c.level, g.job, g.level),
                1.0 + model.degradation(g.job, Device::Gpu, g.level, c.job, c.level),
            ),
            _ => (1.0, 1.0),
        };

        // Time until the nearest completion.
        let dt_cpu = cpu.as_ref().map(|c| c.remaining * s_cpu);
        let dt_gpu = gpu.as_ref().map(|g| g.remaining * s_gpu);
        let dt = match (dt_cpu, dt_gpu) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!(),
        };

        let power = model.corun_power(
            cpu.as_ref().map(|c| (c.job, c.level)),
            gpu.as_ref().map(|g| (g.job, g.level)),
        );
        peak = peak.max(power);
        if let Some(cap) = cap_w {
            if power > cap + 1e-9 {
                cap_ok = false;
            }
        }
        segments.push(Segment {
            t0: t,
            t1: t + dt,
            cpu: cpu.as_ref().map(|c| (c.job, c.level)),
            gpu: gpu.as_ref().map(|g| (g.job, g.level)),
            power_w: power,
        });

        t += dt;
        if let Some(c) = &mut cpu {
            c.remaining -= dt / s_cpu;
            if c.remaining <= EPS {
                finish[c.job] = Some(t);
                cpu = None;
            }
        }
        if let Some(g) = &mut gpu {
            g.remaining -= dt / s_gpu;
            if g.remaining <= EPS {
                finish[g.job] = Some(t);
                gpu = None;
            }
        }
    }

    // Solo tail: strictly sequential, one device busy at a time.
    for s in &schedule.solo_tail {
        let l = model.standalone(s.job, s.device, s.level);
        let power = match s.device {
            Device::Cpu => model.corun_power(Some((s.job, s.level)), None),
            Device::Gpu => model.corun_power(None, Some((s.job, s.level))),
        };
        peak = peak.max(power);
        if let Some(cap) = cap_w {
            if power > cap + 1e-9 {
                cap_ok = false;
            }
        }
        segments.push(Segment {
            t0: t,
            t1: t + l,
            cpu: (s.device == Device::Cpu).then_some((s.job, s.level)),
            gpu: (s.device == Device::Gpu).then_some((s.job, s.level)),
            power_w: power,
        });
        t += l;
        finish[s.job] = Some(t);
    }

    EvalReport {
        makespan_s: t,
        finish_s: finish,
        peak_power_w: peak,
        cap_ok,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model::synthetic;
    use crate::model::TableModel;
    use crate::schedule::{Assignment, SoloRun};
    use crate::theorem::pair_completion;

    fn flat_model(n: usize, time: f64, deg: f64) -> TableModel {
        TableModel::build(
            (0..n).map(|i| format!("j{i}")).collect(),
            2,
            2,
            4.0,
            move |_i, _d, f| time * if f == 1 { 1.0 } else { 2.0 },
            move |_i, _d, _f, _j, _g| deg,
            |_i, _d, f| 5.0 + f as f64 * 4.0,
        )
    }

    #[test]
    fn empty_schedule_is_zero() {
        let m = flat_model(2, 10.0, 0.1);
        let r = evaluate(&m, &Schedule::new(), None);
        assert_eq!(r.makespan_s, 0.0);
        assert!(r.segments.is_empty());
        assert!(r.cap_ok);
    }

    #[test]
    fn single_solo_job() {
        let m = flat_model(1, 10.0, 0.5);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 1 });
        let r = evaluate(&m, &s, None);
        assert!((r.makespan_s - 10.0).abs() < 1e-9);
        assert_eq!(r.finish_s[0], Some(r.makespan_s));
    }

    #[test]
    fn pair_matches_theorem_arithmetic() {
        let m = flat_model(2, 10.0, 0.25);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 1 });
        s.gpu.push(Assignment { job: 1, level: 1 });
        let r = evaluate(&m, &s, None);
        let (t1, t2) = pair_completion(10.0, 0.25, 10.0, 0.25);
        assert!((r.finish_s[0].unwrap() - t1).abs() < 1e-9);
        assert!((r.finish_s[1].unwrap() - t2).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_pair_of_unequal_lengths() {
        // job 0 at level 0 is 20s, job 1 at level 1 is 10s, deg 0.25 each.
        let m = flat_model(2, 10.0, 0.25);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 0 });
        s.gpu.push(Assignment { job: 1, level: 1 });
        let r = evaluate(&m, &s, None);
        let (t_long, t_short) = pair_completion(20.0, 0.25, 10.0, 0.25);
        assert!((r.finish_s[1].unwrap() - t_short).abs() < 1e-9);
        assert!((r.finish_s[0].unwrap() - t_long).abs() < 1e-9);
        assert!((r.makespan_s - t_long).abs() < 1e-9);
    }

    #[test]
    fn queue_succession() {
        // CPU: a 10s then a 20s job; GPU: one 20s job, all with deg 0.25.
        // Segments: (0,2) co-run until 12.5; (1,2) co-run until 2 ends at
        // 25; then job 1's remaining 10 standalone-seconds run clean.
        let m = flat_model(3, 10.0, 0.25);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 1 });
        s.cpu.push(Assignment { job: 1, level: 0 });
        s.gpu.push(Assignment { job: 2, level: 0 });
        let r = evaluate(&m, &s, None);
        assert_eq!(r.segments.len(), 3);
        assert!((r.finish_s[0].unwrap() - 12.5).abs() < 1e-9);
        assert!((r.finish_s[2].unwrap() - 25.0).abs() < 1e-9);
        assert!((r.makespan_s - 35.0).abs() < 1e-9);
        assert!(r.finish_s.iter().all(std::option::Option::is_some));
    }

    #[test]
    fn solo_tail_is_sequential_and_uncontended() {
        let m = flat_model(2, 10.0, 0.9);
        let mut s = Schedule::new();
        s.solo_tail.push(SoloRun {
            job: 0,
            device: Device::Cpu,
            level: 1,
        });
        s.solo_tail.push(SoloRun {
            job: 1,
            device: Device::Gpu,
            level: 1,
        });
        let r = evaluate(&m, &s, None);
        assert!((r.makespan_s - 20.0).abs() < 1e-9);
        assert_eq!(r.finish_s[0], Some(10.0));
        assert_eq!(r.finish_s[1], Some(20.0));
    }

    #[test]
    fn cap_violation_detected() {
        let m = flat_model(2, 10.0, 0.1);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 1 });
        s.gpu.push(Assignment { job: 1, level: 1 });
        // pair power = 9 + 9 - 4 = 14
        let ok = evaluate(&m, &s, Some(14.5));
        assert!(ok.cap_ok);
        assert!((ok.peak_power_w - 14.0).abs() < 1e-9);
        let bad = evaluate(&m, &s, Some(13.5));
        assert!(!bad.cap_ok);
    }

    #[test]
    fn lower_levels_fit_cap() {
        let m = flat_model(2, 10.0, 0.1);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 0 });
        s.gpu.push(Assignment { job: 1, level: 0 });
        // pair power = 5 + 5 - 4 = 6
        let r = evaluate(&m, &s, Some(13.5));
        assert!(r.cap_ok);
        assert!(r.makespan_s > 20.0, "low levels run slower");
    }

    #[test]
    fn segments_tile_the_timeline() {
        let m = synthetic(6, 4, 4);
        let mut s = Schedule::new();
        for i in 0..3 {
            s.cpu.push(Assignment { job: i, level: 3 });
        }
        for i in 3..6 {
            s.gpu.push(Assignment { job: i, level: 3 });
        }
        let r = evaluate(&m, &s, None);
        assert!(!r.segments.is_empty());
        assert!((r.segments[0].t0 - 0.0).abs() < 1e-12);
        for w in r.segments.windows(2) {
            assert!(
                (w[0].t1 - w[1].t0).abs() < 1e-9,
                "segments must be contiguous"
            );
        }
        assert!((r.segments.last().unwrap().t1 - r.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_max_finish() {
        let m = synthetic(5, 4, 4);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 0, level: 2 });
        s.cpu.push(Assignment { job: 1, level: 3 });
        s.gpu.push(Assignment { job: 2, level: 1 });
        s.gpu.push(Assignment { job: 3, level: 3 });
        s.solo_tail.push(SoloRun {
            job: 4,
            device: Device::Gpu,
            level: 3,
        });
        let r = evaluate(&m, &s, None);
        let max_finish = r.finish_s.iter().flatten().fold(0.0_f64, |a, &b| a.max(b));
        assert!((r.makespan_s - max_finish).abs() < 1e-9);
    }
}
