//! The co-run model abstraction the scheduling algorithms consume.
//!
//! Section IV of the paper assumes "the availability of accurate co-run
//! performance and power models at each frequency level": the standalone
//! times `l_{i,p,f}`, the co-run degradations `d_{i,p,f}^{j,g}`, and pair
//! power. [`CoRunModel`] is that interface; [`TableModel`] is a dense
//! materialization of it (filled either from the predictive models or from
//! ground-truth measurements, which is how the algorithms stay agnostic to
//! where the numbers come from).

use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Identifier of a job within a batch: its index.
pub type JobId = usize;

/// Everything the co-scheduling algorithms need to know about a batch.
///
/// Degradations are *fractions* (0.25 = 25% slower). The convention for
/// [`CoRunModel::degradation`] is: job `i` runs on `device` at level
/// `f_own` of that device's ladder while job `j` runs on the *other*
/// device at level `g_other` of the other ladder.
pub trait CoRunModel {
    /// Number of jobs in the batch.
    fn len(&self) -> usize;

    /// Whether the batch is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Job name (diagnostics only).
    fn name(&self, i: JobId) -> &str;

    /// Number of frequency levels on `device`.
    fn levels(&self, device: Device) -> usize;

    /// `l_{i,p,f}`: standalone time of job `i` on `device` at level `f`.
    fn standalone(&self, i: JobId, device: Device, f: usize) -> f64;

    /// `d_{i,p,f}^{j,g}`: fractional degradation of job `i` on `device` at
    /// level `f_own` when job `j` runs on the other device at `g_other`.
    fn degradation(&self, i: JobId, device: Device, f_own: usize, j: JobId, g_other: usize) -> f64;

    /// Package power when job `i` runs alone on `device` at level `f`.
    fn solo_power(&self, i: JobId, device: Device, f: usize) -> f64;

    /// Package power with both devices idle.
    fn idle_power(&self) -> f64;

    /// Package power for an arbitrary occupancy: an optional `(job, level)`
    /// on each device. The default composes standalone powers the way the
    /// paper's power model does (sum minus double-counted idle).
    fn corun_power(&self, cpu: Option<(JobId, usize)>, gpu: Option<(JobId, usize)>) -> f64 {
        match (cpu, gpu) {
            (Some((i, f)), Some((j, g))) => {
                self.solo_power(i, Device::Cpu, f) + self.solo_power(j, Device::Gpu, g)
                    - self.idle_power()
            }
            (Some((i, f)), None) => self.solo_power(i, Device::Cpu, f),
            (None, Some((j, g))) => self.solo_power(j, Device::Gpu, g),
            (None, None) => self.idle_power(),
        }
    }

    /// Co-run time of job `i`: `l * (1 + d)`.
    fn corun_time(&self, i: JobId, device: Device, f_own: usize, j: JobId, g_other: usize) -> f64 {
        self.standalone(i, device, f_own) * (1.0 + self.degradation(i, device, f_own, j, g_other))
    }
}

/// A dense, owned co-run model.
///
/// Layout: `standalone[i][device][level]`, `deg` holds the CPU-side and
/// GPU-side degradation tables for every ordered pair and level pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableModel {
    names: Vec<String>,
    k_cpu: usize,
    k_gpu: usize,
    /// `standalone_cpu[i * k_cpu + f]`
    standalone_cpu: Vec<f64>,
    /// `standalone_gpu[i * k_gpu + g]`
    standalone_gpu: Vec<f64>,
    /// degradation of CPU job `i` at `f` against GPU job `j` at `g`:
    /// `deg_cpu[((i * n + j) * k_cpu + f) * k_gpu + g]`
    deg_cpu: Vec<f64>,
    /// degradation of GPU job `i` at `g` against CPU job `j` at `f`:
    /// `deg_gpu[((i * n + j) * k_gpu + g) * k_cpu + f]`
    deg_gpu: Vec<f64>,
    /// `power_cpu[i * k_cpu + f]`: solo package power
    power_cpu: Vec<f64>,
    /// `power_gpu[i * k_gpu + g]`
    power_gpu: Vec<f64>,
    idle_power_w: f64,
}

impl TableModel {
    /// Build a table model by evaluating closures over the full index space.
    ///
    /// * `standalone(i, device, level)`
    /// * `degradation(i, device, f_own, j, g_other)` — same convention as
    ///   the trait
    /// * `solo_power(i, device, level)`
    pub fn build(
        names: Vec<String>,
        k_cpu: usize,
        k_gpu: usize,
        idle_power_w: f64,
        mut standalone: impl FnMut(JobId, Device, usize) -> f64,
        mut degradation: impl FnMut(JobId, Device, usize, JobId, usize) -> f64,
        mut solo_power: impl FnMut(JobId, Device, usize) -> f64,
    ) -> Self {
        let n = names.len();
        assert!(k_cpu >= 1 && k_gpu >= 1);
        let mut standalone_cpu = vec![0.0; n * k_cpu];
        let mut standalone_gpu = vec![0.0; n * k_gpu];
        let mut power_cpu = vec![0.0; n * k_cpu];
        let mut power_gpu = vec![0.0; n * k_gpu];
        for i in 0..n {
            for f in 0..k_cpu {
                standalone_cpu[i * k_cpu + f] = standalone(i, Device::Cpu, f);
                power_cpu[i * k_cpu + f] = solo_power(i, Device::Cpu, f);
            }
            for g in 0..k_gpu {
                standalone_gpu[i * k_gpu + g] = standalone(i, Device::Gpu, g);
                power_gpu[i * k_gpu + g] = solo_power(i, Device::Gpu, g);
            }
        }
        let mut deg_cpu = vec![0.0; n * n * k_cpu * k_gpu];
        let mut deg_gpu = vec![0.0; n * n * k_gpu * k_cpu];
        for i in 0..n {
            for j in 0..n {
                for f in 0..k_cpu {
                    for g in 0..k_gpu {
                        deg_cpu[((i * n + j) * k_cpu + f) * k_gpu + g] =
                            degradation(i, Device::Cpu, f, j, g);
                        deg_gpu[((i * n + j) * k_gpu + g) * k_cpu + f] =
                            degradation(i, Device::Gpu, g, j, f);
                    }
                }
            }
        }
        TableModel {
            names,
            k_cpu,
            k_gpu,
            standalone_cpu,
            standalone_gpu,
            deg_cpu,
            deg_gpu,
            power_cpu,
            power_gpu,
            idle_power_w,
        }
    }
}

impl CoRunModel for TableModel {
    fn len(&self) -> usize {
        self.names.len()
    }

    fn name(&self, i: JobId) -> &str {
        &self.names[i]
    }

    fn levels(&self, device: Device) -> usize {
        match device {
            Device::Cpu => self.k_cpu,
            Device::Gpu => self.k_gpu,
        }
    }

    fn standalone(&self, i: JobId, device: Device, f: usize) -> f64 {
        match device {
            Device::Cpu => self.standalone_cpu[i * self.k_cpu + f],
            Device::Gpu => self.standalone_gpu[i * self.k_gpu + g_idx(f)],
        }
    }

    fn degradation(&self, i: JobId, device: Device, f_own: usize, j: JobId, g_other: usize) -> f64 {
        let n = self.names.len();
        match device {
            Device::Cpu => self.deg_cpu[((i * n + j) * self.k_cpu + f_own) * self.k_gpu + g_other],
            Device::Gpu => self.deg_gpu[((i * n + j) * self.k_gpu + f_own) * self.k_cpu + g_other],
        }
    }

    fn solo_power(&self, i: JobId, device: Device, f: usize) -> f64 {
        match device {
            Device::Cpu => self.power_cpu[i * self.k_cpu + f],
            Device::Gpu => self.power_gpu[i * self.k_gpu + f],
        }
    }

    fn idle_power(&self) -> f64 {
        self.idle_power_w
    }
}

#[inline]
fn g_idx(g: usize) -> usize {
    g
}

#[cfg(test)]
pub(crate) mod test_model {
    use super::*;

    /// A tiny synthetic model for algorithm tests: `n` jobs, `kc`/`kg`
    /// levels. Standalone time scales inversely with level; degradation is
    /// proportional to the product of both jobs' "memory weights"; power is
    /// linear in levels.
    pub fn synthetic(n: usize, kc: usize, kg: usize) -> TableModel {
        // Per-job character: (cpu base time, gpu base time, memory weight)
        let base: Vec<(f64, f64, f64)> = (0..n)
            .map(|i| {
                let phase = i as f64 * 0.7;
                (
                    30.0 + 25.0 * (phase.sin() + 1.0),
                    25.0 + 20.0 * (phase.cos() + 1.0),
                    0.15 + 0.8 * ((i * 37 % 10) as f64 / 10.0),
                )
            })
            .collect();
        let names = (0..n).map(|i| format!("job{i}")).collect();
        let b2 = base.clone();
        let b3 = base.clone();
        TableModel::build(
            names,
            kc,
            kg,
            4.5,
            move |i, d, f| {
                let (tc, tg, _) = base[i];
                let (t, k) = match d {
                    Device::Cpu => (tc, kc),
                    Device::Gpu => (tg, kg),
                };
                // frequency scaling: lowest level is ~2.2x slower
                let rel = 0.45 + 0.55 * f as f64 / (k - 1) as f64;
                t / rel
            },
            move |i, _d, _f, j, _g| {
                let wi = b2[i].2;
                let wj = b2[j].2;
                (wi * wj * 0.6).min(0.9)
            },
            move |i, d, f| {
                let w = b3[i].2;
                let k = match d {
                    Device::Cpu => kc,
                    Device::Gpu => kg,
                };
                let rel = (f as f64 + 1.0) / k as f64;
                4.5 + (3.0 + 6.0 * w) * rel * rel + 4.0 * rel
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_model::synthetic;
    use super::*;

    #[test]
    fn table_roundtrip() {
        let m = synthetic(4, 6, 5);
        assert_eq!(m.len(), 4);
        assert_eq!(m.levels(Device::Cpu), 6);
        assert_eq!(m.levels(Device::Gpu), 5);
        assert_eq!(m.name(2), "job2");
        assert!(!m.is_empty());
    }

    #[test]
    fn standalone_monotone_in_level() {
        let m = synthetic(3, 8, 6);
        for i in 0..3 {
            for d in Device::ALL {
                for f in 1..m.levels(d) {
                    assert!(m.standalone(i, d, f) < m.standalone(i, d, f - 1));
                }
            }
        }
    }

    #[test]
    fn corun_time_includes_degradation() {
        let m = synthetic(3, 4, 4);
        let l = m.standalone(0, Device::Cpu, 3);
        let d = m.degradation(0, Device::Cpu, 3, 1, 2);
        assert!((m.corun_time(0, Device::Cpu, 3, 1, 2) - l * (1.0 + d)).abs() < 1e-12);
    }

    #[test]
    fn corun_power_composition() {
        let m = synthetic(3, 4, 4);
        let p = m.corun_power(Some((0, 3)), Some((1, 2)));
        let expect =
            m.solo_power(0, Device::Cpu, 3) + m.solo_power(1, Device::Gpu, 2) - m.idle_power();
        assert!((p - expect).abs() < 1e-12);
        assert_eq!(m.corun_power(None, None), m.idle_power());
        assert_eq!(
            m.corun_power(Some((2, 1)), None),
            m.solo_power(2, Device::Cpu, 1)
        );
    }

    #[test]
    fn degradation_table_orientation() {
        // deg(i on CPU at f vs j at g) must be retrievable consistently with
        // the build closure's arguments.
        let names = vec!["a".into(), "b".into()];
        let m = TableModel::build(
            names,
            3,
            2,
            4.0,
            |_i, _d, _f| 10.0,
            |i, d, f_own, j, g_other| {
                // encode arguments uniquely
                (i * 1000 + j * 100 + f_own * 10 + g_other) as f64
                    + match d {
                        Device::Cpu => 0.0,
                        Device::Gpu => 0.5,
                    }
            },
            |_i, _d, _f| 5.0,
        );
        assert_eq!(m.degradation(1, Device::Cpu, 2, 0, 1), 1021.0);
        assert_eq!(m.degradation(0, Device::Gpu, 1, 1, 2), 112.5);
    }
}
