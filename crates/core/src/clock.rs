//! Deterministic time and randomness sources for decision paths.
//!
//! The online scheduler must never read ambient wall-clock time or
//! entropy inside a decision path: every input that can change a
//! scheduling outcome has to flow through the journal so `corun replay`
//! can re-execute a recorded run bit-identically (see
//! `docs/REPLAY.md`). This module provides the two sanctioned sources:
//!
//! - [`Clock`] — monotonic seconds since an origin. [`WallClock`] reads
//!   the OS monotonic clock and is constructed once at the I/O edge
//!   (daemon startup); [`ManualClock`] is a hand-advanced clock for
//!   tests and replay harnesses.
//! - [`DetRng`] — a seeded splitmix64 stream, the same finalizer used
//!   by `RetryPolicy::backoff_s` and the fleet placement ring, so
//!   every draw is a pure function of the seed.
//!
//! The `SRV011` source lint (`corun lint --wall-clock`) enforces that
//! `Instant::now`/`SystemTime::now`/`thread_rng` appear only on lines
//! carrying an explicit `corun-lint: allow(wall-clock)` marker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source measured in seconds since an arbitrary
/// origin. Decision paths receive a `&dyn Clock` (or an
/// `Arc<dyn Clock>`) instead of calling `Instant::now()` directly, so
/// tests and replay can substitute a deterministic clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Seconds elapsed since this clock's origin. Must be monotonic
    /// non-decreasing.
    fn now_s(&self) -> f64;
}

/// The production clock: anchored to an [`Instant`] captured at
/// construction time (the I/O edge), after which `now_s` is a pure
/// elapsed-seconds read.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Capture the origin now. Construct this once, at startup.
    #[must_use]
    pub fn new() -> Self {
        // corun-lint: allow(wall-clock) — this is the one sanctioned wall-clock read.
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        // corun-lint: allow(wall-clock) — elapsed read against the captured origin.
        self.origin.elapsed().as_secs_f64()
    }
}

/// A hand-advanced clock for tests and deterministic harnesses. Shared
/// clones observe the same time; `advance`/`set` move it forward.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    // f64 seconds stored as IEEE-754 bits so the clock is lock-free
    // and clonable across threads.
    bits: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at `t = 0 s`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `dt_s` seconds (negative deltas are ignored:
    /// the clock never moves backwards).
    pub fn advance(&self, dt_s: f64) {
        if dt_s > 0.0 {
            self.set(self.now_s() + dt_s);
        }
    }

    /// Jump the clock to `t_s` seconds (only forward; earlier times are
    /// ignored to preserve monotonicity).
    pub fn set(&self, t_s: f64) {
        if t_s > self.now_s() {
            self.bits.store(t_s.to_bits(), Ordering::SeqCst);
        }
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

/// Deterministic splitmix64 random stream. Every value is a pure
/// function of the seed and draw index, so a seed recorded in a spec or
/// journal reproduces the exact sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the stream. Equal seeds yield equal sequences forever.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next draw mapped to `[0, 1)` with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derive an independent child stream (one per shard, one per
    /// retry loop, ...). The child's sequence is a pure function of the
    /// parent's seed and draw position, so fan-out stays deterministic
    /// without the consumers contending over one stream.
    pub fn split(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_and_never_rewinds() {
        let c = ManualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.5);
        assert_eq!(c.now_s(), 2.5);
        c.advance(-1.0);
        assert_eq!(c.now_s(), 2.5);
        c.set(1.0); // backwards jump ignored
        assert_eq!(c.now_s(), 2.5);
        c.set(10.0);
        assert_eq!(c.now_s(), 10.0);
        let shared = c.clone();
        shared.advance(1.0);
        assert_eq!(c.now_s(), 11.0);
    }

    #[test]
    fn det_rng_is_reproducible_and_seed_sensitive() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let mut c = DetRng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
