//! Enumeration of power-cap-feasible frequency settings.
//!
//! Under a cap, the algorithm "traverses all possible frequency settings
//! that satisfy the power cap requirement" (paper Section IV-A.2). Because
//! power depends on which jobs run (activity differs), feasibility is a
//! property of a *(pair, setting)* combination, not of the setting alone.

use crate::model::{CoRunModel, JobId};
use apu_sim::Device;

/// Iterator-free enumeration of `(f_cpu, g_gpu)` level pairs whose predicted
/// pair power fits under `cap_w` for the given occupancy.
pub fn feasible_pair_settings(
    model: &dyn CoRunModel,
    cpu_job: JobId,
    gpu_job: JobId,
    cap_w: f64,
) -> Vec<(usize, usize)> {
    let kc = model.levels(Device::Cpu);
    let kg = model.levels(Device::Gpu);
    let mut out = Vec::new();
    for f in 0..kc {
        for g in 0..kg {
            if model.corun_power(Some((cpu_job, f)), Some((gpu_job, g))) <= cap_w {
                out.push((f, g));
            }
        }
    }
    out
}

/// The highest level at which `job` can run *alone* on `device` under the
/// cap; `None` if even the lowest level violates it.
pub fn best_solo_level(
    model: &dyn CoRunModel,
    job: JobId,
    device: Device,
    cap_w: f64,
) -> Option<usize> {
    let k = model.levels(device);
    (0..k)
        .rev()
        .find(|&f| solo_power(model, job, device, f) <= cap_w)
}

fn solo_power(model: &dyn CoRunModel, job: JobId, device: Device, f: usize) -> f64 {
    match device {
        Device::Cpu => model.corun_power(Some((job, f)), None),
        Device::Gpu => model.corun_power(None, Some((job, f))),
    }
}

/// The fastest solo execution of `job` on `device` under the cap:
/// `(level, time)`. With monotone power/time ladders this is the highest
/// feasible level, but the search is robust to non-monotone profiles.
pub fn best_solo_run(
    model: &dyn CoRunModel,
    job: JobId,
    device: Device,
    cap_w: f64,
) -> Option<(usize, f64)> {
    let k = model.levels(device);
    (0..k)
        .filter(|&f| solo_power(model, job, device, f) <= cap_w)
        .map(|f| (f, model.standalone(job, device, f)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// The fastest solo execution of `job` across both devices under the cap:
/// `(device, level, time)`.
pub fn best_solo_placement(
    model: &dyn CoRunModel,
    job: JobId,
    cap_w: f64,
) -> Option<(Device, usize, f64)> {
    Device::ALL
        .iter()
        .filter_map(|&d| best_solo_run(model, job, d, cap_w).map(|(f, t)| (d, f, t)))
        .min_by(|a, b| a.2.total_cmp(&b.2))
}

/// Highest level of `job` on `device` given the co-runner is fixed at
/// `(co_job, co_level)` on the other device, such that the pair fits the
/// cap; `None` if no level fits.
pub fn best_level_against(
    model: &dyn CoRunModel,
    job: JobId,
    device: Device,
    co_job: JobId,
    co_level: usize,
    cap_w: f64,
) -> Option<usize> {
    let k = model.levels(device);
    (0..k).rev().find(|&f| {
        let power = match device {
            Device::Cpu => model.corun_power(Some((job, f)), Some((co_job, co_level))),
            Device::Gpu => model.corun_power(Some((co_job, co_level)), Some((job, f))),
        };
        power <= cap_w
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model::synthetic;

    #[test]
    fn no_cap_means_everything_feasible() {
        let m = synthetic(4, 5, 4);
        let all = feasible_pair_settings(&m, 0, 1, f64::INFINITY);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn tight_cap_prunes_high_levels() {
        let m = synthetic(4, 5, 4);
        let unconstrained = m.corun_power(Some((0, 4)), Some((1, 3)));
        let feas = feasible_pair_settings(&m, 0, 1, unconstrained - 0.1);
        assert!(feas.len() < 20);
        assert!(!feas.contains(&(4, 3)));
        assert!(feas.contains(&(0, 0)), "lowest levels always cheapest");
    }

    #[test]
    fn impossible_cap_empty() {
        let m = synthetic(4, 5, 4);
        assert!(feasible_pair_settings(&m, 0, 1, 0.1).is_empty());
        assert_eq!(best_solo_level(&m, 0, Device::Cpu, 0.1), None);
    }

    #[test]
    fn best_solo_level_is_highest_feasible() {
        let m = synthetic(4, 5, 4);
        let p3 = m.corun_power(Some((2, 3)), None);
        let lvl = best_solo_level(&m, 2, Device::Cpu, p3).unwrap();
        assert_eq!(lvl, 3);
        let all = best_solo_level(&m, 2, Device::Cpu, f64::INFINITY).unwrap();
        assert_eq!(all, 4);
    }

    #[test]
    fn best_solo_run_minimizes_time() {
        let m = synthetic(4, 5, 4);
        let (lvl, t) = best_solo_run(&m, 1, Device::Gpu, f64::INFINITY).unwrap();
        assert_eq!(lvl, 3);
        assert!((t - m.standalone(1, Device::Gpu, 3)).abs() < 1e-12);
    }

    #[test]
    fn best_solo_placement_picks_faster_device() {
        let m = synthetic(6, 5, 4);
        for j in 0..6 {
            let (d, f, t) = best_solo_placement(&m, j, f64::INFINITY).unwrap();
            let other = d.other();
            let t_other = m.standalone(j, other, m.levels(other) - 1);
            assert!(t <= t_other + 1e-12, "job {j} placed on slower device");
            assert_eq!(f, m.levels(d) - 1);
        }
    }

    #[test]
    fn best_level_against_respects_corunner() {
        let m = synthetic(4, 5, 4);
        // Co-runner at max GPU level eats budget; CPU level must drop.
        let cap = m.corun_power(Some((0, 2)), Some((1, 3)));
        let lvl = best_level_against(&m, 0, Device::Cpu, 1, 3, cap).unwrap();
        assert_eq!(lvl, 2);
        // With the co-runner at the lowest level there is more headroom.
        let lvl2 = best_level_against(&m, 0, Device::Cpu, 1, 0, cap).unwrap();
        assert!(lvl2 >= lvl);
    }
}
