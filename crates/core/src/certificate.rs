//! Proof-carrying schedule certificates.
//!
//! A schedule alone says "trust the optimizer". A [`Certificate`] says
//! "check me": alongside the claimed makespan it carries, per steady
//! segment, the model facts the claim rests on (who ran where at what
//! level, the witnessed device and pair powers), a Co-Run Theorem
//! witness for every co-run pair (the standalone lengths and
//! degradations the benefit precondition is evaluated over, paper
//! Sec. IV-A), and the lower-bound witness (`l'_i` per job and
//! `T_low = ½ Σ l'_i`, Sec. IV-B). An *independent* checker —
//! `corun_verify::cert`, O(segments + pairs + jobs), no model, no
//! scheduler — re-derives every arithmetic claim and rejects tampering
//! via an embedded checksum (CRT0xx diagnostics).
//!
//! The text format follows the workspace's line-oriented persistence
//! idiom (`[section]` blocks of `key = value`, cf.
//! `perf_model::persist`): versioned, dependency-free, diff-friendly.
//! Floats render through Rust's shortest-roundtrip `{:?}` so
//! re-rendering a parsed certificate reproduces it byte for byte.

use crate::bound::lower_bound;
use crate::evaluate::evaluate;
use crate::model::{CoRunModel, JobId};
use crate::schedule::Schedule;
use crate::theorem::corun_beneficial;
use std::fmt::Write as _;

/// Certificate format revision; bump on any schema change so stale
/// certificates are refused rather than misread.
pub const CERT_FORMAT_VERSION: u32 = 1;

/// One steady segment with its power accounting witnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentWitness {
    /// Segment start, seconds.
    pub t0: f64,
    /// Segment end, seconds.
    pub t1: f64,
    /// `(job, level)` on the CPU, if occupied.
    pub cpu: Option<(JobId, usize)>,
    /// `(job, level)` on the GPU, if occupied.
    pub gpu: Option<(JobId, usize)>,
    /// Witnessed package power with only the CPU side running, watts.
    pub cpu_w: Option<f64>,
    /// Witnessed package power with only the GPU side running, watts.
    pub gpu_w: Option<f64>,
    /// Claimed package power of the segment's occupancy, watts.
    pub power_w: f64,
}

/// A Co-Run Theorem precondition witness for one co-run pair: the model
/// facts (`l`, `d` per side) the benefit claim is arithmetic over.
#[derive(Debug, Clone, PartialEq)]
pub struct PairWitness {
    /// `(job, level)` on the CPU.
    pub cpu: (JobId, usize),
    /// `(job, level)` on the GPU.
    pub gpu: (JobId, usize),
    /// Standalone length of the CPU job at its level, seconds.
    pub l_cpu: f64,
    /// Fractional degradation of the CPU job against this partner.
    pub d_cpu: f64,
    /// Standalone length of the GPU job at its level, seconds.
    pub l_gpu: f64,
    /// Fractional degradation of the GPU job against this partner.
    pub d_gpu: f64,
    /// The scheduler's claim: co-running this pair beats running the
    /// two jobs sequentially (`l_a · d_a < l_b`, Sec. IV-A).
    pub beneficial: bool,
}

/// The lower-bound witness (Sec. IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundWitness {
    /// `T_low = ½ Σ l'_i`, seconds.
    pub t_low_s: f64,
    /// `l'_i` per job, seconds.
    pub l_prime_s: Vec<f64>,
}

/// A proof-carrying schedule: claims plus the witnesses to check them.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Number of jobs in the certified batch.
    pub jobs: usize,
    /// The power cap the schedule was planned under, watts
    /// (`inf` when uncapped).
    pub cap_w: f64,
    /// Witnessed both-devices-idle package power, watts — the term the
    /// paper's power composition subtracts from a co-run pair's summed
    /// solo powers.
    pub idle_w: f64,
    /// Claimed makespan, seconds.
    pub makespan_s: f64,
    /// The steady segments tiling `[0, makespan_s]`.
    pub segments: Vec<SegmentWitness>,
    /// One witness per distinct co-run pairing in the segments.
    pub pairs: Vec<PairWitness>,
    /// The lower-bound witness.
    pub bound: BoundWitness,
}

/// Build the certificate for `schedule` under `model` and `cap_w`: the
/// evaluator's segment timeline, a theorem witness per co-run pairing,
/// and the lower-bound decomposition.
pub fn certify(model: &dyn CoRunModel, schedule: &Schedule, cap_w: f64) -> Certificate {
    let eval = evaluate(model, schedule, cap_w.is_finite().then_some(cap_w));
    let mut segments = Vec::with_capacity(eval.segments.len());
    let mut pairs: Vec<PairWitness> = Vec::new();
    for s in &eval.segments {
        segments.push(SegmentWitness {
            t0: s.t0,
            t1: s.t1,
            cpu: s.cpu,
            gpu: s.gpu,
            cpu_w: s.cpu.map(|c| model.corun_power(Some(c), None)),
            gpu_w: s.gpu.map(|g| model.corun_power(None, Some(g))),
            power_w: s.power_w,
        });
        if let (Some(c), Some(g)) = (s.cpu, s.gpu) {
            if !pairs.iter().any(|p| p.cpu == c && p.gpu == g) {
                let l_cpu = model.standalone(c.0, apu_sim::Device::Cpu, c.1);
                let d_cpu = model.degradation(c.0, apu_sim::Device::Cpu, c.1, g.0, g.1);
                let l_gpu = model.standalone(g.0, apu_sim::Device::Gpu, g.1);
                let d_gpu = model.degradation(g.0, apu_sim::Device::Gpu, g.1, c.0, c.1);
                pairs.push(PairWitness {
                    cpu: c,
                    gpu: g,
                    l_cpu,
                    d_cpu,
                    l_gpu,
                    d_gpu,
                    beneficial: corun_beneficial(l_cpu, d_cpu, l_gpu, d_gpu),
                });
            }
        }
    }
    let bound = lower_bound(model, cap_w);
    Certificate {
        jobs: model.len(),
        cap_w,
        idle_w: model.idle_power(),
        makespan_s: eval.makespan_s,
        segments,
        pairs,
        bound: BoundWitness {
            t_low_s: bound.t_low_s,
            l_prime_s: bound.l_prime_s,
        },
    }
}

fn occ(slot: Option<(JobId, usize)>) -> String {
    match slot {
        Some((j, l)) => format!("{j} {l}"),
        None => "-".to_string(),
    }
}

impl Certificate {
    /// Render the full certificate text, checksum line included. The
    /// checksum (FNV-1a over every byte above the `[checksum]` line) is
    /// what `corun lint --cert` verifies first: any tampering with a
    /// witness, however plausible, is caught before semantics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "[certificate]");
        let _ = writeln!(w, "version = {CERT_FORMAT_VERSION}");
        let _ = writeln!(w, "jobs = {}", self.jobs);
        let _ = writeln!(w, "cap_w = {:?}", self.cap_w);
        let _ = writeln!(w, "idle_w = {:?}", self.idle_w);
        let _ = writeln!(w, "makespan_s = {:?}", self.makespan_s);
        for s in &self.segments {
            let _ = writeln!(w);
            let _ = writeln!(w, "[segment]");
            let _ = writeln!(w, "t0 = {:?}", s.t0);
            let _ = writeln!(w, "t1 = {:?}", s.t1);
            let _ = writeln!(w, "cpu = {}", occ(s.cpu));
            let _ = writeln!(w, "gpu = {}", occ(s.gpu));
            if let Some(p) = s.cpu_w {
                let _ = writeln!(w, "cpu_w = {p:?}");
            }
            if let Some(p) = s.gpu_w {
                let _ = writeln!(w, "gpu_w = {p:?}");
            }
            let _ = writeln!(w, "power_w = {:?}", s.power_w);
        }
        for p in &self.pairs {
            let _ = writeln!(w);
            let _ = writeln!(w, "[pair]");
            let _ = writeln!(w, "cpu = {} {}", p.cpu.0, p.cpu.1);
            let _ = writeln!(w, "gpu = {} {}", p.gpu.0, p.gpu.1);
            let _ = writeln!(w, "l_cpu = {:?}", p.l_cpu);
            let _ = writeln!(w, "d_cpu = {:?}", p.d_cpu);
            let _ = writeln!(w, "l_gpu = {:?}", p.l_gpu);
            let _ = writeln!(w, "d_gpu = {:?}", p.d_gpu);
            let _ = writeln!(w, "beneficial = {}", p.beneficial);
        }
        let _ = writeln!(w);
        let _ = writeln!(w, "[bound]");
        let _ = writeln!(w, "t_low_s = {:?}", self.bound.t_low_s);
        let mut lp = String::new();
        for v in &self.bound.l_prime_s {
            let _ = write!(lp, " {v:?}");
        }
        let _ = writeln!(w, "l_prime ={lp}");
        let _ = writeln!(out);
        let digest = fnv64(out.as_bytes());
        let _ = writeln!(out, "[checksum]");
        let _ = writeln!(out, "fnv64 = {digest:016x}");
        out
    }
}

/// A parsed certificate plus its checksum facts; the semantic checker
/// compares `stored_fnv` against `computed_fnv` (CRT002).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCertificate {
    /// The certificate content.
    pub cert: Certificate,
    /// The checksum the file claims.
    pub stored_fnv: u64,
    /// The checksum the file's body actually hashes to.
    pub computed_fnv: u64,
}

/// Parse a rendered certificate. Errors are structural only (missing
/// sections, malformed numbers, wrong version); semantic validity —
/// checksum, tiling, power, theorem and bound arithmetic — is the
/// domain of `corun_verify::cert`.
pub fn parse_certificate(text: &str) -> Result<ParsedCertificate, String> {
    // The checksum covers every byte above its own section header.
    let body_len = text
        .find("[checksum]")
        .ok_or("missing [checksum] section")?;
    let computed_fnv = fnv64(&text.as_bytes()[..body_len]);

    let mut sections: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            sections.push((name.to_string(), Vec::new()));
        } else if let Some((k, v)) = line.split_once('=') {
            let Some(last) = sections.last_mut() else {
                return Err(format!("line {}: key before any [section]", lineno + 1));
            };
            last.1.push((k.trim().to_string(), v.trim().to_string()));
        } else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        }
    }

    let get = |kvs: &[(String, String)], key: &str| -> Result<String, String> {
        kvs.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("missing key `{key}`"))
    };
    let getf = |kvs: &[(String, String)], key: &str| -> Result<f64, String> {
        let v = get(kvs, key)?;
        v.parse::<f64>()
            .map_err(|_| format!("bad number `{v}` for `{key}`"))
    };
    let getu = |kvs: &[(String, String)], key: &str| -> Result<usize, String> {
        let v = get(kvs, key)?;
        v.parse::<usize>()
            .map_err(|_| format!("bad count `{v}` for `{key}`"))
    };
    let getocc = |kvs: &[(String, String)], key: &str| -> Result<Option<(usize, usize)>, String> {
        let v = get(kvs, key)?;
        if v == "-" {
            return Ok(None);
        }
        let (j, l) = v
            .split_once(' ')
            .ok_or_else(|| format!("bad occupancy `{v}` for `{key}`"))?;
        Ok(Some((
            j.trim().parse().map_err(|_| format!("bad job in `{v}`"))?,
            l.trim()
                .parse()
                .map_err(|_| format!("bad level in `{v}`"))?,
        )))
    };
    let getoptf = |kvs: &[(String, String)], key: &str| -> Result<Option<f64>, String> {
        match kvs.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("bad number `{v}` for `{key}`")),
        }
    };

    let mut header = None;
    let mut segments = Vec::new();
    let mut pairs = Vec::new();
    let mut bound = None;
    let mut stored_fnv = None;
    for (name, kvs) in &sections {
        match name.as_str() {
            "certificate" => {
                let version = getu(kvs, "version")?;
                if version != CERT_FORMAT_VERSION as usize {
                    return Err(format!(
                        "certificate format v{version} does not match this build (v{CERT_FORMAT_VERSION})"
                    ));
                }
                header = Some((
                    getu(kvs, "jobs")?,
                    getf(kvs, "cap_w")?,
                    getf(kvs, "idle_w")?,
                    getf(kvs, "makespan_s")?,
                ));
            }
            "segment" => segments.push(SegmentWitness {
                t0: getf(kvs, "t0")?,
                t1: getf(kvs, "t1")?,
                cpu: getocc(kvs, "cpu")?,
                gpu: getocc(kvs, "gpu")?,
                cpu_w: getoptf(kvs, "cpu_w")?,
                gpu_w: getoptf(kvs, "gpu_w")?,
                power_w: getf(kvs, "power_w")?,
            }),
            "pair" => pairs.push(PairWitness {
                cpu: getocc(kvs, "cpu")?.ok_or("pair with empty cpu side")?,
                gpu: getocc(kvs, "gpu")?.ok_or("pair with empty gpu side")?,
                l_cpu: getf(kvs, "l_cpu")?,
                d_cpu: getf(kvs, "d_cpu")?,
                l_gpu: getf(kvs, "l_gpu")?,
                d_gpu: getf(kvs, "d_gpu")?,
                beneficial: match get(kvs, "beneficial")?.as_str() {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad boolean `{other}` for `beneficial`")),
                },
            }),
            "bound" => {
                let t_low_s = getf(kvs, "t_low_s")?;
                let lp = get(kvs, "l_prime")?;
                let mut l_prime_s = Vec::new();
                for tok in lp.split_whitespace() {
                    l_prime_s.push(
                        tok.parse::<f64>()
                            .map_err(|_| format!("bad number `{tok}` in `l_prime`"))?,
                    );
                }
                bound = Some(BoundWitness { t_low_s, l_prime_s });
            }
            "checksum" => {
                let v = get(kvs, "fnv64")?;
                stored_fnv =
                    Some(u64::from_str_radix(&v, 16).map_err(|_| format!("bad checksum `{v}`"))?);
            }
            other => return Err(format!("unknown section [{other}]")),
        }
    }
    let (jobs, cap_w, idle_w, makespan_s) = header.ok_or("missing [certificate] section")?;
    Ok(ParsedCertificate {
        cert: Certificate {
            jobs,
            cap_w,
            idle_w,
            makespan_s,
            segments,
            pairs,
            bound: bound.ok_or("missing [bound] section")?,
        },
        stored_fnv: stored_fnv.ok_or("missing fnv64 in [checksum]")?,
        computed_fnv,
    })
}

/// FNV-1a over raw bytes, 64-bit.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcs::{hcs, HcsConfig};
    use crate::model::test_model::synthetic;

    fn sample() -> Certificate {
        let m = synthetic(6, 4, 4);
        let cap = 18.0;
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        certify(&m, &out.schedule, cap)
    }

    #[test]
    fn certificate_witnesses_are_internally_consistent() {
        let c = sample();
        assert_eq!(c.jobs, 6);
        assert!(!c.segments.is_empty());
        assert!((c.segments[0].t0).abs() < 1e-9);
        assert!((c.segments.last().unwrap().t1 - c.makespan_s).abs() < 1e-9);
        assert_eq!(c.bound.l_prime_s.len(), 6);
        assert!(c.makespan_s >= c.bound.t_low_s - 1e-9);
        // Every two-sided segment has its theorem witness.
        for s in &c.segments {
            if let (Some(cp), Some(gp)) = (s.cpu, s.gpu) {
                assert!(c.pairs.iter().any(|p| p.cpu == cp && p.gpu == gp));
            }
        }
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let c = sample();
        let text = c.render();
        let parsed = parse_certificate(&text).unwrap();
        assert_eq!(parsed.cert, c);
        assert_eq!(parsed.stored_fnv, parsed.computed_fnv);
        // Re-rendering reproduces the file byte for byte.
        assert_eq!(parsed.cert.render(), text);
    }

    #[test]
    fn tampering_changes_the_computed_checksum() {
        let text = sample().render();
        // Flip one witness digit somewhere in the body.
        let tampered = text.replacen("makespan_s = ", "makespan_s = 9", 1);
        let parsed = parse_certificate(&tampered).unwrap();
        assert_ne!(parsed.stored_fnv, parsed.computed_fnv);
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(parse_certificate("").is_err());
        assert!(parse_certificate("[certificate]\nversion = 99\n[checksum]\nfnv64 = 0\n").is_err());
        let c = sample().render();
        let noversion = c.replacen("version = 1\n", "", 1);
        assert!(parse_certificate(&noversion).is_err());
    }

    #[test]
    fn uncapped_certificates_roundtrip_infinity() {
        let m = synthetic(4, 3, 3);
        let out = hcs(&m, &HcsConfig::with_cap(f64::INFINITY));
        let c = certify(&m, &out.schedule, f64::INFINITY);
        assert!(c.cap_w.is_infinite());
        let parsed = parse_certificate(&c.render()).unwrap();
        assert!(parsed.cert.cap_w.is_infinite());
        assert_eq!(parsed.stored_fnv, parsed.computed_fnv);
    }
}
