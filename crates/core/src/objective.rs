//! Schedule objectives beyond makespan: energy and energy-delay product.
//!
//! The paper optimizes throughput (minimal makespan) under a power cap;
//! deployments often want the battery story too. Since the model-based
//! evaluator already produces per-segment predicted power, energy and EDP
//! come for free, and the HCS+ refinement can optimize any of the three.

use crate::evaluate::EvalReport;
use serde::{Deserialize, Serialize};

/// What a refinement/comparison pass optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the makespan (the paper's objective).
    Makespan,
    /// Minimize predicted total energy.
    Energy,
    /// Minimize the energy-delay product `E * T`.
    EnergyDelay,
}

/// Predicted total energy of an evaluated schedule, joules.
pub fn energy_j(report: &EvalReport) -> f64 {
    report
        .segments
        .iter()
        .map(|s| s.power_w * (s.t1 - s.t0))
        .sum()
}

/// Predicted energy-delay product, joule-seconds.
pub fn edp_js(report: &EvalReport) -> f64 {
    energy_j(report) * report.makespan_s
}

/// The scalar an [`Objective`] minimizes for a given evaluation.
pub fn objective_value(objective: Objective, report: &EvalReport) -> f64 {
    match objective {
        Objective::Makespan => report.makespan_s,
        Objective::Energy => energy_j(report),
        Objective::EnergyDelay => edp_js(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::test_model::synthetic;
    use crate::schedule::{Assignment, Schedule};

    fn schedule_at(level_c: usize, level_g: usize) -> Schedule {
        let mut s = Schedule::new();
        s.cpu.push(Assignment {
            job: 0,
            level: level_c,
        });
        s.gpu.push(Assignment {
            job: 1,
            level: level_g,
        });
        s
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = synthetic(2, 4, 4);
        let r = evaluate(&m, &schedule_at(3, 3), None);
        let e = energy_j(&r);
        // bounded by peak power x makespan and by >0
        assert!(e > 0.0);
        assert!(e <= r.peak_power_w * r.makespan_s + 1e-9);
        assert!((edp_js(&r) - e * r.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn lower_levels_trade_time_for_energy() {
        let m = synthetic(2, 4, 4);
        let hi = evaluate(&m, &schedule_at(3, 3), None);
        let lo = evaluate(&m, &schedule_at(0, 0), None);
        assert!(lo.makespan_s > hi.makespan_s, "low clocks are slower");
        // With a convex power curve, lower clocks burn less energy even
        // though they run longer on this model.
        assert!(energy_j(&lo) < energy_j(&hi), "low clocks save energy");
    }

    #[test]
    fn objective_value_dispatch() {
        let m = synthetic(2, 4, 4);
        let r = evaluate(&m, &schedule_at(2, 2), None);
        assert_eq!(objective_value(Objective::Makespan, &r), r.makespan_s);
        assert_eq!(objective_value(Objective::Energy, &r), energy_j(&r));
        assert_eq!(objective_value(Objective::EnergyDelay, &r), edp_js(&r));
    }

    #[test]
    fn empty_schedule_zero_energy() {
        let m = synthetic(2, 4, 4);
        let r = evaluate(&m, &Schedule::new(), None);
        assert_eq!(energy_j(&r), 0.0);
        assert_eq!(edp_js(&r), 0.0);
    }
}
