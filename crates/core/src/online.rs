//! Online co-scheduling with job arrivals — the deployment scenario the
//! paper's introduction motivates (shared servers and data centers receive
//! jobs over time) but evaluates only in batch form.
//!
//! [`OnlinePolicy`] makes HCS-style decisions one dispatch at a time: given
//! the set of *ready* jobs, a free device and the co-runner currently on
//! the other device, it picks the job and frequency level the batch
//! heuristic would have picked — preference order first, least predicted
//! interference second, best cap-feasible performance for the level, and
//! the same steal-profitability guard against hijacking a job that should
//! wait for its preferred device.
//!
//! [`evaluate_online`] replays an arrival trace against the model (the
//! online analogue of [`crate::evaluate::evaluate`]); the `runtime` crate
//! drives the same policy against the simulator for ground truth.

use crate::freqgrid::{best_level_against, best_solo_run};
use crate::hcs::{categorize, HcsConfig, Preference};
use crate::model::{CoRunModel, JobId};
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// A job plus its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// The job.
    pub job: JobId,
    /// When it becomes ready, seconds.
    pub at_s: f64,
}

/// Bounded-retry configuration for requeueing jobs lost to machine
/// crashes or injected failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed per job before it is dead-lettered.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds (doubles per retry).
    pub backoff_base_s: f64,
    /// Backoff ceiling, seconds.
    pub backoff_max_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 0.05,
            backoff_max_s: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry attempt `n` (1-based): exponential with a
    /// deterministic per-(job, attempt) jitter in `[1.0, 1.5)`, capped.
    pub fn backoff_s(&self, job: JobId, attempt: u32) -> f64 {
        let exp = self.backoff_base_s * 2f64.powi(attempt.saturating_sub(1).min(20) as i32);
        let jitter = 1.0 + 0.5 * hash_unit(job as u64, attempt as u64);
        (exp * jitter).min(self.backoff_max_s)
    }
}

/// What [`OnlinePolicy::requeue`] decided for one lost job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequeueOutcome {
    /// Re-admit the job after `backoff_s`; this is retry number
    /// `attempt` (1-based).
    Retry {
        /// Which retry this is, 1-based.
        attempt: u32,
        /// How long to hold the job back before re-dispatch, seconds.
        backoff_s: f64,
    },
    /// Retry budget exhausted: surface the job as dead-letter.
    DeadLetter {
        /// Total attempts consumed (initial dispatch + retries).
        attempts: u32,
    },
}

/// splitmix64-style hash of `(a, b)` mapped to `[0, 1)`, for
/// deterministic backoff jitter (no RNG state to persist or replay).
fn hash_unit(a: u64, b: u64) -> f64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The online dispatch policy.
#[derive(Debug, Clone)]
pub struct OnlinePolicy {
    cfg: HcsConfig,
    preference: Vec<Preference>,
    retry: RetryPolicy,
    /// Retries consumed per admitted job (parallel to `preference`).
    retries: Vec<u32>,
}

/// One dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlinePick {
    /// The chosen job.
    pub job: JobId,
    /// Its frequency level on the free device.
    pub level: usize,
}

impl OnlinePolicy {
    /// Build the policy: preferences are precomputed per job (they depend
    /// only on standalone profiles).
    pub fn new(model: &dyn CoRunModel, cfg: HcsConfig) -> Self {
        let preference: Vec<Preference> = (0..model.len())
            .map(|i| categorize(model, &cfg, i))
            .collect();
        let retries = vec![0; preference.len()];
        OnlinePolicy {
            cfg,
            preference,
            retry: RetryPolicy::default(),
            retries,
        }
    }

    /// An empty policy that knows about no jobs yet; register jobs as
    /// they arrive with [`OnlinePolicy::admit_job`]. This is the
    /// constructor a resident service uses: the job universe grows over
    /// the service's lifetime, so preferences cannot be precomputed.
    pub fn empty(cfg: HcsConfig) -> Self {
        OnlinePolicy {
            cfg,
            preference: Vec::new(),
            retry: RetryPolicy::default(),
            retries: Vec::new(),
        }
    }

    /// Incrementally register job `job` (which must be the next unseen
    /// index, or an already-admitted one — preferences are append-only and
    /// dense). Categorization depends only on the job's own standalone
    /// profile, so admitting jobs one at a time yields exactly the policy
    /// [`OnlinePolicy::new`] would have built from scratch.
    ///
    /// # Panics
    ///
    /// If `job` would leave a gap (`job > self.job_count()`) or is not
    /// covered by `model`.
    pub fn admit_job(&mut self, model: &dyn CoRunModel, job: JobId) {
        assert!(
            job <= self.preference.len(),
            "admit_job({job}) would leave a gap: only {} jobs admitted",
            self.preference.len()
        );
        assert!(job < model.len(), "job {job} not in the model");
        if job == self.preference.len() {
            self.preference.push(categorize(model, &self.cfg, job));
            self.retries.push(0);
        }
    }

    /// The power cap this policy currently schedules under, watts.
    pub fn cap_w(&self) -> f64 {
        self.cfg.cap_w
    }

    /// Re-cap the policy (fleet budget rebalancing hands shards new caps
    /// while they run). Preferences depend on the cap through the
    /// cap-feasible frequency grid, so they are recomputed for every
    /// admitted job — exactly what [`OnlinePolicy::new`] would have
    /// produced had it been built with the new cap.
    ///
    /// # Panics
    ///
    /// If `model` does not cover every admitted job.
    pub fn set_cap_w(&mut self, model: &dyn CoRunModel, cap_w: f64) {
        assert!(
            self.preference.len() <= model.len(),
            "model covers {} jobs but {} are admitted",
            model.len(),
            self.preference.len()
        );
        self.cfg.cap_w = cap_w;
        for (job, slot) in self.preference.iter_mut().enumerate() {
            *slot = categorize(model, &self.cfg, job);
        }
    }

    /// Replace the retry policy governing [`OnlinePolicy::requeue`].
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Retries consumed so far by `job`.
    pub fn retries(&self, job: JobId) -> u32 {
        self.retries.get(job).copied().unwrap_or(0)
    }

    /// Restore a job's consumed-retry count (journal recovery: the count
    /// survives a daemon crash so a flaky job cannot retry forever by
    /// repeatedly killing the service).
    ///
    /// # Panics
    ///
    /// If `job` has not been admitted.
    pub fn restore_retries(&mut self, job: JobId, consumed: u32) {
        self.retries[job] = consumed;
    }

    /// Decide the fate of a job lost to a fault: consume one retry and
    /// compute its backoff, or dead-letter it once the budget is spent.
    ///
    /// # Panics
    ///
    /// If `job` has not been admitted.
    pub fn requeue(&mut self, job: JobId) -> RequeueOutcome {
        if self.retries[job] >= self.retry.max_retries {
            return RequeueOutcome::DeadLetter {
                attempts: self.retries[job] + 1,
            };
        }
        self.retries[job] += 1;
        let attempt = self.retries[job];
        RequeueOutcome::Retry {
            attempt,
            backoff_s: self.retry.backoff_s(job, attempt),
        }
    }

    /// Evict a crashed machine's in-flight jobs: each is either retried
    /// (with backoff) or dead-lettered, per [`OnlinePolicy::requeue`].
    /// Returns the outcome per job, in input order.
    pub fn evict_machine(&mut self, in_flight: &[JobId]) -> Vec<(JobId, RequeueOutcome)> {
        in_flight.iter().map(|&j| (j, self.requeue(j))).collect()
    }

    /// Number of jobs this policy has preferences for.
    pub fn job_count(&self) -> usize {
        self.preference.len()
    }

    /// The preference categorization per admitted job.
    pub fn preferences(&self) -> &[Preference] {
        &self.preference
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &HcsConfig {
        &self.cfg
    }

    /// Decide what to run on `device` given the ready set and the current
    /// co-runner. `None` means "leave the device idle for now".
    pub fn pick(
        &self,
        model: &dyn CoRunModel,
        ready: &[JobId],
        device: Device,
        co: Option<(JobId, usize)>,
    ) -> Option<OnlinePick> {
        let own_pref = match device {
            Device::Cpu => Preference::Cpu,
            Device::Gpu => Preference::Gpu,
        };
        let other_pref = match device {
            Device::Cpu => Preference::Gpu,
            Device::Gpu => Preference::Cpu,
        };
        // Preference order: own-preferred, non-preferred, other-preferred.
        for class in [own_pref, Preference::Non, other_pref] {
            let candidates: Vec<JobId> = ready
                .iter()
                .copied()
                .filter(|&j| self.preference[j] == class)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = self.pick_from(model, &candidates, device, co);
            let Some(pick) = pick else { continue };
            // Steal-profitability guard for other-preferred jobs: only take
            // the job if running it here beats waiting for its preferred
            // device behind the other-preferred backlog.
            if class == other_pref {
                let other = device.other();
                let ko = model.levels(other) - 1;
                let t_here = model.standalone(pick.job, device, pick.level);
                let t_there = model.standalone(pick.job, other, ko);
                let backlog: f64 = candidates
                    .iter()
                    .filter(|&&y| y != pick.job)
                    .map(|&y| model.standalone(y, other, ko))
                    .sum();
                if t_here >= backlog + t_there {
                    return None;
                }
            }
            return Some(pick);
        }
        None
    }

    /// Least-interference candidate with a performance-maximizing feasible
    /// level.
    fn pick_from(
        &self,
        model: &dyn CoRunModel,
        candidates: &[JobId],
        device: Device,
        co: Option<(JobId, usize)>,
    ) -> Option<OnlinePick> {
        match co {
            None => {
                // Free machine: longest job first (the batch heuristic's
                // seeding rule) at its best solo level.
                let mut best: Option<(JobId, usize, f64)> = None;
                for &j in candidates {
                    let Some((level, t)) = best_solo_run(model, j, device, self.cfg.cap_w) else {
                        continue;
                    };
                    if best.is_none_or(|(_, _, bt)| t > bt) {
                        best = Some((j, level, t));
                    }
                }
                best.map(|(job, level, _)| OnlinePick { job, level })
            }
            Some((co_job, co_level)) => {
                let mut best: Option<(JobId, usize, f64)> = None; // deg sum
                for &j in candidates {
                    let Some(level) =
                        best_level_against(model, j, device, co_job, co_level, self.cfg.cap_w)
                    else {
                        continue;
                    };
                    let d_own = model.degradation(j, device, level, co_job, co_level);
                    let d_co = model.degradation(co_job, device.other(), co_level, j, level);
                    let sum = d_own + d_co;
                    if best.is_none_or(|(_, _, bs)| sum < bs) {
                        best = Some((j, level, sum));
                    }
                }
                best.map(|(job, level, _)| OnlinePick { job, level })
            }
        }
    }
}

/// Result of a model-level online replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Time from t=0 to the last completion.
    pub makespan_s: f64,
    /// Per-job finish times.
    pub finish_s: Vec<Option<f64>>,
    /// Mean flow time (finish - arrival) over all jobs.
    pub mean_flow_s: f64,
}

/// Replay an arrival trace against the model under `policy` (non-preemptive,
/// one job per device, decisions at completions and arrivals).
pub fn evaluate_online(
    model: &dyn CoRunModel,
    arrivals: &[Arrival],
    policy: &OnlinePolicy,
) -> OnlineReport {
    let n = model.len();
    let mut arrivals: Vec<Arrival> = arrivals.to_vec();
    arrivals.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    let mut next_arrival = 0usize;
    let mut ready: Vec<JobId> = Vec::new();
    let mut finish: Vec<Option<f64>> = vec![None; n];
    let mut arrival_of: Vec<f64> = vec![0.0; n];
    for a in &arrivals {
        arrival_of[a.job] = a.at_s;
    }
    // (job, level, remaining standalone seconds) per device
    let mut running: [Option<(JobId, usize, f64)>; 2] = [None, None];
    let mut t = 0.0_f64;

    loop {
        // Admit arrivals due by t.
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_s <= t + 1e-12 {
            ready.push(arrivals[next_arrival].job);
            next_arrival += 1;
        }
        // Fill free devices.
        for device in Device::ALL {
            if running[device.index()].is_some() {
                continue;
            }
            let co = running[device.other().index()].map(|(j, l, _)| (j, l));
            if let Some(p) = policy.pick(model, &ready, device, co) {
                ready.retain(|&j| j != p.job);
                running[device.index()] =
                    Some((p.job, p.level, model.standalone(p.job, device, p.level)));
            }
        }

        // Next event: a completion or an arrival.
        let (s_cpu, s_gpu) = match (&running[0], &running[1]) {
            (Some((cj, cl, _)), Some((gj, gl, _))) => (
                1.0 + model.degradation(*cj, Device::Cpu, *cl, *gj, *gl),
                1.0 + model.degradation(*gj, Device::Gpu, *gl, *cj, *cl),
            ),
            _ => (1.0, 1.0),
        };
        let t_cpu = running[0].map(|(_, _, r)| r * s_cpu);
        let t_gpu = running[1].map(|(_, _, r)| r * s_gpu);
        let next_completion = [t_cpu, t_gpu]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        let next_arrival_dt = arrivals
            .get(next_arrival)
            .map(|a| a.at_s - t)
            .filter(|&d| d > 0.0)
            .unwrap_or(f64::INFINITY);

        if !next_completion.is_finite() && !next_arrival_dt.is_finite() {
            break; // nothing running, nothing arriving
        }
        let dt = next_completion.min(next_arrival_dt);
        t += dt;
        for (idx, s) in [(0usize, s_cpu), (1, s_gpu)] {
            if let Some((j, l, r)) = running[idx] {
                let nr = r - dt / s;
                if nr <= 1e-9 {
                    finish[j] = Some(t);
                    running[idx] = None;
                } else {
                    running[idx] = Some((j, l, nr));
                }
            }
        }
    }

    let makespan = finish.iter().flatten().fold(0.0_f64, |a, &b| a.max(b));
    let flows: Vec<f64> = (0..n)
        .filter_map(|j| finish[j].map(|f| f - arrival_of[j]))
        .collect();
    let mean_flow = if flows.is_empty() {
        0.0
    } else {
        flows.iter().sum::<f64>() / flows.len() as f64
    };
    OnlineReport {
        makespan_s: makespan,
        finish_s: finish,
        mean_flow_s: mean_flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model::synthetic;

    fn batch_arrivals(n: usize) -> Vec<Arrival> {
        (0..n).map(|j| Arrival { job: j, at_s: 0.0 }).collect()
    }

    #[test]
    fn all_jobs_finish() {
        let m = synthetic(8, 5, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::with_cap(16.0));
        let r = evaluate_online(&m, &batch_arrivals(8), &p);
        assert!(r.finish_s.iter().all(std::option::Option::is_some));
        assert!(r.makespan_s > 0.0);
        assert!(r.mean_flow_s > 0.0);
    }

    #[test]
    fn staggered_arrivals_respected() {
        let m = synthetic(4, 4, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        let arrivals = vec![
            Arrival { job: 0, at_s: 0.0 },
            Arrival { job: 1, at_s: 5.0 },
            Arrival {
                job: 2,
                at_s: 100.0,
            },
            Arrival {
                job: 3,
                at_s: 100.0,
            },
        ];
        let r = evaluate_online(&m, &arrivals, &p);
        // Job 2 and 3 cannot finish before they arrive plus their best time.
        let best2 = m
            .standalone(2, Device::Cpu, 3)
            .min(m.standalone(2, Device::Gpu, 3));
        assert!(r.finish_s[2].unwrap() >= 100.0 + best2 * 0.99);
        assert!(r.finish_s[1].unwrap() >= 5.0);
    }

    #[test]
    fn batch_online_close_to_batch_hcs() {
        // With all arrivals at t=0 the online policy approximates batch HCS.
        let m = synthetic(8, 5, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::with_cap(16.0));
        let online = evaluate_online(&m, &batch_arrivals(8), &p).makespan_s;
        let batch = crate::evaluate::evaluate(
            &m,
            &crate::hcs::hcs(&m, &HcsConfig::with_cap(16.0)).schedule,
            Some(16.0),
        )
        .makespan_s;
        assert!(
            online <= batch * 1.35,
            "online {online} too far from batch {batch}"
        );
    }

    #[test]
    fn online_beats_fifo_single_device() {
        // Everything sequentially on the GPU is a valid online strategy;
        // the policy should beat it.
        let m = synthetic(6, 4, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        let online = evaluate_online(&m, &batch_arrivals(6), &p).makespan_s;
        let fifo: f64 = (0..6).map(|j| m.standalone(j, Device::Gpu, 3)).sum();
        assert!(online < fifo);
    }

    #[test]
    fn idle_gap_between_waves() {
        let m = synthetic(2, 4, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        let arrivals = vec![
            Arrival { job: 0, at_s: 0.0 },
            Arrival {
                job: 1,
                at_s: 500.0,
            },
        ];
        let r = evaluate_online(&m, &arrivals, &p);
        assert!(
            r.finish_s[0].unwrap() < 500.0,
            "first wave done before second"
        );
        assert!(r.finish_s[1].unwrap() > 500.0);
    }

    #[test]
    fn empty_arrivals() {
        let m = synthetic(3, 4, 4);
        let p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        let r = evaluate_online(&m, &[], &p);
        assert_eq!(r.makespan_s, 0.0);
        assert!(r.finish_s.iter().all(std::option::Option::is_none));
    }

    #[test]
    fn incremental_admission_matches_batch_construction() {
        let m = synthetic(9, 5, 4);
        let batch = OnlinePolicy::new(&m, HcsConfig::with_cap(16.0));
        let mut inc = OnlinePolicy::empty(HcsConfig::with_cap(16.0));
        for j in 0..m.len() {
            inc.admit_job(&m, j);
            // Re-admitting is idempotent.
            inc.admit_job(&m, j);
        }
        assert_eq!(inc.job_count(), m.len());
        assert_eq!(batch.preferences(), inc.preferences());
        // And the policies decide identically on a mixed ready set.
        let ready: Vec<usize> = (0..m.len()).collect();
        for device in apu_sim::Device::ALL {
            assert_eq!(
                batch.pick(&m, &ready, device, None),
                inc.pick(&m, &ready, device, None)
            );
            assert_eq!(
                batch.pick(&m, &ready[1..], device, Some((0, 2))),
                inc.pick(&m, &ready[1..], device, Some((0, 2)))
            );
        }
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn admission_gap_panics() {
        let m = synthetic(4, 4, 4);
        let mut p = OnlinePolicy::empty(HcsConfig::uncapped());
        p.admit_job(&m, 2);
    }

    #[test]
    fn requeue_retries_then_dead_letters() {
        let m = synthetic(3, 4, 4);
        let mut p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        p.set_retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base_s: 0.1,
            backoff_max_s: 10.0,
        });
        let RequeueOutcome::Retry {
            attempt: 1,
            backoff_s: b1,
        } = p.requeue(0)
        else {
            panic!("first loss retries");
        };
        let RequeueOutcome::Retry {
            attempt: 2,
            backoff_s: b2,
        } = p.requeue(0)
        else {
            panic!("second loss retries");
        };
        // Exponential: base*2 with jitter in [1, 1.5) must exceed base*1.5.
        assert!((0.1..0.15).contains(&b1), "b1={b1}");
        assert!((0.2..0.3).contains(&b2), "b2={b2}");
        assert_eq!(p.requeue(0), RequeueOutcome::DeadLetter { attempts: 3 });
        // Other jobs are unaffected.
        assert!(matches!(
            p.requeue(1),
            RequeueOutcome::Retry { attempt: 1, .. }
        ));
        assert_eq!(p.retries(0), 2);
        assert_eq!(p.retries(1), 1);
        assert_eq!(p.retries(2), 0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let rp = RetryPolicy::default();
        assert_eq!(rp.backoff_s(7, 2), rp.backoff_s(7, 2), "deterministic");
        // Different jobs de-synchronize (jitter differs somewhere).
        assert!((0..16).any(|j| rp.backoff_s(j, 1) != rp.backoff_s(j + 16, 1)));
        // Large attempts hit the ceiling.
        assert_eq!(rp.backoff_s(3, 30), rp.backoff_max_s);
    }

    #[test]
    fn evict_machine_processes_all_in_flight() {
        let m = synthetic(4, 4, 4);
        let mut p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        let out = p.evict_machine(&[2, 0]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[1].0, 0);
        assert!(out
            .iter()
            .all(|(_, o)| matches!(o, RequeueOutcome::Retry { attempt: 1, .. })));
    }

    #[test]
    fn restored_retries_survive_into_budget() {
        let m = synthetic(2, 4, 4);
        let mut p = OnlinePolicy::new(&m, HcsConfig::uncapped());
        // As after journal recovery: job 0 already burned its budget.
        p.restore_retries(0, p.retry_policy().max_retries);
        assert!(matches!(p.requeue(0), RequeueOutcome::DeadLetter { .. }));
    }

    #[test]
    fn cap_respected_in_level_choices() {
        let m = synthetic(6, 5, 4);
        let cap = m.corun_power(Some((0, 2)), Some((1, 2)));
        let p = OnlinePolicy::new(&m, HcsConfig::with_cap(cap));
        // Every pick against a max-level co-runner must fit the cap.
        let ready: Vec<usize> = (1..6).collect();
        if let Some(pick) = p.pick(&m, &ready, Device::Cpu, Some((0, 3))) {
            let power = m.corun_power(Some((pick.job, pick.level)), Some((0, 3)));
            assert!(power <= cap + 1e-9);
        }
    }
}
