//! The heuristic co-scheduling algorithm (HCS) of Section IV-A.
//!
//! Three steps, each with the power-cap adaptations of Section IV-A.2:
//!
//! 1. **Partition** `J` into `S_co` (jobs that can benefit from some co-run
//!    per the Co-Run Theorem, traversing all cap-feasible frequency
//!    settings) and `S_seq` (jobs that should always run alone).
//! 2. **Categorize** `S_co` into CPU-preferred, GPU-preferred and
//!    non-preferred using the execution times at the highest cap-feasible
//!    frequency and the threshold `D` (20% by default).
//! 3. **Greedy scheduling**: seed the GPU with the longest GPU-preferred
//!    job; then, whenever a device frees up, dispatch the candidate (taken
//!    from that device's preferred set first, then non-preferred, then the
//!    other-preferred set) with the least co-run interference against the
//!    running job — the sum of the two degradation percentages, minimized
//!    over cap-feasible frequency choices. `S_seq` jobs are appended as a
//!    solo tail on their best device.

use crate::freqgrid::{best_solo_placement, best_solo_run, feasible_pair_settings};
use crate::model::{CoRunModel, JobId};
use crate::schedule::{Assignment, Schedule, SoloRun};
use crate::theorem::corun_beneficial;
use apu_sim::Device;
use serde::{Deserialize, Serialize};

/// Configuration of the heuristic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HcsConfig {
    /// Package power cap in watts (`f64::INFINITY` disables capping).
    pub cap_w: f64,
    /// Preference threshold `D`: jobs whose CPU/GPU times differ by no more
    /// than this fraction are non-preferred. The paper selects 20%.
    pub preference_threshold: f64,
}

impl HcsConfig {
    /// Uncapped configuration with the paper's `D = 20%`.
    pub fn uncapped() -> Self {
        HcsConfig {
            cap_w: f64::INFINITY,
            preference_threshold: 0.20,
        }
    }

    /// Capped configuration with the paper's `D = 20%`.
    pub fn with_cap(cap_w: f64) -> Self {
        HcsConfig {
            cap_w,
            preference_threshold: 0.20,
        }
    }
}

/// Processor-preference category of a job (step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preference {
    /// Runs meaningfully faster on the CPU.
    Cpu,
    /// Runs meaningfully faster on the GPU.
    Gpu,
    /// Within the threshold on both.
    Non,
}

/// Diagnostics of an HCS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HcsOutcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Jobs the Co-Run Theorem sent to sequential execution.
    pub s_seq: Vec<JobId>,
    /// Preference category per job in `S_co` (`None` for `S_seq` jobs).
    pub preference: Vec<Option<Preference>>,
}

/// Run the full heuristic.
pub fn hcs(model: &dyn CoRunModel, cfg: &HcsConfig) -> HcsOutcome {
    let n = model.len();
    if n == 0 {
        return HcsOutcome {
            schedule: Schedule::new(),
            s_seq: vec![],
            preference: vec![],
        };
    }

    // ---- Step 1: partition via the Co-Run Theorem --------------------
    let (s_co, s_seq) = partition(model, cfg);

    // ---- Step 2: categorize -------------------------------------------
    let mut preference: Vec<Option<Preference>> = vec![None; n];
    let mut cpu_pref = Vec::new();
    let mut gpu_pref = Vec::new();
    let mut non_pref = Vec::new();
    for &i in &s_co {
        let p = categorize(model, cfg, i);
        preference[i] = Some(p);
        match p {
            Preference::Cpu => cpu_pref.push(i),
            Preference::Gpu => gpu_pref.push(i),
            Preference::Non => non_pref.push(i),
        }
    }

    // ---- Step 3: greedy scheduling -------------------------------------
    let mut schedule = greedy(model, cfg, cpu_pref, gpu_pref, non_pref, &s_seq);

    // The greedy checks pair feasibility against the co-runner at dispatch
    // time, but the queue representation replays overlaps slightly
    // differently when the greedy chose to idle a device; repair any
    // remaining cap-infeasible overlap by lowering levels.
    if cfg.cap_w.is_finite() {
        repair_levels(model, &mut schedule, cfg.cap_w);
    }

    HcsOutcome {
        schedule,
        s_seq,
        preference,
    }
}

/// Lower frequency levels until the evaluator finds no cap-violating
/// segment. For each violating co-run segment the job with the smaller
/// standalone time penalty is stepped down one level (ties: the CPU job).
/// Terminates because total levels strictly decrease; a segment that still
/// violates with every participant at level 0 is left as-is (nothing lower
/// exists).
pub fn repair_levels(model: &dyn CoRunModel, schedule: &mut Schedule, cap_w: f64) {
    let budget = (schedule.len() + 1) * (model.levels(Device::Cpu) + model.levels(Device::Gpu));
    for _ in 0..budget {
        let report = crate::evaluate::evaluate(model, schedule, Some(cap_w));
        if report.cap_ok {
            return;
        }
        let Some(seg) = report
            .segments
            .iter()
            .find(|s| s.power_w > cap_w + 1e-9)
            .copied()
        else {
            return;
        };
        // Candidate level reductions with their standalone time penalties.
        let mut options: Vec<(Device, JobId, usize, f64)> = Vec::new();
        if let Some((job, level)) = seg.cpu {
            if level > 0 {
                let dt = model.standalone(job, Device::Cpu, level - 1)
                    - model.standalone(job, Device::Cpu, level);
                options.push((Device::Cpu, job, level, dt));
            }
        }
        if let Some((job, level)) = seg.gpu {
            if level > 0 {
                let dt = model.standalone(job, Device::Gpu, level - 1)
                    - model.standalone(job, Device::Gpu, level);
                options.push((Device::Gpu, job, level, dt));
            }
        }
        match options.iter().min_by(|a, b| a.3.total_cmp(&b.3)) {
            Some(&(device, job, level, _)) => set_job_level(schedule, device, job, level - 1),
            None => {
                // Both participants are already at the floor. If this is a
                // co-run, the pair simply cannot share the package under
                // the cap: demote one job to solo execution.
                match (seg.cpu, seg.gpu) {
                    (Some((job, _)), Some(_)) => {
                        schedule.cpu.retain(|a| a.job != job);
                        let level =
                            crate::freqgrid::best_solo_level(model, job, Device::Cpu, cap_w)
                                .unwrap_or(0);
                        schedule.solo_tail.push(crate::schedule::SoloRun {
                            job,
                            device: Device::Cpu,
                            level,
                        });
                    }
                    // A solo run over the cap at the floor: nothing lower
                    // exists; leave it.
                    _ => return,
                }
            }
        }
    }
}

/// Update the level of `job` wherever it appears on `device`.
fn set_job_level(schedule: &mut Schedule, device: Device, job: JobId, level: usize) {
    for a in schedule.queue_mut(device) {
        if a.job == job {
            a.level = level;
        }
    }
    for s in &mut schedule.solo_tail {
        if s.job == job && s.device == device {
            s.level = level;
        }
    }
}

/// Step 1: can job `i` benefit from a co-run with *any* other job under the
/// cap, on either placement?
pub fn partition(model: &dyn CoRunModel, cfg: &HcsConfig) -> (Vec<JobId>, Vec<JobId>) {
    let n = model.len();
    let mut benefits = vec![false; n];
    for i in 0..n {
        for j in 0..n {
            if i == j || (benefits[i] && benefits[j]) {
                continue;
            }
            if pair_can_benefit(model, cfg, i, j) {
                benefits[i] = true;
                benefits[j] = true;
            }
        }
    }
    let s_co = (0..n).filter(|&i| benefits[i]).collect();
    let s_seq = (0..n).filter(|&i| !benefits[i]).collect();
    (s_co, s_seq)
}

/// Whether placing `a` on the CPU and `b` on the GPU (or vice versa) at any
/// cap-feasible setting makes the co-run beat sequential execution.
pub fn pair_can_benefit(model: &dyn CoRunModel, cfg: &HcsConfig, a: JobId, b: JobId) -> bool {
    for (cpu_job, gpu_job) in [(a, b), (b, a)] {
        for (f, g) in feasible_pair_settings(model, cpu_job, gpu_job, cfg.cap_w) {
            let l_c = model.standalone(cpu_job, Device::Cpu, f);
            let d_c = model.degradation(cpu_job, Device::Cpu, f, gpu_job, g);
            let l_g = model.standalone(gpu_job, Device::Gpu, g);
            let d_g = model.degradation(gpu_job, Device::Gpu, g, cpu_job, f);
            if corun_beneficial(l_c, d_c, l_g, d_g) {
                return true;
            }
        }
    }
    false
}

/// Step 2: preference of one job using times at the highest cap-feasible
/// frequency on each device (a device where the job cannot run under the
/// cap at all counts as infinitely slow).
pub fn categorize(model: &dyn CoRunModel, cfg: &HcsConfig, i: JobId) -> Preference {
    let t_cpu = best_solo_run(model, i, Device::Cpu, cfg.cap_w).map_or(f64::INFINITY, |(_, t)| t);
    let t_gpu = best_solo_run(model, i, Device::Gpu, cfg.cap_w).map_or(f64::INFINITY, |(_, t)| t);
    let lo = t_cpu.min(t_gpu);
    let hi = t_cpu.max(t_gpu);
    if !lo.is_finite() {
        return Preference::Non; // nowhere to run well; degenerate
    }
    if (hi - lo) / lo <= cfg.preference_threshold {
        Preference::Non
    } else if t_cpu < t_gpu {
        Preference::Cpu
    } else {
        Preference::Gpu
    }
}

/// A dispatch decision: which set/position to take the job from, and at
/// what level to run it.
struct Pick {
    set_idx: usize,
    pos: usize,
    level: usize,
}

/// Step 3 proper.
fn greedy(
    model: &dyn CoRunModel,
    cfg: &HcsConfig,
    cpu_pref: Vec<JobId>,
    gpu_pref: Vec<JobId>,
    non_pref: Vec<JobId>,
    s_seq: &[JobId],
) -> Schedule {
    let mut schedule = Schedule::new();
    let mut sets = [cpu_pref, non_pref, gpu_pref]; // indices 0,1,2
                                                   // preference order per device (indices into `sets`)
    let order_cpu = [0usize, 1, 2];
    let order_gpu = [2usize, 1, 0];

    // running job per device: (job, level, remaining standalone seconds)
    let mut running: [Option<(JobId, usize, f64)>; 2] = [None, None];
    let seq_fallback: &mut Vec<JobId> = &mut Vec::new();

    // Seed the GPU with the longest GPU-preferred job (falling back through
    // the preference order if that set is empty).
    if let Some(pick) = pick_longest(model, cfg, &sets, &order_gpu, Device::Gpu) {
        let job = take(&mut sets, pick.set_idx, pick.pos);
        running[Device::Gpu.index()] = Some((
            job,
            pick.level,
            model.standalone(job, Device::Gpu, pick.level),
        ));
        schedule.gpu.push(Assignment {
            job,
            level: pick.level,
        });
    }

    // Fill the CPU with the least-interference candidate, choosing the pair
    // setting jointly (this may re-level the seeded GPU job before any time
    // has elapsed).
    if let Some((gjob, glevel, _)) = running[Device::Gpu.index()] {
        if let Some((pick, best_g)) =
            pick_least_interference_joint(model, cfg, &sets, &order_cpu, gjob)
        {
            let job = take(&mut sets, pick.set_idx, pick.pos);
            running[Device::Cpu.index()] = Some((
                job,
                pick.level,
                model.standalone(job, Device::Cpu, pick.level),
            ));
            schedule.cpu.push(Assignment {
                job,
                level: pick.level,
            });
            if best_g != glevel {
                let r = running[Device::Gpu.index()].as_mut().expect("gpu running");
                r.1 = best_g;
                r.2 = model.standalone(gjob, Device::Gpu, best_g);
                schedule.gpu.last_mut().expect("gpu seeded").level = best_g;
            }
        }
    } else if let Some(pick) = pick_longest(model, cfg, &sets, &order_cpu, Device::Cpu) {
        // No GPU candidate at all: seed the CPU instead.
        let job = take(&mut sets, pick.set_idx, pick.pos);
        running[Device::Cpu.index()] = Some((
            job,
            pick.level,
            model.standalone(job, Device::Cpu, pick.level),
        ));
        schedule.cpu.push(Assignment {
            job,
            level: pick.level,
        });
    }

    // Event loop: advance to the next completion, refill the freed device.
    loop {
        match (running[0], running[1]) {
            (None, None) => break,
            (Some((cj, cl, cr)), Some((gj, gl, gr))) => {
                let s_c = 1.0 + model.degradation(cj, Device::Cpu, cl, gj, gl);
                let s_g = 1.0 + model.degradation(gj, Device::Gpu, gl, cj, cl);
                let t_c = cr * s_c;
                let t_g = gr * s_g;
                let dt = t_c.min(t_g);
                let nc = cr - dt / s_c;
                let ng = gr - dt / s_g;
                running[0] = (nc > 1e-9).then_some((cj, cl, nc));
                running[1] = (ng > 1e-9).then_some((gj, gl, ng));
            }
            (Some(_), None) | (None, Some(_)) => {
                // Lone job: nothing else can change state before it ends.
                running = [None, None];
            }
        }

        // Refill free devices in two passes: first from each device's own
        // preferred (and non-preferred) sets, then — only if still free —
        // from the other device's preferred set, and only when the steal is
        // profitable (running the job here must beat waiting for its
        // preferred device behind that device's remaining backlog).
        for own_only in [true, false] {
            for device in Device::ALL {
                if running[device.index()].is_some() {
                    continue;
                }
                let order = match device {
                    Device::Cpu => &order_cpu,
                    Device::Gpu => &order_gpu,
                };
                let restricted: [usize; 3] = if own_only {
                    // own preferred set + non-preferred only (sentinel 9
                    // skips the other-preferred set)
                    [order[0], order[1], usize::MAX]
                } else {
                    *order
                };
                let co = running[device.other().index()];
                let picked = match co {
                    Some((co_job, co_level, _)) => pick_least_interference(
                        model,
                        cfg,
                        &sets,
                        &restricted,
                        device,
                        co_job,
                        co_level,
                    ),
                    None => pick_longest(model, cfg, &sets, &restricted, device),
                };
                let Some(pick) = picked else { continue };
                // Steal check: a pick from the other device's preferred set
                // must be profitable versus waiting.
                if pick.set_idx == order[2] {
                    let t_here = model.standalone(sets[pick.set_idx][pick.pos], device, pick.level);
                    let job = sets[pick.set_idx][pick.pos];
                    let other = device.other();
                    let ko = model.levels(other) - 1;
                    let t_there = model.standalone(job, other, ko);
                    // Backlog ahead of the job on its preferred device: the
                    // rest of that device's preferred set plus the running
                    // job's remaining time.
                    let mut backlog: f64 = sets[order[2]]
                        .iter()
                        .filter(|&&y| y != job)
                        .map(|&y| model.standalone(y, other, ko))
                        .sum();
                    if let Some((_, _, rem)) = running[other.index()] {
                        backlog += rem;
                    }
                    if t_here >= backlog + t_there {
                        continue; // let it wait for its preferred device
                    }
                }
                let job = take(&mut sets, pick.set_idx, pick.pos);
                running[device.index()] =
                    Some((job, pick.level, model.standalone(job, device, pick.level)));
                schedule.queue_mut(device).push(Assignment {
                    job,
                    level: pick.level,
                });
            }
        }

        if running.iter().all(std::option::Option::is_none)
            && sets.iter().all(std::vec::Vec::is_empty)
        {
            break;
        }
        if running.iter().all(std::option::Option::is_none) {
            // Candidates remain but none could be dispatched (no feasible
            // level even alone): push them to the solo fallback.
            for set in &mut sets {
                seq_fallback.append(set);
            }
            break;
        }
    }

    // Solo tail: S_seq jobs (and any fallback) on their best device.
    for &job in s_seq.iter().chain(seq_fallback.iter()) {
        if let Some((device, level, _)) = best_solo_placement(model, job, cfg.cap_w) {
            schedule.solo_tail.push(SoloRun { job, device, level });
        } else {
            // Nothing fits the cap even at the floor: run at the floor on
            // the faster device; the runtime governor will do what it can.
            let device =
                if model.standalone(job, Device::Cpu, 0) <= model.standalone(job, Device::Gpu, 0) {
                    Device::Cpu
                } else {
                    Device::Gpu
                };
            schedule.solo_tail.push(SoloRun {
                job,
                device,
                level: 0,
            });
        }
    }

    schedule
}

fn take(sets: &mut [Vec<JobId>; 3], set_idx: usize, pos: usize) -> JobId {
    sets[set_idx].remove(pos)
}

/// First non-empty set in preference order; pick its longest job (by time
/// at the best cap-feasible solo level on `device`).
fn pick_longest(
    model: &dyn CoRunModel,
    cfg: &HcsConfig,
    sets: &[Vec<JobId>; 3],
    order: &[usize; 3],
    device: Device,
) -> Option<Pick> {
    for &si in order {
        if si >= sets.len() || sets[si].is_empty() {
            continue;
        }
        let mut best: Option<(usize, usize, f64)> = None; // (pos, level, time)
        for (pos, &job) in sets[si].iter().enumerate() {
            let Some((level, t)) = best_solo_run(model, job, device, cfg.cap_w) else {
                continue;
            };
            if best.is_none_or(|(_, _, bt)| t > bt) {
                best = Some((pos, level, t));
            }
        }
        if let Some((pos, level, _)) = best {
            return Some(Pick {
                set_idx: si,
                pos,
                level,
            });
        }
    }
    None
}

/// First non-empty set in preference order; pick the job minimizing the sum
/// of co-run degradations against the fixed co-runner (the paper's "least
/// co-run interference" criterion). The job's own frequency level is chosen
/// among cap-feasible ones to *maximize its performance* — minimize its
/// predicted co-run time `l(f) * (1 + d(f))` — since lowering the clock
/// always lowers interference but defeats the purpose.
fn pick_least_interference(
    model: &dyn CoRunModel,
    cfg: &HcsConfig,
    sets: &[Vec<JobId>; 3],
    order: &[usize; 3],
    device: Device,
    co_job: JobId,
    co_level: usize,
) -> Option<Pick> {
    for &si in order {
        if si >= sets.len() || sets[si].is_empty() {
            continue;
        }
        let mut best: Option<(usize, usize, f64)> = None; // (pos, level, deg sum)
        for (pos, &job) in sets[si].iter().enumerate() {
            let k = model.levels(device);
            let mut local: Option<(usize, f64, f64)> = None; // (level, corun time, deg sum)
            for f in 0..k {
                let power = match device {
                    Device::Cpu => model.corun_power(Some((job, f)), Some((co_job, co_level))),
                    Device::Gpu => model.corun_power(Some((co_job, co_level)), Some((job, f))),
                };
                if power > cfg.cap_w {
                    continue;
                }
                let d_own = model.degradation(job, device, f, co_job, co_level);
                let d_co = model.degradation(co_job, device.other(), co_level, job, f);
                let t_own = model.standalone(job, device, f) * (1.0 + d_own);
                if local.is_none_or(|(_, bt, _)| t_own < bt - 1e-12) {
                    local = Some((f, t_own, d_own + d_co));
                }
            }
            if let Some((f, _, sum)) = local {
                if best.is_none_or(|(_, _, bs)| sum < bs) {
                    best = Some((pos, f, sum));
                }
            }
        }
        if let Some((pos, level, _)) = best {
            return Some(Pick {
                set_idx: si,
                pos,
                level,
            });
        }
    }
    None
}

/// Like [`pick_least_interference`] for the *first* CPU dispatch, where the
/// GPU co-runner's level is still free: jointly traverse the feasible
/// `(f, g)` grid. Returns the pick plus the best GPU level.
fn pick_least_interference_joint(
    model: &dyn CoRunModel,
    cfg: &HcsConfig,
    sets: &[Vec<JobId>; 3],
    order: &[usize; 3],
    gpu_job: JobId,
) -> Option<(Pick, usize)> {
    for &si in order {
        if si >= sets.len() || sets[si].is_empty() {
            continue;
        }
        // Per candidate: levels minimizing the pair's conservative makespan
        // (max of the two co-run times); candidates ranked by interference.
        let mut best: Option<(usize, usize, usize, f64)> = None; // (pos, f, g, deg sum)
        for (pos, &job) in sets[si].iter().enumerate() {
            let mut local: Option<(usize, usize, f64, f64)> = None; // (f, g, span, sum)
            for (f, g) in feasible_pair_settings(model, job, gpu_job, cfg.cap_w) {
                let d_c = model.degradation(job, Device::Cpu, f, gpu_job, g);
                let d_g = model.degradation(gpu_job, Device::Gpu, g, job, f);
                let t_c = model.standalone(job, Device::Cpu, f) * (1.0 + d_c);
                let t_g = model.standalone(gpu_job, Device::Gpu, g) * (1.0 + d_g);
                let span = t_c.max(t_g);
                if local.is_none_or(|(_, _, bsp, _)| span < bsp - 1e-12) {
                    local = Some((f, g, span, d_c + d_g));
                }
            }
            if let Some((f, g, _, sum)) = local {
                if best.is_none_or(|(_, _, _, bs)| sum < bs) {
                    best = Some((pos, f, g, sum));
                }
            }
        }
        if let Some((pos, f, g, _)) = best {
            return Some((
                Pick {
                    set_idx: si,
                    pos,
                    level: f,
                },
                g,
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::model::test_model::synthetic;
    use crate::model::TableModel;

    #[test]
    fn empty_batch() {
        let m = synthetic(0, 4, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        assert!(out.schedule.is_empty());
    }

    #[test]
    fn single_job_runs_somewhere() {
        let m = synthetic(1, 4, 4);
        let out = hcs(&m, &HcsConfig::uncapped());
        assert!(out.schedule.is_complete_for(1));
    }

    #[test]
    fn schedule_is_complete_permutation() {
        for n in [2, 4, 7, 10] {
            let m = synthetic(n, 6, 5);
            let out = hcs(&m, &HcsConfig::uncapped());
            assert!(out.schedule.is_complete_for(n), "n={n}: {}", out.schedule);
        }
    }

    #[test]
    fn capped_schedule_respects_cap_in_model() {
        let m = synthetic(8, 6, 5);
        let cap = 16.0;
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        assert!(out.schedule.is_complete_for(8));
        let r = evaluate(&m, &out.schedule, Some(cap));
        assert!(r.cap_ok, "peak {} over cap {cap}", r.peak_power_w);
    }

    #[test]
    fn hostile_jobs_go_to_sequential() {
        // Degradations of 90% on 2 equal jobs: l*d = 0.9l > l? No: 0.9l < l,
        // still beneficial. Make degradation 120% so l*d > l.
        let m = TableModel::build(
            vec!["a".into(), "b".into()],
            2,
            2,
            4.0,
            |_i, _d, _f| 10.0,
            |_i, _d, _f, _j, _g| 1.2,
            |_i, _d, _f| 5.0,
        );
        let (s_co, s_seq) = partition(&m, &HcsConfig::uncapped());
        assert!(s_co.is_empty());
        assert_eq!(s_seq, vec![0, 1]);
        let out = hcs(&m, &HcsConfig::uncapped());
        assert_eq!(out.schedule.solo_tail.len(), 2);
        assert!(out.schedule.cpu.is_empty() && out.schedule.gpu.is_empty());
    }

    #[test]
    fn friendly_jobs_corun() {
        let m = TableModel::build(
            vec!["a".into(), "b".into()],
            2,
            2,
            4.0,
            |_i, _d, _f| 10.0,
            |_i, _d, _f, _j, _g| 0.05,
            |_i, _d, _f| 5.0,
        );
        let out = hcs(&m, &HcsConfig::uncapped());
        assert_eq!(out.schedule.solo_tail.len(), 0);
        assert_eq!(out.schedule.cpu.len() + out.schedule.gpu.len(), 2);
        assert!(out.s_seq.is_empty());
    }

    #[test]
    fn categorize_uses_threshold() {
        // CPU time 10, GPU time 11.5: 15% apart -> Non at D=0.2, Cpu at D=0.1.
        let m = TableModel::build(
            vec!["a".into()],
            2,
            2,
            4.0,
            |_i, d, _f| match d {
                Device::Cpu => 10.0,
                Device::Gpu => 11.5,
            },
            |_i, _d, _f, _j, _g| 0.1,
            |_i, _d, _f| 5.0,
        );
        let mut cfg = HcsConfig::uncapped();
        assert_eq!(categorize(&m, &cfg, 0), Preference::Non);
        cfg.preference_threshold = 0.10;
        assert_eq!(categorize(&m, &cfg, 0), Preference::Cpu);
    }

    #[test]
    fn hcs_beats_naive_all_on_one_device() {
        let m = synthetic(8, 6, 5);
        let out = hcs(&m, &HcsConfig::uncapped());
        let hcs_span = evaluate(&m, &out.schedule, None).makespan_s;
        // Naive: everything on the GPU at max level, sequentially.
        let mut naive = Schedule::new();
        for i in 0..8 {
            naive.gpu.push(Assignment { job: i, level: 4 });
        }
        let naive_span = evaluate(&m, &naive, None).makespan_s;
        assert!(
            hcs_span < naive_span * 0.8,
            "hcs {hcs_span} vs single-device {naive_span}"
        );
    }

    #[test]
    fn tighter_cap_does_not_break_completeness() {
        let m = synthetic(6, 6, 5);
        for cap in [30.0, 18.0, 14.0, 10.0, 7.0] {
            let out = hcs(&m, &HcsConfig::with_cap(cap));
            assert!(out.schedule.is_complete_for(6), "cap {cap}");
        }
    }

    #[test]
    fn tighter_cap_never_speeds_up_schedule() {
        let m = synthetic(8, 6, 5);
        let loose = evaluate(&m, &hcs(&m, &HcsConfig::with_cap(25.0)).schedule, None).makespan_s;
        let tight = evaluate(&m, &hcs(&m, &HcsConfig::with_cap(11.0)).schedule, None).makespan_s;
        assert!(
            tight >= loose * 0.98,
            "tight cap {tight} should not beat loose cap {loose}"
        );
    }

    #[test]
    fn preference_respected_in_placement() {
        // Two strongly CPU-preferred and two strongly GPU-preferred jobs
        // with mild interference: HCS must place them accordingly.
        let m = TableModel::build(
            vec!["c0".into(), "c1".into(), "g0".into(), "g1".into()],
            3,
            3,
            4.0,
            |i, d, f| {
                let fast = 10.0 / (0.5 + 0.5 * f as f64 / 2.0);
                let slow = 30.0 / (0.5 + 0.5 * f as f64 / 2.0);
                match (i < 2, d) {
                    (true, Device::Cpu) => fast,
                    (true, Device::Gpu) => slow,
                    (false, Device::Cpu) => slow,
                    (false, Device::Gpu) => fast,
                }
            },
            |_i, _d, _f, _j, _g| 0.08,
            |_i, _d, _f| 5.0,
        );
        let out = hcs(&m, &HcsConfig::uncapped());
        let cpu_jobs: Vec<JobId> = out.schedule.cpu.iter().map(|a| a.job).collect();
        let gpu_jobs: Vec<JobId> = out.schedule.gpu.iter().map(|a| a.job).collect();
        assert!(
            cpu_jobs.contains(&0) && cpu_jobs.contains(&1),
            "{}",
            out.schedule
        );
        assert!(
            gpu_jobs.contains(&2) && gpu_jobs.contains(&3),
            "{}",
            out.schedule
        );
    }
}
