//! # corun-core — co-scheduling algorithms for power-capped CPU-GPU packages
//!
//! The algorithmic contribution of *"Co-Run Scheduling with Power Cap on
//! Integrated CPU-GPU Systems"* (Zhu et al., IPDPS 2017), implemented over
//! an abstract [`CoRunModel`]:
//!
//! * [`theorem`] — the Co-Run Theorem and partial-overlap co-run arithmetic;
//! * [`hcs`] — the three-step heuristic co-scheduling algorithm with its
//!   power-cap adaptations;
//! * [`refine`] — the HCS+ three-pass local refinement;
//! * [`bound`] — the lower bound `T_low` on the optimal makespan;
//! * [`baselines`] — Random and Default comparison schedulers;
//! * [`exhaustive`] — small-batch exhaustive search (Section III example);
//! * [`evaluate`] — model-based schedule evaluation (makespan, power, cap);
//! * [`freqgrid`] — cap-feasible frequency enumeration;
//! * [`model`], [`schedule`] — the data model.
//!
//! Extensions beyond the paper:
//!
//! * [`bnb`] — branch-and-bound optimal search (small batches);
//! * [`budget`] — cluster-wide power-budget partitioning across shards;
//! * [`anneal`] — simulated-annealing schedule search;
//! * [`online`] — arrival-driven online policy and model-level replay;
//! * [`chains`] — long-job / short-job-sequence arithmetic and solver;
//! * [`objective`] — energy and energy-delay-product objectives;
//! * [`fairness`] — per-job slowdown and Jain-index metrics.

pub mod anneal;
pub mod baselines;
pub mod bnb;
pub mod bound;
pub mod budget;
pub mod certificate;
pub mod chains;
pub mod clock;
pub mod evaluate;
pub mod exhaustive;
pub mod fairness;
pub mod freqgrid;
pub mod hcs;
pub mod model;
pub mod objective;
pub mod online;
pub mod refine;
pub mod schedule;
pub mod theorem;

pub use anneal::{anneal, AnnealConfig, AnnealOutcome};
pub use baselines::{default_partition, random_schedule, DefaultPartition};
pub use bnb::{branch_and_bound, BnbConfig, BnbResult};
pub use bound::{lower_bound, BoundReport};
pub use budget::{partition_cluster_cap, respects_cluster_cap, ShardDemand};
pub use certificate::{
    certify, parse_certificate, BoundWitness, Certificate, PairWitness, ParsedCertificate,
    SegmentWitness, CERT_FORMAT_VERSION,
};
pub use chains::{best_sequence, chain_completion, ChainOutcome};
pub use clock::{Clock, DetRng, ManualClock, WallClock};
pub use evaluate::{evaluate, EvalReport, Segment};
pub use exhaustive::{exhaustive_uniform, exhaustive_uniform_opts, ExhaustiveResult};
pub use fairness::{fairness, FairnessReport};
pub use freqgrid::{
    best_level_against, best_solo_level, best_solo_placement, best_solo_run, feasible_pair_settings,
};
pub use hcs::{categorize, hcs, partition, HcsConfig, HcsOutcome, Preference};
pub use model::{CoRunModel, JobId, TableModel};
pub use objective::{edp_js, energy_j, objective_value, Objective};
pub use online::{
    evaluate_online, Arrival, OnlinePick, OnlinePolicy, OnlineReport, RequeueOutcome, RetryPolicy,
};
pub use refine::{refine, RefineConfig, RefineOutcome};
pub use schedule::{Assignment, Coverage, Schedule, SoloRun};
pub use theorem::{corun_beneficial, corun_makespan_conservative, pair_completion};
