//! Crate-level property tests for the scheduling stack (beyond the unit
//! proptests in `tests/integration_properties.rs`): the theorem's algebra,
//! the fairness metrics, the chain arithmetic, and objective consistency.

use apu_sim::Device;
use corun_core::{
    chain_completion, corun_beneficial, corun_makespan_conservative, edp_js, energy_j, evaluate,
    fairness, pair_completion, Assignment, CoRunModel, Schedule, TableModel,
};
use proptest::prelude::*;

fn model_from(seed: u64, n: usize) -> TableModel {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    let times: Vec<(f64, f64)> = (0..n)
        .map(|_| (5.0 + 50.0 * next(), 5.0 + 50.0 * next()))
        .collect();
    let degs: Vec<f64> = (0..n * n).map(|_| next() * 0.9).collect();
    TableModel::build(
        (0..n).map(|i| format!("j{i}")).collect(),
        3,
        3,
        4.0,
        move |i, d, f| {
            let (tc, tg) = times[i];
            let t = match d {
                Device::Cpu => tc,
                Device::Gpu => tg,
            };
            t / (0.4 + 0.3 * f as f64)
        },
        move |i, _d, _f, j, _g| degs[i * n + j],
        move |_i, _d, f| 5.0 + 3.0 * f as f64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservative_makespan_upper_bounds_true_pair(
        l1 in 0.5f64..50.0, d1 in 0.0f64..1.5,
        l2 in 0.5f64..50.0, d2 in 0.0f64..1.5,
    ) {
        let (t1, t2) = pair_completion(l1, d1, l2, d2);
        let cons = corun_makespan_conservative(l1, d1, l2, d2);
        prop_assert!(t1.max(t2) <= cons + 1e-9);
        // and the pair is never faster than the slower solo job
        prop_assert!(t1.max(t2) >= l1.max(l2) - 1e-9);
    }

    #[test]
    fn beneficial_corun_really_beats_sequential(
        l1 in 0.5f64..50.0, d1 in 0.0f64..1.5,
        l2 in 0.5f64..50.0, d2 in 0.0f64..1.5,
    ) {
        if corun_beneficial(l1, d1, l2, d2) {
            let (t1, t2) = pair_completion(l1, d1, l2, d2);
            prop_assert!(t1.max(t2) < l1 + l2, "partial overlap only helps further");
        }
    }

    #[test]
    fn chain_equals_evaluator_for_any_sequence(seed in any::<u64>(), n in 3usize..7) {
        let m = model_from(seed, n);
        let seq: Vec<(usize, usize)> = (1..n).map(|j| (j, 2)).collect();
        let chain = chain_completion(&m, 0, Device::Gpu, 2, &seq);
        let mut s = Schedule::new();
        s.gpu.push(Assignment { job: 0, level: 2 });
        for &(j, l) in &seq {
            s.cpu.push(Assignment { job: j, level: l });
        }
        let ev = evaluate(&m, &s, None);
        prop_assert!((chain.makespan_s - ev.makespan_s).abs() < 1e-6);
        prop_assert!((chain.long_finish_s - ev.finish_s[0].unwrap()).abs() < 1e-6);
    }

    #[test]
    fn energy_bounded_by_peak_power(seed in any::<u64>(), n in 2usize..8) {
        let m = model_from(seed, n);
        let mut s = Schedule::new();
        for i in 0..n {
            if i % 2 == 0 {
                s.cpu.push(Assignment { job: i, level: 2 });
            } else {
                s.gpu.push(Assignment { job: i, level: 2 });
            }
        }
        let r = evaluate(&m, &s, None);
        let e = energy_j(&r);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= r.peak_power_w * r.makespan_s + 1e-6);
        prop_assert!((edp_js(&r) - e * r.makespan_s).abs() < 1e-6);
    }

    #[test]
    fn fairness_indices_in_range(seed in any::<u64>(), n in 2usize..8) {
        let m = model_from(seed, n);
        let mut s = Schedule::new();
        for i in 0..n {
            s.gpu.push(Assignment { job: i, level: 2 });
        }
        let r = evaluate(&m, &s, None);
        let f = fairness(&m, &r, f64::INFINITY);
        prop_assert!(f.jain_index > 0.0 && f.jain_index <= 1.0 + 1e-12);
        prop_assert!(f.max_slowdown + 1e-9 >= f.mean_slowdown);
        for sd in f.slowdown.iter().flatten() {
            prop_assert!(*sd >= 0.99, "slowdown below 1: {sd}");
        }
    }

    #[test]
    fn evaluator_finish_times_monotone_within_queue(seed in any::<u64>(), n in 3usize..8) {
        // Jobs later in a queue finish later.
        let m = model_from(seed, n);
        let mut s = Schedule::new();
        for i in 0..n {
            s.cpu.push(Assignment { job: i, level: 2 });
        }
        let r = evaluate(&m, &s, None);
        let mut prev = 0.0;
        for i in 0..n {
            let f = r.finish_s[i].unwrap();
            prop_assert!(f >= prev - 1e-9);
            prev = f;
        }
        let _ = m.len();
    }
}
