//! # apu-sim — integrated CPU-GPU processor simulator
//!
//! A discrete-time simulator of an integrated CPU-GPU package ("APU") with:
//!
//! * per-device DVFS ladders (16 CPU levels, 10 GPU levels on the calibrated
//!   Ivy Bridge preset),
//! * a shared memory subsystem with bandwidth arbitration, cross-device
//!   latency inflation, and LLC interference,
//! * an analytic package power model with RAPL-style sampled enforcement via
//!   pluggable reactive governors,
//! * a roofline execution model over abstract multi-phase jobs.
//!
//! This crate is the hardware substitute for the platform used by
//! *"Co-Run Scheduling with Power Cap on Integrated CPU-GPU Systems"*
//! (Zhu et al., IPDPS 2017): an Intel i7-3520M with HD Graphics 4000, RAPL
//! power capping, and OpenCL workloads. Everything the paper's runtime
//! observes on hardware — standalone run times per frequency, co-run
//! degradations, bandwidth profiles, package power — is produced here with
//! the same qualitative structure.
//!
//! ## Quick start
//!
//! ```
//! use apu_sim::{MachineConfig, Device, run_solo, run_pair, NullGovernor};
//! use apu_sim::work::{JobSpec, PhaseWork};
//!
//! let cfg = MachineConfig::ivy_bridge();
//! let job = apu_sim::work::single_phase_job("demo", PhaseWork {
//!     flops: 450.0, bytes: 55.0,
//!     cpu_eff: 1.0, gpu_eff: 0.8,
//!     llc_footprint_mib: 64.0, llc_sensitivity: 0.0, llc_pressure: 0.6,
//!     llc_miss_bw_gbps: 0.0,
//!     overlap: 0.2,
//! });
//! let solo = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
//! assert!(solo.time_s > 0.0);
//! ```

pub mod config;
pub mod device;
pub mod engine;
pub mod events;
pub mod faults;
pub mod freq;
pub mod governor;
pub mod memory;
pub mod power;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod stats;
pub mod validate;
pub mod work;

pub use config::{MachineConfig, MultiprogParams};
pub use device::{Device, DeviceParams, PerDevice};
pub use engine::{
    run_pair, run_solo, run_with_background, Dispatch, DispatchCtx, DispatchJob, Dispatcher,
    Engine, EngineMode, JobFailure, JobRecord, PairOutcome, RunOptions, RunReport, Session,
    SessionState, SimError, SoloOutcome,
};
pub use events::{Event, EventKind, EventLog};
pub use faults::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, JobFaultProfile, MachineCrash, MeterSpike,
};
pub use freq::{FreqLevel, FreqSetting, FreqTable, PackageFreqs};
pub use governor::{Bias, BiasedGovernor, Governor, NullGovernor, OndemandGovernor};
pub use memory::{Arbitration, ContentionKind, MemoryParams};
pub use power::{DeviceActivity, PackagePowerParams, PowerModel, PowerTrace};
pub use stats::{run_stats, RunStats};
pub use validate::{validate, validated, ConfigIssue};
pub use work::{single_phase_job, JobSpec, PhaseWork};
