//! Abstract workload description consumed by the simulator.
//!
//! A job is a sequence of *phases*; each phase is characterized by its total
//! compute work, its total DRAM traffic, per-device efficiency factors (how
//! much of a device's peak throughput the kernel's control flow and
//! parallelism can exploit — GPU-hostile kernels like dwt2d have low GPU
//! efficiency), and its LLC behaviour. This mirrors what the paper's OpenCL
//! jobs look like to the memory system, without executing real kernels.

use crate::device::Device;
use crate::device::DeviceParams;
use serde::{Deserialize, Serialize};

/// One execution phase of a job (roughly: one OpenCL kernel invocation
/// region with a stable compute/memory mix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseWork {
    /// Total useful compute in GFLOP.
    pub flops: f64,
    /// Total DRAM traffic in GB when the working set streams (no LLC help
    /// beyond what's already accounted) and no co-runner thrashes the LLC.
    pub bytes: f64,
    /// Fraction of CPU peak compute throughput this phase achieves.
    pub cpu_eff: f64,
    /// Fraction of GPU peak compute throughput this phase achieves.
    pub gpu_eff: f64,
    /// Working-set size in MiB (drives LLC residency).
    pub llc_footprint_mib: f64,
    /// How strongly LLC eviction inflates this phase's DRAM traffic
    /// (multiplier coefficient; 0 = insensitive).
    pub llc_sensitivity: f64,
    /// How aggressively this phase evicts the co-runner's LLC lines, `[0,1]`.
    pub llc_pressure: f64,
    /// Effective bandwidth (GB/s) at which *thrash-induced* extra traffic
    /// streams. Misses caused by LLC eviction are dependent-latency-bound
    /// rather than streaming, so they move far slower than the device's
    /// peak bandwidth and exert little pressure on the co-runner.
    /// `0.0` means "use the device's full bandwidth".
    pub llc_miss_bw_gbps: f64,
    /// Compute/memory overlap coefficient `ov`: phase time is
    /// `max(Tc, Tm) + ov * min(Tc, Tm)` (0 = perfect overlap, 1 = serial).
    pub overlap: f64,
}

impl PhaseWork {
    /// Compute efficiency on `device`.
    #[inline]
    pub fn efficiency(&self, device: Device) -> f64 {
        match device {
            Device::Cpu => self.cpu_eff,
            Device::Gpu => self.gpu_eff,
        }
    }

    /// Compute time of this phase on `device` at `f_ghz` (seconds).
    pub fn compute_time(&self, dev: &DeviceParams, device: Device, f_ghz: f64) -> f64 {
        let rate = dev.compute_rate(f_ghz) * self.efficiency(device);
        if self.flops <= 0.0 {
            0.0
        } else {
            self.flops / rate
        }
    }

    /// Phase time given a compute time and a memory time, using the overlap
    /// model `max + ov * min`.
    #[inline]
    pub fn combine(&self, tc: f64, tm: f64) -> f64 {
        tc.max(tm) + self.overlap * tc.min(tm)
    }

    /// Solo (uncontended) phase time on `device` at `f_ghz`.
    pub fn solo_time(&self, dev: &DeviceParams, device: Device, f_ghz: f64, f_max: f64) -> f64 {
        let tc = self.compute_time(dev, device, f_ghz);
        let bw = dev.solo_bandwidth(f_ghz, f_max);
        let tm = if self.bytes <= 0.0 {
            0.0
        } else {
            self.bytes / bw
        };
        self.combine(tc, tm)
    }

    /// Steady-state solo DRAM demand of this phase on `device` at `f_ghz`
    /// (GB/s): traffic divided by phase time.
    pub fn solo_demand(&self, dev: &DeviceParams, device: Device, f_ghz: f64, f_max: f64) -> f64 {
        let t = self.solo_time(dev, device, f_ghz, f_max);
        if t <= 0.0 {
            0.0
        } else {
            self.bytes / t
        }
    }

    /// Whether this phase performs any work at all.
    pub fn is_trivial(&self) -> bool {
        self.flops <= 0.0 && self.bytes <= 0.0
    }
}

/// A complete job: named sequence of phases plus low-level texture
/// (demand jitter) that makes ground-truth runs richer than what the
/// steady-state predictive model sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable job name (e.g. the Rodinia benchmark name).
    pub name: String,
    /// Execution phases, run in order.
    pub phases: Vec<PhaseWork>,
    /// Serial host-side setup time in seconds (context creation, transfers);
    /// runs before the first phase at negligible device activity.
    pub host_setup_s: f64,
    /// Relative amplitude of the sinusoidal memory-demand modulation.
    pub jitter_amp: f64,
    /// Period of the modulation, seconds.
    pub jitter_period_s: f64,
    /// Phase offset of the modulation, radians.
    pub jitter_phase: f64,
}

impl JobSpec {
    /// A job with no jitter and no host setup.
    pub fn plain(name: impl Into<String>, phases: Vec<PhaseWork>) -> Self {
        JobSpec {
            name: name.into(),
            phases,
            host_setup_s: 0.0,
            jitter_amp: 0.0,
            jitter_period_s: 1.0,
            jitter_phase: 0.0,
        }
    }

    /// Instantaneous jitter multiplier on memory traffic at time `t`.
    #[inline]
    pub fn jitter(&self, t: f64) -> f64 {
        if self.jitter_amp == 0.0 {
            return 1.0;
        }
        let w = 2.0 * std::f64::consts::PI / self.jitter_period_s;
        (1.0 + self.jitter_amp * (w * t + self.jitter_phase).sin()).max(0.05)
    }

    /// Solo (uncontended, steady-state) run time on `device` at `f_ghz`.
    pub fn solo_time(&self, dev: &DeviceParams, device: Device, f_ghz: f64, f_max: f64) -> f64 {
        self.host_setup_s
            + self
                .phases
                .iter()
                .map(|p| p.solo_time(dev, device, f_ghz, f_max))
                .sum::<f64>()
    }

    /// Traffic-weighted average solo DRAM demand on `device` at `f_ghz`
    /// (GB/s) — the job's coordinate in the co-run degradation space.
    pub fn avg_demand(&self, dev: &DeviceParams, device: Device, f_ghz: f64, f_max: f64) -> f64 {
        let t = self.solo_time(dev, device, f_ghz, f_max);
        if t <= 0.0 {
            return 0.0;
        }
        let bytes: f64 = self.phases.iter().map(|p| p.bytes).sum();
        bytes / t
    }

    /// Total DRAM traffic in GB.
    pub fn total_bytes(&self) -> f64 {
        self.phases.iter().map(|p| p.bytes).sum()
    }

    /// Total compute in GFLOP.
    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    /// Maximum LLC pressure any phase exerts (used by coarse pair analyses).
    pub fn max_llc_pressure(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.llc_pressure)
            .fold(0.0, f64::max)
    }
}

/// Convenience builder for a single-phase job, used widely in tests and by
/// the micro-benchmark.
pub fn single_phase_job(name: impl Into<String>, phase: PhaseWork) -> JobSpec {
    JobSpec::plain(name, vec![phase])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceParams {
        DeviceParams {
            gflops_per_ghz: 25.0,
            bw_peak_gbps: 11.0,
            bw_freq_floor: 0.6,
            idle_power_w: 1.5,
            dyn_power_w: 10.0,
            dyn_power_exp: 2.4,
            mem_power_w_per_gbps: 0.1,
            stall_power_frac: 0.4,
        }
    }

    fn phase(flops: f64, bytes: f64) -> PhaseWork {
        PhaseWork {
            flops,
            bytes,
            cpu_eff: 1.0,
            gpu_eff: 0.5,
            llc_footprint_mib: 64.0,
            llc_sensitivity: 0.0,
            llc_pressure: 0.5,
            llc_miss_bw_gbps: 0.0,
            overlap: 0.2,
        }
    }

    #[test]
    fn compute_bound_phase_time() {
        let p = phase(900.0, 0.0); // 900 GFLOP, no memory
        let t = p.solo_time(&dev(), Device::Cpu, 3.6, 3.6);
        // 900 / (25*3.6) = 10 s
        assert!((t - 10.0).abs() < 1e-9);
        assert_eq!(p.solo_demand(&dev(), Device::Cpu, 3.6, 3.6), 0.0);
    }

    #[test]
    fn memory_bound_phase_time() {
        let p = phase(0.0, 110.0); // 110 GB
        let t = p.solo_time(&dev(), Device::Cpu, 3.6, 3.6);
        assert!((t - 10.0).abs() < 1e-9); // 110 / 11
        let d = p.solo_demand(&dev(), Device::Cpu, 3.6, 3.6);
        assert!((d - 11.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_model_mixed_phase() {
        let p = phase(900.0, 55.0); // Tc = 10, Tm = 5
        let t = p.solo_time(&dev(), Device::Cpu, 3.6, 3.6);
        assert!((t - (10.0 + 0.2 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_changes_compute_time_per_device() {
        let p = phase(900.0, 0.0);
        let tc_cpu = p.compute_time(&dev(), Device::Cpu, 3.6);
        let tc_gpu = p.compute_time(&dev(), Device::Gpu, 3.6);
        assert!((tc_gpu / tc_cpu - 2.0).abs() < 1e-9); // gpu_eff = 0.5
    }

    #[test]
    fn lower_freq_slows_compute_more_than_memory() {
        let comp = phase(900.0, 0.0);
        let mem = phase(0.0, 110.0);
        let d = dev();
        let rc =
            comp.solo_time(&d, Device::Cpu, 1.2, 3.6) / comp.solo_time(&d, Device::Cpu, 3.6, 3.6);
        let rm =
            mem.solo_time(&d, Device::Cpu, 1.2, 3.6) / mem.solo_time(&d, Device::Cpu, 3.6, 3.6);
        assert!((rc - 3.0).abs() < 1e-9, "compute slows 3x at 1/3 clock");
        assert!(
            rm < 1.5,
            "memory-bound work is much less frequency-sensitive"
        );
    }

    #[test]
    fn job_times_sum_phases_plus_host() {
        let mut j = JobSpec::plain("t", vec![phase(900.0, 0.0), phase(0.0, 110.0)]);
        j.host_setup_s = 0.5;
        let t = j.solo_time(&dev(), Device::Cpu, 3.6, 3.6);
        assert!((t - 20.5).abs() < 1e-9);
        assert_eq!(j.total_bytes(), 110.0);
        assert_eq!(j.total_flops(), 900.0);
    }

    #[test]
    fn jitter_bounds() {
        let mut j = JobSpec::plain("t", vec![]);
        j.jitter_amp = 0.3;
        j.jitter_period_s = 2.0;
        for i in 0..100 {
            let g = j.jitter(i as f64 * 0.05);
            assert!((0.7 - 1e-9..=1.3 + 1e-9).contains(&g));
        }
        j.jitter_amp = 0.0;
        assert_eq!(j.jitter(1.234), 1.0);
    }

    #[test]
    fn avg_demand_weighted() {
        let j = JobSpec::plain("t", vec![phase(900.0, 0.0), phase(0.0, 110.0)]);
        // total 110 GB over 20 s
        let d = j.avg_demand(&dev(), Device::Cpu, 3.6, 3.6);
        assert!((d - 5.5).abs() < 1e-9);
    }

    #[test]
    fn trivial_phase_detection() {
        assert!(phase(0.0, 0.0).is_trivial());
        assert!(!phase(1.0, 0.0).is_trivial());
    }
}
