//! Reactive DVFS governors.
//!
//! The paper's baseline schedulers (Random, Default) have no power planning
//! of their own; when the sampled package power exceeds the cap they react
//! by lowering frequencies with one of two biases (Section VI-A):
//!
//! * **GPU-biased** — protect GPU throughput: lower the CPU clock first,
//!   touch the GPU only when the CPU is already at its floor; when there is
//!   headroom, raise the GPU first.
//! * **CPU-biased** — the mirror image.
//!
//! Because governors only act at the power-sampling granularity, transient
//! overshoots above the cap survive for up to one sample interval — the
//! behaviour the paper observes in Figure 9 (overshoot typically < 2 W).

use crate::device::{Device, PerDevice};
use crate::freq::{FreqSetting, PackageFreqs};

/// A reactive frequency policy consulted once per power sample.
pub trait Governor {
    /// Observe the average package power over the last sample window and
    /// return the frequency setting to use next.
    fn on_sample(
        &mut self,
        now_s: f64,
        avg_power_w: f64,
        setting: FreqSetting,
        freqs: &PackageFreqs,
    ) -> FreqSetting;

    /// Extended hook additionally carrying each device's average compute
    /// utilization over the window. The engine calls this; the default
    /// implementation ignores utilization and defers to
    /// [`Governor::on_sample`]. Utilization-driven policies (e.g.
    /// [`OndemandGovernor`]) override it.
    fn on_sample_util(
        &mut self,
        now_s: f64,
        avg_power_w: f64,
        util: PerDevice<f64>,
        setting: FreqSetting,
        freqs: &PackageFreqs,
    ) -> FreqSetting {
        let _ = util;
        self.on_sample(now_s, avg_power_w, setting, freqs)
    }
}

/// A governor that never changes frequencies (used when the scheduler has
/// already planned power-cap-feasible settings, as HCS does).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullGovernor;

impl Governor for NullGovernor {
    fn on_sample(
        &mut self,
        _now_s: f64,
        _avg_power_w: f64,
        setting: FreqSetting,
        _freqs: &PackageFreqs,
    ) -> FreqSetting {
        setting
    }
}

/// Which device's throughput the reactive governor protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Protect the GPU: shed CPU frequency first, restore GPU first.
    Gpu,
    /// Protect the CPU: shed GPU frequency first, restore CPU first.
    Cpu,
}

impl Bias {
    /// The device whose frequency is lowered first.
    fn victim(self) -> Device {
        match self {
            Bias::Gpu => Device::Cpu,
            Bias::Cpu => Device::Gpu,
        }
    }

    /// The device whose frequency is raised first.
    fn favorite(self) -> Device {
        self.victim().other()
    }
}

/// The paper's reactive cap-enforcement policy with a configurable bias.
#[derive(Debug, Clone)]
pub struct BiasedGovernor {
    /// Power cap in watts.
    pub cap_w: f64,
    /// Raise frequencies only when power is below `cap_w - headroom_w`.
    pub headroom_w: f64,
    /// Governor bias.
    pub bias: Bias,
    /// Levels stepped per reaction (1 = gentle).
    pub step: usize,
}

impl BiasedGovernor {
    /// A GPU-biased governor for the given cap with a default 1.2 W raise
    /// headroom and single-level steps.
    pub fn gpu_biased(cap_w: f64) -> Self {
        BiasedGovernor {
            cap_w,
            headroom_w: 1.2,
            bias: Bias::Gpu,
            step: 1,
        }
    }

    /// A CPU-biased governor with the same defaults.
    pub fn cpu_biased(cap_w: f64) -> Self {
        BiasedGovernor {
            cap_w,
            headroom_w: 1.2,
            bias: Bias::Cpu,
            step: 1,
        }
    }

    fn lower(&self, setting: FreqSetting, freqs: &PackageFreqs) -> FreqSetting {
        let first = self.bias.victim();
        let second = first.other();
        let lvl = setting.level(first);
        if lvl > 0 {
            setting.with_level(first, lvl.saturating_sub(self.step))
        } else {
            let lvl2 = setting.level(second);
            if lvl2 > 0 {
                setting.with_level(second, lvl2.saturating_sub(self.step))
            } else {
                setting // already at the floor everywhere
            }
        }
        .clamp_to(freqs)
    }

    fn raise(&self, setting: FreqSetting, freqs: &PackageFreqs) -> FreqSetting {
        let first = self.bias.favorite();
        let second = first.other();
        let max1 = freqs.table(first).max_level();
        let lvl = setting.level(first);
        if lvl < max1 {
            setting.with_level(first, (lvl + self.step).min(max1))
        } else {
            let max2 = freqs.table(second).max_level();
            let lvl2 = setting.level(second);
            if lvl2 < max2 {
                setting.with_level(second, (lvl2 + self.step).min(max2))
            } else {
                setting
            }
        }
    }
}

trait ClampExt {
    fn clamp_to(self, freqs: &PackageFreqs) -> Self;
}

impl ClampExt for FreqSetting {
    fn clamp_to(self, freqs: &PackageFreqs) -> FreqSetting {
        FreqSetting::new(
            self.cpu.min(freqs.cpu.max_level()),
            self.gpu.min(freqs.gpu.max_level()),
        )
    }
}

impl Governor for BiasedGovernor {
    fn on_sample(
        &mut self,
        _now_s: f64,
        avg_power_w: f64,
        setting: FreqSetting,
        freqs: &PackageFreqs,
    ) -> FreqSetting {
        if avg_power_w > self.cap_w {
            self.lower(setting, freqs)
        } else if avg_power_w < self.cap_w - self.headroom_w {
            self.raise(setting, freqs)
        } else {
            setting
        }
    }
}

/// A Linux-ondemand-style governor under a power cap: raises a device's
/// clock when its utilization is high, lowers it when low — but sheds
/// frequency (most-utilized device last) whenever the cap is exceeded.
///
/// Unlike the biased governors it has no fixed victim: the watts follow
/// the work. Not part of the paper's evaluation; provided as a more
/// realistic OS baseline.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    /// Power cap in watts.
    pub cap_w: f64,
    /// Raise a device above this utilization.
    pub up_threshold: f64,
    /// Lower a device below this utilization.
    pub down_threshold: f64,
}

impl OndemandGovernor {
    /// Defaults mirroring the Linux governor's spirit: raise above 80%,
    /// lower below 30%.
    pub fn new(cap_w: f64) -> Self {
        OndemandGovernor {
            cap_w,
            up_threshold: 0.8,
            down_threshold: 0.3,
        }
    }
}

impl Governor for OndemandGovernor {
    fn on_sample(
        &mut self,
        _now_s: f64,
        avg_power_w: f64,
        setting: FreqSetting,
        freqs: &PackageFreqs,
    ) -> FreqSetting {
        // Without utilization data, act like a cap-only limiter.
        if avg_power_w > self.cap_w {
            let lvl = setting.cpu;
            if lvl > 0 {
                setting.with_level(Device::Cpu, lvl - 1)
            } else if setting.gpu > 0 {
                setting.with_level(Device::Gpu, setting.gpu - 1)
            } else {
                setting
            }
        } else {
            let _ = freqs;
            setting
        }
    }

    fn on_sample_util(
        &mut self,
        _now_s: f64,
        avg_power_w: f64,
        util: PerDevice<f64>,
        setting: FreqSetting,
        freqs: &PackageFreqs,
    ) -> FreqSetting {
        if avg_power_w > self.cap_w {
            // Shed from the *less* utilized device first.
            let victim = if util.cpu <= util.gpu {
                Device::Cpu
            } else {
                Device::Gpu
            };
            let order = [victim, victim.other()];
            for d in order {
                let lvl = setting.level(d);
                if lvl > 0 {
                    return setting.with_level(d, lvl - 1);
                }
            }
            return setting;
        }
        // Raise busy devices only with real power headroom; lower idle
        // ones regardless (that only saves watts).
        let headroom = avg_power_w < self.cap_w - 1.2;
        let mut s = setting;
        for d in Device::ALL {
            let u = *util.get(d);
            let lvl = s.level(d);
            let max = freqs.table(d).max_level();
            if headroom && u > self.up_threshold && lvl < max {
                s = s.with_level(d, lvl + 1);
            } else if u < self.down_threshold && lvl > 0 {
                s = s.with_level(d, lvl - 1);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;

    fn freqs() -> PackageFreqs {
        PackageFreqs {
            cpu: FreqTable::linear(1.2, 3.6, 16),
            gpu: FreqTable::linear(0.35, 1.25, 10),
        }
    }

    #[test]
    fn null_governor_is_identity() {
        let f = freqs();
        let s = FreqSetting::new(3, 4);
        assert_eq!(NullGovernor.on_sample(0.0, 99.0, s, &f), s);
    }

    #[test]
    fn gpu_biased_sheds_cpu_first() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(10, 5);
        let s2 = g.on_sample(0.0, 20.0, s, &f);
        assert_eq!(s2, FreqSetting::new(9, 5));
    }

    #[test]
    fn gpu_biased_sheds_gpu_only_at_cpu_floor() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(0, 5);
        let s2 = g.on_sample(0.0, 20.0, s, &f);
        assert_eq!(s2, FreqSetting::new(0, 4));
    }

    #[test]
    fn gpu_biased_raises_gpu_first() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(5, 5);
        let s2 = g.on_sample(0.0, 10.0, s, &f);
        assert_eq!(s2, FreqSetting::new(5, 6));
    }

    #[test]
    fn gpu_biased_raises_cpu_when_gpu_maxed() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(5, 9);
        let s2 = g.on_sample(0.0, 10.0, s, &f);
        assert_eq!(s2, FreqSetting::new(6, 9));
    }

    #[test]
    fn cpu_biased_mirrors() {
        let f = freqs();
        let mut g = BiasedGovernor::cpu_biased(15.0);
        assert_eq!(
            g.on_sample(0.0, 20.0, FreqSetting::new(10, 5), &f),
            FreqSetting::new(10, 4)
        );
        assert_eq!(
            g.on_sample(0.0, 10.0, FreqSetting::new(10, 5), &f),
            FreqSetting::new(11, 5)
        );
        assert_eq!(
            g.on_sample(0.0, 20.0, FreqSetting::new(10, 0), &f),
            FreqSetting::new(9, 0)
        );
    }

    #[test]
    fn dead_band_holds_setting() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(5, 5);
        assert_eq!(g.on_sample(0.0, 14.5, s, &f), s, "inside dead band");
    }

    #[test]
    fn floor_is_stable() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(0, 0);
        assert_eq!(
            g.on_sample(0.0, 40.0, s, &f),
            s,
            "cannot go below the floor"
        );
    }

    #[test]
    fn ceiling_is_stable() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(15, 9);
        assert_eq!(
            g.on_sample(0.0, 1.0, s, &f),
            s,
            "cannot go above the ceiling"
        );
    }

    #[test]
    fn ondemand_raises_busy_lowers_idle() {
        let f = freqs();
        let mut g = OndemandGovernor::new(15.0);
        let s = FreqSetting::new(5, 5);
        let out = g.on_sample_util(0.0, 10.0, PerDevice::new(0.95, 0.1), s, &f);
        assert_eq!(
            out,
            FreqSetting::new(6, 4),
            "raise busy CPU, lower idle GPU"
        );
    }

    #[test]
    fn ondemand_sheds_idle_device_first_over_cap() {
        let f = freqs();
        let mut g = OndemandGovernor::new(15.0);
        let s = FreqSetting::new(5, 5);
        let out = g.on_sample_util(0.0, 18.0, PerDevice::new(0.2, 0.9), s, &f);
        assert_eq!(out, FreqSetting::new(4, 5), "the idle CPU pays first");
        let out2 = g.on_sample_util(0.0, 18.0, PerDevice::new(0.9, 0.2), s, &f);
        assert_eq!(out2, FreqSetting::new(5, 4));
    }

    #[test]
    fn ondemand_default_hook_acts_as_cap_limiter() {
        let f = freqs();
        let mut g = OndemandGovernor::new(15.0);
        let s = FreqSetting::new(5, 5);
        assert_eq!(g.on_sample(0.0, 18.0, s, &f), FreqSetting::new(4, 5));
        assert_eq!(g.on_sample(0.0, 10.0, s, &f), s);
    }

    #[test]
    fn default_trait_hook_defers_to_on_sample() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let s = FreqSetting::new(10, 5);
        let a = g.on_sample_util(0.0, 20.0, PerDevice::new(0.5, 0.5), s, &f);
        let b = g.on_sample(0.0, 20.0, s, &f);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_overshoot_walks_to_floor() {
        let f = freqs();
        let mut g = BiasedGovernor::gpu_biased(15.0);
        let mut s = FreqSetting::new(15, 9);
        for _ in 0..40 {
            s = g.on_sample(0.0, 30.0, s, &f);
        }
        assert_eq!(s, FreqSetting::new(0, 0));
    }
}
