//! Machine-configuration validation.
//!
//! Custom [`MachineConfig`](crate::config::MachineConfig)s (beyond the
//! shipped presets) are easy to get subtly wrong — a non-monotone frequency
//! table, a zero bandwidth, arbitration weights that starve a device.
//! `validate` checks every invariant the simulator and the algorithms rely
//! on and reports all violations at once.

use crate::config::MachineConfig;
use crate::device::Device;

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigIssue {
    /// Which field/area is wrong.
    pub field: String,
    /// Human-readable problem description.
    pub problem: String,
}

impl std::fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.field, self.problem)
    }
}

/// Validate a machine configuration; empty vector = valid.
pub fn validate(cfg: &MachineConfig) -> Vec<ConfigIssue> {
    let mut issues = Vec::new();
    let mut bad = |field: &str, problem: String| {
        issues.push(ConfigIssue {
            field: field.into(),
            problem,
        });
    };

    for d in Device::ALL {
        let t = cfg.freqs.table(d);
        let name = format!("freqs.{d}");
        if t.len() < 2 {
            bad(&name, "needs at least two DVFS levels".into());
        }
        if t.min_ghz() <= 0.0 {
            bad(
                &name,
                format!("non-positive base frequency {}", t.min_ghz()),
            );
        }
        let dev = cfg.device(d);
        let dn = format!("{d} params");
        if dev.gflops_per_ghz <= 0.0 {
            bad(&dn, "compute throughput must be positive".into());
        }
        if dev.bw_peak_gbps <= 0.0 {
            bad(&dn, "peak bandwidth must be positive".into());
        }
        if !(0.0..=1.0).contains(&dev.bw_freq_floor) {
            bad(
                &dn,
                format!("bw_freq_floor {} outside [0, 1]", dev.bw_freq_floor),
            );
        }
        if dev.idle_power_w < 0.0 || dev.dyn_power_w < 0.0 {
            bad(&dn, "negative power coefficient".into());
        }
        if dev.dyn_power_exp < 1.0 || dev.dyn_power_exp > 4.0 {
            bad(
                &dn,
                format!(
                    "dyn_power_exp {} outside the plausible 1..4",
                    dev.dyn_power_exp
                ),
            );
        }
        if !(0.0..=1.0).contains(&dev.stall_power_frac) {
            bad(
                &dn,
                format!("stall_power_frac {} outside [0, 1]", dev.stall_power_frac),
            );
        }
        if dev.bw_peak_gbps > cfg.memory.total_bw_gbps {
            bad(
                &dn,
                format!(
                    "device peak bandwidth {} exceeds controller capacity {}",
                    dev.bw_peak_gbps, cfg.memory.total_bw_gbps
                ),
            );
        }
    }

    let m = &cfg.memory;
    if m.total_bw_gbps <= 0.0 {
        bad("memory.total_bw_gbps", "must be positive".into());
    }
    if m.pressure_ref_gbps <= 0.0 {
        bad("memory.pressure_ref_gbps", "must be positive".into());
    }
    for d in Device::ALL {
        if *m.inflation_coeff.get(d) < 0.0 {
            bad("memory.inflation_coeff", format!("negative for {d}"));
        }
        if *m.inflation_exp.get(d) <= 0.0 {
            bad("memory.inflation_exp", format!("non-positive for {d}"));
        }
        if *m.arb_weight.get(d) <= 0.0 {
            bad(
                "memory.arb_weight",
                format!("non-positive for {d} (would starve it)"),
            );
        }
    }
    if m.llc_mib <= 0.0 {
        bad("memory.llc_mib", "must be positive".into());
    }

    if cfg.package.uncore_w < 0.0 {
        bad("package.uncore_w", "negative".into());
    }
    if cfg.multiprog.cs_overhead < 0.0 || cfg.multiprog.locality_penalty < 0.0 {
        bad("multiprog", "negative overhead".into());
    }
    if cfg.multiprog.max_cpu_slots == 0 {
        bad(
            "multiprog.max_cpu_slots",
            "must allow at least one job".into(),
        );
    }
    if cfg.tick_s <= 0.0 {
        bad("tick_s", "must be positive".into());
    }
    if cfg.power_sample_s < cfg.tick_s {
        bad(
            "power_sample_s",
            format!(
                "sample interval {} below tick {}",
                cfg.power_sample_s, cfg.tick_s
            ),
        );
    }

    issues
}

/// `Ok(cfg)` when valid, `Err(issues)` otherwise — for builder-style use.
pub fn validated(cfg: MachineConfig) -> Result<MachineConfig, Vec<ConfigIssue>> {
    let issues = validate(&cfg);
    if issues.is_empty() {
        Ok(cfg)
    } else {
        Err(issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(validate(&MachineConfig::ivy_bridge()).is_empty());
        assert!(validate(&MachineConfig::kaveri()).is_empty());
        assert!(validated(MachineConfig::ivy_bridge()).is_ok());
    }

    #[test]
    fn detects_broken_memory_config() {
        let mut cfg = MachineConfig::ivy_bridge();
        cfg.memory.total_bw_gbps = -1.0;
        cfg.memory.arb_weight.cpu = 0.0;
        let issues = validate(&cfg);
        assert!(issues.iter().any(|i| i.field == "memory.total_bw_gbps"));
        assert!(issues.iter().any(|i| i.field == "memory.arb_weight"));
        // device peak now exceeds the (negative) capacity too
        assert!(
            issues.len() >= 3,
            "all problems reported at once: {issues:?}"
        );
        assert!(validated(cfg).is_err());
    }

    #[test]
    fn detects_bad_power_params() {
        let mut cfg = MachineConfig::ivy_bridge();
        cfg.cpu.stall_power_frac = 1.5;
        cfg.gpu.dyn_power_exp = 0.5;
        let issues = validate(&cfg);
        assert!(issues
            .iter()
            .any(|i| i.problem.contains("stall_power_frac")));
        assert!(issues.iter().any(|i| i.problem.contains("dyn_power_exp")));
    }

    #[test]
    fn detects_bad_timing() {
        let mut cfg = MachineConfig::ivy_bridge();
        cfg.power_sample_s = cfg.tick_s / 2.0;
        let issues = validate(&cfg);
        assert!(issues.iter().any(|i| i.field == "power_sample_s"));
    }

    #[test]
    fn issue_renders() {
        let i = ConfigIssue {
            field: "x".into(),
            problem: "broken".into(),
        };
        assert_eq!(i.to_string(), "x: broken");
    }
}
