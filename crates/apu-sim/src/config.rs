//! Machine configurations, including the calibrated Ivy Bridge preset.

use crate::device::{Device, DeviceParams, PerDevice};
use crate::freq::{FreqTable, PackageFreqs};
use crate::memory::MemoryParams;
use crate::power::PackagePowerParams;
use serde::{Deserialize, Serialize};

/// CPU multiprogramming parameters (only exercised by baselines that let the
/// OS time-share the CPU among several jobs, like the paper's Default
/// scheduler in the 16-job study).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiprogParams {
    /// Per-extra-job context-switch efficiency loss: with `k` jobs sharing
    /// the CPU each advances at `(1/k) / (1 + cs_overhead * (k - 1))` of its
    /// dedicated rate.
    pub cs_overhead: f64,
    /// Per-extra-job locality penalty: each job's DRAM traffic is multiplied
    /// by `1 + locality_penalty * (k - 1)` (cold caches after every slice,
    /// more page-level misses).
    pub locality_penalty: f64,
    /// Maximum simultaneously resident CPU jobs the engine will accept.
    pub max_cpu_slots: usize,
}

/// The complete static description of a simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// DVFS ladders for both devices.
    pub freqs: PackageFreqs,
    /// CPU execution/power parameters.
    pub cpu: DeviceParams,
    /// GPU execution/power parameters.
    pub gpu: DeviceParams,
    /// Shared memory subsystem.
    pub memory: MemoryParams,
    /// Package-level power parameters.
    pub package: PackagePowerParams,
    /// CPU time-sharing behaviour.
    pub multiprog: MultiprogParams,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Power-sampling interval, seconds (the paper samples at 1 Hz; the
    /// governor reacts at this granularity, which is what lets transient
    /// overshoots above the cap survive for under one interval).
    pub power_sample_s: f64,
}

impl MachineConfig {
    /// The calibrated model of the paper's platform: an Intel i7-3520M with
    /// integrated HD Graphics 4000.
    ///
    /// * CPU: 16 DVFS levels, 1.2-3.6 GHz; GPU: 10 levels, 0.35-1.25 GHz.
    /// * Shared 4 MiB LLC and a DRAM subsystem where a single device can
    ///   draw up to ~11 GB/s (the range the paper's micro-benchmark sweeps).
    /// * Full-speed package power exceeds the paper's 15/16 W caps, so
    ///   capped runs must lower frequencies.
    pub fn ivy_bridge() -> Self {
        MachineConfig {
            freqs: PackageFreqs {
                cpu: FreqTable::linear(1.2, 3.6, 16),
                gpu: FreqTable::linear(0.35, 1.25, 10),
            },
            cpu: DeviceParams {
                gflops_per_ghz: 25.0,
                bw_peak_gbps: 11.0,
                bw_freq_floor: 0.6,
                idle_power_w: 1.7,
                dyn_power_w: 9.5,
                dyn_power_exp: 2.4,
                mem_power_w_per_gbps: 0.12,
                stall_power_frac: 0.55,
            },
            gpu: DeviceParams {
                gflops_per_ghz: 200.0,
                bw_peak_gbps: 11.0,
                bw_freq_floor: 0.7,
                idle_power_w: 1.1,
                dyn_power_w: 5.0,
                dyn_power_exp: 2.2,
                mem_power_w_per_gbps: 0.10,
                stall_power_frac: 0.50,
            },
            memory: MemoryParams {
                kind: Default::default(),
                total_bw_gbps: 14.3,
                pressure_ref_gbps: 11.0,
                inflation_coeff: PerDevice::new(0.32, 0.45),
                inflation_exp: PerDevice::new(2.1, 0.9),
                arb_weight: PerDevice::new(0.785, 1.0),
                llc_mib: 4.0,
            },
            package: PackagePowerParams { uncore_w: 2.2 },
            multiprog: MultiprogParams {
                cs_overhead: 0.35,
                locality_penalty: 0.22,
                max_cpu_slots: 32,
            },
            tick_s: 0.01,
            power_sample_s: 0.25,
        }
    }

    /// A second calibration point: an AMD Kaveri-class mobile APU (the
    /// paper reports the same co-run phenomena "on both Intel and AMD").
    ///
    /// Relative to [`MachineConfig::ivy_bridge`]: a weaker CPU complex
    /// (lower IPC, 1.9-3.4 GHz over 8 P-states), a wider integrated GPU
    /// (more CUs, 0.35-0.72 GHz over 8 levels), a larger share of package
    /// power in the GPU, and slightly lower DRAM bandwidth headroom — so
    /// GPU placement matters even more and the cap squeezes the CPU first.
    pub fn kaveri() -> Self {
        MachineConfig {
            freqs: PackageFreqs {
                cpu: FreqTable::linear(1.9, 3.4, 8),
                gpu: FreqTable::linear(0.35, 0.72, 8),
            },
            cpu: DeviceParams {
                gflops_per_ghz: 18.0,
                bw_peak_gbps: 10.0,
                bw_freq_floor: 0.62,
                idle_power_w: 1.9,
                dyn_power_w: 10.0,
                dyn_power_exp: 2.5,
                mem_power_w_per_gbps: 0.13,
                stall_power_frac: 0.55,
            },
            gpu: DeviceParams {
                gflops_per_ghz: 420.0,
                bw_peak_gbps: 10.5,
                bw_freq_floor: 0.72,
                idle_power_w: 1.4,
                dyn_power_w: 7.5,
                dyn_power_exp: 2.1,
                mem_power_w_per_gbps: 0.11,
                stall_power_frac: 0.50,
            },
            memory: MemoryParams {
                kind: Default::default(),
                total_bw_gbps: 13.2,
                pressure_ref_gbps: 10.5,
                inflation_coeff: PerDevice::new(0.34, 0.48),
                inflation_exp: PerDevice::new(2.1, 0.9),
                arb_weight: PerDevice::new(0.76, 1.0),
                llc_mib: 4.0,
            },
            package: PackagePowerParams { uncore_w: 2.4 },
            multiprog: MultiprogParams {
                cs_overhead: 0.35,
                locality_penalty: 0.22,
                max_cpu_slots: 32,
            },
            tick_s: 0.01,
            power_sample_s: 0.25,
        }
    }

    /// Device parameters for `device`.
    #[inline]
    pub fn device(&self, device: Device) -> &DeviceParams {
        match device {
            Device::Cpu => &self.cpu,
            Device::Gpu => &self.gpu,
        }
    }

    /// Maximum frequency (GHz) of `device`.
    #[inline]
    pub fn f_max(&self, device: Device) -> f64 {
        self.freqs.table(device).max_ghz()
    }

    /// A borrowed power model over this configuration.
    pub fn power_model(&self) -> crate::power::PowerModel<'_> {
        crate::power::PowerModel {
            freqs: &self.freqs,
            cpu: &self.cpu,
            gpu: &self.gpu,
            pkg: &self.package,
        }
    }

    /// Time-sharing rate factor for one of `k` jobs on the CPU.
    pub fn multiprog_rate(&self, k: usize) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        let k_f = k as f64;
        (1.0 / k_f) / (1.0 + self.multiprog.cs_overhead * (k_f - 1.0))
    }

    /// Traffic multiplier for one of `k` jobs sharing the CPU.
    pub fn multiprog_traffic(&self, k: usize) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        1.0 + self.multiprog.locality_penalty * (k as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_frequency_ladders() {
        let m = MachineConfig::ivy_bridge();
        assert_eq!(m.freqs.cpu.len(), 16);
        assert_eq!(m.freqs.gpu.len(), 10);
        assert!((m.f_max(Device::Cpu) - 3.6).abs() < 1e-12);
        assert!((m.f_max(Device::Gpu) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn full_speed_power_exceeds_paper_caps() {
        let m = MachineConfig::ivy_bridge();
        let p = m.power_model().package_power_busy(m.freqs.max_setting());
        assert!(
            p > 16.0,
            "uncapped package power {p} must exceed the 16 W cap"
        );
        assert!(p < 30.0, "package power {p} should stay laptop-scale");
    }

    #[test]
    fn some_settings_fit_under_cap() {
        let m = MachineConfig::ivy_bridge();
        let pm = m.power_model();
        let feasible = m
            .freqs
            .all_settings()
            .filter(|&s| pm.package_power_busy(s) <= 15.0)
            .count();
        assert!(
            feasible > 20,
            "need a meaningful feasible region, got {feasible}"
        );
        assert!(
            feasible < m.freqs.setting_count(),
            "the cap must actually constrain the grid"
        );
    }

    #[test]
    fn kaveri_is_a_distinct_valid_machine() {
        let m = MachineConfig::kaveri();
        assert_eq!(m.freqs.cpu.len(), 8);
        assert_eq!(m.freqs.gpu.len(), 8);
        let busy = m.power_model().package_power_busy(m.freqs.max_setting());
        assert!(busy > 16.0 && busy < 30.0, "kaveri busy power {busy}");
        // Wider GPU: peak GPU compute exceeds Ivy Bridge's.
        let ivy = MachineConfig::ivy_bridge();
        assert!(
            m.gpu.compute_rate(m.f_max(Device::Gpu)) > ivy.gpu.compute_rate(ivy.f_max(Device::Gpu))
        );
        // Weaker CPU.
        assert!(
            m.cpu.compute_rate(m.f_max(Device::Cpu)) < ivy.cpu.compute_rate(ivy.f_max(Device::Cpu))
        );
    }

    #[test]
    fn multiprog_rates() {
        let m = MachineConfig::ivy_bridge();
        assert_eq!(m.multiprog_rate(1), 1.0);
        let r2 = m.multiprog_rate(2);
        let r4 = m.multiprog_rate(4);
        assert!(
            r2 < 0.5 && r2 > 0.3,
            "2-way sharing pays context-switch cost"
        );
        assert!(r4 < 0.25, "4-way sharing is worse than fair split");
        // The OS-style time sharing the paper blames for Default's collapse
        // at 16 jobs: with ~6 resident jobs each gets well under half its
        // fair share.
        assert!(m.multiprog_rate(6) < 1.0 / 6.0 / 2.0);
        assert!(m.multiprog_traffic(4) > m.multiprog_traffic(2));
        assert_eq!(m.multiprog_traffic(1), 1.0);
    }
}
