//! Shared memory subsystem: bandwidth arbitration and LLC interference.
//!
//! On the modeled package the CPU and GPU share the last-level cache, the
//! on-chip ring, and the DRAM controller (paper, Figure 1). Previous work
//! cited by the paper found that *main memory* contention, not LLC capacity
//! contention, dominates co-run slowdown; accordingly the first-order model
//! here is bandwidth arbitration. A second-order LLC term is kept because a
//! cache-resident CPU program co-running with a streaming GPU kernel loses
//! its working set and can degrade far beyond what bandwidth sharing alone
//! predicts (the paper's Section III observes an 81% slowdown for dwt2d
//! against streamcluster).
//!
//! The arbitration model has two stages:
//!
//! 1. **Latency inflation.** Before DRAM bandwidth saturates, each device's
//!    achievable request rate is reduced by pressure from the other device
//!    (queueing in the shared controller / ring):
//!    `achievable_d = demand_d / (1 + lambda_d * pressure^gamma_d)` where
//!    `pressure = demand_other / bw_ref`. The GPU is modeled with earlier,
//!    near-linear inflation (its many outstanding requests queue behind CPU
//!    traffic), the CPU with a high-exponent term that only bites at heavy
//!    combined load — reproducing the shapes of the paper's Figures 5 and 6.
//! 2. **Saturation sharing.** If the sum of achievable rates exceeds the
//!    controller capacity, bandwidth is split proportionally with per-device
//!    weights; the GPU's bursty request streams win arbitration, so the CPU
//!    weight is below 1 and the CPU suffers more at the high-high corner
//!    (paper: max CPU degradation ~65% vs. ~45% for the GPU).

use crate::device::{Device, PerDevice};
use serde::{Deserialize, Serialize};

/// Which arbitration law the shared controller follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ContentionKind {
    /// The calibrated two-stage model: cross-device latency inflation, then
    /// weighted water-filling at saturation (see module docs). Matches the
    /// shapes of the paper's Figures 5/6.
    #[default]
    TwoStage,
    /// A plain fair-share controller: no latency inflation; on saturation
    /// each device gets an equal share, capped at its demand (max-min
    /// fairness, unweighted). The textbook model — used by the
    /// `contention_model` ablation to show which conclusions depend on the
    /// richer law.
    FairShare,
}

/// Parameters of the shared-memory contention model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Which arbitration law to apply.
    #[serde(default)]
    pub kind: ContentionKind,
    /// Total DRAM controller capacity in GB/s when both devices pull.
    pub total_bw_gbps: f64,
    /// Reference bandwidth used to normalize cross-device pressure (roughly
    /// the per-device peak).
    pub pressure_ref_gbps: f64,
    /// Latency-inflation coefficient per device (`lambda`).
    pub inflation_coeff: PerDevice<f64>,
    /// Latency-inflation exponent per device (`gamma`).
    pub inflation_exp: PerDevice<f64>,
    /// Arbitration weight per device under saturation.
    pub arb_weight: PerDevice<f64>,
    /// Last-level cache capacity in MiB (shared).
    pub llc_mib: f64,
}

/// Outcome of arbitrating two simultaneous bandwidth demands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arbitration {
    /// Bandwidth each device actually achieves, GB/s.
    pub achieved: PerDevice<f64>,
    /// Per-device slowdown of the memory-bound portion: `demand / achieved`
    /// (1.0 when unimpeded; demand 0 maps to 1.0).
    pub mem_slowdown: PerDevice<f64>,
    /// Whether the controller was saturated.
    pub saturated: bool,
}

impl MemoryParams {
    /// Arbitrate simultaneous steady-state demands (GB/s) from the two
    /// devices. Demands must be non-negative and finite.
    pub fn arbitrate(&self, demand: PerDevice<f64>) -> Arbitration {
        debug_assert!(demand.cpu >= 0.0 && demand.cpu.is_finite());
        debug_assert!(demand.gpu >= 0.0 && demand.gpu.is_finite());
        if self.kind == ContentionKind::FairShare {
            return self.arbitrate_fair_share(demand);
        }

        // Stage 1: latency inflation from cross-device pressure.
        let achievable = PerDevice::from_fn(|d| {
            let own = *demand.get(d);
            if own <= 0.0 {
                return 0.0;
            }
            let pressure = (*demand.get(d.other()) / self.pressure_ref_gbps).max(0.0);
            let infl =
                1.0 + self.inflation_coeff.get(d) * pressure.powf(*self.inflation_exp.get(d));
            own / infl
        });

        // Stage 2: proportional weighted sharing if the controller saturates.
        // Shares are capped at each device's unconstrained rate (a device
        // never receives more than it asks for); capped leftover flows to
        // the other device (two-party weighted max-min / water-filling).
        let total = achievable.sum();
        let (achieved, saturated) = if total > self.total_bw_gbps && total > 0.0 {
            let bt = self.total_bw_gbps;
            let wc = self.arb_weight.cpu * achievable.cpu;
            let wg = self.arb_weight.gpu * achievable.gpu;
            let denom = wc + wg;
            let share_c = bt * wc / denom;
            let share_g = bt * wg / denom;
            let a = if share_c > achievable.cpu {
                PerDevice::new(achievable.cpu, (bt - achievable.cpu).min(achievable.gpu))
            } else if share_g > achievable.gpu {
                PerDevice::new((bt - achievable.gpu).min(achievable.cpu), achievable.gpu)
            } else {
                PerDevice::new(share_c, share_g)
            };
            (a, true)
        } else {
            (achievable, false)
        };

        let mem_slowdown = PerDevice::from_fn(|d| {
            let own = *demand.get(d);
            let got = *achieved.get(d);
            if own <= 0.0 || got <= 0.0 {
                1.0
            } else {
                (own / got).max(1.0)
            }
        });

        Arbitration {
            achieved,
            mem_slowdown,
            saturated,
        }
    }

    /// Unweighted max-min fair sharing with no latency term.
    fn arbitrate_fair_share(&self, demand: PerDevice<f64>) -> Arbitration {
        let total = demand.sum();
        let (achieved, saturated) = if total > self.total_bw_gbps && total > 0.0 {
            let half = self.total_bw_gbps / 2.0;
            let a = if demand.cpu <= half {
                PerDevice::new(
                    demand.cpu,
                    (self.total_bw_gbps - demand.cpu).min(demand.gpu),
                )
            } else if demand.gpu <= half {
                PerDevice::new(
                    (self.total_bw_gbps - demand.gpu).min(demand.cpu),
                    demand.gpu,
                )
            } else {
                PerDevice::new(half, half)
            };
            (a, true)
        } else {
            (demand, false)
        };
        let mem_slowdown = PerDevice::from_fn(|d| {
            let own = *demand.get(d);
            let got = *achieved.get(d);
            if own <= 0.0 || got <= 0.0 {
                1.0
            } else {
                (own / got).max(1.0)
            }
        });
        Arbitration {
            achieved,
            mem_slowdown,
            saturated,
        }
    }

    /// Solo achieved bandwidth: a single device with no co-runner simply
    /// gets `min(demand, total)`.
    pub fn solo(&self, device: Device, demand_gbps: f64) -> f64 {
        let _ = device;
        demand_gbps.min(self.total_bw_gbps)
    }

    /// Extra DRAM-traffic multiplier a job suffers from LLC thrashing.
    ///
    /// `footprint_mib` is the job's working set; `sensitivity` is how much of
    /// its traffic is cache-filtered when resident (a cache-friendly kernel
    /// re-reads its working set many times); `co_pressure` in `[0, 1]` is the
    /// co-runner's LLC pressure (streaming kernels evict aggressively).
    ///
    /// A job whose working set fits comfortably in the LLC is fully exposed
    /// to eviction; a job that never fit is unaffected (its traffic already
    /// goes to DRAM).
    pub fn llc_traffic_multiplier(
        &self,
        footprint_mib: f64,
        sensitivity: f64,
        co_pressure: f64,
    ) -> f64 {
        if sensitivity <= 0.0 || co_pressure <= 0.0 {
            return 1.0;
        }
        // Residency: 1 when the footprint fits in (a share of) the LLC, falling
        // to 0 once the footprint is several times the cache size.
        let fit = (self.llc_mib / footprint_mib.max(1e-9)).min(1.0);
        let residency = fit * fit; // quadratic fall-off past capacity
        1.0 + sensitivity * residency * co_pressure.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MemoryParams {
        MemoryParams {
            kind: ContentionKind::TwoStage,
            total_bw_gbps: 14.3,
            pressure_ref_gbps: 11.0,
            inflation_coeff: PerDevice::new(0.25, 0.40),
            inflation_exp: PerDevice::new(2.5, 1.2),
            arb_weight: PerDevice::new(0.785, 1.0),
            llc_mib: 4.0,
        }
    }

    #[test]
    fn no_contention_when_one_idle() {
        let m = params();
        let a = m.arbitrate(PerDevice::new(8.0, 0.0));
        assert!((a.achieved.cpu - 8.0).abs() < 1e-9);
        assert_eq!(a.achieved.gpu, 0.0);
        assert!((a.mem_slowdown.cpu - 1.0).abs() < 1e-9);
        assert!(!a.saturated);
    }

    #[test]
    fn zero_demand_zero_achieved() {
        let m = params();
        let a = m.arbitrate(PerDevice::new(0.0, 0.0));
        assert_eq!(a.achieved.cpu, 0.0);
        assert_eq!(a.achieved.gpu, 0.0);
        assert_eq!(a.mem_slowdown.cpu, 1.0);
        assert_eq!(a.mem_slowdown.gpu, 1.0);
    }

    #[test]
    fn gpu_suffers_at_moderate_contention_cpu_does_not() {
        // Paper Fig 5/6: GPU degradations are broad (20-40%), CPU suffers
        // less than 20% in about half the cases.
        let m = params();
        let a = m.arbitrate(PerDevice::new(5.0, 5.0));
        let cpu_deg = a.mem_slowdown.cpu - 1.0;
        let gpu_deg = a.mem_slowdown.gpu - 1.0;
        assert!(
            cpu_deg < 0.10,
            "cpu deg {cpu_deg} too high at moderate load"
        );
        assert!(gpu_deg > cpu_deg, "gpu should suffer more at moderate load");
        assert!(gpu_deg > 0.08 && gpu_deg < 0.40);
    }

    #[test]
    fn cpu_overtakes_gpu_at_high_high_corner() {
        // Paper: "the CPU shows much more serious slowdown than the GPU when
        // both co-runners have a high memory demand (over 8.5 GB/s)".
        let m = params();
        let a = m.arbitrate(PerDevice::new(11.0, 11.0));
        let cpu_deg = a.mem_slowdown.cpu - 1.0;
        let gpu_deg = a.mem_slowdown.gpu - 1.0;
        assert!(a.saturated);
        assert!(
            cpu_deg > gpu_deg,
            "cpu {cpu_deg} should exceed gpu {gpu_deg}"
        );
        // Largest CPU degradation about 65%, GPU about 45% (pure-memory phase).
        assert!(cpu_deg > 0.50 && cpu_deg < 0.85, "cpu corner deg {cpu_deg}");
        assert!(gpu_deg > 0.30 && gpu_deg < 0.60, "gpu corner deg {gpu_deg}");
    }

    #[test]
    fn achieved_never_exceeds_capacity() {
        let m = params();
        for i in 0..=11 {
            for j in 0..=11 {
                let a = m.arbitrate(PerDevice::new(i as f64, j as f64));
                assert!(a.achieved.sum() <= m.total_bw_gbps + 1e-9);
                assert!(a.achieved.cpu <= i as f64 + 1e-9);
                assert!(a.achieved.gpu <= j as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn slowdown_monotone_in_corunner_demand() {
        let m = params();
        let mut prev_c = 0.0;
        let mut prev_g = 0.0;
        for j in 0..=11 {
            let a = m.arbitrate(PerDevice::new(9.0, j as f64));
            let dc = a.mem_slowdown.cpu - 1.0;
            let ag = m.arbitrate(PerDevice::new(j as f64, 9.0)).mem_slowdown.gpu - 1.0;
            assert!(dc + 1e-9 >= prev_c, "cpu slowdown must not decrease");
            assert!(ag + 1e-9 >= prev_g, "gpu slowdown must not decrease");
            prev_c = dc;
            prev_g = ag;
        }
    }

    #[test]
    fn solo_caps_at_total() {
        let m = params();
        assert_eq!(m.solo(Device::Cpu, 5.0), 5.0);
        assert_eq!(m.solo(Device::Gpu, 50.0), m.total_bw_gbps);
    }

    #[test]
    fn fair_share_has_no_latency_term() {
        let mut m = params();
        m.kind = ContentionKind::FairShare;
        // Below capacity: everyone gets what they ask, no inflation at all.
        let a = m.arbitrate(PerDevice::new(6.0, 6.0));
        assert_eq!(a.achieved.cpu, 6.0);
        assert_eq!(a.achieved.gpu, 6.0);
        assert_eq!(a.mem_slowdown.cpu, 1.0);
        assert!(!a.saturated);
    }

    #[test]
    fn fair_share_splits_evenly_at_saturation() {
        let mut m = params();
        m.kind = ContentionKind::FairShare;
        let a = m.arbitrate(PerDevice::new(11.0, 11.0));
        assert!(a.saturated);
        assert!((a.achieved.cpu - m.total_bw_gbps / 2.0).abs() < 1e-9);
        assert!((a.achieved.gpu - m.total_bw_gbps / 2.0).abs() < 1e-9);
        // symmetric: no CPU/GPU asymmetry, unlike the two-stage model
        assert_eq!(a.mem_slowdown.cpu, a.mem_slowdown.gpu);
    }

    #[test]
    fn fair_share_caps_small_demand_at_its_ask() {
        let mut m = params();
        m.kind = ContentionKind::FairShare;
        let a = m.arbitrate(PerDevice::new(3.0, 13.0));
        assert_eq!(a.achieved.cpu, 3.0, "small demand fully served");
        assert!((a.achieved.gpu - (m.total_bw_gbps - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn llc_multiplier_fits_cache() {
        let m = params();
        // 2 MiB working set fits the 4 MiB LLC: fully exposed to thrashing.
        let hi = m.llc_traffic_multiplier(2.0, 8.0, 1.0);
        assert!((hi - 9.0).abs() < 1e-9);
        // no co-runner pressure: no effect
        assert_eq!(m.llc_traffic_multiplier(2.0, 8.0, 0.0), 1.0);
        // insensitive job: no effect
        assert_eq!(m.llc_traffic_multiplier(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn llc_multiplier_decays_past_capacity() {
        let m = params();
        let fits = m.llc_traffic_multiplier(4.0, 8.0, 1.0);
        let big = m.llc_traffic_multiplier(16.0, 8.0, 1.0);
        let huge = m.llc_traffic_multiplier(64.0, 8.0, 1.0);
        assert!(fits > big && big > huge);
        assert!(
            huge < 1.05,
            "a streaming working set is barely LLC-sensitive"
        );
    }
}
