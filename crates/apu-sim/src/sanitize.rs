//! Runtime sanitizer (feature `sanitize`).
//!
//! With the feature on, the engine and power model record structured
//! [`Violation`]s into a thread-local store whenever a physical
//! invariant breaks mid-run: the event clock moving backwards, a power
//! window's average escaping its instantaneous min/max envelope
//! (energy-conservation accounting), package power staying above the
//! cap of interest longer than the governor's reaction tolerance, or a
//! non-finite/negative package power. The checks are observational —
//! they never change simulation results — and compile away entirely
//! without the feature.
//!
//! Usage: call [`reset`] before a run, run, then [`take`] the records.
//! `corun-verify` converts them into `SIM0xx` diagnostics.

use std::cell::RefCell;

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The simulation clock did not advance monotonically.
    ClockWentBackwards {
        /// Clock before the faulty step, seconds.
        from_s: f64,
        /// Clock after it, seconds.
        to_s: f64,
    },
    /// A power window's average left the [min, max] envelope of the
    /// instantaneous samples it integrates — energy appeared or vanished.
    EnergyMismatch {
        /// End of the window, seconds.
        at_s: f64,
        /// The window average, watts.
        avg_w: f64,
        /// Minimum instantaneous power in the window, watts.
        min_w: f64,
        /// Maximum instantaneous power in the window, watts.
        max_w: f64,
    },
    /// Instantaneous package power stayed above the cap (beyond
    /// tolerance) for longer than the governor reaction allowance.
    CapExcursion {
        /// When power first exceeded cap + tolerance, seconds.
        start_s: f64,
        /// When the excursion ended (or the run ended), seconds.
        end_s: f64,
        /// The cap of interest, watts.
        cap_w: f64,
        /// Peak power during the excursion, watts.
        peak_w: f64,
    },
    /// Package power was negative or non-finite.
    NonPhysicalPower {
        /// The offending value, watts.
        power_w: f64,
    },
    /// The event-driven engine saw a long run of consecutive wake-ups
    /// that did not advance the clock — a component rescheduling itself
    /// at the same timestamp (livelock). The run is convicted with
    /// [`SimError::Stalled`](crate::SimError) instead of hanging.
    ZeroProgressWakeup {
        /// The timestamp the event loop was stuck at, seconds.
        at_s: f64,
    },
}

thread_local! {
    static VIOLATIONS: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
}

/// Clear the thread-local violation store (call before a run).
pub fn reset() {
    VIOLATIONS.with(|v| v.borrow_mut().clear());
}

/// Record one violation.
pub fn record(v: Violation) {
    VIOLATIONS.with(|s| s.borrow_mut().push(v));
}

/// Drain and return everything recorded on this thread since [`reset`].
pub fn take() -> Vec<Violation> {
    VIOLATIONS.with(|v| std::mem::take(&mut *v.borrow_mut()))
}

/// Number of violations currently recorded on this thread.
pub fn count() -> usize {
    VIOLATIONS.with(|v| v.borrow().len())
}

/// Transient overshoot the sanitizer tolerates before calling a cap
/// excursion sustained: the governor reacts at power-sample granularity
/// and its own tests allow ~2 W of late overshoot, so the sanitizer only
/// fires well beyond that.
pub const CAP_TOLERANCE_W: f64 = 3.0;

/// Per-run sanitizer state the engine threads through its tick loop.
#[derive(Debug)]
pub struct RunSanitizer {
    cap_w: Option<f64>,
    /// Seconds above cap+tolerance the governor is allowed before the
    /// excursion counts as sustained (four power samples: governors step
    /// the ladder once per sample, so walking down from max takes a few).
    reaction_s: f64,
    last_now: f64,
    win_min: f64,
    win_max: f64,
    exc_start: Option<f64>,
    exc_peak: f64,
}

impl RunSanitizer {
    /// New sanitizer; `cap_w = None` disables the cap-excursion check.
    pub fn new(cap_w: Option<f64>, power_sample_s: f64) -> Self {
        RunSanitizer {
            cap_w,
            reaction_s: 4.0 * power_sample_s,
            last_now: 0.0,
            win_min: f64::INFINITY,
            win_max: f64::NEG_INFINITY,
            exc_start: None,
            exc_peak: 0.0,
        }
    }

    /// Observe one tick: `now` is the clock *after* the step, `power_w`
    /// the instantaneous package power during it.
    pub fn on_tick(&mut self, now: f64, power_w: f64) {
        if now < self.last_now {
            record(Violation::ClockWentBackwards {
                from_s: self.last_now,
                to_s: now,
            });
        }
        self.last_now = now;
        self.win_min = self.win_min.min(power_w);
        self.win_max = self.win_max.max(power_w);
        if let Some(cap) = self.cap_w {
            if power_w > cap + CAP_TOLERANCE_W {
                self.exc_start.get_or_insert(now);
                self.exc_peak = self.exc_peak.max(power_w);
            } else if let Some(start) = self.exc_start.take() {
                if now - start > self.reaction_s {
                    record(Violation::CapExcursion {
                        start_s: start,
                        end_s: now,
                        cap_w: cap,
                        peak_w: self.exc_peak,
                    });
                }
                self.exc_peak = 0.0;
            }
        }
    }

    /// Observe a power-window flush: `avg_w` must lie inside the
    /// envelope of the instantaneous powers integrated into it.
    pub fn on_window(&mut self, now: f64, avg_w: f64) {
        if self.win_min.is_finite() {
            let slack = 1e-6 * self.win_max.abs().max(1.0);
            if avg_w < self.win_min - slack || avg_w > self.win_max + slack {
                record(Violation::EnergyMismatch {
                    at_s: now,
                    avg_w,
                    min_w: self.win_min,
                    max_w: self.win_max,
                });
            }
        }
        self.win_min = f64::INFINITY;
        self.win_max = f64::NEG_INFINITY;
    }

    /// Close out the run: a still-open excursion longer than the
    /// reaction allowance is reported.
    pub fn finish(&mut self, now: f64) {
        if let (Some(start), Some(cap)) = (self.exc_start.take(), self.cap_w) {
            if now - start > self.reaction_s {
                record(Violation::CapExcursion {
                    start_s: start,
                    end_s: now,
                    cap_w: cap,
                    peak_w: self.exc_peak,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::device::Device;
    use crate::engine::run_solo;
    use crate::work::{single_phase_job, PhaseWork};

    fn busy_phase(flops: f64) -> PhaseWork {
        PhaseWork {
            flops,
            bytes: 0.0,
            cpu_eff: 1.0,
            gpu_eff: 1.0,
            llc_footprint_mib: 64.0,
            llc_sensitivity: 0.0,
            llc_pressure: 0.0,
            llc_miss_bw_gbps: 0.0,
            overlap: 0.2,
        }
    }

    #[test]
    fn clean_run_records_nothing() {
        reset();
        let cfg = MachineConfig::ivy_bridge();
        let job = single_phase_job("c", busy_phase(450.0));
        run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        assert_eq!(take(), Vec::new());
    }

    #[test]
    fn sustained_cap_excursion_is_recorded() {
        reset();
        // NullGovernor + low cap of interest: nothing clips power, so a
        // compute pair at max frequency overshoots for the whole run.
        let cfg = MachineConfig::ivy_bridge();
        let a = single_phase_job("a", busy_phase(900.0));
        let b = single_phase_job("b", busy_phase(2500.0));
        let mut log = crate::events::EventLog::new(Some(8.0));
        let engine = crate::engine::Engine::new(&cfg);
        let mut disp = pair_dispatcher(a, b);
        let mut gov = crate::governor::NullGovernor;
        engine
            .run_recorded(
                &mut disp,
                &mut gov,
                &crate::engine::RunOptions::new(cfg.freqs.max_setting()),
                Some(&mut log),
            )
            .unwrap();
        let violations = take();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::CapExcursion { .. })),
            "ungoverned overshoot must be flagged: {violations:?}"
        );
    }

    #[test]
    fn governed_run_stays_within_tolerance() {
        reset();
        let cfg = MachineConfig::ivy_bridge();
        let a = single_phase_job("a", busy_phase(900.0));
        let b = single_phase_job("b", busy_phase(2500.0));
        let cap = 15.0;
        let mut gov = crate::governor::BiasedGovernor::gpu_biased(cap);
        let mut log = crate::events::EventLog::new(Some(cap));
        let engine = crate::engine::Engine::new(&cfg);
        let mut disp = pair_dispatcher(a, b);
        engine
            .run_recorded(
                &mut disp,
                &mut gov,
                &crate::engine::RunOptions::new(cfg.freqs.max_setting()),
                Some(&mut log),
            )
            .unwrap();
        let violations = take();
        assert!(
            !violations
                .iter()
                .any(|v| matches!(v, Violation::CapExcursion { .. })),
            "governed run must not trip the sanitizer: {violations:?}"
        );
    }

    fn pair_dispatcher(
        a: crate::work::JobSpec,
        b: crate::work::JobSpec,
    ) -> impl crate::engine::Dispatcher {
        struct Pair {
            cpu: Option<std::sync::Arc<crate::work::JobSpec>>,
            gpu: Option<std::sync::Arc<crate::work::JobSpec>>,
        }
        impl crate::engine::Dispatcher for Pair {
            fn next(
                &mut self,
                d: Device,
                _n: f64,
                _c: &crate::engine::DispatchCtx,
            ) -> crate::engine::Dispatch {
                let slot = match d {
                    Device::Cpu => &mut self.cpu,
                    Device::Gpu => &mut self.gpu,
                };
                match slot.take() {
                    Some(job) => crate::engine::Dispatch::Run(crate::engine::DispatchJob {
                        job,
                        tag: d.index(),
                        set_freq: None,
                    }),
                    None if self.cpu.is_none() && self.gpu.is_none() => {
                        crate::engine::Dispatch::Drained
                    }
                    None => crate::engine::Dispatch::Idle,
                }
            }
        }
        Pair {
            cpu: Some(std::sync::Arc::new(a)),
            gpu: Some(std::sync::Arc::new(b)),
        }
    }

    #[test]
    fn unit_checks_fire_directly() {
        reset();
        let mut san = RunSanitizer::new(Some(10.0), 0.25);
        san.on_tick(0.1, 5.0);
        san.on_tick(0.05, 5.0); // clock went backwards
        san.on_window(0.2, 99.0); // avg outside [5, 5]
        for i in 0..100 {
            san.on_tick(0.2 + i as f64 * 0.01, 20.0); // sustained overshoot
        }
        san.finish(1.3);
        let v = take();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ClockWentBackwards { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::EnergyMismatch { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::CapExcursion { .. })));
    }
}
