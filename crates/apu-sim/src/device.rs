//! Device identity and per-device execution parameters.

use serde::{Deserialize, Serialize};

/// One of the two processor types on the integrated package.
///
/// The paper (Definition 2.1) calls these "two types of units A and B"; on
/// the evaluation platform they are the 4-core CPU and the integrated GPU of
/// an Intel Ivy Bridge i7-3520M.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// The multicore CPU complex.
    Cpu,
    /// The integrated GPU.
    Gpu,
}

impl Device {
    /// The other device on the package.
    #[inline]
    pub fn other(self) -> Device {
        match self {
            Device::Cpu => Device::Gpu,
            Device::Gpu => Device::Cpu,
        }
    }

    /// All devices, in canonical order (CPU first).
    pub const ALL: [Device; 2] = [Device::Cpu, Device::Gpu];

    /// Stable index for array-backed per-device tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Device::Cpu => 0,
            Device::Gpu => 1,
        }
    }

    /// Short lowercase name ("cpu" / "gpu").
    pub fn name(self) -> &'static str {
        match self {
            Device::Cpu => "cpu",
            Device::Gpu => "gpu",
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pair of values indexed by [`Device`].
///
/// Used throughout the simulator for anything that exists once per processor
/// type (frequencies, demands, achieved bandwidth, power, ...).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerDevice<T> {
    pub cpu: T,
    pub gpu: T,
}

impl<T> PerDevice<T> {
    /// Construct from explicit CPU and GPU values.
    pub fn new(cpu: T, gpu: T) -> Self {
        PerDevice { cpu, gpu }
    }

    /// Construct by evaluating a closure for each device.
    pub fn from_fn(mut f: impl FnMut(Device) -> T) -> Self {
        PerDevice {
            cpu: f(Device::Cpu),
            gpu: f(Device::Gpu),
        }
    }

    /// Immutable access by device.
    #[inline]
    pub fn get(&self, d: Device) -> &T {
        match d {
            Device::Cpu => &self.cpu,
            Device::Gpu => &self.gpu,
        }
    }

    /// Mutable access by device.
    #[inline]
    pub fn get_mut(&mut self, d: Device) -> &mut T {
        match d {
            Device::Cpu => &mut self.cpu,
            Device::Gpu => &mut self.gpu,
        }
    }

    /// Map both entries through a function.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> PerDevice<U> {
        PerDevice {
            cpu: f(&self.cpu),
            gpu: f(&self.gpu),
        }
    }
}

impl PerDevice<f64> {
    /// Sum of the two entries.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.cpu + self.gpu
    }
}

/// Static execution parameters of one device.
///
/// The simulator's execution model is a roofline: a kernel phase needs
/// `flops` of compute and `bytes` of DRAM traffic; compute rate scales with
/// frequency, DRAM bandwidth scales only weakly with frequency (request
/// concurrency grows slightly with core clock).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Peak compute throughput in GFLOP/s per GHz of core clock.
    pub gflops_per_ghz: f64,
    /// Peak DRAM bandwidth this device can draw at its maximum frequency, GB/s.
    pub bw_peak_gbps: f64,
    /// Fraction of `bw_peak_gbps` still achievable at the lowest frequency.
    ///
    /// Effective solo bandwidth at frequency `f` is
    /// `bw_peak * (bw_floor + (1 - bw_floor) * f / f_max)`.
    pub bw_freq_floor: f64,
    /// Idle (leakage + base) power in watts, drawn whenever the device is
    /// powered, even with no job.
    pub idle_power_w: f64,
    /// Dynamic power coefficient `a` in `P_dyn = a * (f/f_max)^alpha * activity`.
    pub dyn_power_w: f64,
    /// Frequency exponent of dynamic power (captures voltage scaling with
    /// frequency; ~2-3 on real DVFS curves).
    pub dyn_power_exp: f64,
    /// Watts drawn per GB/s of achieved memory traffic attributed to this
    /// device (memory controller + DRAM activity).
    pub mem_power_w_per_gbps: f64,
    /// Fraction of dynamic power still drawn while memory-stalled (cores
    /// spin on outstanding misses rather than clock-gating fully).
    pub stall_power_frac: f64,
}

impl DeviceParams {
    /// Compute throughput (GFLOP/s) at core frequency `f_ghz`.
    #[inline]
    pub fn compute_rate(&self, f_ghz: f64) -> f64 {
        self.gflops_per_ghz * f_ghz
    }

    /// Solo effective DRAM bandwidth (GB/s) at frequency `f_ghz` with device
    /// maximum frequency `f_max_ghz`.
    #[inline]
    pub fn solo_bandwidth(&self, f_ghz: f64, f_max_ghz: f64) -> f64 {
        let scale = self.bw_freq_floor + (1.0 - self.bw_freq_floor) * (f_ghz / f_max_ghz);
        self.bw_peak_gbps * scale
    }

    /// Dynamic power (watts) at relative frequency `f/f_max` and activity
    /// factor `activity` in `[0, 1]`.
    #[inline]
    pub fn dynamic_power(&self, f_rel: f64, activity: f64) -> f64 {
        self.dyn_power_w * f_rel.powf(self.dyn_power_exp) * activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(Device::Cpu.other(), Device::Gpu);
        assert_eq!(Device::Gpu.other(), Device::Cpu);
        assert_eq!(Device::Cpu.other().other(), Device::Cpu);
    }

    #[test]
    fn per_device_indexing() {
        let mut p = PerDevice::new(1.0, 2.0);
        assert_eq!(*p.get(Device::Cpu), 1.0);
        assert_eq!(*p.get(Device::Gpu), 2.0);
        *p.get_mut(Device::Gpu) = 5.0;
        assert_eq!(p.sum(), 6.0);
        let q = p.map(|v| v * 2.0);
        assert_eq!(q.cpu, 2.0);
        assert_eq!(q.gpu, 10.0);
    }

    #[test]
    fn per_device_from_fn() {
        let p = PerDevice::from_fn(|d| d.index() as f64);
        assert_eq!(p.cpu, 0.0);
        assert_eq!(p.gpu, 1.0);
    }

    #[test]
    fn device_display_and_name() {
        assert_eq!(Device::Cpu.to_string(), "cpu");
        assert_eq!(Device::Gpu.name(), "gpu");
    }

    fn params() -> DeviceParams {
        DeviceParams {
            gflops_per_ghz: 25.0,
            bw_peak_gbps: 11.0,
            bw_freq_floor: 0.6,
            idle_power_w: 1.5,
            dyn_power_w: 10.0,
            dyn_power_exp: 2.4,
            mem_power_w_per_gbps: 0.1,
            stall_power_frac: 0.4,
        }
    }

    #[test]
    fn compute_rate_scales_linearly() {
        let p = params();
        assert!((p.compute_rate(2.0) - 50.0).abs() < 1e-12);
        assert!((p.compute_rate(3.6) / p.compute_rate(1.8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scales_weakly() {
        let p = params();
        let hi = p.solo_bandwidth(3.6, 3.6);
        let lo = p.solo_bandwidth(1.2, 3.6);
        assert!((hi - 11.0).abs() < 1e-12);
        // at 1/3 frequency, bandwidth only drops to 0.6 + 0.4/3 = 73.3%
        assert!((lo / hi - (0.6 + 0.4 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_monotone_in_freq_and_activity() {
        let p = params();
        assert!(p.dynamic_power(1.0, 1.0) > p.dynamic_power(0.5, 1.0));
        assert!(p.dynamic_power(1.0, 1.0) > p.dynamic_power(1.0, 0.5));
        assert_eq!(p.dynamic_power(1.0, 0.0), 0.0);
    }
}
