//! Structured event log of an engine run.
//!
//! The engine optionally records dispatches, completions, frequency
//! changes, and cap-overshoot samples; the log is the raw material for
//! debugging schedules, rendering timelines, and asserting fine-grained
//! properties in tests (e.g. "the governor reacted within one sample of
//! the overshoot").

use crate::device::Device;
use crate::freq::FreqSetting;
use serde::{Deserialize, Serialize};

/// One timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time, seconds.
    pub at_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A job was dispatched to a device.
    Dispatch {
        /// Dispatcher-chosen tag.
        tag: usize,
        /// Job name.
        name: String,
        /// Target device.
        device: Device,
    },
    /// A job completed.
    Complete {
        /// Dispatcher-chosen tag.
        tag: usize,
        /// Device it ran on.
        device: Device,
    },
    /// The package frequency setting changed (dispatch override or
    /// governor action).
    FreqChange {
        /// Previous setting.
        from: FreqSetting,
        /// New setting.
        to: FreqSetting,
    },
    /// A power sample exceeded the recorder's cap-of-interest.
    CapOvershoot {
        /// The sampled average power, watts.
        power_w: f64,
    },
}

/// A bounded in-memory event recorder.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    /// Cap used for `CapOvershoot` events (`None` disables them).
    pub cap_of_interest_w: Option<f64>,
    /// Hard limit on recorded events (oldest kept; recording stops at the
    /// limit to bound memory on long runs).
    pub limit: usize,
}

impl EventLog {
    /// New recorder with a default 100k-event limit.
    pub fn new(cap_of_interest_w: Option<f64>) -> Self {
        EventLog {
            events: Vec::new(),
            cap_of_interest_w,
            limit: 100_000,
        }
    }

    /// Record an event (no-op past the limit).
    pub fn push(&mut self, at_s: f64, kind: EventKind) {
        if self.events.len() < self.limit {
            self.events.push(Event { at_s, kind });
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Dispatch events only.
    pub fn dispatches(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Dispatch { .. }))
    }

    /// Completion events only.
    pub fn completions(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Complete { .. }))
    }

    /// Frequency-change events only.
    pub fn freq_changes(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FreqChange { .. }))
    }

    /// Cap-overshoot events only.
    pub fn overshoots(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CapOvershoot { .. }))
    }

    /// Render the log as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = match &e.kind {
                EventKind::Dispatch { tag, name, device } => {
                    writeln!(out, "{:>9.2}s dispatch  #{tag} {name} -> {device}", e.at_s)
                }
                EventKind::Complete { tag, device } => {
                    writeln!(out, "{:>9.2}s complete  #{tag} on {device}", e.at_s)
                }
                EventKind::FreqChange { from, to } => {
                    writeln!(out, "{:>9.2}s freq      {from} -> {to}", e.at_s)
                }
                EventKind::CapOvershoot { power_w } => {
                    writeln!(out, "{:>9.2}s overshoot {power_w:.2} W", e.at_s)
                }
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut log = EventLog::new(Some(15.0));
        log.push(
            0.0,
            EventKind::Dispatch {
                tag: 0,
                name: "a".into(),
                device: Device::Cpu,
            },
        );
        log.push(
            0.25,
            EventKind::FreqChange {
                from: FreqSetting::new(15, 9),
                to: FreqSetting::new(14, 9),
            },
        );
        log.push(0.5, EventKind::CapOvershoot { power_w: 16.2 });
        log.push(
            3.0,
            EventKind::Complete {
                tag: 0,
                device: Device::Cpu,
            },
        );
        assert_eq!(log.len(), 4);
        assert_eq!(log.dispatches().count(), 1);
        assert_eq!(log.completions().count(), 1);
        assert_eq!(log.freq_changes().count(), 1);
        assert_eq!(log.overshoots().count(), 1);
        let text = log.render();
        assert!(text.contains("dispatch"));
        assert!(text.contains("overshoot 16.20 W"));
    }

    #[test]
    fn limit_bounds_memory() {
        let mut log = EventLog::new(None);
        log.limit = 3;
        for i in 0..10 {
            log.push(
                i as f64,
                EventKind::Complete {
                    tag: i,
                    device: Device::Gpu,
                },
            );
        }
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new(None);
        assert!(log.is_empty());
        assert_eq!(log.render(), "");
    }
}
