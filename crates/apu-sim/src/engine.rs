//! The discrete-event co-execution engine.
//!
//! The simulated machine is piecewise-constant between *wake-ups*: the
//! co-run dynamics (rates, utilizations, DRAM demands) only change when a
//! phase completes, a governor sampling window closes, a dispatcher
//! wake-up or fault-plan event fires, or host setup ends. The default
//! [`EngineMode::Event`] core therefore jumps the clock straight from one
//! wake-up to the next and integrates energy, utilization, and progress
//! in closed form over the skipped interval (see `docs/SIM.md`). Each
//! wake-up it:
//!
//! 1. derives every running job's *unimpeded* instantaneous behaviour
//!    (dedicated compute time, memory time at full device bandwidth, and the
//!    resulting DRAM demand — the same "throughput setting" coordinates the
//!    paper's micro-benchmark sweeps),
//! 2. arbitrates the simultaneous demands through the shared-memory model,
//! 3. stretches each job's memory portion by its device's memory slowdown
//!    and schedules each job's next phase/failure crossing at the stretched
//!    rate,
//! 4. integrates package power, and at every sampling boundary reports the
//!    window-averaged power to the governor, which may change frequencies
//!    (this sampling delay is what produces the transient cap overshoots the
//!    paper shows in Figure 9).
//!
//! [`EngineMode::FixedStep`] keeps the original fixed-tick loop
//! (`cfg.tick_s` per step) as the equivalence reference; the property
//! tests in `tests/engine_equivalence.rs` pin the two cores to each
//! other.
//!
//! Job dispatch is pluggable: a [`Dispatcher`] is consulted whenever a
//! device has a free slot, which is how schedules, the Random/Default
//! baselines, and steady-state characterization harnesses all drive the same
//! engine.

use crate::config::MachineConfig;
use crate::device::{Device, PerDevice};
use crate::events::{EventKind, EventLog};
use crate::faults::FaultInjector;
use crate::freq::FreqSetting;
use crate::governor::Governor;
use crate::power::{DeviceActivity, PowerTrace};
use crate::work::JobSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Consecutive zero-length wake-ups the event core tolerates before
/// convicting the run as a livelock (SIM005): far above any legitimate
/// coincident-event burst, far below "hung".
const ZERO_PROGRESS_LIMIT: usize = 1024;

/// Errors the engine can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No job is running, the dispatcher is not drained, yet it returned
    /// `Idle` for every free device — the run cannot make progress.
    Stalled { at_s: f64 },
    /// The simulation exceeded its wall-clock limit.
    TimeLimit { limit_s: f64 },
    /// A dispatcher tried to run more CPU jobs than the configured slots.
    NoCapacity { device: Device },
    /// An injected fault plan crashed the machine (one-shot runs only;
    /// resumable sessions surface [`SessionState::Crashed`] instead so
    /// the caller can evict and reschedule).
    Faulted { at_s: f64 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { at_s } => write!(f, "simulation stalled at t={at_s:.3}s"),
            SimError::TimeLimit { limit_s } => {
                write!(f, "simulation exceeded time limit of {limit_s:.1}s")
            }
            SimError::NoCapacity { device } => write!(f, "no free slot on {device}"),
            SimError::Faulted { at_s } => {
                write!(f, "machine crashed (injected fault) at t={at_s:.3}s")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A job handed to the engine by a dispatcher.
#[derive(Debug, Clone)]
pub struct DispatchJob {
    /// The workload to run.
    pub job: Arc<JobSpec>,
    /// Caller-chosen identifier propagated into [`JobRecord`]s.
    pub tag: usize,
    /// If set, the package switches to this frequency setting at dispatch
    /// (how a schedule's planned per-segment frequencies take effect).
    pub set_freq: Option<FreqSetting>,
}

/// Dispatcher response for a free device slot.
#[derive(Debug, Clone)]
pub enum Dispatch {
    /// Start this job on the free slot.
    Run(DispatchJob),
    /// Deliberately leave the slot empty for now (allowed only while work is
    /// still running elsewhere — the engine re-polls on every completion).
    Idle,
    /// Nothing to run *yet*: re-poll at the given simulated time (used by
    /// online schedulers waiting for a job arrival). The engine idles the
    /// machine forward if nothing else is running.
    WaitUntil(f64),
    /// No jobs will ever be offered again.
    Drained,
}

/// Read-only view handed to dispatchers.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCtx {
    /// Current package frequency setting.
    pub setting: FreqSetting,
    /// Number of jobs currently running per device.
    pub running: PerDevice<usize>,
}

/// Supplies jobs to free device slots.
pub trait Dispatcher {
    /// Called whenever `device` has a free slot at simulated time `now_s`.
    fn next(&mut self, device: Device, now_s: f64, ctx: &DispatchCtx) -> Dispatch;
}

/// Completion record of one job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Dispatcher-chosen tag.
    pub tag: usize,
    /// Job name.
    pub name: String,
    /// Device it ran on.
    pub device: Device,
    /// Dispatch time, seconds.
    pub start_s: f64,
    /// Completion time, seconds.
    pub end_s: f64,
}

impl JobRecord {
    /// Wall-clock duration of this execution.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Result of a full engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Time from start until the last job completed.
    pub makespan_s: f64,
    /// Per-job completion records, in completion order.
    pub records: Vec<JobRecord>,
    /// Package power trace at the configured sampling interval.
    pub trace: PowerTrace,
    /// Frequency setting at the end of the run.
    pub final_setting: FreqSetting,
}

impl RunReport {
    /// The record for `tag`, if that job completed.
    pub fn record(&self, tag: usize) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.tag == tag)
    }
}

/// Which advancement core a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Discrete-event core (default): jump between wake-ups, integrating
    /// the skipped interval in closed form. ~10-100x cheaper per
    /// simulated second than fixed stepping on realistic workloads.
    Event,
    /// Original fixed-tick core (`cfg.tick_s` per step). Kept as the
    /// equivalence reference and for bit-exact reproduction of results
    /// produced before the event core existed.
    FixedStep,
}

/// Options of a single engine run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Frequency setting at t=0 (dispatchers may override per dispatch).
    pub initial_setting: FreqSetting,
    /// Simultaneous CPU job slots (1 = the paper's schedulers; >1 enables
    /// the OS-style time sharing only the Default baseline exercises).
    pub cpu_slots: usize,
    /// Hard simulated-time limit.
    pub limit_s: f64,
    /// Advancement core (see [`EngineMode`]).
    pub engine: EngineMode,
}

impl RunOptions {
    /// Standard options: single job per device, given initial setting,
    /// generous limit, event-driven core.
    pub fn new(initial_setting: FreqSetting) -> Self {
        RunOptions {
            initial_setting,
            cpu_slots: 1,
            limit_s: 1.0e5,
            engine: EngineMode::Event,
        }
    }

    /// Same options on the fixed-step reference core.
    pub fn fixed_step(initial_setting: FreqSetting) -> Self {
        RunOptions {
            engine: EngineMode::FixedStep,
            ..RunOptions::new(initial_setting)
        }
    }
}

struct Running {
    job: Arc<JobSpec>,
    tag: usize,
    device: Device,
    phase: usize,
    progress: f64,
    setup_left: f64,
    start_s: f64,
    /// Straggler slowdown factor from the fault injector (1.0 = healthy).
    slowdown: f64,
    /// If set, the job dies when its overall progress fraction reaches
    /// this value (injected failure).
    fail_at: Option<f64>,
    failed: bool,
}

impl Running {
    fn new(dj: &DispatchJob, device: Device, now: f64) -> Self {
        Running {
            job: dj.job.clone(),
            tag: dj.tag,
            device,
            phase: 0,
            progress: 0.0,
            setup_left: dj.job.host_setup_s,
            start_s: now,
            slowdown: 1.0,
            fail_at: None,
            failed: false,
        }
    }

    /// Overall progress fraction across all phases, in `[0, 1]`.
    fn overall_frac(&self) -> f64 {
        let n = self.job.phases.len().max(1) as f64;
        ((self.phase as f64 + self.progress.clamp(0.0, 1.0)) / n).min(1.0)
    }

    /// Skip over zero-work phases; true if the job is finished.
    fn skip_trivial(&mut self) -> bool {
        while self.phase < self.job.phases.len() && self.job.phases[self.phase].is_trivial() {
            self.phase += 1;
            self.progress = 0.0;
        }
        self.phase >= self.job.phases.len()
    }
}

/// Per-job instantaneous dynamics computed each tick.
struct Dynamics {
    /// Progress rate in phase-fractions per second (0 while in host setup).
    rate: f64,
    /// Contribution to device compute utilization.
    util: f64,
    /// Actual DRAM consumption rate, GB/s.
    consumption: f64,
}

/// The co-execution engine over one machine configuration.
pub struct Engine<'a> {
    cfg: &'a MachineConfig,
}

impl<'a> Engine<'a> {
    /// New engine over `cfg`.
    pub fn new(cfg: &'a MachineConfig) -> Self {
        Engine { cfg }
    }

    /// The machine configuration this engine simulates.
    pub fn config(&self) -> &MachineConfig {
        self.cfg
    }

    /// Run to completion with the given dispatcher and governor.
    pub fn run(
        &self,
        dispatcher: &mut dyn Dispatcher,
        governor: &mut dyn Governor,
        opts: &RunOptions,
    ) -> Result<RunReport, SimError> {
        self.run_recorded(dispatcher, governor, opts, None)
    }

    /// Like [`Engine::run`], additionally recording structured events
    /// (dispatches, completions, frequency changes, cap overshoots) into
    /// `log`.
    pub fn run_recorded(
        &self,
        dispatcher: &mut dyn Dispatcher,
        governor: &mut dyn Governor,
        opts: &RunOptions,
        mut log: Option<&mut EventLog>,
    ) -> Result<RunReport, SimError> {
        let mut session = self.session(opts.clone());
        loop {
            match session.advance(dispatcher, governor, f64::INFINITY, log.as_deref_mut())? {
                SessionState::Finished => return Ok(session.into_report()),
                SessionState::Starved => {
                    return Err(SimError::Stalled {
                        at_s: session.now_s(),
                    })
                }
                SessionState::Crashed => {
                    return Err(SimError::Faulted {
                        at_s: session.now_s(),
                    })
                }
                // Unreachable with an infinite horizon, but harmless: keep
                // advancing.
                SessionState::Advanced => {}
            }
        }
    }

    /// Open a resumable [`Session`]: the incremental entry point behind
    /// [`Engine::run`]. A session holds all mid-run state (clock, running
    /// jobs, power windows, trace), so callers can interleave simulation
    /// with outside work — admit newly arrived jobs between
    /// [`Session::advance`] calls, read partial results, and keep going.
    /// This is what a resident scheduling service drives.
    pub fn session(&self, opts: RunOptions) -> Session<'a> {
        Session::new(self.cfg, opts)
    }
}

/// Where a [`Session`] stands after [`Session::advance`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The requested horizon elapsed with the run still active.
    Advanced,
    /// Nothing is running, nothing is scheduled to wake, and the
    /// dispatcher is not drained: the session cannot make progress until
    /// the dispatcher has new work. The resumable analogue of
    /// [`SimError::Stalled`] — call [`Session::advance`] again once work
    /// exists.
    Starved,
    /// The dispatcher drained and every dispatched job completed. Harvest
    /// with [`Session::into_report`].
    Finished,
    /// An injected fault plan crashed the machine: the session is dead,
    /// in-flight jobs (see [`Session::running_tags`]) are lost and must
    /// be rescheduled elsewhere. Terminal — further `advance` calls
    /// return `Crashed` again without simulating.
    Crashed,
}

/// A job that died mid-run from an injected fault (no [`JobRecord`] is
/// produced for it). Collected by [`Session::take_failures`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFailure {
    /// Dispatcher-chosen tag of the failed job.
    pub tag: usize,
    /// Device it was running on.
    pub device: Device,
    /// Dispatch time, seconds.
    pub start_s: f64,
    /// Failure time, seconds.
    pub at_s: f64,
}

/// A resumable engine run (see [`Engine::session`]).
///
/// All state of [`Engine::run`]'s loop lives here, so the simulation can
/// be advanced in bounded slices of simulated time. Between slices the
/// caller may inspect [`records`](Session::records) and
/// [`trace`](Session::trace) and feed its dispatcher more jobs; a
/// [`SessionState::Starved`] session resumes cleanly once the dispatcher
/// has work again (unlike a one-shot run, which fails with
/// [`SimError::Stalled`]).
pub struct Session<'a> {
    cfg: &'a MachineConfig,
    opts: RunOptions,
    now: f64,
    setting: FreqSetting,
    jobs: Vec<Running>,
    records: Vec<JobRecord>,
    trace: PowerTrace,
    drained: bool,
    wake_at: Option<f64>,
    window_energy: f64,
    window_t: f64,
    window_util: PerDevice<f64>,
    started: bool,
    finished: bool,
    faults: Option<FaultInjector>,
    crashed: bool,
    failures: Vec<JobFailure>,
    #[cfg(feature = "sanitize")]
    san: Option<crate::sanitize::RunSanitizer>,
}

impl<'a> Session<'a> {
    /// New session over `cfg` at t=0 with nothing dispatched yet.
    pub fn new(cfg: &'a MachineConfig, opts: RunOptions) -> Self {
        Session {
            cfg,
            setting: opts.initial_setting,
            opts,
            now: 0.0,
            jobs: Vec::new(),
            records: Vec::new(),
            trace: PowerTrace::new(cfg.power_sample_s),
            drained: false,
            wake_at: None,
            window_energy: 0.0,
            window_t: 0.0,
            window_util: PerDevice::new(0.0, 0.0),
            started: false,
            finished: false,
            faults: None,
            crashed: false,
            failures: Vec::new(),
            #[cfg(feature = "sanitize")]
            san: None,
        }
    }

    /// Attach a fault injector (from
    /// [`FaultPlan::injector`](crate::FaultPlan::injector)); subsequent
    /// [`Session::advance`] calls inject its crashes, job faults, and
    /// meter disturbances.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// The attached fault injector, if any — e.g. to drain its recorded
    /// [`FaultEvent`](crate::FaultEvent)s between advances.
    pub fn faults_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_mut()
    }

    /// Take the injected job failures observed so far (each failed job
    /// produced no [`JobRecord`]; the caller decides whether to retry).
    pub fn take_failures(&mut self) -> Vec<JobFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Tags of all currently running jobs (the in-flight set lost when
    /// the session reports [`SessionState::Crashed`]).
    pub fn running_tags(&self) -> Vec<usize> {
        self.jobs.iter().map(|r| r.tag).collect()
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now
    }

    /// Completion records so far, in completion order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Power trace so far (full windows only; a final partial window is
    /// flushed by [`Session::into_report`]).
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Current package frequency setting.
    pub fn setting(&self) -> FreqSetting {
        self.setting
    }

    /// Jobs currently running per device.
    pub fn running(&self) -> PerDevice<usize> {
        PerDevice::from_fn(|d| self.jobs.iter().filter(|r| r.device == d).count())
    }

    /// Whether the session reached [`SessionState::Finished`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Advance the simulation by up to `horizon_s` simulated seconds (pass
    /// `f64::INFINITY` to run until finished or starved). Returns the
    /// state the session stopped in; errors are terminal.
    pub fn advance(
        &mut self,
        dispatcher: &mut dyn Dispatcher,
        governor: &mut dyn Governor,
        horizon_s: f64,
        mut log: Option<&mut EventLog>,
    ) -> Result<SessionState, SimError> {
        if self.finished {
            return Ok(SessionState::Finished);
        }
        if self.crashed {
            return Ok(SessionState::Crashed);
        }
        if let Some(f) = self.faults.as_mut() {
            if f.crash_due(self.now) {
                f.note_crash(self.now);
                self.crashed = true;
                return Ok(SessionState::Crashed);
            }
        }
        #[cfg(feature = "sanitize")]
        if self.san.is_none() {
            self.san = Some(crate::sanitize::RunSanitizer::new(
                log.as_ref().and_then(|l| l.cap_of_interest_w),
                self.cfg.power_sample_s,
            ));
        }

        // First call, or resuming after Starved: poll the dispatcher
        // before advancing so an empty session never burns simulated time.
        if !self.started || self.jobs.is_empty() {
            self.started = true;
            self.refill(dispatcher, &mut log)?;
            if self.jobs.is_empty() && self.wake_at.is_none() {
                if self.drained {
                    self.finished = true;
                    return Ok(SessionState::Finished);
                }
                return Ok(SessionState::Starved);
            }
        }

        match self.opts.engine {
            EngineMode::Event => self.advance_event(dispatcher, governor, horizon_s, log),
            EngineMode::FixedStep => self.advance_fixed(dispatcher, governor, horizon_s, log),
        }
    }

    /// The original fixed-tick core: one `cfg.tick_s` step per loop
    /// iteration. Kept verbatim as the equivalence reference for the
    /// event core.
    fn advance_fixed(
        &mut self,
        dispatcher: &mut dyn Dispatcher,
        governor: &mut dyn Governor,
        horizon_s: f64,
        mut log: Option<&mut EventLog>,
    ) -> Result<SessionState, SimError> {
        let cfg = self.cfg;
        let dt = cfg.tick_s;
        let end = self.now + horizon_s;
        loop {
            // --- injected machine crash --------------------------------
            if let Some(f) = self.faults.as_mut() {
                if f.crash_due(self.now) {
                    f.note_crash(self.now);
                    self.crashed = true;
                    return Ok(SessionState::Crashed);
                }
            }

            // --- dynamics for this tick --------------------------------
            let dyns = self.tick_dynamics(&self.jobs, self.setting, self.now);

            // --- power integration -------------------------------------
            let power = self.instant_power(&self.jobs, &dyns, self.setting);
            self.window_energy += power * dt;
            self.window_t += dt;
            for d in Device::ALL {
                let u: f64 = self
                    .jobs
                    .iter()
                    .zip(dyns.iter())
                    .filter(|(r, _)| r.device == d)
                    .map(|(_, dy)| dy.util)
                    .sum();
                *self.window_util.get_mut(d) += u.min(1.0) * dt;
            }

            // --- advance jobs -------------------------------------------
            let mut completed_any = false;
            for (r, d) in self.jobs.iter_mut().zip(dyns.iter()) {
                if r.setup_left > 0.0 {
                    r.setup_left -= dt;
                    continue;
                }
                r.progress += d.rate * dt / r.slowdown;
                if let Some(fail_at) = r.fail_at {
                    if r.overall_frac() >= fail_at {
                        r.failed = true;
                        completed_any = true;
                        continue;
                    }
                }
                while r.progress >= 1.0 && r.phase < r.job.phases.len() {
                    r.progress -= 1.0;
                    r.phase += 1;
                    if r.skip_trivial() {
                        break;
                    }
                }
                if r.phase >= r.job.phases.len() {
                    completed_any = true;
                }
            }
            self.now += dt;
            #[cfg(feature = "sanitize")]
            if let Some(san) = self.san.as_mut() {
                san.on_tick(self.now, power);
            }

            // --- power sample + governor --------------------------------
            if self.window_t + 1e-12 >= cfg.power_sample_s {
                let avg = self.window_energy / self.window_t;
                // Meter faults perturb the *measured* sample — what the
                // trace, governor, and cap accounting observe. The
                // sanitizer watches the clean value: its envelope checks
                // guard engine invariants, not the sensor.
                let measured = match self.faults.as_mut() {
                    Some(f) => f.perturb_sample(self.now, avg),
                    None => avg,
                };
                self.trace.push(measured);
                #[cfg(feature = "sanitize")]
                if let Some(san) = self.san.as_mut() {
                    san.on_window(self.now, avg);
                }
                let avg_util = self.window_util.map(|u| u / self.window_t);
                self.window_util = PerDevice::new(0.0, 0.0);
                let new_setting =
                    governor.on_sample_util(self.now, measured, avg_util, self.setting, &cfg.freqs);
                if let Some(l) = log.as_deref_mut() {
                    if let Some(cap) = l.cap_of_interest_w {
                        if measured > cap {
                            l.push(self.now, EventKind::CapOvershoot { power_w: measured });
                        }
                    }
                    if new_setting != self.setting {
                        l.push(
                            self.now,
                            EventKind::FreqChange {
                                from: self.setting,
                                to: new_setting,
                            },
                        );
                    }
                }
                self.setting = new_setting;
                self.window_energy = 0.0;
                self.window_t = 0.0;
            }

            // --- completions + refill ------------------------------------
            if completed_any {
                let mut i = 0;
                while i < self.jobs.len() {
                    if self.jobs[i].failed {
                        // Injected failure: the job dies without a
                        // completion record; the caller sees it through
                        // take_failures() and decides whether to retry.
                        let r = self.jobs.remove(i);
                        self.failures.push(JobFailure {
                            tag: r.tag,
                            device: r.device,
                            start_s: r.start_s,
                            at_s: self.now,
                        });
                        continue;
                    }
                    if self.jobs[i].phase >= self.jobs[i].job.phases.len() {
                        let r = self.jobs.remove(i);
                        if let Some(l) = log.as_deref_mut() {
                            l.push(
                                self.now,
                                EventKind::Complete {
                                    tag: r.tag,
                                    device: r.device,
                                },
                            );
                        }
                        self.records.push(JobRecord {
                            tag: r.tag,
                            name: r.job.name.clone(),
                            device: r.device,
                            start_s: r.start_s,
                            end_s: self.now,
                        });
                    } else {
                        i += 1;
                    }
                }
                self.refill(dispatcher, &mut log)?;
            } else if self.wake_at.is_some_and(|w| self.now + 1e-9 >= w) {
                // A scheduled wakeup came due while jobs were running.
                self.refill(dispatcher, &mut log)?;
            }

            if self.jobs.is_empty() {
                if self.drained {
                    break;
                }
                // Nothing running: re-poll, then honour any wakeup by
                // idling the machine forward to it.
                self.refill(dispatcher, &mut log)?;
                if self.jobs.is_empty() {
                    if self.drained {
                        break;
                    }
                    let Some(w) = self.wake_at else {
                        return Ok(SessionState::Starved);
                    };
                    if w <= self.now + 1e-12 {
                        return Ok(SessionState::Starved);
                    }
                    // Idle-advance: integrate idle power until the wakeup.
                    let idle_p = cfg.power_model().package_power(
                        self.setting,
                        PerDevice::new(DeviceActivity::IDLE, DeviceActivity::IDLE),
                    );
                    while self.now + 1e-12 < w {
                        if let Some(f) = self.faults.as_mut() {
                            if f.crash_due(self.now) {
                                f.note_crash(self.now);
                                self.crashed = true;
                                return Ok(SessionState::Crashed);
                            }
                        }
                        let step = dt.min(w - self.now);
                        self.window_energy += idle_p * step;
                        self.window_t += step;
                        self.now += step;
                        #[cfg(feature = "sanitize")]
                        if let Some(san) = self.san.as_mut() {
                            san.on_tick(self.now, idle_p);
                        }
                        if self.window_t + 1e-12 >= cfg.power_sample_s {
                            let avg = self.window_energy / self.window_t;
                            let measured = match self.faults.as_mut() {
                                Some(f) => f.perturb_sample(self.now, avg),
                                None => avg,
                            };
                            self.trace.push(measured);
                            #[cfg(feature = "sanitize")]
                            if let Some(san) = self.san.as_mut() {
                                san.on_window(self.now, avg);
                            }
                            self.setting =
                                governor.on_sample(self.now, measured, self.setting, &cfg.freqs);
                            self.window_energy = 0.0;
                            self.window_t = 0.0;
                        }
                    }
                    self.refill(dispatcher, &mut log)?;
                    if self.jobs.is_empty() && !self.drained && self.wake_at.is_none() {
                        return Ok(SessionState::Starved);
                    }
                    if self.jobs.is_empty() && self.drained {
                        break;
                    }
                }
            }

            if self.now > self.opts.limit_s {
                return Err(SimError::TimeLimit {
                    limit_s: self.opts.limit_s,
                });
            }
            if self.now >= end {
                return Ok(SessionState::Advanced);
            }
        }

        self.finished = true;
        Ok(SessionState::Finished)
    }

    /// The discrete-event core: each loop iteration jumps the clock to
    /// the earliest pending wake-up and integrates the skipped interval
    /// in closed form. The wake-up sources are
    ///
    /// * the governor/meter window boundary (cadence on *accumulated*
    ///   window time, matching the fixed-step engine),
    /// * each running job's host-setup end, phase-completion crossing,
    ///   and injected-failure crossing at the current stretched rate,
    /// * the dispatcher's `WaitUntil` wake-up, and
    /// * the fault plan's scheduled machine crash.
    ///
    /// Dynamics are piecewise-constant between wake-ups (jitter is
    /// evaluated at segment start; window boundaries bound every segment
    /// to at most one sampling interval), so the integration is exact up
    /// to that quantization. Coincident events fire in the fixed-step
    /// engine's order: crash, then window flush, then completions and
    /// refill.
    fn advance_event(
        &mut self,
        dispatcher: &mut dyn Dispatcher,
        governor: &mut dyn Governor,
        horizon_s: f64,
        mut log: Option<&mut EventLog>,
    ) -> Result<SessionState, SimError> {
        let cfg = self.cfg;
        let end = self.now + horizon_s;
        // Livelock conviction (SIM005): a component that keeps
        // rescheduling itself at the same timestamp makes no progress;
        // a bounded run of zero-length wake-ups is a stall, not a
        // schedule.
        let mut zero_dt = 0usize;
        loop {
            // --- injected machine crash --------------------------------
            if let Some(f) = self.faults.as_mut() {
                if f.crash_due(self.now) {
                    f.note_crash(self.now);
                    self.crashed = true;
                    return Ok(SessionState::Crashed);
                }
            }

            if !self.jobs.is_empty() {
                // --- dynamics for this segment -------------------------
                let dyns = self.tick_dynamics(&self.jobs, self.setting, self.now);

                // --- earliest wake-up ----------------------------------
                let mut t_next = self.now + (cfg.power_sample_s - self.window_t).max(0.0);
                for (r, dy) in self.jobs.iter().zip(dyns.iter()) {
                    if r.setup_left > 0.0 {
                        t_next = t_next.min(self.now + r.setup_left);
                    } else if dy.rate > 0.0 {
                        let eff = dy.rate / r.slowdown;
                        let mut frac = (1.0 - r.progress).max(0.0);
                        if let Some(fail_at) = r.fail_at {
                            let n = r.job.phases.len().max(1) as f64;
                            let to_fail = fail_at * n - r.phase as f64 - r.progress;
                            frac = frac.min(to_fail.max(0.0));
                        }
                        t_next = t_next.min(self.now + frac / eff);
                    }
                }
                if let Some(w) = self.wake_at {
                    if w > self.now {
                        t_next = t_next.min(w);
                    }
                }
                if let Some(c) = self.faults.as_ref().and_then(FaultInjector::next_crash_s) {
                    if c > self.now {
                        t_next = t_next.min(c);
                    }
                }
                let dt = (t_next - self.now).max(0.0);
                self.check_progress(dt, &mut zero_dt)?;

                // --- closed-form integration over [now, t_next) --------
                let power = self.instant_power(&self.jobs, &dyns, self.setting);
                self.window_energy += power * dt;
                self.window_t += dt;
                for d in Device::ALL {
                    let u: f64 = self
                        .jobs
                        .iter()
                        .zip(dyns.iter())
                        .filter(|(r, _)| r.device == d)
                        .map(|(_, dy)| dy.util)
                        .sum();
                    *self.window_util.get_mut(d) += u.min(1.0) * dt;
                }

                // --- advance jobs to the wake-up -----------------------
                let mut completed_any = false;
                for (r, dy) in self.jobs.iter_mut().zip(dyns.iter()) {
                    if r.setup_left > 0.0 {
                        r.setup_left -= dt;
                        if r.setup_left < 1e-9 {
                            // The segment was scheduled to end exactly at
                            // setup end: snap the FP residue.
                            r.setup_left = 0.0;
                        }
                        continue;
                    }
                    r.progress += dy.rate * dt / r.slowdown;
                    if let Some(fail_at) = r.fail_at {
                        if r.overall_frac() + 1e-9 >= fail_at {
                            r.failed = true;
                            completed_any = true;
                            continue;
                        }
                    }
                    while r.progress + 1e-9 >= 1.0 && r.phase < r.job.phases.len() {
                        r.progress = (r.progress - 1.0).max(0.0);
                        r.phase += 1;
                        if r.skip_trivial() {
                            break;
                        }
                    }
                    if r.phase >= r.job.phases.len() {
                        completed_any = true;
                    }
                }
                self.now = t_next;
                #[cfg(feature = "sanitize")]
                if let Some(san) = self.san.as_mut() {
                    san.on_tick(self.now, power);
                }

                // --- power sample + governor ---------------------------
                if self.window_t + 1e-12 >= cfg.power_sample_s {
                    let avg = self.window_energy / self.window_t;
                    let measured = match self.faults.as_mut() {
                        Some(f) => f.perturb_sample(self.now, avg),
                        None => avg,
                    };
                    self.trace.push(measured);
                    #[cfg(feature = "sanitize")]
                    if let Some(san) = self.san.as_mut() {
                        san.on_window(self.now, avg);
                    }
                    let avg_util = self.window_util.map(|u| u / self.window_t);
                    self.window_util = PerDevice::new(0.0, 0.0);
                    let new_setting = governor.on_sample_util(
                        self.now,
                        measured,
                        avg_util,
                        self.setting,
                        &cfg.freqs,
                    );
                    if let Some(l) = log.as_deref_mut() {
                        if let Some(cap) = l.cap_of_interest_w {
                            if measured > cap {
                                l.push(self.now, EventKind::CapOvershoot { power_w: measured });
                            }
                        }
                        if new_setting != self.setting {
                            l.push(
                                self.now,
                                EventKind::FreqChange {
                                    from: self.setting,
                                    to: new_setting,
                                },
                            );
                        }
                    }
                    self.setting = new_setting;
                    self.window_energy = 0.0;
                    self.window_t = 0.0;
                }

                // --- completions + refill ------------------------------
                if completed_any {
                    let mut i = 0;
                    while i < self.jobs.len() {
                        if self.jobs[i].failed {
                            let r = self.jobs.remove(i);
                            self.failures.push(JobFailure {
                                tag: r.tag,
                                device: r.device,
                                start_s: r.start_s,
                                at_s: self.now,
                            });
                            continue;
                        }
                        if self.jobs[i].phase >= self.jobs[i].job.phases.len() {
                            let r = self.jobs.remove(i);
                            if let Some(l) = log.as_deref_mut() {
                                l.push(
                                    self.now,
                                    EventKind::Complete {
                                        tag: r.tag,
                                        device: r.device,
                                    },
                                );
                            }
                            self.records.push(JobRecord {
                                tag: r.tag,
                                name: r.job.name.clone(),
                                device: r.device,
                                start_s: r.start_s,
                                end_s: self.now,
                            });
                        } else {
                            i += 1;
                        }
                    }
                    self.refill(dispatcher, &mut log)?;
                } else if self.wake_at.is_some_and(|w| self.now + 1e-9 >= w) {
                    // The dispatcher's scheduled wake-up is itself an
                    // event, so it fires exactly on time.
                    self.refill(dispatcher, &mut log)?;
                }
            }

            if self.jobs.is_empty() {
                if self.drained {
                    break;
                }
                // Nothing running: re-poll, then honour any wake-up by
                // idling the machine forward to it.
                self.refill(dispatcher, &mut log)?;
                if self.jobs.is_empty() {
                    if self.drained {
                        break;
                    }
                    let Some(w) = self.wake_at else {
                        return Ok(SessionState::Starved);
                    };
                    if w <= self.now + 1e-12 {
                        return Ok(SessionState::Starved);
                    }
                    // Idle-advance as events: the only wake-ups are the
                    // window boundary, the dispatcher wake-up itself, and
                    // a pending crash; idle power is constant between
                    // them, so an idle session costs O(windows), not
                    // O(ticks).
                    let idle_p = cfg.power_model().package_power(
                        self.setting,
                        PerDevice::new(DeviceActivity::IDLE, DeviceActivity::IDLE),
                    );
                    while self.now + 1e-12 < w {
                        if let Some(f) = self.faults.as_mut() {
                            if f.crash_due(self.now) {
                                f.note_crash(self.now);
                                self.crashed = true;
                                return Ok(SessionState::Crashed);
                            }
                        }
                        let mut t_next =
                            w.min(self.now + (cfg.power_sample_s - self.window_t).max(0.0));
                        if let Some(c) = self.faults.as_ref().and_then(FaultInjector::next_crash_s)
                        {
                            if c > self.now {
                                t_next = t_next.min(c);
                            }
                        }
                        let step = (t_next - self.now).max(0.0);
                        self.check_progress(step, &mut zero_dt)?;
                        self.window_energy += idle_p * step;
                        self.window_t += step;
                        self.now = t_next;
                        #[cfg(feature = "sanitize")]
                        if let Some(san) = self.san.as_mut() {
                            san.on_tick(self.now, idle_p);
                        }
                        if self.window_t + 1e-12 >= cfg.power_sample_s {
                            let avg = self.window_energy / self.window_t;
                            let measured = match self.faults.as_mut() {
                                Some(f) => f.perturb_sample(self.now, avg),
                                None => avg,
                            };
                            self.trace.push(measured);
                            #[cfg(feature = "sanitize")]
                            if let Some(san) = self.san.as_mut() {
                                san.on_window(self.now, avg);
                            }
                            self.setting =
                                governor.on_sample(self.now, measured, self.setting, &cfg.freqs);
                            self.window_energy = 0.0;
                            self.window_t = 0.0;
                        }
                    }
                    self.refill(dispatcher, &mut log)?;
                    if self.jobs.is_empty() && !self.drained && self.wake_at.is_none() {
                        return Ok(SessionState::Starved);
                    }
                    if self.jobs.is_empty() && self.drained {
                        break;
                    }
                }
            }

            if self.now > self.opts.limit_s {
                return Err(SimError::TimeLimit {
                    limit_s: self.opts.limit_s,
                });
            }
            if self.now >= end {
                return Ok(SessionState::Advanced);
            }
        }

        self.finished = true;
        Ok(SessionState::Finished)
    }

    /// SIM005 guard: convict a run of consecutive zero-length wake-ups
    /// as a livelock instead of hanging (see [`EngineMode::Event`]).
    fn check_progress(&mut self, dt: f64, zero_dt: &mut usize) -> Result<(), SimError> {
        if dt > 1e-12 {
            *zero_dt = 0;
            return Ok(());
        }
        *zero_dt += 1;
        if *zero_dt < ZERO_PROGRESS_LIMIT {
            return Ok(());
        }
        #[cfg(feature = "sanitize")]
        if self.san.is_some() {
            crate::sanitize::record(crate::sanitize::Violation::ZeroProgressWakeup {
                at_s: self.now,
            });
        }
        Err(SimError::Stalled { at_s: self.now })
    }

    /// Close the session: flush the final partial power window and return
    /// the run report for everything simulated so far.
    pub fn into_report(mut self) -> RunReport {
        // Flush a final partial power window so short runs still trace.
        if self.window_t > 0.0 {
            let avg = self.window_energy / self.window_t;
            self.trace.push(avg);
            #[cfg(feature = "sanitize")]
            if let Some(san) = self.san.as_mut() {
                san.on_window(self.now, avg);
            }
        }
        #[cfg(feature = "sanitize")]
        if let Some(san) = self.san.as_mut() {
            san.finish(self.now);
        }

        let makespan = self.records.iter().map(|r| r.end_s).fold(0.0, f64::max);
        RunReport {
            makespan_s: makespan,
            records: self.records,
            trace: self.trace,
            final_setting: self.setting,
        }
    }

    fn slots(&self, device: Device) -> usize {
        match device {
            Device::Cpu => self.opts.cpu_slots.min(self.cfg.multiprog.max_cpu_slots),
            Device::Gpu => 1,
        }
    }

    fn refill(
        &mut self,
        dispatcher: &mut dyn Dispatcher,
        log: &mut Option<&mut EventLog>,
    ) -> Result<(), SimError> {
        if self.drained {
            return Ok(());
        }
        self.wake_at = None;
        for device in Device::ALL {
            loop {
                let used = self.jobs.iter().filter(|r| r.device == device).count();
                if used >= self.slots(device) {
                    break;
                }
                let ctx = DispatchCtx {
                    setting: self.setting,
                    running: PerDevice::from_fn(|d| {
                        self.jobs.iter().filter(|r| r.device == d).count()
                    }),
                };
                match dispatcher.next(device, self.now, &ctx) {
                    Dispatch::Run(dj) => {
                        if let Some(fs) = dj.set_freq {
                            if fs != self.setting {
                                if let Some(l) = log.as_deref_mut() {
                                    l.push(
                                        self.now,
                                        EventKind::FreqChange {
                                            from: self.setting,
                                            to: fs,
                                        },
                                    );
                                }
                            }
                            self.setting = fs;
                        }
                        if let Some(l) = log.as_deref_mut() {
                            l.push(
                                self.now,
                                EventKind::Dispatch {
                                    tag: dj.tag,
                                    name: dj.job.name.clone(),
                                    device,
                                },
                            );
                        }
                        let mut r = Running::new(&dj, device, self.now);
                        if let Some(f) = self.faults.as_mut() {
                            let prof = f.profile(dj.tag, self.now);
                            r.slowdown = prof.slowdown.max(1.0);
                            r.fail_at = prof.fail_at_frac;
                        }
                        if r.skip_trivial() && r.setup_left <= 0.0 {
                            // Degenerate empty job: completes instantly.
                            continue;
                        }
                        self.jobs.push(r);
                    }
                    Dispatch::Idle => break,
                    Dispatch::WaitUntil(t) => {
                        if t > self.now {
                            self.wake_at = Some(self.wake_at.map_or(t, |w: f64| w.min(t)));
                        }
                        break;
                    }
                    Dispatch::Drained => {
                        self.drained = true;
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    /// Compute per-job dynamics for one tick.
    fn tick_dynamics(&self, jobs: &[Running], setting: FreqSetting, now: f64) -> Vec<Dynamics> {
        let cfg = self.cfg;

        // Cross-device LLC pressure: the max pressure any active phase on the
        // other device exerts.
        let pressure = PerDevice::from_fn(|d| {
            jobs.iter()
                .filter(|r| r.device == d && r.setup_left <= 0.0)
                .filter_map(|r| r.job.phases.get(r.phase))
                .map(|p| p.llc_pressure)
                .fold(0.0, f64::max)
        });

        let count = PerDevice::from_fn(|d| jobs.iter().filter(|r| r.device == d).count());
        let rate_factor = PerDevice::from_fn(|d| match d {
            Device::Cpu => cfg.multiprog_rate(count.cpu),
            Device::Gpu => 1.0,
        });
        let traffic_mult = PerDevice::from_fn(|d| match d {
            Device::Cpu => cfg.multiprog_traffic(count.cpu),
            Device::Gpu => 1.0,
        });

        // Pass 1: unimpeded per-job times and demands.
        struct Pre {
            tc: f64,
            tm0: f64,
            demand0: f64,
        }
        let pre: Vec<Option<Pre>> = jobs
            .iter()
            .map(|r| {
                if r.setup_left > 0.0 {
                    return None;
                }
                let phase = r.job.phases.get(r.phase)?;
                let d = r.device;
                let dev = cfg.device(d);
                let f = cfg.freqs.ghz(d, setting);
                let f_max = cfg.f_max(d);
                let llc_mult = cfg.memory.llc_traffic_multiplier(
                    phase.llc_footprint_mib,
                    phase.llc_sensitivity,
                    *pressure.get(d.other()),
                );
                let scale = r.job.jitter(now - r.start_s) * traffic_mult.get(d);
                let base_bytes = phase.bytes * scale;
                let extra_bytes = phase.bytes * (llc_mult - 1.0) * scale;
                let bytes_eff = base_bytes + extra_bytes;
                let tc = phase.compute_time(dev, d, f);
                let bw = dev.solo_bandwidth(f, f_max);
                // Thrash-induced misses are latency-bound: they stream at
                // the phase's miss bandwidth, not the device's peak.
                let miss_bw = if phase.llc_miss_bw_gbps > 0.0 {
                    phase.llc_miss_bw_gbps.min(bw)
                } else {
                    bw
                };
                let tm0 = if bytes_eff <= 0.0 {
                    0.0
                } else {
                    base_bytes / bw + extra_bytes / miss_bw
                };
                let t0 = phase.combine(tc, tm0);
                let demand0 = if t0 > 0.0 {
                    (bytes_eff / t0.max(1e-12)) * rate_factor.get(d)
                } else {
                    0.0
                };
                Some(Pre { tc, tm0, demand0 })
            })
            .collect();

        // Pass 2: arbitrate combined demands.
        let demand = PerDevice::from_fn(|d| {
            jobs.iter()
                .zip(pre.iter())
                .filter(|(r, _)| r.device == d)
                .filter_map(|(_, p)| p.as_ref())
                .map(|p| p.demand0)
                .sum::<f64>()
        });
        let arb = cfg.memory.arbitrate(demand);

        // Pass 3: stretched per-job times and rates.
        jobs.iter()
            .zip(pre.iter())
            .map(|(r, p)| {
                let Some(p) = p else {
                    // Host setup: negligible device activity.
                    return Dynamics {
                        rate: 0.0,
                        util: 0.05,
                        consumption: 0.0,
                    };
                };
                let d = r.device;
                let phase = &r.job.phases[r.phase];
                let slow = *arb.mem_slowdown.get(d);
                let tm = p.tm0 * slow;
                let t_inst = phase.combine(p.tc, tm).max(1e-12);
                let share = *rate_factor.get(d);
                let rate = share / t_inst;
                // Power-wise the job occupies its full time slice (1/k of
                // the device); context-switch overhead burns energy without
                // making progress, so utilization uses the raw slice, not
                // the progress-effective `rate_factor`.
                let slice = 1.0 / (*count.get(d)).max(1) as f64;
                let busy_frac = (p.tc / t_inst).min(1.0);
                let stall = cfg.device(d).stall_power_frac;
                let util = slice * (busy_frac + stall * (1.0 - busy_frac));
                let consumption = p.demand0 / share.max(1e-12) * share / slow.max(1.0);
                Dynamics {
                    rate,
                    util,
                    consumption,
                }
            })
            .collect()
    }

    fn instant_power(&self, jobs: &[Running], dyns: &[Dynamics], setting: FreqSetting) -> f64 {
        let act = PerDevice::from_fn(|d| {
            let mut util = 0.0;
            let mut bw = 0.0;
            for (r, dy) in jobs.iter().zip(dyns.iter()) {
                if r.device == d {
                    util += dy.util;
                    bw += dy.consumption;
                }
            }
            DeviceActivity {
                compute_util: util.min(1.0),
                mem_bw_gbps: bw,
            }
        });
        self.cfg.power_model().package_power(setting, act)
    }
}

// ---------------------------------------------------------------------------
// Convenience harnesses built on the engine
// ---------------------------------------------------------------------------

/// Dispatcher that runs a fixed list of jobs on one device, in order, with
/// nothing on the other device.
struct SoloDispatcher {
    device: Device,
    queue: std::collections::VecDeque<Arc<JobSpec>>,
    next_tag: usize,
}

impl Dispatcher for SoloDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        if device != self.device {
            return Dispatch::Idle;
        }
        match self.queue.pop_front() {
            Some(job) => {
                let tag = self.next_tag;
                self.next_tag += 1;
                Dispatch::Run(DispatchJob {
                    job,
                    tag,
                    set_freq: None,
                })
            }
            None => Dispatch::Drained,
        }
    }
}

/// Outcome of a solo run.
#[derive(Debug, Clone)]
pub struct SoloOutcome {
    /// Job wall time.
    pub time_s: f64,
    /// Mean package power over the run.
    pub mean_power_w: f64,
    /// Full power trace.
    pub trace: PowerTrace,
}

/// Run a single job alone on `device` at `setting`; returns its wall time
/// and power profile. This is the simulated equivalent of the paper's
/// offline standalone profiling runs.
pub fn run_solo(
    cfg: &MachineConfig,
    job: &JobSpec,
    device: Device,
    setting: FreqSetting,
) -> Result<SoloOutcome, SimError> {
    let engine = Engine::new(cfg);
    let mut disp = SoloDispatcher {
        device,
        queue: [Arc::new(job.clone())].into_iter().collect(),
        next_tag: 0,
    };
    let mut gov = crate::governor::NullGovernor;
    let report = engine.run(&mut disp, &mut gov, &RunOptions::new(setting))?;
    Ok(SoloOutcome {
        time_s: report.makespan_s,
        mean_power_w: report.trace.mean_w(),
        trace: report.trace,
    })
}

/// Dispatcher for a single co-run pair: one job per device, no refills.
struct PairDispatcher {
    cpu: Option<Arc<JobSpec>>,
    gpu: Option<Arc<JobSpec>>,
}

impl Dispatcher for PairDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        let slot = match device {
            Device::Cpu => &mut self.cpu,
            Device::Gpu => &mut self.gpu,
        };
        match slot.take() {
            Some(job) => Dispatch::Run(DispatchJob {
                job,
                tag: device.index(),
                set_freq: None,
            }),
            None => {
                if self.cpu.is_none() && self.gpu.is_none() {
                    Dispatch::Drained
                } else {
                    Dispatch::Idle
                }
            }
        }
    }
}

/// Outcome of a two-job co-run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Wall time of the CPU job.
    pub cpu_time_s: f64,
    /// Wall time of the GPU job.
    pub gpu_time_s: f64,
    /// Makespan of the pair.
    pub makespan_s: f64,
    /// Power trace of the whole co-run.
    pub trace: PowerTrace,
}

/// Co-run `cpu_job` on the CPU and `gpu_job` on the GPU, both starting at
/// t=0; after one finishes the other continues alone. The ground-truth
/// measurement the paper obtains by actually co-running two programs.
pub fn run_pair(
    cfg: &MachineConfig,
    cpu_job: &JobSpec,
    gpu_job: &JobSpec,
    setting: FreqSetting,
    governor: &mut dyn Governor,
) -> Result<PairOutcome, SimError> {
    let engine = Engine::new(cfg);
    let mut disp = PairDispatcher {
        cpu: Some(Arc::new(cpu_job.clone())),
        gpu: Some(Arc::new(gpu_job.clone())),
    };
    let report = engine.run(&mut disp, governor, &RunOptions::new(setting))?;
    let cpu_time = report
        .records
        .iter()
        .find(|r| r.device == Device::Cpu)
        .map_or(0.0, JobRecord::duration_s);
    let gpu_time = report
        .records
        .iter()
        .find(|r| r.device == Device::Gpu)
        .map_or(0.0, JobRecord::duration_s);
    Ok(PairOutcome {
        cpu_time_s: cpu_time,
        gpu_time_s: gpu_time,
        makespan_s: report.makespan_s,
        trace: report.trace,
    })
}

/// Dispatcher that runs `fore` once on its device while endlessly restarting
/// `back` on the other device.
struct BackgroundDispatcher {
    fore_device: Device,
    fore: Option<Arc<JobSpec>>,
    back: Arc<JobSpec>,
    fore_done: bool,
    next_tag: usize,
}

impl Dispatcher for BackgroundDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        if device == self.fore_device {
            match self.fore.take() {
                Some(job) => Dispatch::Run(DispatchJob {
                    job,
                    tag: 0,
                    set_freq: None,
                }),
                None => {
                    self.fore_done = true;
                    Dispatch::Drained
                }
            }
        } else {
            // keep the background device busy until the engine drains
            let tag = self.next_tag;
            self.next_tag += 1;
            Dispatch::Run(DispatchJob {
                job: self.back.clone(),
                tag: 1000 + tag,
                set_freq: None,
            })
        }
    }
}

/// Run `fore` once on `fore_device` while the other device continuously
/// re-runs `back`; returns the foreground job's wall time. This measures
/// *steady-state* co-run degradation — how the paper's micro-benchmark
/// characterization isolates one point of the degradation space.
pub fn run_with_background(
    cfg: &MachineConfig,
    fore: &JobSpec,
    fore_device: Device,
    back: &JobSpec,
    setting: FreqSetting,
) -> Result<f64, SimError> {
    let engine = Engine::new(cfg);
    let mut disp = BackgroundDispatcher {
        fore_device,
        fore: Some(Arc::new(fore.clone())),
        back: Arc::new(back.clone()),
        fore_done: false,
        next_tag: 0,
    };
    let mut gov = crate::governor::NullGovernor;
    let report = engine.run(&mut disp, &mut gov, &RunOptions::new(setting))?;
    report
        .records
        .iter()
        .find(|r| r.tag == 0)
        .map(JobRecord::duration_s)
        .ok_or(SimError::Stalled { at_s: 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{single_phase_job, PhaseWork};

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    fn compute_phase(flops: f64) -> PhaseWork {
        PhaseWork {
            flops,
            bytes: 0.0,
            cpu_eff: 1.0,
            gpu_eff: 1.0,
            llc_footprint_mib: 64.0,
            llc_sensitivity: 0.0,
            llc_pressure: 0.0,
            llc_miss_bw_gbps: 0.0,
            overlap: 0.2,
        }
    }

    fn memory_phase(bytes: f64) -> PhaseWork {
        PhaseWork {
            flops: 0.0,
            bytes,
            cpu_eff: 1.0,
            gpu_eff: 1.0,
            llc_footprint_mib: 256.0,
            llc_sensitivity: 0.0,
            llc_pressure: 0.9,
            llc_miss_bw_gbps: 0.0,
            overlap: 0.2,
        }
    }

    #[test]
    fn solo_compute_job_matches_analytic_time() {
        let cfg = cfg();
        // 900 GFLOP on the CPU at 3.6 GHz, 25 GFLOPs/GHz: 10 s.
        let job = single_phase_job("c", compute_phase(900.0));
        let out = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        assert!((out.time_s - 10.0).abs() < 0.05, "got {}", out.time_s);
    }

    #[test]
    fn solo_memory_job_matches_analytic_time() {
        let cfg = cfg();
        let job = single_phase_job("m", memory_phase(110.0));
        let out = run_solo(&cfg, &job, Device::Gpu, cfg.freqs.max_setting()).unwrap();
        assert!((out.time_s - 10.0).abs() < 0.05, "got {}", out.time_s);
    }

    #[test]
    fn solo_engine_agrees_with_spec_solo_time() {
        let cfg = cfg();
        let job = JobSpec::plain(
            "mix",
            vec![
                compute_phase(450.0),
                memory_phase(55.0),
                compute_phase(225.0),
            ],
        );
        let analytic = job.solo_time(
            &cfg.cpu,
            Device::Cpu,
            cfg.f_max(Device::Cpu),
            cfg.f_max(Device::Cpu),
        );
        let out = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        assert!(
            (out.time_s - analytic).abs() / analytic < 0.01,
            "engine {} vs analytic {analytic}",
            out.time_s
        );
    }

    #[test]
    fn corun_of_memory_jobs_degrades_both() {
        let cfg = cfg();
        let a = single_phase_job("a", memory_phase(220.0));
        let b = single_phase_job("b", memory_phase(220.0));
        let s = cfg.freqs.max_setting();
        let solo_a = run_solo(&cfg, &a, Device::Cpu, s).unwrap().time_s;
        let solo_b = run_solo(&cfg, &b, Device::Gpu, s).unwrap().time_s;
        let mut gov = crate::governor::NullGovernor;
        let pair = run_pair(&cfg, &a, &b, s, &mut gov).unwrap();
        assert!(
            pair.cpu_time_s > solo_a * 1.2,
            "CPU job must degrade under contention"
        );
        assert!(
            pair.gpu_time_s > solo_b * 1.2,
            "GPU job must degrade under contention"
        );
    }

    #[test]
    fn corun_of_compute_jobs_degrades_neither() {
        let cfg = cfg();
        let a = single_phase_job("a", compute_phase(900.0));
        let b = single_phase_job("b", compute_phase(2500.0));
        let s = cfg.freqs.max_setting();
        let solo_a = run_solo(&cfg, &a, Device::Cpu, s).unwrap().time_s;
        let solo_b = run_solo(&cfg, &b, Device::Gpu, s).unwrap().time_s;
        let mut gov = crate::governor::NullGovernor;
        let pair = run_pair(&cfg, &a, &b, s, &mut gov).unwrap();
        assert!((pair.cpu_time_s - solo_a).abs() / solo_a < 0.02);
        assert!((pair.gpu_time_s - solo_b).abs() / solo_b < 0.02);
    }

    #[test]
    fn after_corunner_finishes_job_speeds_up() {
        let cfg = cfg();
        let long = single_phase_job("long", memory_phase(220.0));
        let short = single_phase_job("short", memory_phase(44.0));
        let s = cfg.freqs.max_setting();
        let solo_long = run_solo(&cfg, &long, Device::Cpu, s).unwrap().time_s;
        let mut gov = crate::governor::NullGovernor;
        let pair = run_pair(&cfg, &long, &short, s, &mut gov).unwrap();
        // The long job is only contended while the short one runs; its total
        // slowdown must be well below the steady-state degradation.
        let steady = run_with_background(&cfg, &long, Device::Cpu, &short, s).unwrap();
        assert!(
            pair.cpu_time_s < steady,
            "partial overlap must beat steady-state contention"
        );
        assert!(
            pair.cpu_time_s > solo_long,
            "but it is still slower than solo"
        );
    }

    #[test]
    fn background_harness_measures_steady_state() {
        let cfg = cfg();
        let fore = single_phase_job("fore", memory_phase(110.0));
        let back = single_phase_job("back", memory_phase(11.0)); // short, restarts often
        let s = cfg.freqs.max_setting();
        let solo = run_solo(&cfg, &fore, Device::Cpu, s).unwrap().time_s;
        let co = run_with_background(&cfg, &fore, Device::Cpu, &back, s).unwrap();
        assert!(
            co > solo * 1.3,
            "steady contention expected, solo={solo} co={co}"
        );
    }

    #[test]
    fn power_trace_reflects_load() {
        let cfg = cfg();
        let job = single_phase_job("c", compute_phase(900.0));
        let out = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        // CPU busy at max frequency: idle floors + uncore + cpu dynamic.
        assert!(out.mean_power_w > 10.0, "got {}", out.mean_power_w);
        assert!(out.mean_power_w < 20.0, "got {}", out.mean_power_w);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn lower_frequency_uses_less_power() {
        let cfg = cfg();
        let job = single_phase_job("c", compute_phase(450.0));
        let hi = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        let lo = run_solo(&cfg, &job, Device::Cpu, FreqSetting::new(0, 0)).unwrap();
        assert!(lo.mean_power_w < hi.mean_power_w);
        assert!(lo.time_s > hi.time_s);
    }

    #[test]
    fn empty_dispatcher_yields_empty_report() {
        let cfg = cfg();
        struct Empty;
        impl Dispatcher for Empty {
            fn next(&mut self, _d: Device, _n: f64, _c: &DispatchCtx) -> Dispatch {
                Dispatch::Drained
            }
        }
        let engine = Engine::new(&cfg);
        let mut gov = crate::governor::NullGovernor;
        let r = engine
            .run(
                &mut Empty,
                &mut gov,
                &RunOptions::new(cfg.freqs.max_setting()),
            )
            .unwrap();
        assert_eq!(r.makespan_s, 0.0);
        assert!(r.records.is_empty());
    }

    #[test]
    fn stalled_dispatcher_is_an_error() {
        let cfg = cfg();
        struct Lazy;
        impl Dispatcher for Lazy {
            fn next(&mut self, _d: Device, _n: f64, _c: &DispatchCtx) -> Dispatch {
                Dispatch::Idle
            }
        }
        let engine = Engine::new(&cfg);
        let mut gov = crate::governor::NullGovernor;
        let r = engine.run(
            &mut Lazy,
            &mut gov,
            &RunOptions::new(cfg.freqs.max_setting()),
        );
        assert!(matches!(r, Err(SimError::Stalled { .. })));
    }

    #[test]
    fn time_limit_enforced() {
        let cfg = cfg();
        let job = single_phase_job("c", compute_phase(9000.0)); // 100 s
        let engine = Engine::new(&cfg);
        let mut disp = SoloDispatcher {
            device: Device::Cpu,
            queue: [Arc::new(job)].into_iter().collect(),
            next_tag: 0,
        };
        let mut gov = crate::governor::NullGovernor;
        let mut opts = RunOptions::new(cfg.freqs.max_setting());
        opts.limit_s = 5.0;
        let r = engine.run(&mut disp, &mut gov, &opts);
        assert!(matches!(r, Err(SimError::TimeLimit { .. })));
    }

    #[test]
    fn governor_keeps_power_near_cap() {
        let cfg = cfg();
        let a = single_phase_job("a", compute_phase(2000.0));
        let b = single_phase_job("b", compute_phase(5000.0));
        let cap = 15.0;
        let mut gov = crate::governor::BiasedGovernor::gpu_biased(cap);
        let pair = run_pair(&cfg, &a, &b, cfg.freqs.max_setting(), &mut gov).unwrap();
        // After the governor settles, power must hover at/below the cap;
        // transient overshoot is bounded (paper: typically < 2 W).
        let late: Vec<f64> = pair
            .trace
            .samples_w
            .iter()
            .copied()
            .skip(pair.trace.len() / 2)
            .collect();
        let late_max = late.iter().copied().fold(0.0, f64::max);
        assert!(
            late_max <= cap + 2.0,
            "late max {late_max} too far above cap"
        );
    }

    #[test]
    fn multiprog_cpu_slows_each_job() {
        let cfg = cfg();
        let engine = Engine::new(&cfg);
        let job = single_phase_job("c", compute_phase(225.0)); // 2.5 s dedicated
        struct TwoCpu {
            left: Vec<Arc<JobSpec>>,
        }
        impl Dispatcher for TwoCpu {
            fn next(&mut self, d: Device, _n: f64, _c: &DispatchCtx) -> Dispatch {
                if d == Device::Cpu {
                    match self.left.pop() {
                        Some(j) => Dispatch::Run(DispatchJob {
                            job: j,
                            tag: self.left.len(),
                            set_freq: None,
                        }),
                        None => Dispatch::Drained,
                    }
                } else {
                    Dispatch::Idle
                }
            }
        }
        let mut disp = TwoCpu {
            left: vec![Arc::new(job.clone()), Arc::new(job.clone())],
        };
        let mut gov = crate::governor::NullGovernor;
        let mut opts = RunOptions::new(cfg.freqs.max_setting());
        opts.cpu_slots = 2;
        let r = engine.run(&mut disp, &mut gov, &opts).unwrap();
        // Two 2.5 s jobs time-shared: each takes > 5 s (sharing + overhead),
        // and the makespan exceeds the sum of dedicated times.
        assert!(r.makespan_s > 5.0, "makespan {}", r.makespan_s);
        for rec in &r.records {
            assert!(
                rec.duration_s() > 5.0,
                "each shared job must see >2x slowdown"
            );
        }
    }

    #[test]
    fn records_are_complete_and_ordered() {
        let cfg = cfg();
        let engine = Engine::new(&cfg);
        let jobs: Vec<Arc<JobSpec>> = (0..3)
            .map(|i| Arc::new(single_phase_job(format!("j{i}"), compute_phase(90.0))))
            .collect();
        let mut disp = SoloDispatcher {
            device: Device::Gpu,
            queue: jobs.into_iter().collect(),
            next_tag: 0,
        };
        let mut gov = crate::governor::NullGovernor;
        let r = engine
            .run(
                &mut disp,
                &mut gov,
                &RunOptions::new(cfg.freqs.max_setting()),
            )
            .unwrap();
        assert_eq!(r.records.len(), 3);
        for w in r.records.windows(2) {
            assert!(w[0].end_s <= w[1].end_s + 1e-9);
            assert!(
                (w[1].start_s - w[0].end_s).abs() < 1e-6,
                "sequential dispatch"
            );
        }
        assert!((r.makespan_s - r.records.last().unwrap().end_s).abs() < 1e-9);
    }

    #[test]
    fn event_log_captures_run_structure() {
        let cfg = cfg();
        let a = single_phase_job("a", compute_phase(450.0));
        let b = single_phase_job("b", compute_phase(1250.0));
        let engine = Engine::new(&cfg);
        let mut disp = PairDispatcher {
            cpu: Some(Arc::new(a)),
            gpu: Some(Arc::new(b)),
        };
        let mut gov = crate::governor::BiasedGovernor::gpu_biased(15.0);
        let mut log = crate::events::EventLog::new(Some(15.0));
        let report = engine
            .run_recorded(
                &mut disp,
                &mut gov,
                &RunOptions::new(cfg.freqs.max_setting()),
                Some(&mut log),
            )
            .unwrap();
        assert_eq!(log.dispatches().count(), 2);
        assert_eq!(log.completions().count(), 2);
        // Max-frequency compute pair exceeds 15 W: the governor must act.
        assert!(log.freq_changes().count() > 0, "governor reacted");
        assert!(log.overshoots().count() > 0, "initial overshoot recorded");
        // Events are time-ordered and inside the run window.
        for w in log.events().windows(2) {
            assert!(w[0].at_s <= w[1].at_s + 1e-9);
        }
        assert!(log.events().last().unwrap().at_s <= report.makespan_s + 1e-6);
    }

    #[test]
    fn wait_until_advances_idle_time() {
        // A dispatcher that releases its only job at t=3.
        let cfg = cfg();
        struct Delayed {
            job: Option<Arc<JobSpec>>,
        }
        impl Dispatcher for Delayed {
            fn next(&mut self, d: Device, now: f64, _c: &DispatchCtx) -> Dispatch {
                if d != Device::Gpu {
                    return Dispatch::Idle;
                }
                if now + 1e-9 < 3.0 {
                    return Dispatch::WaitUntil(3.0);
                }
                match self.job.take() {
                    Some(job) => Dispatch::Run(DispatchJob {
                        job,
                        tag: 0,
                        set_freq: None,
                    }),
                    None => Dispatch::Drained,
                }
            }
        }
        let job = single_phase_job("late", compute_phase(250.0)); // 1 s at max
        let engine = Engine::new(&cfg);
        let mut disp = Delayed {
            job: Some(Arc::new(job)),
        };
        let mut gov = crate::governor::NullGovernor;
        let r = engine
            .run(
                &mut disp,
                &mut gov,
                &RunOptions::new(cfg.freqs.max_setting()),
            )
            .unwrap();
        let rec = r.record(0).unwrap();
        assert!(rec.start_s >= 3.0 - 1e-6, "job started at {}", rec.start_s);
        assert!(
            (r.makespan_s - 4.0).abs() < 0.1,
            "makespan {}",
            r.makespan_s
        );
        // The idle lead-in is power-traced too.
        assert!(r.trace.duration_s() >= 3.5);
    }

    #[test]
    fn session_advance_matches_one_shot_run() {
        // Stepping a session in small horizons must reproduce the one-shot
        // run exactly: same records, same makespan, same trace length.
        let cfg = cfg();
        let jobs: Vec<Arc<JobSpec>> = (0..3)
            .map(|i| {
                Arc::new(single_phase_job(
                    format!("j{i}"),
                    compute_phase(200.0 + 50.0 * i as f64),
                ))
            })
            .collect();
        let one_shot = {
            let mut disp = SoloDispatcher {
                device: Device::Gpu,
                queue: jobs.clone().into_iter().collect(),
                next_tag: 0,
            };
            let mut gov = crate::governor::NullGovernor;
            Engine::new(&cfg)
                .run(
                    &mut disp,
                    &mut gov,
                    &RunOptions::new(cfg.freqs.max_setting()),
                )
                .unwrap()
        };
        let stepped = {
            let mut disp = SoloDispatcher {
                device: Device::Gpu,
                queue: jobs.into_iter().collect(),
                next_tag: 0,
            };
            let mut gov = crate::governor::NullGovernor;
            let engine = Engine::new(&cfg);
            let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
            loop {
                match session.advance(&mut disp, &mut gov, 0.37, None).unwrap() {
                    SessionState::Finished => break,
                    SessionState::Starved => panic!("solo queue cannot starve"),
                    SessionState::Crashed => panic!("no faults attached"),
                    SessionState::Advanced => {}
                }
            }
            session.into_report()
        };
        assert_eq!(one_shot.records, stepped.records);
        assert_eq!(one_shot.makespan_s, stepped.makespan_s);
        assert_eq!(one_shot.trace.samples_w, stepped.trace.samples_w);
        assert_eq!(one_shot.final_setting, stepped.final_setting);
    }

    #[test]
    fn starved_session_resumes_when_work_appears() {
        // A dispatcher whose queue is fed between advance() calls: the
        // session starves, then resumes and completes the late job.
        let cfg = cfg();
        struct Fed {
            queue: Vec<Arc<JobSpec>>,
            tag: usize,
            drained: bool,
        }
        impl Dispatcher for Fed {
            fn next(&mut self, d: Device, _n: f64, _c: &DispatchCtx) -> Dispatch {
                if d != Device::Cpu {
                    return Dispatch::Idle;
                }
                match self.queue.pop() {
                    Some(job) => {
                        let tag = self.tag;
                        self.tag += 1;
                        Dispatch::Run(DispatchJob {
                            job,
                            tag,
                            set_freq: None,
                        })
                    }
                    None if self.drained => Dispatch::Drained,
                    None => Dispatch::Idle,
                }
            }
        }
        let engine = Engine::new(&cfg);
        let mut gov = crate::governor::NullGovernor;
        let mut disp = Fed {
            queue: vec![Arc::new(single_phase_job("first", compute_phase(90.0)))],
            tag: 0,
            drained: false,
        };
        let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
        // Run the first job dry.
        loop {
            match session.advance(&mut disp, &mut gov, 1.0, None).unwrap() {
                SessionState::Starved => break,
                SessionState::Advanced => {}
                SessionState::Finished => panic!("not drained yet"),
                SessionState::Crashed => panic!("no faults attached"),
            }
        }
        assert_eq!(session.records().len(), 1);
        let starved_at = session.now_s();
        // Feed a second job and drain.
        disp.queue
            .push(Arc::new(single_phase_job("second", compute_phase(90.0))));
        disp.drained = true;
        loop {
            match session.advance(&mut disp, &mut gov, 1.0, None).unwrap() {
                SessionState::Finished => break,
                SessionState::Advanced => {}
                SessionState::Starved => panic!("work was fed"),
                SessionState::Crashed => panic!("no faults attached"),
            }
        }
        let report = session.into_report();
        assert_eq!(report.records.len(), 2);
        assert!(report.records[1].start_s >= starved_at - 1e-9);
        assert!(report.makespan_s > starved_at);
    }

    #[test]
    fn host_setup_adds_serial_time() {
        let cfg = cfg();
        let mut job = single_phase_job("s", compute_phase(90.0));
        job.host_setup_s = 2.0;
        let out = run_solo(&cfg, &job, Device::Gpu, cfg.freqs.max_setting()).unwrap();
        let plain = {
            let j = single_phase_job("p", compute_phase(90.0));
            run_solo(&cfg, &j, Device::Gpu, cfg.freqs.max_setting())
                .unwrap()
                .time_s
        };
        assert!((out.time_s - plain - 2.0).abs() < 0.05);
    }

    #[test]
    fn injected_crash_ends_session_and_reports_in_flight() {
        let cfg = cfg();
        let plan = crate::FaultPlan::parse("@chaos crash=0:5\n").unwrap();
        let engine = Engine::new(&cfg);
        let mut disp = SoloDispatcher {
            device: Device::Cpu,
            queue: [Arc::new(single_phase_job("c", compute_phase(900.0)))] // 10 s
                .into_iter()
                .collect(),
            next_tag: 0,
        };
        let mut gov = crate::governor::NullGovernor;
        let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
        session.set_faults(plan.injector(0));
        let state = session
            .advance(&mut disp, &mut gov, f64::INFINITY, None)
            .unwrap();
        assert_eq!(state, SessionState::Crashed);
        assert!(
            (session.now_s() - 5.0).abs() < 0.1,
            "at {}",
            session.now_s()
        );
        assert_eq!(session.running_tags(), vec![0], "job 0 was in flight");
        assert!(session.records().is_empty(), "no completion record");
        // Terminal: advancing again stays Crashed without simulating.
        let again = session
            .advance(&mut disp, &mut gov, f64::INFINITY, None)
            .unwrap();
        assert_eq!(again, SessionState::Crashed);
    }

    #[test]
    fn injected_failure_loses_job_without_record() {
        let cfg = cfg();
        // job-fail=1 guarantees the failure roll hits on every attempt.
        let plan = crate::FaultPlan::parse("@chaos seed=11 job-fail=1\n").unwrap();
        let engine = Engine::new(&cfg);
        let mut disp = SoloDispatcher {
            device: Device::Gpu,
            queue: [Arc::new(single_phase_job("f", compute_phase(250.0)))]
                .into_iter()
                .collect(),
            next_tag: 0,
        };
        let mut gov = crate::governor::NullGovernor;
        let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
        session.set_faults(plan.injector(0));
        let state = session
            .advance(&mut disp, &mut gov, f64::INFINITY, None)
            .unwrap();
        assert_eq!(state, SessionState::Finished);
        assert!(session.records().is_empty(), "failed job leaves no record");
        let failures = session.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].tag, 0);
        assert_eq!(failures[0].device, Device::Gpu);
        assert!(failures[0].at_s > failures[0].start_s);
    }

    #[test]
    fn straggler_slows_job_deterministically() {
        let cfg = cfg();
        let plan = crate::FaultPlan::parse("@chaos seed=1 straggle=1:2.5\n").unwrap();
        let job = single_phase_job("s", compute_phase(450.0));
        let s = cfg.freqs.max_setting();
        let healthy = run_solo(&cfg, &job, Device::Cpu, s).unwrap().time_s;
        let engine = Engine::new(&cfg);
        let run_once = || {
            let mut disp = SoloDispatcher {
                device: Device::Cpu,
                queue: [Arc::new(job.clone())].into_iter().collect(),
                next_tag: 0,
            };
            let mut gov = crate::governor::NullGovernor;
            let mut session = engine.session(RunOptions::new(s));
            session.set_faults(plan.injector(0));
            loop {
                match session
                    .advance(&mut disp, &mut gov, f64::INFINITY, None)
                    .unwrap()
                {
                    SessionState::Finished => break,
                    SessionState::Crashed | SessionState::Starved => panic!("unexpected"),
                    SessionState::Advanced => {}
                }
            }
            session.into_report().makespan_s
        };
        let slow_a = run_once();
        let slow_b = run_once();
        assert_eq!(slow_a, slow_b, "same seed, same slowdown");
        assert!(
            (slow_a / healthy - 2.5).abs() < 0.05,
            "expected ~2.5x slowdown, got {}x",
            slow_a / healthy
        );
    }

    #[test]
    fn meter_spike_trips_reactive_governor() {
        let cfg = cfg();
        let plan = crate::FaultPlan::parse("@chaos meter-spike=0.5:40\n").unwrap();
        let cap = 15.0;
        // A light job that never approaches the cap on its own.
        let job = single_phase_job("lite", compute_phase(900.0));
        let engine = Engine::new(&cfg);
        let run = |faulted: bool| {
            let mut disp = SoloDispatcher {
                device: Device::Cpu,
                queue: [Arc::new(job.clone())].into_iter().collect(),
                next_tag: 0,
            };
            let mut gov = crate::governor::BiasedGovernor::gpu_biased(cap);
            let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
            if faulted {
                session.set_faults(plan.injector(0));
            }
            loop {
                match session
                    .advance(&mut disp, &mut gov, f64::INFINITY, None)
                    .unwrap()
                {
                    SessionState::Finished => break,
                    SessionState::Crashed | SessionState::Starved => panic!("unexpected"),
                    SessionState::Advanced => {}
                }
            }
            session.into_report()
        };
        let clean = run(false);
        let faulted = run(true);
        // Phantom 40 W spikes must show in the observed trace and force
        // the governor to throttle: the run gets slower.
        let clean_max = clean.trace.samples_w.iter().copied().fold(0.0, f64::max);
        let fault_max = faulted.trace.samples_w.iter().copied().fold(0.0, f64::max);
        assert!(fault_max > clean_max + 20.0, "spike visible in trace");
        assert!(
            faulted.makespan_s > clean.makespan_s * 1.01,
            "governor throttled on phantom spikes: {} vs {}",
            faulted.makespan_s,
            clean.makespan_s
        );
    }

    #[test]
    fn starved_session_under_fault_still_terminates() {
        // Regression: a session that starves (dispatcher has no work)
        // while a fault plan is attached must still reach a terminal
        // state — the pending crash fires even with nothing running.
        let cfg = cfg();
        let plan = crate::FaultPlan::parse("@chaos crash=0:1\n").unwrap();
        struct Never;
        impl Dispatcher for Never {
            fn next(&mut self, _d: Device, _n: f64, _c: &DispatchCtx) -> Dispatch {
                Dispatch::Idle
            }
        }
        let engine = Engine::new(&cfg);
        let mut gov = crate::governor::NullGovernor;
        let mut session = engine.session(RunOptions::new(cfg.freqs.max_setting()));
        session.set_faults(plan.injector(0));
        // Starves immediately (crash at t=1 not yet due at t=0)...
        let s1 = session.advance(&mut Never, &mut gov, 5.0, None).unwrap();
        assert_eq!(s1, SessionState::Starved);
        // ...a waiting dispatcher then idles time forward into the crash.
        struct Waiter;
        impl Dispatcher for Waiter {
            fn next(&mut self, _d: Device, now: f64, _c: &DispatchCtx) -> Dispatch {
                Dispatch::WaitUntil(now + 0.5)
            }
        }
        let mut bounded = 0;
        loop {
            match session.advance(&mut Waiter, &mut gov, 5.0, None).unwrap() {
                SessionState::Crashed => break,
                SessionState::Finished => panic!("cannot finish, never drained"),
                _ => {}
            }
            bounded += 1;
            assert!(bounded < 100, "session must terminate, not spin");
        }
        assert!(session.now_s() <= 1.5, "crashed near t=1");
    }

    #[test]
    fn llc_sensitive_job_thrashed_by_streaming_corunner() {
        let cfg = cfg();
        // Cache-resident CPU job: small footprint, low raw traffic, very
        // LLC-sensitive (the dwt2d pattern from the paper's Section III).
        let victim = single_phase_job(
            "victim",
            PhaseWork {
                flops: 450.0,
                bytes: 20.0,
                cpu_eff: 1.0,
                gpu_eff: 1.0,
                llc_footprint_mib: 3.0,
                llc_sensitivity: 8.0,
                llc_pressure: 0.2,
                llc_miss_bw_gbps: 4.5,
                overlap: 0.2,
            },
        );
        let streamer = single_phase_job("streamer", memory_phase(40.0));
        let gentle = single_phase_job("gentle", compute_phase(500.0));
        let s = cfg.freqs.max_setting();
        let solo = run_solo(&cfg, &victim, Device::Cpu, s).unwrap().time_s;
        let vs_stream = run_with_background(&cfg, &victim, Device::Cpu, &streamer, s).unwrap();
        let vs_gentle = run_with_background(&cfg, &victim, Device::Cpu, &gentle, s).unwrap();
        let deg_stream = vs_stream / solo - 1.0;
        let deg_gentle = vs_gentle / solo - 1.0;
        assert!(
            deg_stream > 3.0 * deg_gentle.max(0.01),
            "streaming co-runner must hurt far more: {deg_stream} vs {deg_gentle}"
        );
        assert!(
            deg_stream > 0.4,
            "thrashing must be severe, got {deg_stream}"
        );
    }
}
