//! DVFS frequency tables and package frequency settings.
//!
//! The evaluation platform exposes 16 CPU P-states from 1.2 GHz to 3.6 GHz
//! and 10 GPU frequency levels from 350 MHz to 1.25 GHz (paper, Section VI).
//! Schedulers work with *level indices*; the tables map them to GHz.

use crate::device::{Device, PerDevice};
use serde::{Deserialize, Serialize};

/// An index into a device's frequency table. Level 0 is the lowest frequency.
pub type FreqLevel = usize;

/// The frequency ladder of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqTable {
    levels_ghz: Vec<f64>,
}

impl FreqTable {
    /// Build a table with `n` levels linearly spaced over `[lo_ghz, hi_ghz]`.
    ///
    /// # Panics
    /// Panics if `n < 2` or the range is not positive and increasing.
    pub fn linear(lo_ghz: f64, hi_ghz: f64, n: usize) -> Self {
        assert!(n >= 2, "a frequency table needs at least two levels");
        assert!(lo_ghz > 0.0 && hi_ghz > lo_ghz, "invalid frequency range");
        let step = (hi_ghz - lo_ghz) / (n - 1) as f64;
        let levels_ghz = (0..n).map(|i| lo_ghz + step * i as f64).collect();
        FreqTable { levels_ghz }
    }

    /// Build a table from explicit levels (must be strictly increasing).
    pub fn from_levels(levels_ghz: Vec<f64>) -> Self {
        assert!(levels_ghz.len() >= 2);
        assert!(
            levels_ghz.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing"
        );
        FreqTable { levels_ghz }
    }

    /// Number of levels.
    #[inline]
    pub fn len(&self) -> usize {
        self.levels_ghz.len()
    }

    /// Tables are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Frequency in GHz at `level`.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    #[inline]
    pub fn ghz(&self, level: FreqLevel) -> f64 {
        self.levels_ghz[level]
    }

    /// Index of the highest level.
    #[inline]
    pub fn max_level(&self) -> FreqLevel {
        self.levels_ghz.len() - 1
    }

    /// The highest frequency in GHz.
    #[inline]
    pub fn max_ghz(&self) -> f64 {
        *self.levels_ghz.last().expect("non-empty")
    }

    /// The lowest frequency in GHz.
    #[inline]
    pub fn min_ghz(&self) -> f64 {
        self.levels_ghz[0]
    }

    /// Relative frequency `f / f_max` at `level` (used by the power model).
    #[inline]
    pub fn rel(&self, level: FreqLevel) -> f64 {
        self.ghz(level) / self.max_ghz()
    }

    /// Iterate over `(level, ghz)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FreqLevel, f64)> + '_ {
        self.levels_ghz.iter().copied().enumerate()
    }

    /// The level whose frequency is closest to `ghz`.
    pub fn nearest_level(&self, ghz: f64) -> FreqLevel {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, f) in self.iter() {
            let d = (f - ghz).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// A package-wide frequency setting: one level per device.
///
/// On the integrated package the CPU complex and the GPU each have a single
/// clock domain, so a schedule associates every (co-)run segment with one
/// `FreqSetting`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FreqSetting {
    /// CPU frequency level index.
    pub cpu: FreqLevel,
    /// GPU frequency level index.
    pub gpu: FreqLevel,
}

impl FreqSetting {
    /// Construct from explicit levels.
    pub fn new(cpu: FreqLevel, gpu: FreqLevel) -> Self {
        FreqSetting { cpu, gpu }
    }

    /// The level for `device`.
    #[inline]
    pub fn level(&self, device: Device) -> FreqLevel {
        match device {
            Device::Cpu => self.cpu,
            Device::Gpu => self.gpu,
        }
    }

    /// Replace the level for `device`, returning the new setting.
    #[must_use]
    pub fn with_level(mut self, device: Device, level: FreqLevel) -> Self {
        match device {
            Device::Cpu => self.cpu = level,
            Device::Gpu => self.gpu = level,
        }
        self
    }

    /// Both levels as a [`PerDevice`].
    pub fn per_device(&self) -> PerDevice<FreqLevel> {
        PerDevice::new(self.cpu, self.gpu)
    }
}

impl std::fmt::Display for FreqSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(cpu:L{}, gpu:L{})", self.cpu, self.gpu)
    }
}

/// Frequency tables for both devices of a package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageFreqs {
    pub cpu: FreqTable,
    pub gpu: FreqTable,
}

impl PackageFreqs {
    /// The table for `device`.
    #[inline]
    pub fn table(&self, device: Device) -> &FreqTable {
        match device {
            Device::Cpu => &self.cpu,
            Device::Gpu => &self.gpu,
        }
    }

    /// GHz of `device` at the level selected in `setting`.
    #[inline]
    pub fn ghz(&self, device: Device, setting: FreqSetting) -> f64 {
        self.table(device).ghz(setting.level(device))
    }

    /// The setting with both devices at their highest level.
    pub fn max_setting(&self) -> FreqSetting {
        FreqSetting::new(self.cpu.max_level(), self.gpu.max_level())
    }

    /// The setting with both devices at their lowest level.
    pub fn min_setting(&self) -> FreqSetting {
        FreqSetting::new(0, 0)
    }

    /// Iterate over every possible `FreqSetting` (the K_cpu x K_gpu grid).
    pub fn all_settings(&self) -> impl Iterator<Item = FreqSetting> + '_ {
        (0..self.cpu.len())
            .flat_map(move |c| (0..self.gpu.len()).map(move |g| FreqSetting::new(c, g)))
    }

    /// Total number of settings in the grid.
    pub fn setting_count(&self) -> usize {
        self.cpu.len() * self.gpu.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> PackageFreqs {
        PackageFreqs {
            cpu: FreqTable::linear(1.2, 3.6, 16),
            gpu: FreqTable::linear(0.35, 1.25, 10),
        }
    }

    #[test]
    fn linear_table_endpoints() {
        let t = FreqTable::linear(1.2, 3.6, 16);
        assert_eq!(t.len(), 16);
        assert!((t.min_ghz() - 1.2).abs() < 1e-12);
        assert!((t.max_ghz() - 3.6).abs() < 1e-12);
        assert_eq!(t.max_level(), 15);
    }

    #[test]
    fn linear_table_monotone() {
        let t = FreqTable::linear(0.35, 1.25, 10);
        let v: Vec<f64> = t.iter().map(|(_, g)| g).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rel_is_one_at_max() {
        let t = FreqTable::linear(1.2, 3.6, 16);
        assert!((t.rel(t.max_level()) - 1.0).abs() < 1e-12);
        assert!((t.rel(0) - 1.2 / 3.6).abs() < 1e-12);
    }

    #[test]
    fn nearest_level_roundtrip() {
        let t = FreqTable::linear(1.2, 3.6, 16);
        for (i, g) in t.iter() {
            assert_eq!(t.nearest_level(g), i);
        }
        assert_eq!(t.nearest_level(0.0), 0);
        assert_eq!(t.nearest_level(99.0), 15);
    }

    #[test]
    #[should_panic]
    fn table_requires_two_levels() {
        let _ = FreqTable::linear(1.0, 2.0, 1);
    }

    #[test]
    #[should_panic]
    fn from_levels_rejects_non_increasing() {
        let _ = FreqTable::from_levels(vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn setting_grid_covers_all() {
        let p = tables();
        assert_eq!(p.setting_count(), 160);
        assert_eq!(p.all_settings().count(), 160);
        let max = p.max_setting();
        assert_eq!(max.cpu, 15);
        assert_eq!(max.gpu, 9);
    }

    #[test]
    fn setting_with_level() {
        let s = FreqSetting::new(3, 4);
        let s2 = s.with_level(Device::Cpu, 7);
        assert_eq!(s2.cpu, 7);
        assert_eq!(s2.gpu, 4);
        assert_eq!(s2.level(Device::Gpu), 4);
    }

    #[test]
    fn package_ghz_lookup() {
        let p = tables();
        let s = p.max_setting();
        assert!((p.ghz(Device::Cpu, s) - 3.6).abs() < 1e-12);
        assert!((p.ghz(Device::Gpu, s) - 1.25).abs() < 1e-12);
    }
}
