//! Package power model and power traces.
//!
//! The model is analytic: each device draws an idle floor plus a dynamic
//! term `a * (f/f_max)^alpha * activity` (voltage tracks frequency on a DVFS
//! ladder, so dynamic power grows super-linearly with clock), plus a memory
//! term proportional to achieved DRAM bandwidth; a constant uncore term
//! covers the ring, LLC and system agent. This is the stand-in for the RAPL
//! package-energy counters the paper samples at 1 Hz (Figure 9).

use crate::device::{Device, PerDevice};
use crate::freq::{FreqSetting, PackageFreqs};
use serde::{Deserialize, Serialize};

/// Instantaneous activity state of one device, as seen by the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceActivity {
    /// Compute-pipeline utilization in `[0, 1]` (0 = idle / fully stalled).
    pub compute_util: f64,
    /// Achieved DRAM bandwidth in GB/s attributed to this device.
    pub mem_bw_gbps: f64,
}

impl DeviceActivity {
    /// A fully idle device.
    pub const IDLE: DeviceActivity = DeviceActivity {
        compute_util: 0.0,
        mem_bw_gbps: 0.0,
    };
}

/// Package-level power parameters beyond the per-device ones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackagePowerParams {
    /// Constant uncore power (ring, LLC, system agent, display), watts.
    pub uncore_w: f64,
}

/// Computes package power from device states.
///
/// Borrowed views keep this cheap to call every simulation tick.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel<'a> {
    pub freqs: &'a PackageFreqs,
    pub cpu: &'a crate::device::DeviceParams,
    pub gpu: &'a crate::device::DeviceParams,
    pub pkg: &'a PackagePowerParams,
}

impl PowerModel<'_> {
    fn dev_params(&self, d: Device) -> &crate::device::DeviceParams {
        match d {
            Device::Cpu => self.cpu,
            Device::Gpu => self.gpu,
        }
    }

    /// Power drawn by one device at `level` with the given activity.
    pub fn device_power(
        &self,
        device: Device,
        setting: FreqSetting,
        activity: DeviceActivity,
    ) -> f64 {
        let p = self.dev_params(device);
        let f_rel = self.freqs.table(device).rel(setting.level(device));
        p.idle_power_w
            + p.dynamic_power(f_rel, activity.compute_util)
            + p.mem_power_w_per_gbps * activity.mem_bw_gbps
    }

    /// Total package power for the given per-device activities.
    pub fn package_power(&self, setting: FreqSetting, activity: PerDevice<DeviceActivity>) -> f64 {
        let p = self.pkg.uncore_w
            + self.device_power(Device::Cpu, setting, activity.cpu)
            + self.device_power(Device::Gpu, setting, activity.gpu);
        #[cfg(feature = "sanitize")]
        if !p.is_finite() || p < 0.0 {
            crate::sanitize::record(crate::sanitize::Violation::NonPhysicalPower { power_w: p });
        }
        p
    }

    /// Package power with both devices fully busy (compute_util = 1) and no
    /// memory traffic: the pessimistic static estimate schedulers use when
    /// they must guarantee a cap without a measured activity profile.
    pub fn package_power_busy(&self, setting: FreqSetting) -> f64 {
        let busy = DeviceActivity {
            compute_util: 1.0,
            mem_bw_gbps: 0.0,
        };
        self.package_power(setting, PerDevice::new(busy, busy))
    }
}

/// A time series of package-power samples at a fixed interval.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerTrace {
    /// Sampling interval, seconds.
    pub interval_s: f64,
    /// Package power at `t = i * interval_s`, watts.
    pub samples_w: Vec<f64>,
}

impl PowerTrace {
    /// New empty trace with the given sampling interval.
    pub fn new(interval_s: f64) -> Self {
        assert!(interval_s > 0.0);
        PowerTrace {
            interval_s,
            samples_w: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, watts: f64) {
        self.samples_w.push(watts);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_w.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples_w.is_empty()
    }

    /// Duration covered, seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples_w.len() as f64 * self.interval_s
    }

    /// Mean power, watts (0 for an empty trace).
    pub fn mean_w(&self) -> f64 {
        if self.samples_w.is_empty() {
            0.0
        } else {
            self.samples_w.iter().sum::<f64>() / self.samples_w.len() as f64
        }
    }

    /// Maximum sample, watts (0 for an empty trace).
    pub fn max_w(&self) -> f64 {
        self.samples_w.iter().copied().fold(0.0, f64::max)
    }

    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.samples_w.iter().sum::<f64>() * self.interval_s
    }

    /// Fraction of samples strictly above `cap_w`.
    pub fn frac_above(&self, cap_w: f64) -> f64 {
        if self.samples_w.is_empty() {
            return 0.0;
        }
        let n = self.samples_w.iter().filter(|&&w| w > cap_w).count();
        n as f64 / self.samples_w.len() as f64
    }

    /// Largest overshoot above `cap_w`, watts (0 if never above).
    pub fn max_overshoot(&self, cap_w: f64) -> f64 {
        self.samples_w
            .iter()
            .map(|w| (w - cap_w).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Iterate `(time_s, watts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples_w
            .iter()
            .enumerate()
            .map(move |(i, &w)| (i as f64 * self.interval_s, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceParams;
    use crate::freq::FreqTable;

    fn fixture() -> (PackageFreqs, DeviceParams, DeviceParams, PackagePowerParams) {
        let freqs = PackageFreqs {
            cpu: FreqTable::linear(1.2, 3.6, 16),
            gpu: FreqTable::linear(0.35, 1.25, 10),
        };
        let cpu = DeviceParams {
            gflops_per_ghz: 25.0,
            bw_peak_gbps: 11.0,
            bw_freq_floor: 0.6,
            idle_power_w: 1.5,
            dyn_power_w: 10.5,
            dyn_power_exp: 2.4,
            mem_power_w_per_gbps: 0.10,
            stall_power_frac: 0.40,
        };
        let gpu = DeviceParams {
            gflops_per_ghz: 200.0,
            bw_peak_gbps: 11.0,
            bw_freq_floor: 0.7,
            idle_power_w: 1.0,
            dyn_power_w: 7.0,
            dyn_power_exp: 2.2,
            mem_power_w_per_gbps: 0.08,
            stall_power_frac: 0.45,
        };
        let pkg = PackagePowerParams { uncore_w: 2.0 };
        (freqs, cpu, gpu, pkg)
    }

    #[test]
    fn idle_power_is_floor() {
        let (freqs, cpu, gpu, pkg) = fixture();
        let m = PowerModel {
            freqs: &freqs,
            cpu: &cpu,
            gpu: &gpu,
            pkg: &pkg,
        };
        let s = freqs.max_setting();
        let p = m.package_power(
            s,
            PerDevice::new(DeviceActivity::IDLE, DeviceActivity::IDLE),
        );
        assert!((p - (2.0 + 1.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn busy_exceeds_caps_of_interest() {
        // The unconstrained package must exceed the paper's 15/16 W caps so
        // that capped runs force genuine DVFS trade-offs.
        let (freqs, cpu, gpu, pkg) = fixture();
        let m = PowerModel {
            freqs: &freqs,
            cpu: &cpu,
            gpu: &gpu,
            pkg: &pkg,
        };
        let p = m.package_power_busy(freqs.max_setting());
        assert!(p > 16.0, "full-speed package power {p} should exceed 16 W");
    }

    #[test]
    fn power_monotone_in_frequency() {
        let (freqs, cpu, gpu, pkg) = fixture();
        let m = PowerModel {
            freqs: &freqs,
            cpu: &cpu,
            gpu: &gpu,
            pkg: &pkg,
        };
        let mut prev = 0.0;
        for c in 0..16 {
            let p = m.package_power_busy(FreqSetting::new(c, 5));
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn memory_traffic_adds_power() {
        let (freqs, cpu, gpu, pkg) = fixture();
        let m = PowerModel {
            freqs: &freqs,
            cpu: &cpu,
            gpu: &gpu,
            pkg: &pkg,
        };
        let s = freqs.max_setting();
        let a0 = DeviceActivity {
            compute_util: 0.5,
            mem_bw_gbps: 0.0,
        };
        let a1 = DeviceActivity {
            compute_util: 0.5,
            mem_bw_gbps: 10.0,
        };
        let p0 = m.device_power(Device::Cpu, s, a0);
        let p1 = m.device_power(Device::Cpu, s, a1);
        assert!((p1 - p0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_stats() {
        let mut t = PowerTrace::new(1.0);
        for w in [10.0, 12.0, 17.0, 14.0] {
            t.push(w);
        }
        assert_eq!(t.len(), 4);
        assert!((t.mean_w() - 13.25).abs() < 1e-12);
        assert_eq!(t.max_w(), 17.0);
        assert!((t.energy_j() - 53.0).abs() < 1e-12);
        assert!((t.frac_above(15.0) - 0.25).abs() < 1e-12);
        assert!((t.max_overshoot(15.0) - 2.0).abs() < 1e-12);
        assert_eq!(t.duration_s(), 4.0);
    }

    #[test]
    fn empty_trace_stats() {
        let t = PowerTrace::new(0.5);
        assert!(t.is_empty());
        assert_eq!(t.mean_w(), 0.0);
        assert_eq!(t.max_w(), 0.0);
        assert_eq!(t.frac_above(1.0), 0.0);
    }

    #[test]
    fn trace_iter_times() {
        let mut t = PowerTrace::new(0.5);
        t.push(1.0);
        t.push(2.0);
        let v: Vec<(f64, f64)> = t.iter().collect();
        assert_eq!(v, vec![(0.0, 1.0), (0.5, 2.0)]);
    }
}
