//! Deterministic, seeded fault injection for [`Session`](crate::Session)
//! runs.
//!
//! A production co-scheduling service sees machines die, power meters
//! glitch, and jobs fail or straggle; the paper's runtime assumes none of
//! that. This module makes those events *first-class and reproducible*:
//! a [`FaultPlan`] describes what goes wrong, and every decision it makes
//! is a pure function of `(seed, job tag, attempt)` — two runs with the
//! same plan inject exactly the same faults, which is what lets the
//! service layer property-test its recovery paths instead of eyeballing
//! chaos runs.
//!
//! Fault classes:
//!
//! * **Machine crashes** — a machine stops dead at a planned simulated
//!   time ([`SessionState::Crashed`](crate::SessionState)); in-flight
//!   jobs are lost and must be rescheduled by the caller.
//! * **Power-meter noise and spikes** — the *measured* window-average
//!   power is perturbed before the governor and trace see it, so a
//!   reactive cap governor trips on phantom excursions. The engine's
//!   energy accounting itself stays clean (the fault is in the sensor,
//!   not the physics).
//! * **Job failures** — a dispatched job dies partway through (at a
//!   seeded fraction of its progress) without producing a completion
//!   record.
//! * **Stragglers** — a dispatched job runs slower by a fixed factor
//!   while burning the same power.
//!
//! Plans are written as `@chaos key=value ...` directive lines — either
//! in a standalone fault-plan file or inline in a workload spec (the
//! spec parser skips them; `corun_verify::lint_chaos` extracts and lints
//! them as the `SRV001` diagnostic). See `docs/FAULTS.md` for the full
//! grammar.

use std::collections::HashMap;

/// A planned machine crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCrash {
    /// Machine (worker) index the crash targets.
    pub machine: usize,
    /// Simulated time on that machine's clock at which it dies, seconds.
    pub at_s: f64,
}

/// Periodic power-meter spike: every `period_s` simulated seconds the
/// measured sample jumps by `magnitude_w` watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterSpike {
    /// Spike period, simulated seconds.
    pub period_s: f64,
    /// Added watts on the spiked sample.
    pub magnitude_w: f64,
}

/// A deterministic, seeded fault schedule. `Default` is the no-fault
/// plan; [`FaultPlan::parse`] builds one from `@chaos` directives.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed; every injected decision derives from it.
    pub seed: u64,
    /// Planned machine crashes.
    pub crashes: Vec<MachineCrash>,
    /// Uniform measurement noise amplitude, watts (`0` = off).
    pub meter_noise_w: f64,
    /// Periodic measurement spikes.
    pub meter_spike: Option<MeterSpike>,
    /// Probability a dispatched job fails partway through, per attempt.
    pub job_fail_prob: f64,
    /// Probability a dispatched job straggles, per attempt.
    pub straggler_prob: f64,
    /// Slowdown factor applied to stragglers (>= 1).
    pub straggler_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            meter_noise_w: 0.0,
            meter_spike: None,
            job_fail_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
        }
    }
}

impl FaultPlan {
    /// Whether this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.crashes.is_empty()
            && self.meter_noise_w <= 0.0
            && self.meter_spike.is_none()
            && self.job_fail_prob <= 0.0
            && self.straggler_prob <= 0.0
    }

    /// Whether the plan perturbs the power meter (callers typically pair
    /// this with a reactive governor so spikes have something to trip).
    pub fn perturbs_meter(&self) -> bool {
        self.meter_noise_w > 0.0 || self.meter_spike.is_some()
    }

    /// Apply one directive payload (the part after `@chaos`):
    /// whitespace-separated `key=value` tokens. Errors name the offending
    /// token; earlier tokens on the line stay applied.
    pub fn apply_directive(&mut self, directive: &str) -> Result<(), String> {
        for tok in directive.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
            match key {
                "seed" => {
                    self.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "crash" => {
                    for item in value.split(',') {
                        let (m, t) = item
                            .split_once(':')
                            .ok_or_else(|| format!("crash wants MACHINE:AT_S, got `{item}`"))?;
                        let machine = m.parse().map_err(|_| format!("bad crash machine `{m}`"))?;
                        let at_s: f64 = t.parse().map_err(|_| format!("bad crash time `{t}`"))?;
                        if at_s <= 0.0 || at_s.is_nan() {
                            return Err(format!("crash time must be positive, got `{t}`"));
                        }
                        self.crashes.push(MachineCrash { machine, at_s });
                    }
                }
                "meter-noise" => {
                    let w: f64 = value
                        .parse()
                        .map_err(|_| format!("bad meter-noise `{value}`"))?;
                    if w < 0.0 {
                        return Err(format!("meter-noise must be >= 0, got `{value}`"));
                    }
                    self.meter_noise_w = w;
                }
                "meter-spike" => {
                    let (p, m) = value.split_once(':').ok_or_else(|| {
                        format!("meter-spike wants PERIOD_S:MAGNITUDE_W, got `{value}`")
                    })?;
                    let period_s: f64 = p.parse().map_err(|_| format!("bad spike period `{p}`"))?;
                    let magnitude_w: f64 = m
                        .parse()
                        .map_err(|_| format!("bad spike magnitude `{m}`"))?;
                    if period_s <= 0.0 || period_s.is_nan() {
                        return Err(format!("spike period must be positive, got `{p}`"));
                    }
                    self.meter_spike = Some(MeterSpike {
                        period_s,
                        magnitude_w,
                    });
                }
                "job-fail" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("bad job-fail `{value}`"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("job-fail must be in [0, 1], got `{value}`"));
                    }
                    self.job_fail_prob = p;
                }
                "straggle" => {
                    let (p, f) = value
                        .split_once(':')
                        .ok_or_else(|| format!("straggle wants PROB:FACTOR, got `{value}`"))?;
                    let prob: f64 = p.parse().map_err(|_| format!("bad straggle prob `{p}`"))?;
                    let factor: f64 = f
                        .parse()
                        .map_err(|_| format!("bad straggle factor `{f}`"))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("straggle prob must be in [0, 1], got `{p}`"));
                    }
                    if factor < 1.0 {
                        return Err(format!("straggle factor must be >= 1, got `{f}`"));
                    }
                    self.straggler_prob = prob;
                    self.straggler_factor = factor;
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(())
    }

    /// Parse a fault plan from text: every `@chaos ...` line contributes
    /// directives (other lines — job specs, comments — are ignored, so a
    /// full workload spec parses too). Fails on the first malformed
    /// directive or if no `@chaos` line exists.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut saw = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            let Some(rest) = line.strip_prefix("@chaos") else {
                continue;
            };
            saw = true;
            plan.apply_directive(rest)
                .map_err(|e| format!("line {}: {e}", idx + 1))?;
        }
        if !saw {
            return Err("no `@chaos` directive found".into());
        }
        Ok(plan)
    }

    /// Build the per-machine injector a [`Session`](crate::Session)
    /// consumes via [`Session::set_faults`](crate::Session::set_faults).
    pub fn injector(&self, machine: usize) -> FaultInjector {
        FaultInjector {
            seed: self.seed,
            machine,
            crash_at_s: self
                .crashes
                .iter()
                .filter(|c| c.machine == machine)
                .map(|c| c.at_s)
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                }),
            meter_noise_w: self.meter_noise_w,
            meter_spike: self.meter_spike,
            job_fail_prob: self.job_fail_prob,
            straggler_prob: self.straggler_prob,
            straggler_factor: self.straggler_factor.max(1.0),
            attempts: HashMap::new(),
            events: Vec::new(),
            last_spike_k: 0,
            noise_samples: 0,
            noise_noted: false,
        }
    }
}

/// What a recorded fault event was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The machine died ([`SessionState::Crashed`](crate::SessionState)).
    MachineCrash,
    /// A dispatched job was slowed by the given factor.
    Straggler {
        /// Slowdown factor applied.
        factor: f64,
    },
    /// A measured power sample was spiked by the given watts.
    MeterSpike {
        /// Added watts.
        magnitude_w: f64,
    },
    /// Measurement noise became active (recorded once per injector).
    MeterNoise {
        /// Noise amplitude, watts.
        amplitude_w: f64,
    },
}

/// One injected fault, for the caller's diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated time the fault took effect, seconds.
    pub at_s: f64,
    /// The affected job tag, when the fault targets a job.
    pub tag: Option<usize>,
    /// What happened.
    pub kind: FaultKind,
}

/// Per-dispatch fault decisions, computed when a job is handed to the
/// engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFaultProfile {
    /// Progress slowdown factor (1.0 = healthy).
    pub slowdown: f64,
    /// If set, the job dies when its overall progress fraction reaches
    /// this value.
    pub fail_at_frac: Option<f64>,
}

/// The per-machine fault state a [`Session`](crate::Session) consults
/// while advancing. Decisions are pure functions of
/// `(seed, tag, attempt)` where `attempt` counts dispatches of that tag
/// seen by *this* injector, so a plan replays identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    machine: usize,
    crash_at_s: Option<f64>,
    meter_noise_w: f64,
    meter_spike: Option<MeterSpike>,
    job_fail_prob: f64,
    straggler_prob: f64,
    straggler_factor: f64,
    attempts: HashMap<usize, u64>,
    events: Vec<FaultEvent>,
    last_spike_k: u64,
    noise_samples: u64,
    noise_noted: bool,
}

// Domain-separation salts for the seeded decisions.
const SALT_STRAGGLE: u64 = 0x51;
const SALT_FAIL: u64 = 0xF1;
const SALT_FAIL_AT: u64 = 0xFA;
const SALT_NOISE: u64 = 0x40;

impl FaultInjector {
    /// The machine index this injector was derived for.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// Whether the planned crash time has been reached.
    pub fn crash_due(&self, now_s: f64) -> bool {
        self.crash_at_s.is_some_and(|t| now_s + 1e-12 >= t)
    }

    /// The scheduled crash time, if the plan has one that has not fired
    /// yet. The event-driven engine bounds its wake-up jumps with this
    /// so a crash lands exactly on its planned timestamp.
    pub fn next_crash_s(&self) -> Option<f64> {
        self.crash_at_s
    }

    /// Record the crash; the engine calls this exactly once before
    /// returning [`SessionState::Crashed`](crate::SessionState).
    pub fn note_crash(&mut self, now_s: f64) {
        self.crash_at_s = None;
        self.events.push(FaultEvent {
            at_s: now_s,
            tag: None,
            kind: FaultKind::MachineCrash,
        });
    }

    /// Decide this dispatch's fate. Increments the tag's attempt counter,
    /// so a retried job re-rolls rather than failing forever.
    pub fn profile(&mut self, tag: usize, now_s: f64) -> JobFaultProfile {
        let attempt = {
            let a = self.attempts.entry(tag).or_insert(0);
            *a += 1;
            *a
        };
        let mut prof = JobFaultProfile {
            slowdown: 1.0,
            fail_at_frac: None,
        };
        if self.straggler_prob > 0.0
            && unit(mix(&[self.seed, SALT_STRAGGLE, tag as u64, attempt])) < self.straggler_prob
        {
            prof.slowdown = self.straggler_factor;
            self.events.push(FaultEvent {
                at_s: now_s,
                tag: Some(tag),
                kind: FaultKind::Straggler {
                    factor: self.straggler_factor,
                },
            });
        }
        if self.job_fail_prob > 0.0
            && unit(mix(&[self.seed, SALT_FAIL, tag as u64, attempt])) < self.job_fail_prob
        {
            let frac = 0.05 + 0.9 * unit(mix(&[self.seed, SALT_FAIL_AT, tag as u64, attempt]));
            prof.fail_at_frac = Some(frac);
        }
        prof
    }

    /// Perturb one measured window-average power sample: additive uniform
    /// noise plus periodic spikes. The clean value keeps feeding the
    /// engine's internal accounting; only the *observed* sample changes.
    pub fn perturb_sample(&mut self, now_s: f64, avg_w: f64) -> f64 {
        let mut w = avg_w;
        if self.meter_noise_w > 0.0 {
            if !self.noise_noted {
                self.noise_noted = true;
                self.events.push(FaultEvent {
                    at_s: now_s,
                    tag: None,
                    kind: FaultKind::MeterNoise {
                        amplitude_w: self.meter_noise_w,
                    },
                });
            }
            let h = mix(&[
                self.seed,
                SALT_NOISE,
                self.machine as u64,
                self.noise_samples,
            ]);
            self.noise_samples += 1;
            w += self.meter_noise_w * (2.0 * unit(h) - 1.0);
        }
        if let Some(sp) = self.meter_spike {
            let k = (now_s / sp.period_s).floor() as u64;
            if k > self.last_spike_k {
                self.last_spike_k = k;
                w += sp.magnitude_w;
                self.events.push(FaultEvent {
                    at_s: now_s,
                    tag: None,
                    kind: FaultKind::MeterSpike {
                        magnitude_w: sp.magnitude_w,
                    },
                });
            }
        }
        w.max(0.0)
    }

    /// Fault events recorded so far.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Take and clear the recorded fault events (for incremental
    /// harvesting by a service loop).
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }
}

/// splitmix64 finalizer — the same deterministic generator the workspace
/// `rand` shim seeds from.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine components into one well-mixed 64-bit value.
fn mix(parts: &[u64]) -> u64 {
    parts
        .iter()
        .fold(0x243F_6A88_85A3_08D3, |acc, &p| splitmix64(acc ^ p))
}

/// Map a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "# a spec with a chaos section\n\
             lud x0.5 *2\n\
             @chaos seed=42 crash=0:25,1:60\n\
             @chaos meter-noise=0.8 meter-spike=10:5 # inline comment\n\
             @chaos job-fail=0.2 straggle=0.15:3\n",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.crashes[1].machine, 1);
        assert_eq!(plan.meter_noise_w, 0.8);
        assert_eq!(
            plan.meter_spike,
            Some(MeterSpike {
                period_s: 10.0,
                magnitude_w: 5.0
            })
        );
        assert_eq!(plan.job_fail_prob, 0.2);
        assert_eq!(plan.straggler_prob, 0.15);
        assert_eq!(plan.straggler_factor, 3.0);
        assert!(!plan.is_noop());
        assert!(plan.perturbs_meter());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("lud x0.5\n").is_err()); // no @chaos line
        for bad in [
            "@chaos nonsense",
            "@chaos crash=0",
            "@chaos crash=a:5",
            "@chaos crash=0:-1",
            "@chaos job-fail=1.5",
            "@chaos straggle=0.5:0.5",
            "@chaos meter-spike=5",
            "@chaos what=ever",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn default_plan_is_noop() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(!plan.perturbs_meter());
        let mut inj = plan.injector(0);
        assert!(!inj.crash_due(1e9));
        let p = inj.profile(7, 0.0);
        assert_eq!(p.slowdown, 1.0);
        assert_eq!(p.fail_at_frac, None);
        assert_eq!(inj.perturb_sample(1.0, 12.5), 12.5);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mut plan = FaultPlan::default();
        plan.apply_directive("seed=7 job-fail=0.5 straggle=0.5:2")
            .unwrap();
        let mut a = plan.injector(0);
        let mut b = plan.injector(0);
        for tag in 0..32 {
            assert_eq!(a.profile(tag, 0.0), b.profile(tag, 0.0));
        }
        // A different seed flips at least one decision across 32 tags.
        plan.seed = 8;
        let mut c = plan.injector(0);
        let differs = (0..32).any(|tag| {
            let mut a2 = plan.clone();
            a2.seed = 7;
            a2.injector(0).profile(tag, 0.0) != c.profile(tag, 0.0)
        });
        assert!(differs);
    }

    #[test]
    fn retries_reroll_decisions() {
        let mut plan = FaultPlan::default();
        plan.apply_directive("seed=3 job-fail=0.5").unwrap();
        let mut inj = plan.injector(0);
        // Across many attempts of one tag, a 0.5 fail rate cannot be
        // constant — the attempt counter must enter the roll.
        let rolls: Vec<bool> = (0..64)
            .map(|_| inj.profile(5, 0.0).fail_at_frac.is_some())
            .collect();
        assert!(rolls.iter().any(|&r| r));
        assert!(rolls.iter().any(|&r| !r));
    }

    #[test]
    fn crash_targets_only_its_machine() {
        let plan = FaultPlan::parse("@chaos crash=1:30\n").unwrap();
        let inj0 = plan.injector(0);
        let mut inj1 = plan.injector(1);
        assert!(!inj0.crash_due(1e9));
        assert!(!inj1.crash_due(29.9));
        assert!(inj1.crash_due(30.0));
        inj1.note_crash(30.0);
        assert_eq!(inj1.events().len(), 1);
        assert!(matches!(inj1.events()[0].kind, FaultKind::MachineCrash));
    }

    #[test]
    fn meter_spikes_fire_once_per_period() {
        let plan = FaultPlan::parse("@chaos meter-spike=10:5\n").unwrap();
        let mut inj = plan.injector(0);
        let base = 12.0;
        let mut spiked = 0;
        for i in 1..=40 {
            let t = i as f64; // 1s samples, 40s horizon
            if inj.perturb_sample(t, base) > base + 1.0 {
                spiked += 1;
            }
        }
        assert_eq!(spiked, 4, "spikes at t=10,20,30,40");
        let spikes = inj
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::MeterSpike { .. }))
            .count();
        assert_eq!(spikes, 4);
    }

    #[test]
    fn noise_stays_within_amplitude_and_non_negative() {
        let plan = FaultPlan::parse("@chaos seed=9 meter-noise=2\n").unwrap();
        let mut inj = plan.injector(0);
        for i in 0..200 {
            let w = inj.perturb_sample(i as f64, 5.0);
            assert!((3.0 - 1e-9..=7.0 + 1e-9).contains(&w));
        }
        let w = inj.perturb_sample(201.0, 0.5);
        assert!(w >= 0.0, "perturbed power must stay physical");
        // Noise is announced exactly once.
        let notes = inj
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::MeterNoise { .. }))
            .count();
        assert_eq!(notes, 1);
    }
}
