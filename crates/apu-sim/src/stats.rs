//! Post-run statistics over a [`RunReport`](crate::engine::RunReport):
//! device utilization, concurrency, and energy accounting.

use crate::device::{Device, PerDevice};
use crate::engine::RunReport;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Makespan, seconds.
    pub makespan_s: f64,
    /// Per-device busy time (time with at least one job resident), seconds.
    pub busy_s: PerDevice<f64>,
    /// Per-device utilization (`busy / makespan`), 0..1.
    pub utilization: PerDevice<f64>,
    /// Time with *both* devices busy (co-run time), seconds.
    pub corun_s: f64,
    /// Fraction of the makespan spent co-running.
    pub corun_frac: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Mean package power, watts.
    pub mean_power_w: f64,
    /// Jobs completed.
    pub jobs: usize,
}

/// Compute statistics from a run report.
pub fn run_stats(report: &RunReport) -> RunStats {
    let makespan = report.makespan_s;
    // Sweep-line over job intervals to get busy and co-run time.
    let mut events: Vec<(f64, Device, i32)> = Vec::with_capacity(report.records.len() * 2);
    for r in &report.records {
        events.push((r.start_s, r.device, 1));
        events.push((r.end_s, r.device, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));

    let mut depth = PerDevice::new(0i32, 0i32);
    let mut busy = PerDevice::new(0.0_f64, 0.0_f64);
    let mut corun = 0.0;
    let mut prev_t = 0.0;
    for (t, dev, delta) in events {
        let dt = t - prev_t;
        if dt > 0.0 {
            for d in Device::ALL {
                if *depth.get(d) > 0 {
                    *busy.get_mut(d) += dt;
                }
            }
            if depth.cpu > 0 && depth.gpu > 0 {
                corun += dt;
            }
        }
        *depth.get_mut(dev) += delta;
        prev_t = t;
    }

    let utilization = PerDevice::from_fn(|d| {
        if makespan > 0.0 {
            busy.get(d) / makespan
        } else {
            0.0
        }
    });

    RunStats {
        makespan_s: makespan,
        busy_s: busy,
        utilization,
        corun_s: corun,
        corun_frac: if makespan > 0.0 {
            corun / makespan
        } else {
            0.0
        },
        energy_j: report.trace.energy_j(),
        mean_power_w: report.trace.mean_w(),
        jobs: report.records.len(),
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "makespan {:.1}s | {} jobs | cpu util {:.0}% | gpu util {:.0}% | \
             co-run {:.0}% | energy {:.0} J | mean power {:.1} W",
            self.makespan_s,
            self.jobs,
            self.utilization.cpu * 100.0,
            self.utilization.gpu * 100.0,
            self.corun_frac * 100.0,
            self.energy_j,
            self.mean_power_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::engine::{run_pair, run_solo};
    use crate::governor::NullGovernor;
    use crate::work::{single_phase_job, PhaseWork};

    fn phase(flops: f64) -> PhaseWork {
        PhaseWork {
            flops,
            bytes: 0.0,
            cpu_eff: 1.0,
            gpu_eff: 1.0,
            llc_footprint_mib: 64.0,
            llc_sensitivity: 0.0,
            llc_pressure: 0.0,
            llc_miss_bw_gbps: 0.0,
            overlap: 0.2,
        }
    }

    #[test]
    fn solo_run_uses_one_device() {
        let cfg = MachineConfig::ivy_bridge();
        let job = single_phase_job("a", phase(450.0));
        // run_solo lacks a report; use run_pair with a trivial partner? No:
        // drive the engine via run_pair of one real and a tiny job.
        let tiny = single_phase_job("b", phase(1.0));
        let mut gov = NullGovernor;
        let pair = run_pair(&cfg, &job, &tiny, cfg.freqs.max_setting(), &mut gov).unwrap();
        let _ = pair;
        let out = run_solo(&cfg, &job, Device::Cpu, cfg.freqs.max_setting()).unwrap();
        assert!(out.time_s > 0.0);
    }

    #[test]
    fn pair_stats_account_corun_overlap() {
        let cfg = MachineConfig::ivy_bridge();
        let a = single_phase_job("a", phase(450.0)); // 5 s on CPU
        let b = single_phase_job("b", phase(2500.0)); // 10 s on GPU
        let mut gov = NullGovernor;
        let engine = crate::engine::Engine::new(&cfg);
        struct P {
            a: Option<std::sync::Arc<crate::work::JobSpec>>,
            b: Option<std::sync::Arc<crate::work::JobSpec>>,
        }
        impl crate::engine::Dispatcher for P {
            fn next(
                &mut self,
                d: Device,
                _n: f64,
                _c: &crate::engine::DispatchCtx,
            ) -> crate::engine::Dispatch {
                let slot = match d {
                    Device::Cpu => &mut self.a,
                    Device::Gpu => &mut self.b,
                };
                match slot.take() {
                    Some(j) => crate::engine::Dispatch::Run(crate::engine::DispatchJob {
                        job: j,
                        tag: d.index(),
                        set_freq: None,
                    }),
                    None => {
                        if self.a.is_none() && self.b.is_none() {
                            crate::engine::Dispatch::Drained
                        } else {
                            crate::engine::Dispatch::Idle
                        }
                    }
                }
            }
        }
        let mut disp = P {
            a: Some(std::sync::Arc::new(a)),
            b: Some(std::sync::Arc::new(b)),
        };
        let report = engine
            .run(
                &mut disp,
                &mut gov,
                &crate::engine::RunOptions::new(cfg.freqs.max_setting()),
            )
            .unwrap();
        let stats = run_stats(&report);
        assert_eq!(stats.jobs, 2);
        // CPU job ends around 5 s, GPU around 10 s: co-run ~5 s, makespan ~10.
        assert!(
            (stats.makespan_s - 10.0).abs() < 0.3,
            "{}",
            stats.makespan_s
        );
        assert!((stats.corun_s - 5.0).abs() < 0.4, "{}", stats.corun_s);
        assert!(stats.utilization.gpu > 0.95);
        assert!((stats.utilization.cpu - 0.5).abs() < 0.1);
        assert!(stats.corun_frac > 0.4 && stats.corun_frac < 0.6);
        assert!(stats.energy_j > 0.0);
        let text = stats.to_string();
        assert!(text.contains("makespan"));
    }

    #[test]
    fn empty_report_is_all_zeroes() {
        let report = RunReport {
            makespan_s: 0.0,
            records: vec![],
            trace: crate::power::PowerTrace::new(1.0),
            final_setting: crate::freq::FreqSetting::new(0, 0),
        };
        let s = run_stats(&report);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.corun_frac, 0.0);
        assert_eq!(s.utilization.cpu, 0.0);
    }
}
