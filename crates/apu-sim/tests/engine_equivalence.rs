//! Engine-equivalence property tests: the discrete-event core
//! ([`EngineMode::Event`]) must reproduce the fixed-step reference
//! ([`EngineMode::FixedStep`]) across seeded workloads, `@chaos` fault
//! plans, and kill/resume at `Starved` boundaries.
//!
//! Equivalence has two tiers:
//!
//! * **Structural identity** (exact): the same jobs complete on the same
//!   devices with the same tags, the same injected failures and crashes
//!   fire, and the final frequency setting matches.
//! * **Numeric agreement** (bounded): completion times, makespans, and
//!   power-trace samples agree within the fixed-step engine's own
//!   quantization (one `tick_s` of carry per phase boundary plus the
//!   co-run coupling it induces).
//!
//! Within the event engine itself, slicing must be *bitwise* invariant:
//! advancing in arbitrary horizons — including stopping at `Starved`
//! boundaries and resuming once work appears — produces the identical
//! records, trace, and setting as a one-shot run. That invariance is
//! what makes serve journal replay fingerprints independent of worker
//! batching.

use apu_sim::{
    run_stats, BiasedGovernor, Device, Dispatch, DispatchCtx, DispatchJob, Dispatcher, Engine,
    EngineMode, FaultPlan, JobFailure, JobSpec, MachineConfig, NullGovernor, PhaseWork, RunOptions,
    RunReport, SessionState,
};
use proptest::prelude::*;
use std::sync::Arc;

/// FIFO per-device queue: never starves, drains when empty.
struct QueueDispatcher {
    queue: Vec<(usize, Device, Arc<JobSpec>)>,
}

impl QueueDispatcher {
    fn new(jobs: &[(Device, JobSpec)]) -> Self {
        QueueDispatcher {
            queue: jobs
                .iter()
                .enumerate()
                .map(|(i, (d, j))| (i, *d, Arc::new(j.clone())))
                .collect(),
        }
    }
}

impl Dispatcher for QueueDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        if let Some(pos) = self.queue.iter().position(|(_, d, _)| *d == device) {
            let (tag, _, job) = self.queue.remove(pos);
            return Dispatch::Run(DispatchJob {
                job,
                tag,
                set_freq: None,
            });
        }
        if self.queue.is_empty() {
            Dispatch::Drained
        } else {
            Dispatch::Idle
        }
    }
}

/// Outcome of one full run, in either engine mode.
struct Outcome {
    report: RunReport,
    failures: Vec<JobFailure>,
    crashed: bool,
    end_now_s: f64,
}

fn run_mode(
    cfg: &MachineConfig,
    jobs: &[(Device, JobSpec)],
    mode: EngineMode,
    plan: Option<&str>,
) -> Outcome {
    let mut opts = RunOptions::new(cfg.freqs.max_setting());
    opts.engine = mode;
    let engine = Engine::new(cfg);
    let mut disp = QueueDispatcher::new(jobs);
    let mut gov = NullGovernor;
    let mut session = engine.session(opts);
    if let Some(p) = plan {
        let plan = FaultPlan::parse(p).expect("fault plan parses");
        session.set_faults(plan.injector(0));
    }
    let mut crashed = false;
    loop {
        match session
            .advance(&mut disp, &mut gov, f64::INFINITY, None)
            .expect("advance")
        {
            SessionState::Finished => break,
            SessionState::Crashed => {
                crashed = true;
                break;
            }
            SessionState::Starved => panic!("queue dispatcher cannot starve"),
            SessionState::Advanced => {}
        }
    }
    let failures = session.take_failures();
    let end_now_s = session.now_s();
    Outcome {
        report: session.into_report(),
        failures,
        crashed,
        end_now_s,
    }
}

/// Assert the two engines produced equivalent outcomes: structurally
/// identical, numerically within `tol` seconds. `compare_trace` is off
/// for meter-spike plans: whether a spike lands on window `k` or `k+1`
/// is a knife-edge on `floor(now/period)` that FP accumulation order
/// legitimately tips.
fn assert_equivalent(ev: &Outcome, fx: &Outcome, tol: f64, compare_trace: bool) {
    assert_eq!(ev.crashed, fx.crashed, "crash outcome diverged");
    assert!(
        (ev.end_now_s - fx.end_now_s).abs() <= tol,
        "final clock diverged: event {} vs fixed {}",
        ev.end_now_s,
        fx.end_now_s
    );

    let (a, b) = (&ev.report, &fx.report);
    assert_eq!(
        a.records.len(),
        b.records.len(),
        "completion count diverged"
    );
    for ra in &a.records {
        let rb = b
            .record(ra.tag)
            .unwrap_or_else(|| panic!("tag {} completed only on the event engine", ra.tag));
        assert_eq!(ra.name, rb.name, "tag {}", ra.tag);
        assert_eq!(ra.device, rb.device, "tag {}", ra.tag);
        assert!(
            (ra.start_s - rb.start_s).abs() <= tol,
            "tag {} start: event {} vs fixed {}",
            ra.tag,
            ra.start_s,
            rb.start_s
        );
        assert!(
            (ra.end_s - rb.end_s).abs() <= tol,
            "tag {} end: event {} vs fixed {}",
            ra.tag,
            ra.end_s,
            rb.end_s
        );
    }
    assert!(
        (a.makespan_s - b.makespan_s).abs() <= tol,
        "makespan: event {} vs fixed {}",
        a.makespan_s,
        b.makespan_s
    );
    assert_eq!(a.final_setting, b.final_setting, "final setting diverged");

    // Injected failures: same jobs die, at the same progress points.
    assert_eq!(
        ev.failures.len(),
        fx.failures.len(),
        "failure count diverged"
    );
    for fa in &ev.failures {
        let fb = fx
            .failures
            .iter()
            .find(|f| f.tag == fa.tag)
            .unwrap_or_else(|| panic!("tag {} failed only on the event engine", fa.tag));
        assert_eq!(fa.device, fb.device, "tag {}", fa.tag);
        assert!(
            (fa.at_s - fb.at_s).abs() <= tol,
            "tag {} failure time: event {} vs fixed {}",
            fa.tag,
            fa.at_s,
            fb.at_s
        );
    }

    // Power traces share the sampling cadence; lengths may differ by the
    // final window straddling the (slightly shifted) end of run. Window
    // averages shift only by the quantization of phase boundaries inside
    // a window.
    let (ta, tb) = (&a.trace.samples_w, &b.trace.samples_w);
    assert!(
        ta.len().abs_diff(tb.len()) <= 1,
        "trace lengths diverged: event {} vs fixed {}",
        ta.len(),
        tb.len()
    );
    if !compare_trace {
        return;
    }
    let n = ta.len().min(tb.len());
    let mut sum = 0.0;
    for i in 0..n {
        let d = (ta[i] - tb[i]).abs();
        assert!(
            d <= 3.0,
            "trace sample {i}: event {} vs fixed {} W",
            ta[i],
            tb[i]
        );
        sum += d;
    }
    if n > 0 {
        assert!(
            sum / n as f64 <= 0.6,
            "mean trace divergence {} W",
            sum / n as f64
        );
    }

    // Derived stats (what BoundReport/serve accounting consume).
    let (sa, sb) = (run_stats(a), run_stats(b));
    assert_eq!(sa.jobs, sb.jobs);
    let e_tol = 0.03 * sb.energy_j.abs() + 2.0;
    assert!(
        (sa.energy_j - sb.energy_j).abs() <= e_tol,
        "energy: event {} vs fixed {} J",
        sa.energy_j,
        sb.energy_j
    );
}

fn arb_phase() -> impl Strategy<Value = PhaseWork> {
    (
        0.0f64..250.0,
        0.0f64..30.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(flops, bytes, sens, pressure, overlap)| PhaseWork {
            flops,
            bytes,
            cpu_eff: 0.7,
            gpu_eff: 0.9,
            llc_footprint_mib: 48.0,
            llc_sensitivity: sens,
            llc_pressure: pressure,
            llc_miss_bw_gbps: 5.0,
            overlap,
        })
}

fn arb_job(idx: usize) -> impl Strategy<Value = JobSpec> {
    (proptest::collection::vec(arb_phase(), 1..4), 0.0f64..0.3).prop_map(move |(phases, setup)| {
        let mut j = JobSpec::plain(format!("job{idx}"), phases);
        j.host_setup_s = setup;
        j
    })
}

fn arb_workload() -> impl Strategy<Value = Vec<(Device, JobSpec)>> {
    proptest::collection::vec(
        any::<bool>().prop_flat_map(|g| arb_job(0).prop_map(move |j| (g, j))),
        1..5,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (gpu, mut j))| {
                let d = if gpu { Device::Gpu } else { Device::Cpu };
                j.name = format!("job{i}");
                (d, j)
            })
            .collect()
    })
}

/// Loose numeric tolerance: one fixed-step tick of carry per phase
/// boundary, plus the co-run rate coupling those shifts induce.
fn tol_for(jobs: &[(Device, JobSpec)]) -> f64 {
    let phases: usize = jobs.iter().map(|(_, j)| j.phases.len()).sum();
    0.05 + 0.02 * phases as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean runs: random workloads over both devices.
    #[test]
    fn event_and_fixed_step_agree_on_clean_runs(jobs in arb_workload()) {
        let cfg = MachineConfig::ivy_bridge();
        let ev = run_mode(&cfg, &jobs, EngineMode::Event, None);
        let fx = run_mode(&cfg, &jobs, EngineMode::FixedStep, None);
        assert_equivalent(&ev, &fx, tol_for(&jobs), true);
    }

    /// Chaos runs: the same `@chaos` plans (crashes, stragglers, job
    /// failures, meter noise and spikes) produce the same structural
    /// outcome on both engines.
    #[test]
    fn event_and_fixed_step_agree_under_chaos(
        jobs in arb_workload(),
        seed in 1u64..64,
        plan_idx in 0usize..5,
    ) {
        let plans = [
            format!("@chaos seed={seed} crash=0:6\n"),
            format!("@chaos seed={seed} straggle=0.5:2.0\n"),
            format!("@chaos seed={seed} job-fail=0.5\n"),
            format!("@chaos seed={seed} meter-noise=1.5 meter-spike=0.3:25\n"),
            format!("@chaos seed={seed} crash=0:9 job-fail=0.3 straggle=0.3:1.7\n"),
        ];
        let cfg = MachineConfig::ivy_bridge();
        let plan = plans[plan_idx].as_str();
        let ev = run_mode(&cfg, &jobs, EngineMode::Event, Some(plan));
        let fx = run_mode(&cfg, &jobs, EngineMode::FixedStep, Some(plan));
        // Stragglers stretch runtimes; scale the tolerance with them.
        assert_equivalent(&ev, &fx, 2.5 * tol_for(&jobs), plan_idx != 3);
    }
}

/// Dispatcher whose jobs become visible only when the driver reveals
/// them — the engine starves between batches, exercising kill/resume at
/// `Starved` boundaries.
struct RevealDispatcher {
    visible: Vec<(usize, Device, Arc<JobSpec>)>,
    hidden: Vec<(usize, Device, Arc<JobSpec>)>,
}

impl RevealDispatcher {
    fn new(jobs: &[(Device, JobSpec)]) -> Self {
        RevealDispatcher {
            visible: Vec::new(),
            hidden: jobs
                .iter()
                .enumerate()
                .map(|(i, (d, j))| (i, *d, Arc::new(j.clone())))
                .collect(),
        }
    }

    /// Make the next hidden job visible; false when none remain.
    fn reveal(&mut self) -> bool {
        if self.hidden.is_empty() {
            return false;
        }
        self.visible.push(self.hidden.remove(0));
        true
    }
}

impl Dispatcher for RevealDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        if let Some(pos) = self.visible.iter().position(|(_, d, _)| *d == device) {
            let (tag, _, job) = self.visible.remove(pos);
            return Dispatch::Run(DispatchJob {
                job,
                tag,
                set_freq: None,
            });
        }
        if self.visible.is_empty() && self.hidden.is_empty() {
            Dispatch::Drained
        } else {
            Dispatch::Idle
        }
    }
}

/// Drive a session in bounded slices, revealing one job per `Starved`
/// boundary. Returns the report and how many times the session starved.
fn run_revealed(
    cfg: &MachineConfig,
    jobs: &[(Device, JobSpec)],
    mode: EngineMode,
    slice_s: f64,
) -> (RunReport, usize) {
    let mut opts = RunOptions::new(cfg.freqs.max_setting());
    opts.engine = mode;
    let engine = Engine::new(cfg);
    let mut disp = RevealDispatcher::new(jobs);
    let mut gov = BiasedGovernor::gpu_biased(15.0);
    let mut session = engine.session(opts);
    let mut starved = 0usize;
    loop {
        match session
            .advance(&mut disp, &mut gov, slice_s, None)
            .expect("advance")
        {
            SessionState::Finished => break,
            SessionState::Starved => {
                starved += 1;
                assert!(disp.reveal(), "starved with no work left to reveal");
            }
            SessionState::Crashed => panic!("no faults attached"),
            SessionState::Advanced => {}
        }
    }
    (session.into_report(), starved)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill/resume at `Starved` boundaries: both engines starve the same
    /// number of times and agree on the final report.
    #[test]
    fn starved_resume_agrees_across_engines(jobs in arb_workload(), slice in 0.3f64..4.0) {
        let cfg = MachineConfig::ivy_bridge();
        let (ra, sa) = run_revealed(&cfg, &jobs, EngineMode::Event, slice);
        let (rb, sb) = run_revealed(&cfg, &jobs, EngineMode::FixedStep, slice);
        prop_assert_eq!(sa, sb, "starvation counts diverged");
        prop_assert_eq!(ra.records.len(), rb.records.len());
        for r in &ra.records {
            let o = rb.record(r.tag).expect("tag completed on both");
            prop_assert_eq!(r.device, o.device);
            prop_assert!((r.end_s - o.end_s).abs() <= 2.0 * tol_for(&jobs));
        }
    }

    /// Slicing invariance of the event engine is *bitwise*: a sliced run
    /// (including `Starved` stops and resumes) equals a one-shot-horizon
    /// run sample for sample. This is the determinism rule that keeps
    /// serve replay fingerprints independent of worker batching.
    #[test]
    fn event_engine_slicing_is_bitwise_invariant(jobs in arb_workload(), slice in 0.2f64..3.0) {
        let cfg = MachineConfig::ivy_bridge();
        let (ra, _) = run_revealed(&cfg, &jobs, EngineMode::Event, slice);
        let (rb, _) = run_revealed(&cfg, &jobs, EngineMode::Event, f64::INFINITY);
        prop_assert_eq!(ra.records, rb.records);
        prop_assert_eq!(ra.trace.samples_w, rb.trace.samples_w);
        prop_assert_eq!(ra.makespan_s, rb.makespan_s);
        prop_assert_eq!(ra.final_setting, rb.final_setting);
    }
}

/// A fixed governed co-run pair: the cap governor walks the same ladder
/// on both engines (window cadence and averages match to within
/// quantization, away from decision knife-edges).
#[test]
fn governed_pair_agrees_across_engines() {
    fn busy(flops: f64, bytes: f64) -> PhaseWork {
        PhaseWork {
            flops,
            bytes,
            cpu_eff: 1.0,
            gpu_eff: 1.0,
            llc_footprint_mib: 64.0,
            llc_sensitivity: 0.3,
            llc_pressure: 0.4,
            llc_miss_bw_gbps: 6.0,
            overlap: 0.2,
        }
    }
    let cfg = MachineConfig::ivy_bridge();
    let jobs = vec![
        (
            Device::Cpu,
            apu_sim::single_phase_job("a", busy(900.0, 10.0)),
        ),
        (
            Device::Gpu,
            apu_sim::single_phase_job("b", busy(2500.0, 25.0)),
        ),
    ];
    let run = |mode: EngineMode| {
        let mut opts = RunOptions::new(cfg.freqs.max_setting());
        opts.engine = mode;
        let engine = Engine::new(&cfg);
        let mut disp = QueueDispatcher::new(&jobs);
        let mut gov = BiasedGovernor::gpu_biased(15.0);
        engine
            .run(&mut disp, &mut gov, &opts)
            .expect("governed pair runs")
    };
    let a = run(EngineMode::Event);
    let b = run(EngineMode::FixedStep);
    assert_eq!(a.records.len(), b.records.len());
    assert!(
        (a.makespan_s - b.makespan_s).abs() < 0.6,
        "{} vs {}",
        a.makespan_s,
        b.makespan_s
    );
    assert_eq!(a.final_setting, b.final_setting);
}
