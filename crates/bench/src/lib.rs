//! Shared helpers for the experiment regenerators (one binary per paper
//! table/figure) and the criterion benchmarks.

use apu_sim::MachineConfig;
use kernels::Workload;
use runtime::{CoScheduleRuntime, RuntimeConfig};

/// Paper-fidelity runtime: measured profiles, 3x3-stage 11-point
/// characterization, the given power cap.
pub fn paper_runtime(workload: Workload, cap_w: f64) -> CoScheduleRuntime {
    let machine = MachineConfig::ivy_bridge();
    let mut cfg = RuntimeConfig::paper(&machine);
    cfg.cap_w = cap_w;
    CoScheduleRuntime::new(machine, workload.jobs, cfg)
}

/// Quick runtime for smoke-testing binaries (analytic profiles, coarse
/// characterization). Shapes hold; absolute numbers are rougher.
pub fn fast_runtime(workload: Workload, cap_w: f64) -> CoScheduleRuntime {
    let machine = MachineConfig::ivy_bridge();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = cap_w;
    CoScheduleRuntime::new(machine, workload.jobs, cfg)
}

/// Render one row of a fixed-width table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<22}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Standard experiment banner.
pub fn banner(id: &str, what: &str, paper: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// `--fast` flag: binaries accept it to run the coarse pipeline.
pub fn fast_flag() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Perf-trajectory files: each throughput bench records its headline
/// figures to `BENCH_<name>.json` at the workspace root, so the repo's
/// git history doubles as a performance trajectory. The format is one
/// flat JSON object — no schema machinery, greppable, diffable.
pub mod trajectory {
    use std::io::Write;
    use std::path::PathBuf;

    /// One measured figure.
    pub struct Sample {
        /// What was measured, e.g. `"fleet_jobs_per_sec"`.
        pub name: &'static str,
        /// The figure.
        pub value: f64,
        /// Unit, e.g. `"jobs/s"`.
        pub unit: &'static str,
    }

    impl Sample {
        /// Shorthand constructor.
        pub fn new(name: &'static str, value: f64, unit: &'static str) -> Sample {
            Sample { name, value, unit }
        }
    }

    /// Where trajectory files land: `CORUN_BENCH_DIR` if set, else the
    /// workspace root (two levels up from this crate).
    fn out_dir() -> PathBuf {
        match std::env::var_os("CORUN_BENCH_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from(".")),
        }
    }

    /// Write `BENCH_<bench>.json` and return its path. Values that are
    /// not finite are recorded as `null` rather than producing invalid
    /// JSON.
    pub fn write(bench: &str, samples: &[Sample]) -> std::io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{bench}.json"));
        // corun-lint: allow(wall-clock) — benchmark artifact timestamp, an I/O edge.
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let mut body = String::new();
        body.push_str("{\n");
        body.push_str(&format!("  \"bench\": \"{bench}\",\n"));
        body.push_str(&format!("  \"generated_unix\": {unix},\n"));
        body.push_str("  \"samples\": [\n");
        for (i, s) in samples.iter().enumerate() {
            let value = if s.value.is_finite() {
                // Enough digits to be useful, few enough to diff.
                format!("{:.4}", s.value)
            } else {
                "null".to_string()
            };
            body.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {value}, \"unit\": \"{}\"}}{}\n",
                s.name,
                s.unit,
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        body.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path)?;
        f.write_all(body.as_bytes())?;
        Ok(path)
    }
}

/// Shared simulator-throughput measurement: the criterion bench and the
/// CI perf gate (`perf_gate`) must agree on what "simulator throughput"
/// means, so both call into here. The headline figure is simulated
/// seconds per wall second on the standard solo workload — it governs
/// how expensive profiling, characterization, and ground-truth
/// evaluation are.
pub mod simbench {
    use apu_sim::{run_solo, Device, MachineConfig};
    use std::path::Path;

    /// Name of the headline sample in `BENCH_sim.json`.
    pub const HEADLINE: &str = "sim_seconds_per_wall_sec";

    /// One measurement run's headline figures.
    pub struct Measurement {
        /// Discrete power samples produced per wall second.
        pub steps_per_sec: f64,
        /// Simulated seconds one wall second buys.
        pub sim_seconds_per_wall_sec: f64,
    }

    /// Run the standard workload (`lud` at 0.2 input scale, solo on the
    /// GPU at max frequency) `reps` times and measure throughput.
    pub fn measure(reps: usize) -> Measurement {
        let cfg = MachineConfig::ivy_bridge();
        let job = kernels::with_input_scale(&kernels::by_name(&cfg, "lud").unwrap(), 0.2);
        let mut steps = 0usize;
        let mut sim_s = 0.0f64;
        // corun-lint: allow(wall-clock) — this is a benchmark; wall time is the measurand.
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let out = run_solo(&cfg, &job, Device::Gpu, cfg.freqs.max_setting()).unwrap();
            steps += out.trace.len();
            sim_s += out.time_s;
        }
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        Measurement {
            steps_per_sec: steps as f64 / wall_s,
            sim_seconds_per_wall_sec: sim_s / wall_s,
        }
    }

    /// Read one named sample's value back out of a committed trajectory
    /// file. The format is the flat one `trajectory::write` produces, so
    /// a line-oriented scan is enough — no JSON parser in the tree.
    pub fn read_sample(path: &Path, name: &str) -> Option<f64> {
        let text = std::fs::read_to_string(path).ok()?;
        let needle = format!("\"name\": \"{name}\"");
        let line = text.lines().find(|l| l.contains(&needle))?;
        let tail = line.split("\"value\":").nth(1)?;
        let value = tail.trim_start().split([',', '}']).next()?;
        value.trim().parse().ok()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn read_sample_parses_the_trajectory_format() {
            let dir = std::env::temp_dir().join(format!("corun-simbench-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("BENCH_test.json");
            std::fs::write(
                &path,
                "{\n  \"bench\": \"test\",\n  \"generated_unix\": 0,\n  \"samples\": [\n    \
                 {\"name\": \"a\", \"value\": 12.5000, \"unit\": \"x\"},\n    \
                 {\"name\": \"sim_seconds_per_wall_sec\", \"value\": 90442.6135, \"unit\": \"sim-s/s\"}\n  ]\n}\n",
            )
            .unwrap();
            assert_eq!(read_sample(&path, "a"), Some(12.5));
            assert_eq!(read_sample(&path, HEADLINE), Some(90442.6135));
            assert_eq!(read_sample(&path, "missing"), None);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
