//! Shared helpers for the experiment regenerators (one binary per paper
//! table/figure) and the criterion benchmarks.

use apu_sim::MachineConfig;
use kernels::Workload;
use runtime::{CoScheduleRuntime, RuntimeConfig};

/// Paper-fidelity runtime: measured profiles, 3x3-stage 11-point
/// characterization, the given power cap.
pub fn paper_runtime(workload: Workload, cap_w: f64) -> CoScheduleRuntime {
    let machine = MachineConfig::ivy_bridge();
    let mut cfg = RuntimeConfig::paper(&machine);
    cfg.cap_w = cap_w;
    CoScheduleRuntime::new(machine, workload.jobs, cfg)
}

/// Quick runtime for smoke-testing binaries (analytic profiles, coarse
/// characterization). Shapes hold; absolute numbers are rougher.
pub fn fast_runtime(workload: Workload, cap_w: f64) -> CoScheduleRuntime {
    let machine = MachineConfig::ivy_bridge();
    let mut cfg = RuntimeConfig::fast(&machine);
    cfg.cap_w = cap_w;
    CoScheduleRuntime::new(machine, workload.jobs, cfg)
}

/// Render one row of a fixed-width table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<22}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Standard experiment banner.
pub fn banner(id: &str, what: &str, paper: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// `--fast` flag: binaries accept it to run the coarse pipeline.
pub fn fast_flag() -> bool {
    std::env::args().any(|a| a == "--fast")
}
