//! Cross-machine study (extension): the paper observes its co-run phenomena
//! "on both Intel and AMD" integrated processors. This experiment runs the
//! 8-program workload on the second calibrated machine (`kaveri`) and checks
//! that the method's advantage carries over: HCS+ beats the governed
//! Default and Random baselines on both machines.

use apu_sim::{Bias, MachineConfig};
use bench::{banner, fast_flag, pct, row};
use kernels::rodinia8;
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    banner(
        "Cross-machine",
        "HCS+ vs baselines on the Ivy Bridge and Kaveri presets, 15 W cap",
        "method advantage should carry over (paper §V: Intel and AMD)",
    );
    for (name, machine) in [
        ("ivy-bridge", MachineConfig::ivy_bridge()),
        ("kaveri", MachineConfig::kaveri()),
    ] {
        let wl = rodinia8(&machine);
        let mut cfg = if fast_flag() {
            RuntimeConfig::fast(&machine)
        } else {
            RuntimeConfig::paper(&machine)
        };
        cfg.cap_w = 15.0;
        let rt = CoScheduleRuntime::new(machine, wl.jobs, cfg);
        let random = rt.random_avg_makespan(0..if fast_flag() { 5 } else { 10 });
        let default_g = rt
            .execute_default(&rt.schedule_default(), Bias::Gpu)
            .makespan_s;
        let hcs_plus = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
        let bound = rt.lower_bound().t_low_s;
        println!();
        println!("machine: {name}");
        println!("{}", row("method", &["makespan".into(), "speedup".into()]));
        for (label, span) in [
            ("Random (avg)", random),
            ("Default_G", default_g),
            ("HCS+", hcs_plus),
            ("LowerBound", bound),
        ] {
            println!(
                "{}",
                row(label, &[format!("{span:.1}s"), pct(random / span - 1.0)])
            );
        }
    }
}
