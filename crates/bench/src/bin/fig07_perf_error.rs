//! Figure 7: error-rate distribution of the co-run performance model.
//!
//! All 64 ordered pairs of the eight programs are co-run (one on the CPU,
//! one on the GPU) at two frequency settings — both-maximum, and the
//! medium setting (2.2 GHz CPU, 0.85 GHz GPU). The staged-interpolation
//! prediction of each side's co-run time is compared against the measured
//! (simulated) ground truth.
//!
//! Paper: ~half of the co-runs err below 10%, more than 70% below 20%;
//! average error 15% at the high setting and 11% at the medium setting.

use apu_sim::{Device, FreqSetting, MachineConfig};
use bench::{banner, fast_flag};
use crossbeam::thread;
use kernels::rodinia8;
use perf_model::{
    characterize, profile_batch, relative_error, CharacterizeConfig, ErrorHistogram, ProfileMethod,
    StagedPredictor,
};
use runtime::measure_pair_truth;

fn main() {
    banner(
        "Figure 7",
        "performance-model error over 64 pairs x 2 frequency settings",
        "~50% below 10%, >70% below 20%; avg 15% (high), 11% (medium)",
    );
    let cfg = MachineConfig::ivy_bridge();
    let wl = rodinia8(&cfg);
    let fast = fast_flag();

    let profiles = profile_batch(
        &cfg,
        &wl.jobs,
        if fast {
            ProfileMethod::Analytic
        } else {
            ProfileMethod::Measured
        },
    );
    let mut ccfg = CharacterizeConfig::paper(&cfg);
    if fast {
        ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 5;
    }
    let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));

    let medium = FreqSetting::new(
        cfg.freqs.cpu.nearest_level(2.2),
        cfg.freqs.gpu.nearest_level(0.85),
    );
    let settings = [("high", cfg.freqs.max_setting()), ("medium", medium)];

    for (label, setting) in settings {
        let mut hist = ErrorHistogram::paper_buckets();
        // Fan the 64 ground-truth co-runs out over worker threads.
        let pairs: Vec<(usize, usize)> = (0..8).flat_map(|i| (0..8).map(move |j| (i, j))).collect();
        let jobs = &wl.jobs;
        let n_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        let chunk = pairs.len().div_ceil(n_threads);
        let errors: Vec<Vec<f64>> = thread::scope(|s| {
            pairs
                .chunks(chunk)
                .map(|ch| {
                    let profiles = &profiles;
                    let predictor = &predictor;
                    let cfg = &cfg;
                    s.spawn(move |_| {
                        ch.iter()
                            .flat_map(|&(ci, gi)| {
                                let truth = measure_pair_truth(cfg, &jobs[ci], &jobs[gi], setting);
                                let pred = predictor.predict_pair_times(
                                    cfg,
                                    &profiles[ci],
                                    setting.cpu,
                                    &profiles[gi],
                                    setting.gpu,
                                );
                                [
                                    relative_error(pred.cpu, truth.cpu_time_s),
                                    relative_error(pred.gpu, truth.gpu_time_s),
                                ]
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");
        for e in errors.into_iter().flatten() {
            hist.add(e);
        }

        println!();
        println!(
            "setting: {label} (cpu {:.2} GHz, gpu {:.2} GHz), {} predictions",
            cfg.freqs.ghz(Device::Cpu, setting),
            cfg.freqs.ghz(Device::Gpu, setting),
            hist.len()
        );
        for (bucket, frac) in hist.rows() {
            println!("  {bucket:>8}: {:>5.1}%  {}", frac * 100.0, bar(frac));
        }
        println!(
            "  mean error {:.1}%, <10%: {:.0}% of pairs, <20%: {:.0}% of pairs",
            hist.mean() * 100.0,
            hist.frac_below(0.10) * 100.0,
            hist.frac_below(0.20) * 100.0
        );
    }
}

fn bar(frac: f64) -> String {
    "#".repeat((frac * 50.0).round() as usize)
}
