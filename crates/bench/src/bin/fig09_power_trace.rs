//! Figure 9: package-power samples of four random co-run pairs under a
//! 16 W cap, one sample per interval.
//!
//! Paper: power stays below the cap most of the time; when it exceeds the
//! cap, the overshoot is typically below 2 W (the governor reacts at the
//! next sample).

use apu_sim::{run_pair, BiasedGovernor, MachineConfig};
use bench::banner;
use kernels::rodinia8;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "Figure 9",
        "power traces of four random co-run pairs, 16 W cap",
        "below the cap most of the time; overshoot typically < 2 W",
    );
    let cap = 16.0;
    let cfg = MachineConfig::ivy_bridge();
    let wl = rodinia8(&cfg);
    let mut rng = StdRng::seed_from_u64(9);

    for k in 0..4 {
        let ci = rng.gen_range(0..wl.jobs.len());
        let gi = rng.gen_range(0..wl.jobs.len());
        let cpu_job = &wl.jobs[ci];
        let gpu_job = &wl.jobs[gi];
        let mut gov = BiasedGovernor::gpu_biased(cap);
        let pair = run_pair(&cfg, cpu_job, gpu_job, cfg.freqs.max_setting(), &mut gov).unwrap();
        println!();
        println!(
            "pair {}: {}(CPU) + {}(GPU), makespan {:.1}s",
            k + 1,
            cpu_job.name,
            gpu_job.name,
            pair.makespan_s
        );
        // One printed sample per simulated second (the paper's rate).
        let per_second = (1.0 / pair.trace.interval_s).round() as usize;
        let samples: Vec<f64> = pair
            .trace
            .samples_w
            .chunks(per_second.max(1))
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        print!("  power (W):");
        for (t, w) in samples.iter().enumerate() {
            if t % 5 == 0 {
                print!(" {w:.1}");
            }
        }
        println!("  [every 5th second shown]");
        println!(
            "  above cap: {:.0}% of samples, max overshoot {:.2} W, mean {:.1} W",
            pair.trace.frac_above(cap) * 100.0,
            pair.trace.max_overshoot(cap),
            pair.trace.mean_w()
        );
    }
}
