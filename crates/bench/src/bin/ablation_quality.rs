//! Quality ablations over the design choices DESIGN.md calls out:
//!
//! * preference threshold `D` (paper picks 20%),
//! * the HCS+ refinement passes,
//! * the LLC-vulnerability probe (our extension),
//! * governor bias for the baselines,
//! * characterization grid resolution (model error vs cost).

use apu_sim::{Bias, MachineConfig};
use bench::{banner, fast_runtime, pct, row};
use corun_core::{evaluate, hcs, refine, HcsConfig, RefineConfig};
use kernels::rodinia8;
use runtime::{CoScheduleRuntime, RuntimeConfig};

fn main() {
    banner(
        "Ablations",
        "design-choice sensitivity on the 8-program batch, 15 W cap",
        "DESIGN.md section 3 (ablation benches)",
    );
    let cap = 15.0;
    let machine = MachineConfig::ivy_bridge();
    let rt = fast_runtime(rodinia8(&machine), cap);
    let random_avg = rt.random_avg_makespan(0..5);
    println!("random baseline: {random_avg:.1}s");

    // --- preference threshold D -------------------------------------
    println!();
    println!(
        "{}",
        row("threshold D", &["makespan".into(), "speedup".into()])
    );
    for d in [0.0, 0.10, 0.20, 0.40, 1.0] {
        let cfg = HcsConfig {
            cap_w: cap,
            preference_threshold: d,
        };
        let out = hcs(rt.model(), &cfg);
        let span = rt.execute_planned(&out.schedule).makespan_s;
        println!(
            "{}",
            row(
                &format!("D = {d:.2}"),
                &[format!("{span:.1}s"), pct(random_avg / span - 1.0)]
            )
        );
    }

    // --- refinement budget -------------------------------------------
    println!();
    println!("{}", row("refinement", &["model".into(), "truth".into()]));
    let base = hcs(rt.model(), &HcsConfig::with_cap(cap));
    for (label, swaps) in [("none", 0usize), ("paper (32)", 32), ("heavy (128)", 128)] {
        let mut rc = RefineConfig::new(cap);
        rc.random_swaps = swaps;
        rc.cross_swaps = swaps;
        let r = refine(rt.model(), &base.schedule, &rc);
        let truth = rt.execute_planned(&r.schedule).makespan_s;
        println!(
            "{}",
            row(
                label,
                &[format!("{:.1}s", r.after_s), format!("{truth:.1}s")]
            )
        );
    }

    // --- LLC probe on/off ---------------------------------------------
    println!();
    println!("{}", row("llc probe", &["truth".into(), "speedup".into()]));
    for (label, probe) in [("off (paper model)", false), ("on (extension)", true)] {
        let machine = MachineConfig::ivy_bridge();
        let mut cfg = RuntimeConfig::fast(&machine);
        cfg.cap_w = cap;
        cfg.llc_probe = probe;
        let rt2 = CoScheduleRuntime::new(machine, rodinia8(&rt.machine().clone()).jobs, cfg);
        let span = rt2.execute_planned(&rt2.schedule_hcs_plus()).makespan_s;
        println!(
            "{}",
            row(
                label,
                &[format!("{span:.1}s"), pct(random_avg / span - 1.0)]
            )
        );
    }

    // --- governor bias for the Default baseline ------------------------
    println!();
    println!(
        "{}",
        row("default governor", &["truth".into(), "speedup".into()])
    );
    let part = rt.schedule_default();
    for (label, bias) in [("gpu-biased", Bias::Gpu), ("cpu-biased", Bias::Cpu)] {
        let span = rt.execute_default(&part, bias).makespan_s;
        println!(
            "{}",
            row(
                label,
                &[format!("{span:.1}s"), pct(random_avg / span - 1.0)]
            )
        );
    }

    // --- model-predicted vs ground truth for the chosen schedule --------
    println!();
    let s = rt.schedule_hcs_plus();
    let predicted = evaluate(rt.model(), &s, Some(cap)).makespan_s;
    let truth = rt.execute_planned(&s).makespan_s;
    println!(
        "model fidelity on the final schedule: predicted {predicted:.1}s vs measured {truth:.1}s ({})",
        pct((predicted - truth).abs() / truth)
    );
}
