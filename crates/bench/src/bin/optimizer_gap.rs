//! Optimality-gap study (extension): how far do HCS and HCS+ sit from the
//! constrained optimum? Compares, in the *model* (where the optimizers
//! operate) and on ground truth:
//!
//! * HCS, HCS+ (the paper's schedulers),
//! * simulated annealing seeded with HCS+ (stronger offline search),
//! * branch-and-bound (exact over its level rule; n <= 8),
//! * the paper's lower bound T_low.

use bench::{banner, fast_flag, fast_runtime, paper_runtime, row};
use corun_core::{anneal, branch_and_bound, evaluate, fairness, AnnealConfig, BnbConfig};
use kernels::rodinia8;

fn main() {
    banner(
        "Optimality gap",
        "HCS/HCS+ vs annealing vs branch-and-bound vs T_low, 8 jobs, 15 W",
        "extension (no paper counterpart); DESIGN.md section 7.7",
    );
    let cap = 15.0;
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let wl = rodinia8(&machine);
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };
    let m = rt.model();

    let hcs = rt.schedule_hcs().schedule;
    let hcs_plus = rt.schedule_hcs_plus();
    let annealed = anneal(m, &hcs_plus, &AnnealConfig::new(cap)).schedule;
    let bnb = branch_and_bound(m, &BnbConfig::new(cap));
    println!(
        "branch-and-bound: {} nodes expanded, {} pruned",
        bnb.expanded, bnb.pruned
    );

    println!();
    println!(
        "{}",
        row("method", &["model".into(), "truth".into(), "jain".into()])
    );
    for (name, sched) in [
        ("HCS", &hcs),
        ("HCS+", &hcs_plus),
        ("anneal", &annealed),
        ("bnb", &bnb.schedule),
    ] {
        let ev = evaluate(m, sched, Some(cap));
        let truth = rt.execute_planned(sched).makespan_s;
        let fair = fairness(m, &ev, cap);
        println!(
            "{}",
            row(
                name,
                &[
                    format!("{:.1}s", ev.makespan_s),
                    format!("{truth:.1}s"),
                    format!("{:.3}", fair.jain_index),
                ],
            )
        );
    }
    let bound = rt.lower_bound();
    println!(
        "{}",
        row(
            "T_low",
            &[format!("{:.1}s", bound.t_low_s), "-".into(), "-".into()]
        )
    );
    println!();
    let ev_plus = evaluate(m, &hcs_plus, Some(cap)).makespan_s;
    let ev_bnb = evaluate(m, &bnb.schedule, Some(cap)).makespan_s;
    println!(
        "HCS+ is {:.1}% above branch-and-bound in the model; T_low leaves {:.1}% slack below bnb",
        (ev_plus / ev_bnb - 1.0) * 100.0,
        (ev_bnb / bound.t_low_s - 1.0) * 100.0
    );
}
