//! Figure 2: standalone performance of streamcluster, cfd, dwt2d and
//! hotspot on the CPU vs the GPU (no cap, highest frequencies).
//!
//! Paper: streamcluster, cfd and hotspot prefer the GPU (2.5x, 1.8x and
//! 2.4x over their CPU runs); dwt2d prefers the CPU (2.5x over its GPU
//! run).

use apu_sim::{Device, MachineConfig};
use bench::{banner, row};
use kernels::section3_four;
use runtime::measure_solo;

fn main() {
    banner(
        "Figure 2",
        "standalone CPU vs GPU performance of four programs",
        "GPU 2.5x / 1.8x / 2.4x for streamcluster/cfd/hotspot; CPU 2.5x for dwt2d",
    );
    let cfg = MachineConfig::ivy_bridge();
    let wl = section3_four(&cfg);
    let s = cfg.freqs.max_setting();

    println!(
        "{}",
        row(
            "program",
            &[
                "cpu (s)".into(),
                "gpu (s)".into(),
                "winner".into(),
                "factor".into()
            ]
        )
    );
    for job in &wl.jobs {
        let t_cpu = measure_solo(&cfg, job, Device::Cpu, s);
        let t_gpu = measure_solo(&cfg, job, Device::Gpu, s);
        let (winner, factor) = if t_gpu < t_cpu {
            ("GPU", t_cpu / t_gpu)
        } else {
            ("CPU", t_gpu / t_cpu)
        };
        println!(
            "{}",
            row(
                &job.name,
                &[
                    format!("{t_cpu:.2}"),
                    format!("{t_gpu:.2}"),
                    winner.into(),
                    format!("{factor:.2}x"),
                ]
            )
        );
    }
}
