//! Section VI-D: scheduling overhead.
//!
//! The paper: "The scheduling algorithm takes almost no time to run (less
//! than 0.1% of the makespan) for its linear computational complexity."
//! This binary times the full scheduling path (HCS + HCS+ refinement +
//! lower bound) against the executed makespan for the 8- and 16-job
//! workloads.

use bench::{banner, fast_flag, fast_runtime, paper_runtime};
use corun_core::{hcs, lower_bound, refine, HcsConfig, RefineConfig};
use kernels::{rodinia16, rodinia8};
use std::time::Instant;

fn main() {
    banner(
        "Section VI-D",
        "scheduling overhead relative to the makespan",
        "less than 0.1% of the makespan",
    );
    let machine = apu_sim::MachineConfig::ivy_bridge();
    for (label, wl) in [
        ("8 jobs", rodinia8(&machine)),
        ("16 jobs", rodinia16(&machine, 2024)),
    ] {
        let rt = if fast_flag() {
            fast_runtime(wl, 15.0)
        } else {
            paper_runtime(wl, 15.0)
        };
        // corun-lint: allow(wall-clock) — measuring scheduler overhead is the point here.
        let t0 = Instant::now();
        let out = hcs(rt.model(), &HcsConfig::with_cap(15.0));
        let refined = refine(rt.model(), &out.schedule, &RefineConfig::new(15.0));
        let _ = lower_bound(rt.model(), 15.0);
        let sched_time = t0.elapsed().as_secs_f64();
        let makespan = rt.execute_planned(&refined.schedule).makespan_s;
        println!(
            "{label}: scheduling {:.3} ms vs makespan {makespan:.1}s -> {:.5}% of the makespan",
            sched_time * 1e3,
            sched_time / makespan * 100.0
        );
        assert!(
            sched_time / makespan < 0.001,
            "overhead exceeds the paper's 0.1% budget"
        );
    }
}
