//! Figure 8: error-rate distribution of the co-run power model.
//!
//! For each of the 64 ordered pairs, the frequencies are chosen to meet a
//! 16 W power cap with the best predicted performance; the predicted co-run
//! power (sum of standalone powers minus idle) is compared to the measured
//! co-run power.
//!
//! Paper: no error above 8%; 69% of pairs below 2%; average error 1.92%.

use apu_sim::{Device, MachineConfig};
use bench::{banner, fast_flag};
use crossbeam::thread;
use kernels::rodinia8;
use perf_model::{
    characterize, profile_batch, relative_error, CharacterizeConfig, ErrorHistogram, ProfileMethod,
    StagedPredictor,
};
use runtime::measure_pair_truth;

fn main() {
    banner(
        "Figure 8",
        "power-model error over 64 pairs at best 16 W-feasible settings",
        "max < 8%, 69% < 2%, average 1.92%",
    );
    let cap = 16.0;
    let cfg = MachineConfig::ivy_bridge();
    let wl = rodinia8(&cfg);
    let fast = fast_flag();

    let profiles = profile_batch(
        &cfg,
        &wl.jobs,
        if fast {
            ProfileMethod::Analytic
        } else {
            ProfileMethod::Measured
        },
    );
    let mut ccfg = CharacterizeConfig::paper(&cfg);
    if fast {
        ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 5;
    }
    let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));

    let best_setting = |ci: usize, gi: usize| -> Option<apu_sim::FreqSetting> {
        runtime::best_pair_setting(&cfg, &profiles, &predictor, ci, gi, cap)
    };

    let pairs: Vec<(usize, usize)> = (0..8).flat_map(|i| (0..8).map(move |j| (i, j))).collect();
    let jobs = &wl.jobs;
    let n_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let chunk = pairs.len().div_ceil(n_threads);
    let errors: Vec<Vec<f64>> = thread::scope(|s| {
        pairs
            .chunks(chunk)
            .map(|ch| {
                let profiles = &profiles;
                let predictor = &predictor;
                let cfg = &cfg;
                let best_setting = &best_setting;
                s.spawn(move |_| {
                    ch.iter()
                        .filter_map(|&(ci, gi)| {
                            let setting = best_setting(ci, gi)?;
                            let truth = measure_pair_truth(cfg, &jobs[ci], &jobs[gi], setting);
                            let pred = predictor.predict_power(
                                Some((&profiles[ci], setting.cpu)),
                                Some((&profiles[gi], setting.gpu)),
                            );
                            Some(relative_error(pred, truth.corun_power_w))
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");

    let mut hist = ErrorHistogram::power_buckets();
    for e in errors.into_iter().flatten() {
        hist.add(e);
    }
    println!();
    println!("{} pairs evaluated under the {cap} W cap", hist.len());
    for (bucket, frac) in hist.rows() {
        println!(
            "  {bucket:>6}: {:>5.1}%  {}",
            frac * 100.0,
            "#".repeat((frac * 50.0) as usize)
        );
    }
    println!(
        "  mean error {:.2}%  max {:.2}%  <2%: {:.0}% of pairs",
        hist.mean() * 100.0,
        hist.max() * 100.0,
        hist.frac_below(0.02) * 100.0
    );
    let _ = Device::Cpu;
}
