//! Characterization-resolution ablation (extension): how does the
//! degradation-grid resolution trade characterization cost against model
//! accuracy? The paper fixes 11 demand levels; this sweep measures, per
//! resolution: number of micro co-runs, leave-one-out smoothness of the
//! measured surface, and end-to-end prediction error over a sample of real
//! program pairs.

use apu_sim::{Device, MachineConfig};
use bench::{banner, fast_flag, row};
use kernels::rodinia8;
use perf_model::{
    characterize, leave_one_out, profile_batch, relative_error, CharacterizeConfig, ProfileMethod,
    StagedPredictor,
};
use runtime::measure_pair_truth;

fn main() {
    banner(
        "Grid resolution",
        "characterization cost vs model accuracy per demand-grid size",
        "extension; the paper fixes 11 levels (DESIGN.md section 3)",
    );
    let cfg = MachineConfig::ivy_bridge();
    let wl = rodinia8(&cfg);
    let fast = fast_flag();
    let profiles = profile_batch(
        &cfg,
        &wl.jobs,
        if fast {
            ProfileMethod::Analytic
        } else {
            ProfileMethod::Measured
        },
    );

    // A fixed sample of real pairs for end-to-end error.
    let pairs: &[(usize, usize)] = &[(0, 1), (1, 0), (3, 4), (5, 6), (7, 0), (2, 3)];
    let setting = cfg.freqs.max_setting();
    let truths: Vec<(f64, f64)> = pairs
        .iter()
        .map(|&(ci, gi)| {
            let t = measure_pair_truth(&cfg, &wl.jobs[ci], &wl.jobs[gi], setting);
            (t.cpu_time_s, t.gpu_time_s)
        })
        .collect();

    println!(
        "{}",
        row(
            "grid",
            &["co-runs".into(), "LOO err".into(), "pair err".into()],
        )
    );
    for points in [3usize, 5, 7, 11] {
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = points;
        ccfg.micro_duration_s = if fast { 1.5 } else { 3.0 };
        let stages = characterize(&cfg, &ccfg);
        let co_runs = stages.len() * points * points * 2;
        let loo = stages
            .iter()
            .map(|st| leave_one_out(&st.surface.deg.cpu).mean_abs_err)
            .sum::<f64>()
            / stages.len() as f64;
        let predictor = StagedPredictor::new(&cfg, stages);
        let mut err = 0.0;
        for (&(ci, gi), &(tc, tg)) in pairs.iter().zip(&truths) {
            let pred = predictor.predict_pair_times(
                &cfg,
                &profiles[ci],
                setting.cpu,
                &profiles[gi],
                setting.gpu,
            );
            err += relative_error(pred.cpu, tc) + relative_error(pred.gpu, tg);
        }
        err /= (pairs.len() * 2) as f64;
        println!(
            "{}",
            row(
                &format!("{points}x{points}"),
                &[
                    format!("{co_runs}"),
                    format!("{loo:.3}"),
                    format!("{:.1}%", err * 100.0),
                ],
            )
        );
    }
    println!();
    println!("the knee is where extra micro co-runs stop buying pair-error reduction");
    let _ = Device::Cpu;
}
