//! Figure 11: the 16-program-instance scalability study at a 15 W cap.
//!
//! Paper: HCS +35% and HCS+ +37% over Random (HCS+ about 15% away from the
//! lower bound); both Default variants fall *below* Random (Default_G −9%,
//! Default_C −21%) because the Linux-style Default launches the whole CPU
//! partition at once and the context switching + locality loss bite; HCS+
//! exceeds the default schedules by over 46%.

use bench::{banner, fast_flag, fast_runtime, paper_runtime, pct, row};
use kernels::rodinia16;
use runtime::speedup_study;

fn main() {
    banner(
        "Figure 11",
        "speedup over Random, 16 program instances, 15 W cap",
        "Default_G -9%, Default_C -21%, HCS +35%, HCS+ +37% (>46% over defaults)",
    );
    let cap = 15.0;
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let wl = rodinia16(&machine, 2024);
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };

    let seeds = if fast_flag() { 0..5u64 } else { 0..20u64 };
    let study = speedup_study(&rt, seeds);
    let (random_avg, default_c, default_g, hcs, hcs_plus, bound) = (
        study.random_avg_s,
        study.default_c_s,
        study.default_g_s,
        study.hcs_s,
        study.hcs_plus_s,
        study.bound_s,
    );

    println!("{}", row("method", &["makespan".into(), "speedup".into()]));
    let print = |name: &str, span: f64| {
        println!(
            "{}",
            row(name, &[format!("{span:.1}s"), pct(random_avg / span - 1.0)])
        );
    };
    print("Random (avg)", random_avg);
    print("Default_C", default_c);
    print("Default_G", default_g);
    print("HCS", hcs);
    print("HCS+", hcs_plus);
    print("LowerBound", bound);

    println!();
    println!(
        "HCS+ over Default_G: {}   HCS+ over Default_C: {}   gap to bound: {}",
        pct(default_g / hcs_plus - 1.0),
        pct(default_c / hcs_plus - 1.0),
        pct(hcs_plus / bound - 1.0)
    );
}
