//! Online-arrival study (extension): jobs arrive over time instead of as a
//! batch (the deployment scenario the paper's introduction motivates).
//!
//! Sixteen jobs arrive with exponential-ish inter-arrival gaps; the online
//! HCS policy (preference + least-interference + cap-feasible levels +
//! steal guard, decided at arrivals/completions) is compared against two
//! naive online baselines on ground truth:
//!
//! * FIFO onto the GPU only,
//! * random device choice at dispatch time (governed).

use apu_sim::NullGovernor;
use bench::{banner, fast_flag, fast_runtime, paper_runtime, pct, row};
use corun_core::{Arrival, Assignment, HcsConfig, OnlinePolicy, Schedule};
use kernels::rodinia16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "Online arrivals",
        "16 jobs arriving over time; online HCS vs naive online baselines",
        "extension (no paper counterpart); DESIGN.md section 7.7",
    );
    let cap = 15.0;
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let wl = rodinia16(&machine, 2024);
    let n = wl.jobs.len();
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };

    // Arrival trace: mean gap 12 s (the machine is kept busy but not
    // saturated from t=0).
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = 0.0;
    let arrivals: Vec<Arrival> = (0..n)
        .map(|job| {
            let gap: f64 = -12.0 * (1.0 - rng.gen::<f64>()).ln();
            t += gap.min(40.0);
            Arrival { job, at_s: t }
        })
        .collect();
    println!(
        "arrivals span 0..{:.0}s (mean gap {:.1}s)",
        arrivals.last().unwrap().at_s,
        arrivals.last().unwrap().at_s / n as f64
    );

    // Online HCS.
    let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(cap));
    let mut gov = NullGovernor;
    let online = runtime::execute_online(
        rt.machine(),
        rt.jobs(),
        rt.model(),
        &policy,
        &arrivals,
        &mut gov,
        rt.machine().freqs.min_setting(),
    )
    .expect("online run");

    // FIFO-on-GPU baseline (arrival order; starts as soon as the GPU frees;
    // approximated by the sequential schedule — the GPU is the bottleneck
    // so arrival gaps are absorbed).
    let kg = rt.machine().freqs.gpu.max_level();
    let mut fifo = Schedule::new();
    for a in &arrivals {
        fifo.gpu.push(Assignment {
            job: a.job,
            level: kg,
        });
    }
    let fifo_run = rt.execute_governed(&fifo, apu_sim::Bias::Gpu);

    // Random placement baseline (batch random schedule, governed).
    let random = rt.random_avg_makespan(0..if fast_flag() { 3 } else { 10 });

    println!();
    println!(
        "{}",
        row("method", &["makespan".into(), "vs online".into()])
    );
    for (label, span) in [
        ("online HCS", online.makespan_s),
        ("GPU FIFO", fifo_run.makespan_s),
        ("random (no arrivals)", random),
    ] {
        println!(
            "{}",
            row(
                label,
                &[format!("{span:.1}s"), pct(span / online.makespan_s - 1.0)]
            )
        );
    }
    // Flow-time view (online metric the batch formulation has no word for).
    let mean_flow: f64 = online
        .records
        .iter()
        .map(|r| r.end_s - arrivals.iter().find(|a| a.job == r.tag).unwrap().at_s)
        .sum::<f64>()
        / online.records.len() as f64;
    println!();
    println!("online HCS mean flow time: {mean_flow:.1}s");
}
