//! Batch-size scaling study (extension of the paper's 8-vs-16 comparison):
//! speedups over Random as the batch grows from 4 to 24 jobs drawn from the
//! calibrated suite with varied inputs.

use bench::{banner, fast_flag, pct, row};
use kernels::random_batch;
use runtime::{speedup_study, CoScheduleRuntime, RuntimeConfig};

fn main() {
    banner(
        "Scaling study",
        "speedup over Random vs batch size, 15 W cap",
        "extends the paper's 8/16-instance studies (Figs 10 and 11)",
    );
    let fast = fast_flag();
    println!(
        "{}",
        row(
            "batch",
            &[
                "random".into(),
                "default_g".into(),
                "hcs+".into(),
                "speedup".into()
            ],
        )
    );
    for n in [4usize, 8, 12, 16, 24] {
        let machine = apu_sim::MachineConfig::ivy_bridge();
        let wl = random_batch(&machine, n, 1000 + n as u64);
        let mut cfg = if fast {
            RuntimeConfig::fast(&machine)
        } else {
            RuntimeConfig::paper(&machine)
        };
        cfg.cap_w = 15.0;
        let rt = CoScheduleRuntime::new(machine, wl.jobs, cfg);
        let study = speedup_study(&rt, 0..if fast { 3 } else { 10 });
        println!(
            "{}",
            row(
                &format!("{n} jobs"),
                &[
                    format!("{:.0}s", study.random_avg_s),
                    format!("{:.0}s", study.default_g_s),
                    format!("{:.0}s", study.hcs_plus_s),
                    pct(study.speedup_over_random(study.hcs_plus_s)),
                ],
            )
        );
    }
    println!();
    println!("the co-scheduling advantage persists (and typically grows) with batch size");
}
