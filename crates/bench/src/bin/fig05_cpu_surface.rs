//! Figure 5: spectrum of CPU program degradation due to memory contention —
//! the micro-benchmark co-run degradation surface over (CPU demand, GPU
//! demand) at the highest frequencies.
//!
//! Paper shape: CPU degradations are <= 20% in about half the cases, rise
//! steeply when both demands exceed ~8.5 GB/s, and peak around 65%.

use apu_sim::{Device, MachineConfig};
use bench::{banner, fast_flag};
use perf_model::{characterize_stage, CharacterizeConfig};

fn main() {
    banner(
        "Figure 5",
        "CPU co-run degradation surface from the micro-benchmark",
        "max ~65%, <=20% in about half the grid, steep beyond 8.5 GB/s",
    );
    let cfg = MachineConfig::ivy_bridge();
    let mut ccfg = CharacterizeConfig::paper(&cfg);
    if fast_flag() {
        ccfg.grid_points = 6;
        ccfg.micro_duration_s = 2.0;
    }
    let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
    let grid = &stage.surface.deg.cpu;

    println!("degradation of the CPU micro-kernel (%), rows = CPU demand, cols = GPU demand");
    print!("{:>8}", "GB/s");
    for g in &grid.gpu_axis {
        print!("{g:>7.1}");
    }
    println!();
    for (i, c) in grid.cpu_axis.iter().enumerate() {
        print!("{c:>8.1}");
        for j in 0..grid.gpu_axis.len() {
            print!("{:>7.1}", grid.at(i, j) * 100.0);
        }
        println!();
    }
    println!();
    println!(
        "max degradation: {:.1}%  (paper ~65%)",
        grid.max_value() * 100.0
    );
    println!(
        "fraction of grid <= 20%: {:.0}%  (paper: about half)",
        grid.frac_in(0.0, 0.20) * 100.0
    );
    let _ = Device::Cpu;
}
