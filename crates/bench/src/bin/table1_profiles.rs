//! Table I: standalone execution times (profiled offline) and the minimal
//! predicted co-run time against the least-degrading co-runner, plus the
//! processor-preference classification.
//!
//! Paper: six programs prefer the GPU, dwt2d prefers the CPU, lud is
//! non-preferred.

use apu_sim::{Device, MachineConfig};
use bench::{banner, fast_flag, fast_runtime, paper_runtime, row};
use corun_core::{categorize, feasible_pair_settings, CoRunModel, HcsConfig, Preference};
use kernels::rodinia8;

fn main() {
    banner(
        "Table I",
        "standalone + min predicted co-run times, preference per program",
        "6x GPU-preferred, dwt2d CPU-preferred, lud non-preferred",
    );
    let cap = 16.0;
    let machine = MachineConfig::ivy_bridge();
    let wl = rodinia8(&machine);
    let names: Vec<String> = wl.jobs.iter().map(|j| j.name.clone()).collect();
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };
    let m = rt.model();
    let kc = m.levels(Device::Cpu) - 1;
    let kg = m.levels(Device::Gpu) - 1;
    let hcfg = HcsConfig::with_cap(cap);

    // Minimal co-run time of job i on device p: over partners and
    // cap-feasible frequency pairs (the paper's "co-runner that introduces
    // the smallest performance degradation predicted by the model").
    let min_corun = |i: usize, device: Device| -> f64 {
        let mut best = f64::INFINITY;
        for j in 0..m.len() {
            if i == j {
                continue;
            }
            let (cj, gj) = match device {
                Device::Cpu => (i, j),
                Device::Gpu => (j, i),
            };
            for (f, g) in feasible_pair_settings(m, cj, gj, cap) {
                let own = match device {
                    Device::Cpu => f,
                    Device::Gpu => g,
                };
                let co = match device {
                    Device::Cpu => g,
                    Device::Gpu => f,
                };
                let t = m.corun_time(i, device, own, j, co);
                best = best.min(t);
            }
        }
        best
    };

    println!(
        "{}",
        row(
            "job",
            &[
                "min co(CPU)".into(),
                "min co(GPU)".into(),
                "solo CPU".into(),
                "solo GPU".into(),
                "preferred".into(),
            ],
        )
    );
    for (i, name) in names.iter().enumerate() {
        let pref = match categorize(m, &hcfg, i) {
            Preference::Cpu => "CPU",
            Preference::Gpu => "GPU",
            Preference::Non => "Non",
        };
        println!(
            "{}",
            row(
                name,
                &[
                    format!("{:.2}", min_corun(i, Device::Cpu)),
                    format!("{:.2}", min_corun(i, Device::Gpu)),
                    format!("{:.2}", m.standalone(i, Device::Cpu, kc)),
                    format!("{:.2}", m.standalone(i, Device::Gpu, kg)),
                    pref.into(),
                ],
            )
        );
    }
}
