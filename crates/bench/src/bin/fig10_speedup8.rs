//! Figure 10: speedup over Random for the 8-program-instance study at a
//! 15 W power cap.
//!
//! Paper results: Default_C +9%, Default_G +32%, HCS ~ +38% (6% over
//! Default_G), HCS+ ~ +41%, with the lower bound above HCS+.

use bench::{banner, fast_flag, fast_runtime, paper_runtime, pct, row};
use kernels::rodinia8;
use runtime::speedup_study;

fn main() {
    banner(
        "Figure 10",
        "speedup over Random, 8 program instances, 15 W cap",
        "Default_C +9%, Default_G +32%, HCS ~+38%, HCS+ ~+41%, bound above",
    );
    let cap = 15.0;
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let wl = rodinia8(&machine);
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };

    let seeds = if fast_flag() { 0..5u64 } else { 0..20u64 };
    let study = speedup_study(&rt, seeds);
    let (random_avg, default_c, default_g, hcs, hcs_plus, bound) = (
        study.random_avg_s,
        study.default_c_s,
        study.default_g_s,
        study.hcs_s,
        study.hcs_plus_s,
        study.bound_s,
    );

    println!("{}", row("method", &["makespan".into(), "speedup".into()]));
    let print = |name: &str, span: f64| {
        println!(
            "{}",
            row(name, &[format!("{span:.1}s"), pct(random_avg / span - 1.0)])
        );
    };
    print("Random (avg)", random_avg);
    print("Default_C", default_c);
    print("Default_G", default_g);
    print("HCS", hcs);
    print("HCS+", hcs_plus);
    print("LowerBound", bound);

    println!();
    println!(
        "HCS over Default_G: {}   HCS+ over HCS: {}",
        pct(default_g / hcs - 1.0),
        pct(hcs / hcs_plus - 1.0)
    );
}
