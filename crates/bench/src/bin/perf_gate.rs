//! CI perf gate for simulator throughput.
//!
//! Re-measures the headline figure (`sim_seconds_per_wall_sec`) with the
//! same code path the criterion bench uses, compares it against the
//! committed `BENCH_sim.json` baseline, and exits non-zero if throughput
//! regressed more than 30%. With `--update` it also rewrites the
//! trajectory file so the committed baseline tracks the current engine.
//!
//! Usage: `perf_gate [--update] [--reps N]`

use std::path::PathBuf;
use std::process::ExitCode;

/// Throughput below `1 - TOLERANCE` of the baseline fails the gate.
const TOLERANCE: f64 = 0.30;

fn baseline_path() -> PathBuf {
    match std::env::var_os("CORUN_BENCH_DIR") {
        Some(dir) => PathBuf::from(dir).join("BENCH_sim.json"),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
            .join("BENCH_sim.json"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let update = args.iter().any(|a| a == "--update");
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    // Warm-up rep so one-time setup (kernel tables, allocator) does not
    // count against the measured run.
    let _ = bench::simbench::measure(1);
    let m = bench::simbench::measure(reps);
    println!(
        "measured: {:.1} sim-s/s ({:.1} steps/s) over {reps} reps",
        m.sim_seconds_per_wall_sec, m.steps_per_sec
    );

    let path = baseline_path();
    let baseline = bench::simbench::read_sample(&path, bench::simbench::HEADLINE);
    let verdict = match baseline {
        Some(base) => {
            let floor = base * (1.0 - TOLERANCE);
            println!(
                "baseline: {base:.1} sim-s/s ({}); gate floor: {floor:.1}",
                path.display()
            );
            if m.sim_seconds_per_wall_sec < floor {
                eprintln!(
                    "PERF GATE FAIL: {:.1} sim-s/s is {:.1}% below the committed baseline",
                    m.sim_seconds_per_wall_sec,
                    (1.0 - m.sim_seconds_per_wall_sec / base) * 100.0
                );
                ExitCode::FAILURE
            } else {
                println!(
                    "perf gate ok ({:+.1}%)",
                    (m.sim_seconds_per_wall_sec / base - 1.0) * 100.0
                );
                ExitCode::SUCCESS
            }
        }
        None => {
            println!(
                "no committed baseline at {}; gate passes vacuously",
                path.display()
            );
            ExitCode::SUCCESS
        }
    };

    if update {
        let samples = [
            bench::trajectory::Sample::new("sim_steps_per_sec", m.steps_per_sec, "steps/s"),
            bench::trajectory::Sample::new(
                bench::simbench::HEADLINE,
                m.sim_seconds_per_wall_sec,
                "sim-s/s",
            ),
        ];
        match bench::trajectory::write("sim", &samples) {
            Ok(p) => println!("trajectory updated: {}", p.display()),
            Err(e) => eprintln!("trajectory write failed: {e}"),
        }
    }
    verdict
}
