//! Figure 6: spectrum of GPU program degradation due to memory contention.
//!
//! Paper shape: the GPU suffers broadly (most degradations in the 20-40%
//! range) but its worst case (~45%) stays below the CPU's (~65%).

use apu_sim::MachineConfig;
use bench::{banner, fast_flag};
use perf_model::{characterize_stage, CharacterizeConfig};

fn main() {
    banner(
        "Figure 6",
        "GPU co-run degradation surface from the micro-benchmark",
        "broad 20-40% degradations, max ~45% (below the CPU's 65%)",
    );
    let cfg = MachineConfig::ivy_bridge();
    let mut ccfg = CharacterizeConfig::paper(&cfg);
    if fast_flag() {
        ccfg.grid_points = 6;
        ccfg.micro_duration_s = 2.0;
    }
    let stage = characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting());
    let gpu = &stage.surface.deg.gpu;
    let cpu = &stage.surface.deg.cpu;

    println!("degradation of the GPU micro-kernel (%), rows = GPU demand, cols = CPU demand");
    print!("{:>8}", "GB/s");
    for c in &gpu.cpu_axis {
        print!("{c:>7.1}");
    }
    println!();
    // The paper swaps the horizontal axes between Figures 5 and 6; print
    // rows = GPU demand for the same orientation.
    for (j, g) in gpu.gpu_axis.iter().enumerate() {
        print!("{g:>8.1}");
        for i in 0..gpu.cpu_axis.len() {
            print!("{:>7.1}", gpu.at(i, j) * 100.0);
        }
        println!();
    }
    println!();
    println!(
        "max GPU degradation: {:.1}% (paper ~45%); max CPU degradation: {:.1}% (paper ~65%)",
        gpu.max_value() * 100.0,
        cpu.max_value() * 100.0
    );
    println!(
        "fraction of GPU grid in 20-40%: {:.0}%  (paper: most of the high-demand region)",
        gpu.frac_in(0.20, 0.40) * 100.0
    );
    assert!(gpu.max_value() < cpu.max_value(), "orientation check");
}
