//! Section III example: the four-program motivation study.
//!
//! Paper observations reproduced here:
//! * dwt2d (CPU) + streamcluster (GPU): 81% / 5% slowdowns;
//! * dwt2d (CPU) + hotspot (GPU): ~17% / ~5% slowdowns;
//! * under a 15 W cap, the best co-schedule of the four programs is ~2.3x
//!   faster than the worst.

use apu_sim::{Device, MachineConfig, NullGovernor};
use bench::{banner, fast_flag, fast_runtime, paper_runtime, pct};
use corun_core::{evaluate, exhaustive_uniform_opts, CoRunModel};
use kernels::{by_name, section3_four};

fn main() {
    banner(
        "Section III",
        "pairing sensitivity and best-vs-worst co-schedule under 15 W",
        "81%/5% vs 17%/5% pair slowdowns; optimal 2.3x over worst",
    );
    let cfg = MachineConfig::ivy_bridge();
    let s = cfg.freqs.max_setting();

    // Pair slowdowns (ground truth co-runs at max frequency).
    let sc = by_name(&cfg, "streamcluster").unwrap();
    let dwt = by_name(&cfg, "dwt2d").unwrap();
    let hot = by_name(&cfg, "hotspot").unwrap();
    let dwt_solo = apu_sim::run_solo(&cfg, &dwt, Device::Cpu, s)
        .unwrap()
        .time_s;
    let sc_solo = apu_sim::run_solo(&cfg, &sc, Device::Gpu, s).unwrap().time_s;
    let hot_solo = apu_sim::run_solo(&cfg, &hot, Device::Gpu, s)
        .unwrap()
        .time_s;
    let mut gov = NullGovernor;
    let p1 = apu_sim::run_pair(&cfg, &dwt, &sc, s, &mut gov).unwrap();
    let p2 = apu_sim::run_pair(&cfg, &dwt, &hot, s, &mut gov).unwrap();
    println!(
        "dwt2d(CPU) + streamcluster(GPU): dwt2d {} slower, streamcluster {} slower",
        pct(p1.cpu_time_s / dwt_solo - 1.0),
        pct(p1.gpu_time_s / sc_solo - 1.0)
    );
    println!(
        "dwt2d(CPU) + hotspot(GPU):       dwt2d {} slower, hotspot {} slower",
        pct(p2.cpu_time_s / dwt_solo - 1.0),
        pct(p2.gpu_time_s / hot_solo - 1.0)
    );

    // Best vs worst co-schedule under the cap (exhaustive enumeration of
    // partitions, orders and uniform frequency settings).
    let cap = 15.0;
    let wl = section3_four(&cfg);
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };
    let ex = exhaustive_uniform_opts(rt.model(), cap, true);
    println!();
    println!(
        "exhaustive search over {} schedules ({} cap-feasible):",
        ex.evaluated, ex.feasible
    );
    println!("  best  co-schedule: {:.1}s  ({})", ex.best.1, ex.best.0);
    println!("  worst co-schedule: {:.1}s  ({})", ex.worst.1, ex.worst.0);
    println!(
        "  worst/best ratio:  {:.2}x   (paper: ~2.3x)",
        ex.worst.1 / ex.best.1
    );

    // Sanity: the heuristic lands near the exhaustive best.
    let hcs = rt.schedule_hcs_plus();
    let hcs_span = evaluate(rt.model(), &hcs, Some(cap)).makespan_s;
    println!(
        "  HCS+ predicted makespan: {:.1}s ({} from exhaustive best; may be \
         better thanks to per-job levels)",
        hcs_span,
        pct(hcs_span / ex.best.1 - 1.0)
    );
    let _ = rt.model().len();
}
