//! Contention-model robustness ablation (extension): do the paper's
//! conclusions survive swapping the calibrated two-stage contention law for
//! a textbook fair-share controller?
//!
//! Everything else (workloads, power, schedulers, characterization) is held
//! fixed; only `MemoryParams::kind` changes, for both ground truth and the
//! model (the runtime re-characterizes the altered machine, as it would on
//! real hardware).

use apu_sim::{ContentionKind, MachineConfig};
use bench::{banner, fast_flag, pct, row};
use kernels::rodinia8;
use perf_model::{characterize_stage, CharacterizeConfig};
use runtime::{speedup_study, CoScheduleRuntime, RuntimeConfig};

fn main() {
    banner(
        "Contention model",
        "two-stage (calibrated) vs fair-share arbitration, 8 jobs, 15 W",
        "extension; DESIGN.md section 7.6 motivates the two-stage law",
    );
    let fast = fast_flag();
    for kind in [ContentionKind::TwoStage, ContentionKind::FairShare] {
        let mut machine = MachineConfig::ivy_bridge();
        machine.memory.kind = kind;

        // Surface shape under this law.
        let mut ccfg = CharacterizeConfig::fast(&machine);
        ccfg.grid_points = 6;
        let stage = characterize_stage(&machine, &ccfg, machine.freqs.max_setting());
        let cpu_max = stage.surface.deg.cpu.max_value();
        let gpu_max = stage.surface.deg.gpu.max_value();

        let wl = rodinia8(&machine);
        let mut cfg = if fast {
            RuntimeConfig::fast(&machine)
        } else {
            RuntimeConfig::paper(&machine)
        };
        cfg.cap_w = 15.0;
        let rt = CoScheduleRuntime::new(machine, wl.jobs, cfg);
        let study = speedup_study(&rt, 0..if fast { 3 } else { 10 });

        println!();
        println!(
            "{kind:?}: surface maxima cpu {:.0}% / gpu {:.0}%",
            cpu_max * 100.0,
            gpu_max * 100.0
        );
        println!("{}", row("method", &["makespan".into(), "speedup".into()]));
        for (name, span) in [
            ("Random (avg)", study.random_avg_s),
            ("Default_G", study.default_g_s),
            ("HCS+", study.hcs_plus_s),
        ] {
            println!(
                "{}",
                row(
                    name,
                    &[format!("{span:.1}s"), pct(study.speedup_over_random(span))]
                )
            );
        }
    }
    println!();
    println!(
        "if HCS+ leads under both laws, the method's benefit does not hinge on \
         the calibrated asymmetries"
    );
}
