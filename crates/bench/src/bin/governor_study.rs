//! Governor comparison (extension): the paper's GPU-/CPU-biased reactive
//! policies versus a utilization-driven ondemand governor, each executing
//! the same Default-partition workload under a 15 W cap.

use apu_sim::{Bias, MachineConfig, OndemandGovernor};
use bench::{banner, fast_flag, fast_runtime, paper_runtime, row};
use kernels::rodinia8;
use runtime::{execute_default, LevelPolicy};

fn main() {
    banner(
        "Governor study",
        "GPU-biased vs CPU-biased vs ondemand on the Default baseline, 15 W",
        "extension; paper evaluates only the two biased policies",
    );
    let cap = 15.0;
    let machine = MachineConfig::ivy_bridge();
    let wl = rodinia8(&machine);
    let rt = if fast_flag() {
        fast_runtime(wl, cap)
    } else {
        paper_runtime(wl, cap)
    };
    let part = rt.schedule_default();

    println!(
        "{}",
        row(
            "governor",
            &[
                "makespan".into(),
                "energy".into(),
                "peak W".into(),
                ">cap %".into()
            ],
        )
    );
    let show = |name: &str, report: apu_sim::RunReport| {
        println!(
            "{}",
            row(
                name,
                &[
                    format!("{:.1}s", report.makespan_s),
                    format!("{:.0}J", report.trace.energy_j()),
                    format!("{:.1}", report.trace.max_w()),
                    format!("{:.1}%", report.trace.frac_above(cap) * 100.0),
                ],
            )
        );
    };
    show("gpu-biased", rt.execute_default(&part, Bias::Gpu));
    show("cpu-biased", rt.execute_default(&part, Bias::Cpu));
    let mut ondemand = OndemandGovernor::new(cap);
    let r = execute_default(rt.machine(), rt.jobs(), &part, &mut ondemand).expect("ondemand run");
    show("ondemand", r);

    // Same comparison for a random schedule (one seed).
    println!();
    println!("random schedule (seed 0):");
    let sched = rt.schedule_random(0);
    show("gpu-biased", rt.execute_governed(&sched, Bias::Gpu));
    let mut ondemand2 = OndemandGovernor::new(cap);
    let r2 = runtime::execute_schedule(
        rt.machine(),
        rt.jobs(),
        &sched,
        &mut ondemand2,
        LevelPolicy::GovernorOwned,
        rt.machine().freqs.max_setting(),
    )
    .expect("ondemand random");
    show("ondemand", r2);
}
