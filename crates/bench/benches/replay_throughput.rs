//! Replay-path throughput: how fast `corun replay` re-executes a
//! journal, and what a snapshot checkpoint costs to decode.
//!
//! Replay is the post-mortem tool for production journals, so the
//! figure that matters is events/sec through the pure state machine —
//! it bounds how long "re-execute yesterday's run" takes. Snapshot
//! decode time bounds the other lever: `--until` a nearby checkpoint
//! instead of replaying from the start.

use bench::trajectory::{self, Sample};
use corun_core::RetryPolicy;
use corun_replay::{replay_records, ReplayOptions};
use corun_serve::{decode_state, encode_state, Record, ServiceState, JOURNAL_FORMAT_VERSION};
use criterion::{criterion_group, criterion_main, Criterion};

/// Build a realistic synthetic transcript: `jobs` jobs across 4
/// machines, every 7th job failing once before completing (requeue +
/// re-dispatch), with a snapshot checkpoint every 64 records — the mix
/// a chaos-faulted production journal carries.
fn synthetic_journal(jobs: usize) -> Vec<Record> {
    let retry = RetryPolicy {
        max_retries: 2,
        backoff_base_s: 0.01,
        backoff_max_s: 0.02,
    };
    let machines = 4;
    let mut st = ServiceState::new(machines);
    let mut recs = vec![Record::Meta {
        version: JOURNAL_FORMAT_VERSION,
        machines,
    }];
    let mut snapshot_due = 64;
    for j in 0..jobs {
        let (id, rec) = st.accept(&format!("srad#{j}"), "srad", 0.1).unwrap();
        recs.push(rec);
        let m = j % machines;
        let device = if j % 2 == 0 {
            apu_sim::Device::Gpu
        } else {
            apu_sim::Device::Cpu
        };
        let t = j as f64;
        recs.push(st.dispatch(id, m, device, t, 1.0).unwrap());
        if j % 7 == 0 {
            let fail = st.fail(id, &retry, "injected job failure").unwrap();
            recs.push(fail.record);
            recs.push(st.dispatch(id, m, device, t + 0.5, 1.0).unwrap());
        }
        recs.push(st.complete(id, t + 1.0).unwrap());
        if recs.len() >= snapshot_due {
            recs.push(Record::Snapshot {
                seq: recs.len() as u64,
                fingerprint: st.fingerprint(),
                state: encode_state(&st),
            });
            snapshot_due = recs.len() + 64;
        }
    }
    recs
}

/// Re-execute a ~35k-record transcript through the pure state machine.
fn bench_replay(c: &mut Criterion) {
    let recs = synthetic_journal(8192);
    c.bench_function("replay_full_journal", |b| {
        b.iter(|| {
            let outcome = replay_records(&recs, &ReplayOptions::default());
            assert!(outcome.is_clean());
            outcome.records_applied
        });
    });
}

/// Decode one snapshot checkpoint back into a `ServiceState` — the cost
/// of starting replay from a checkpoint instead of record zero.
fn bench_snapshot_decode(c: &mut Criterion) {
    let recs = synthetic_journal(2048);
    let encoded = recs
        .iter()
        .rev()
        .find_map(|r| match r {
            Record::Snapshot { state, .. } => Some(state.clone()),
            _ => None,
        })
        .expect("synthetic journal has snapshots");
    c.bench_function("replay_snapshot_decode", |b| {
        b.iter(|| decode_state(&encoded).expect("snapshot decodes"));
    });
}

/// Record the headline figures to `BENCH_replay.json`: sustained
/// events/sec re-executed, and snapshot decodes/sec.
fn bench_trajectory(c: &mut Criterion) {
    let _ = c;
    let recs = synthetic_journal(8192);
    let reps = 8;
    let t0 = std::time::Instant::now();
    let mut applied = 0usize;
    for _ in 0..reps {
        let outcome = replay_records(&recs, &ReplayOptions::default());
        assert!(outcome.is_clean());
        applied += outcome.records_applied;
    }
    let replay_s = t0.elapsed().as_secs_f64();

    let encoded = encode_state(&replay_records(&recs, &ReplayOptions::default()).state);
    let decodes = 200;
    let t0 = std::time::Instant::now();
    for _ in 0..decodes {
        decode_state(&encoded).expect("snapshot decodes");
    }
    let decode_s = t0.elapsed().as_secs_f64();

    let path = trajectory::write(
        "replay",
        &[
            Sample::new(
                "replay_events_per_sec",
                applied as f64 / replay_s,
                "events/s",
            ),
            Sample::new(
                "snapshot_decodes_per_sec",
                f64::from(decodes) / decode_s,
                "decodes/s",
            ),
            Sample::new("journal_records", recs.len() as f64, "records"),
        ],
    )
    .expect("write trajectory");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_replay,
    bench_snapshot_decode,
    bench_trajectory
);
criterion_main!(benches);
