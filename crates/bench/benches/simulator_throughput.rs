//! Raw engine throughput: how fast the discrete-time APU simulator runs
//! solo and co-run workloads (simulated seconds per wall second governs how
//! expensive profiling, characterization, and ground-truth evaluation are).

use apu_sim::{run_pair, run_solo, Device, MachineConfig, NullGovernor};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_solo(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let job = kernels::with_input_scale(&kernels::by_name(&cfg, "lud").unwrap(), 0.2);
    c.bench_function("engine_solo_5s_job", |b| {
        b.iter(|| run_solo(&cfg, &job, Device::Gpu, cfg.freqs.max_setting()).unwrap());
    });
}

fn bench_pair(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let a = kernels::with_input_scale(&kernels::by_name(&cfg, "cfd").unwrap(), 0.2);
    let b_job = kernels::with_input_scale(&kernels::by_name(&cfg, "srad").unwrap(), 0.2);
    c.bench_function("engine_pair_5s_jobs", |b| {
        b.iter(|| {
            let mut gov = NullGovernor;
            run_pair(&cfg, &a, &b_job, cfg.freqs.max_setting(), &mut gov).unwrap()
        });
    });
}

fn bench_governed_pair(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let a = kernels::with_input_scale(&kernels::by_name(&cfg, "heartwall").unwrap(), 0.2);
    let b_job = kernels::with_input_scale(&kernels::by_name(&cfg, "hotspot").unwrap(), 0.2);
    c.bench_function("engine_pair_governed", |b| {
        b.iter(|| {
            let mut gov = apu_sim::BiasedGovernor::gpu_biased(15.0);
            run_pair(&cfg, &a, &b_job, cfg.freqs.max_setting(), &mut gov).unwrap()
        });
    });
}

/// Record the engine's headline figures to `BENCH_sim.json`: discrete
/// steps per wall second (one power sample per step) and how many
/// simulated seconds one wall second buys.
fn bench_trajectory(c: &mut Criterion) {
    let _ = c;
    // Shared with the CI perf gate (`perf_gate`) so the bench and the
    // gate measure the same thing.
    let m = bench::simbench::measure(20);
    let samples = [
        bench::trajectory::Sample::new("sim_steps_per_sec", m.steps_per_sec, "steps/s"),
        bench::trajectory::Sample::new(
            bench::simbench::HEADLINE,
            m.sim_seconds_per_wall_sec,
            "sim-s/s",
        ),
    ];
    match bench::trajectory::write("sim", &samples) {
        Ok(path) => println!("trajectory written to {}", path.display()),
        Err(e) => eprintln!("trajectory write failed: {e}"),
    }
}

criterion_group!(
    benches,
    bench_solo,
    bench_pair,
    bench_governed_pair,
    bench_trajectory
);
criterion_main!(benches);
