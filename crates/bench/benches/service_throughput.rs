//! Service-layer throughput: what the daemon core costs per request,
//! measured in-process (no sockets, so the numbers isolate admission,
//! dispatch, and the protocol layer from network noise).
//!
//! Three costs matter operationally: admission (lint + profile + queue),
//! the submit→complete round trip (how long a client waits on a small
//! job), and the read-only paths (metrics/status) that monitoring hits
//! at high rate.

use corun_serve::{handle_request, Json, Service, ServiceConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn service(queue_capacity: usize) -> Service {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = queue_capacity;
    Service::start(cfg)
}

/// Admission alone: lint, profile into the incremental model, enqueue.
/// Each iteration admits one job; the workers drain them concurrently, so
/// a generous queue bound keeps backpressure out of the measurement.
fn bench_submit(c: &mut Criterion) {
    let svc = service(100_000);
    c.bench_function("service_submit_one_job", |b| {
        b.iter(|| svc.submit_spec("lud x0.05").expect("admitted"));
    });
    svc.shutdown();
}

/// Full round trip: submit a small job and block until the simulated
/// machine completes it. Dominated by dispatch latency + simulation.
fn bench_submit_wait(c: &mut Criterion) {
    let svc = service(64);
    c.bench_function("service_submit_wait_roundtrip", |b| {
        b.iter(|| {
            let ids = svc.submit_spec("srad x0.05").expect("admitted");
            svc.wait_job(ids[0]).expect("known id")
        });
    });
    svc.shutdown();
}

/// The monitoring path: a metrics snapshot through the whole protocol
/// stack (request parse → snapshot under the lock → JSON render).
fn bench_metrics(c: &mut Criterion) {
    let svc = service(64);
    // A little history so the snapshot is not trivially empty.
    let ids = svc.submit_spec("hotspot x0.05 *4").expect("admitted");
    for id in ids {
        svc.wait_job(id);
    }
    c.bench_function("service_metrics_snapshot", |b| {
        b.iter(|| {
            let line = handle_request(&svc, r#"{"op":"metrics"}"#);
            Json::parse(&line).expect("valid response")
        });
    });
    svc.shutdown();
}

/// Record the headline figures to `BENCH_service.json` (the perf
/// trajectory the repo's git history tracks): sustained jobs/sec through
/// the full submit→complete path, and raw admissions/sec.
fn bench_trajectory(c: &mut Criterion) {
    let _ = c;
    let svc = service(100_000);
    const JOBS: usize = 48;
    let t0 = std::time::Instant::now();
    let mut ids = Vec::new();
    for _ in 0..JOBS {
        ids.extend(svc.submit_spec("srad x0.05").expect("admitted"));
    }
    let submit_s = t0.elapsed().as_secs_f64();
    for &id in &ids {
        svc.wait_job(id).expect("known id");
    }
    let total_s = t0.elapsed().as_secs_f64();
    svc.shutdown();
    let samples = [
        bench::trajectory::Sample::new("service_jobs_per_sec", JOBS as f64 / total_s, "jobs/s"),
        bench::trajectory::Sample::new("service_submits_per_sec", JOBS as f64 / submit_s, "ops/s"),
    ];
    match bench::trajectory::write("service", &samples) {
        Ok(path) => println!("trajectory written to {}", path.display()),
        Err(e) => eprintln!("trajectory write failed: {e}"),
    }
}

criterion_group!(
    benches,
    bench_submit,
    bench_submit_wait,
    bench_metrics,
    bench_trajectory
);
criterion_main!(benches);
