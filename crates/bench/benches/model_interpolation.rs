//! Throughput of the staged-interpolation predictor — the operation the
//! runtime performs O(N^2 K^2) times when materializing the scheduler's
//! table, and the reason co-scheduling can run online at all.

use apu_sim::{Device, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use perf_model::{characterize, CharacterizeConfig, StagedPredictor};

fn bench_degradation_at(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let mut ccfg = CharacterizeConfig::fast(&cfg);
    ccfg.grid_points = 6;
    let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));
    c.bench_function("degradation_at", |b| {
        let mut x = 0.0_f64;
        b.iter(|| {
            x = (x + 0.37) % 11.0;
            predictor.degradation_at(Device::Cpu, x, 11.0 - x, 2.8, 0.9)
        });
    });
}

fn bench_surface_build(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    c.bench_function("characterize_one_stage_3pt", |b| {
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.0;
        b.iter(|| perf_model::characterize_stage(&cfg, &ccfg, cfg.freqs.max_setting()));
    });
}

criterion_group!(benches, bench_degradation_at, bench_surface_build);
criterion_main!(benches);
