//! Fleet vs single-daemon throughput at equal machine count: the same
//! workload drained by (a) one service owning all the machines and (b) a
//! sharded fleet splitting them — records the jobs/sec of each and their
//! ratio to `BENCH_fleet.json`.
//!
//! The single service serializes admission, dispatch, and completion
//! bookkeeping behind one lock and one dispatcher pass; the fleet shards
//! that contention. `CORUN_FLEET_BENCH_JOBS` / `CORUN_FLEET_BENCH_SHARDS`
//! scale the run up on bigger boxes.

use corun_fleet::{start_local_shards, Fleet, FleetConfig};
use corun_serve::{Service, ServiceConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn env_num(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn template(cache: &std::path::Path) -> ServiceConfig {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = 100_000;
    cfg.cache_dir = Some(cache.to_path_buf());
    cfg
}

/// Drain `jobs` small jobs through one service owning `machines`
/// machines; returns jobs/sec.
fn single_daemon_rate(cache: &std::path::Path, machines: usize, jobs: usize) -> f64 {
    let mut cfg = template(cache);
    cfg.machines = machines;
    let svc = Service::start(cfg);
    let t0 = std::time::Instant::now();
    let mut ids = Vec::new();
    for _ in 0..jobs {
        ids.extend(svc.submit_spec("srad x0.05").expect("admitted"));
    }
    for &id in &ids {
        svc.wait_job(id).expect("known id");
    }
    let rate = jobs as f64 / t0.elapsed().as_secs_f64();
    svc.shutdown();
    rate
}

/// Drain the same jobs through a fleet of `shards`, machine count held
/// equal; returns jobs/sec.
fn fleet_rate(
    cache: &std::path::Path,
    shards: usize,
    machines_per_shard: usize,
    jobs: usize,
) -> f64 {
    let tpl = template(cache);
    let backends = start_local_shards(&tpl, shards, machines_per_shard, None, |_| None);
    let mut cfg = FleetConfig::new(shards, machines_per_shard, 15.0 * shards as f64);
    cfg.queue_high_water = 10_000;
    cfg.submit_burst = 256;
    let mut fleet = Fleet::new(cfg, backends).expect("fleet");
    let t0 = std::time::Instant::now();
    let mut admitted = 0usize;
    while admitted < jobs {
        let batch = (jobs - admitted).min(500);
        fleet
            .submit_spec(&format!("srad x0.05 *{batch}\n"))
            .expect("admit");
        admitted += batch;
        fleet.pump();
    }
    fleet.drain(3600.0).expect("drain");
    let rate = jobs as f64 / t0.elapsed().as_secs_f64();
    fleet.begin_shutdown();
    fleet.finish();
    rate
}

fn bench_fleet_vs_single(c: &mut Criterion) {
    let _ = c;
    let shards = env_num("CORUN_FLEET_BENCH_SHARDS", 4);
    let machines_per_shard = env_num("CORUN_FLEET_BENCH_MACHINES", 2);
    let jobs = env_num("CORUN_FLEET_BENCH_JOBS", 200);
    let cache = std::env::temp_dir().join(format!("corun-fleet-bench-{}", std::process::id()));
    std::fs::create_dir_all(&cache).expect("cache dir");

    let single = single_daemon_rate(&cache, shards * machines_per_shard, jobs);
    println!(
        "single daemon ({} machines): {single:.1} jobs/s",
        shards * machines_per_shard
    );
    let fleet = fleet_rate(&cache, shards, machines_per_shard, jobs);
    println!("fleet ({shards} x {machines_per_shard} machines): {fleet:.1} jobs/s");
    println!("fleet/single ratio: {:.2}x", fleet / single);

    let samples = [
        bench::trajectory::Sample::new("fleet_jobs_per_sec", fleet, "jobs/s"),
        bench::trajectory::Sample::new("single_daemon_jobs_per_sec", single, "jobs/s"),
        bench::trajectory::Sample::new("fleet_over_single_ratio", fleet / single, "x"),
    ];
    match bench::trajectory::write("fleet", &samples) {
        Ok(path) => println!("trajectory written to {}", path.display()),
        Err(e) => eprintln!("trajectory write failed: {e}"),
    }
    std::fs::remove_dir_all(&cache).ok();
}

criterion_group!(benches, bench_fleet_vs_single);
criterion_main!(benches);
