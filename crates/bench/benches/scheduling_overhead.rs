//! Section VI-D: scheduling overhead.
//!
//! The paper reports that the scheduling algorithm costs less than 0.1% of
//! the makespan thanks to its linear structure. These benches time HCS,
//! HCS+ refinement, and the lower-bound computation on synthetic batches of
//! increasing size; with makespans in the hundreds of seconds and schedule
//! computation in the microsecond-to-millisecond range, the overhead ratio
//! is far below the paper's 0.1% budget.

use corun_core::{hcs, lower_bound, refine, HcsConfig, RefineConfig, TableModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Synthetic dense model mirroring corun_core's internal test model.
fn synthetic(n: usize, kc: usize, kg: usize) -> TableModel {
    let base: Vec<(f64, f64, f64)> = (0..n)
        .map(|i| {
            let phase = i as f64 * 0.7;
            (
                30.0 + 25.0 * (phase.sin() + 1.0),
                25.0 + 20.0 * (phase.cos() + 1.0),
                0.15 + 0.8 * ((i * 37 % 10) as f64 / 10.0),
            )
        })
        .collect();
    let names = (0..n).map(|i| format!("job{i}")).collect();
    let b2 = base.clone();
    let b3 = base.clone();
    TableModel::build(
        names,
        kc,
        kg,
        5.0,
        move |i, d, f| {
            let (tc, tg, _) = base[i];
            let (t, k) = match d {
                apu_sim::Device::Cpu => (tc, kc),
                apu_sim::Device::Gpu => (tg, kg),
            };
            t / (0.45 + 0.55 * f as f64 / (k - 1) as f64)
        },
        move |i, _d, _f, j, _g| (b2[i].2 * b2[j].2 * 0.6).min(0.9),
        move |i, d, f| {
            let w = b3[i].2;
            let k = match d {
                apu_sim::Device::Cpu => kc,
                apu_sim::Device::Gpu => kg,
            };
            let rel = (f as f64 + 1.0) / k as f64;
            5.0 + (3.0 + 6.0 * w) * rel * rel + 4.0 * rel
        },
    )
}

fn bench_hcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("hcs");
    for n in [4usize, 8, 16, 32] {
        let model = synthetic(n, 16, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hcs(&model, &HcsConfig::with_cap(15.0)));
        });
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("hcs_plus_refine");
    for n in [8usize, 16] {
        let model = synthetic(n, 16, 10);
        let out = hcs(&model, &HcsConfig::with_cap(15.0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| refine(&model, &out.schedule, &RefineConfig::new(15.0)));
        });
    }
    group.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");
    for n in [8usize, 16] {
        let model = synthetic(n, 16, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| lower_bound(&model, 15.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hcs, bench_refine, bench_lower_bound);
criterion_main!(benches);
