//! End-to-end timing of the offline pipeline stages behind the paper's
//! figures: standalone profiling, degradation-space characterization, and
//! table-model materialization. Establishes the cost balance the paper
//! argues for: characterization is O(G^2 S) micro-runs once per machine,
//! after which each batch needs only O(N) profiling plus interpolation.

use apu_sim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use perf_model::{characterize, profile_job, CharacterizeConfig, ProfileMethod, StagedPredictor};
use runtime::build_table_model;

fn bench_profile_one_job(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let job = kernels::with_input_scale(&kernels::by_name(&cfg, "srad").unwrap(), 0.1);
    c.bench_function("profile_job_measured_all_levels", |b| {
        b.iter(|| profile_job(&cfg, &job, ProfileMethod::Measured));
    });
}

fn bench_table_model_build(c: &mut Criterion) {
    let cfg = MachineConfig::ivy_bridge();
    let jobs = kernels::rodinia_suite(&cfg);
    let profiles = perf_model::profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
    let mut ccfg = CharacterizeConfig::fast(&cfg);
    ccfg.grid_points = 4;
    ccfg.micro_duration_s = 1.5;
    let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));
    c.bench_function("build_table_model_8x16x10", |b| {
        b.iter(|| build_table_model(&cfg, &profiles, &predictor, None));
    });
}

criterion_group!(benches, bench_profile_one_job, bench_table_model_build);
criterion_main!(benches);
