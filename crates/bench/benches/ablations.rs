//! Timing ablations over the design knobs DESIGN.md calls out: the
//! preference threshold `D`, the refinement budget, and the
//! characterization grid resolution. (Quality ablations — what these knobs
//! do to makespans and model error — are printed by the
//! `ablation_quality` binary; these benches establish that none of the
//! knobs moves scheduling cost out of its microsecond class.)

use corun_core::{hcs, refine, HcsConfig, RefineConfig, TableModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn synthetic(n: usize) -> TableModel {
    let base: Vec<(f64, f64, f64)> = (0..n)
        .map(|i| {
            let phase = i as f64 * 0.7;
            (
                30.0 + 25.0 * (phase.sin() + 1.0),
                25.0 + 20.0 * (phase.cos() + 1.0),
                0.15 + 0.8 * ((i * 37 % 10) as f64 / 10.0),
            )
        })
        .collect();
    let names = (0..n).map(|i| format!("job{i}")).collect();
    let b2 = base.clone();
    let b3 = base.clone();
    TableModel::build(
        names,
        16,
        10,
        5.0,
        move |i, d, f| {
            let (tc, tg, _) = base[i];
            let (t, k) = match d {
                apu_sim::Device::Cpu => (tc, 16),
                apu_sim::Device::Gpu => (tg, 10),
            };
            t / (0.45 + 0.55 * f as f64 / (k - 1) as f64)
        },
        move |i, _d, _f, j, _g| (b2[i].2 * b2[j].2 * 0.6).min(0.9),
        move |i, d, f| {
            let w = b3[i].2;
            let k = match d {
                apu_sim::Device::Cpu => 16,
                apu_sim::Device::Gpu => 10,
            };
            let rel = (f as f64 + 1.0) / k as f64;
            5.0 + (3.0 + 6.0 * w) * rel * rel + 4.0 * rel
        },
    )
}

fn bench_preference_threshold(c: &mut Criterion) {
    let model = synthetic(16);
    let mut group = c.benchmark_group("hcs_threshold_D");
    for d in [0.0_f64, 0.1, 0.2, 0.4] {
        let cfg = HcsConfig {
            cap_w: 15.0,
            preference_threshold: d,
        };
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| hcs(&model, &cfg));
        });
    }
    group.finish();
}

fn bench_refine_budget(c: &mut Criterion) {
    let model = synthetic(16);
    let out = hcs(&model, &HcsConfig::with_cap(15.0));
    let mut group = c.benchmark_group("refine_budget");
    for swaps in [8usize, 32, 128] {
        let mut cfg = RefineConfig::new(15.0);
        cfg.random_swaps = swaps;
        cfg.cross_swaps = swaps;
        group.bench_with_input(BenchmarkId::from_parameter(swaps), &swaps, |b, _| {
            b.iter(|| refine(&model, &out.schedule, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preference_threshold, bench_refine_budget);
criterion_main!(benches);
