//! Doc-drift gate: `docs/DIAGNOSTICS.md` and `corun_verify::Code` must
//! describe the same catalogue.
//!
//! The tables in the doc are parsed directly, so this test fails when:
//!
//! * a `Code` variant is added without a documented table row;
//! * a documented row names a code that no longer exists;
//! * a row's severity disagrees with `Code::default_severity()`;
//! * a row's invariant text disagrees with `Code::invariant()` — the
//!   doc row and the code are required to be *verbatim* equal so there
//!   is exactly one phrasing of each invariant in the tree;
//! * a row's paper column disagrees with `Code::paper_ref()` for codes
//!   that cite the paper (rows whose `paper_ref()` is `-` may elaborate
//!   freely, e.g. contextual references the code itself doesn't carry).

use corun_verify::{Code, Severity};
use std::collections::BTreeMap;

const DOC: &str = include_str!("../../../docs/DIAGNOSTICS.md");

struct Row {
    severity: String,
    invariant: String,
    paper: String,
}

/// Parse every `| CODE | severity | invariant | paper |` row out of the
/// doc's tables, keyed by the code cell.
fn doc_rows() -> BTreeMap<String, Row> {
    let mut rows = BTreeMap::new();
    for line in DOC.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 4 {
            continue;
        }
        let code = cells[0];
        // Skip the header and separator rows.
        if code == "Code" || code.chars().all(|c| c == '-' || c == ' ') {
            continue;
        }
        assert!(
            code.len() == 6
                && code
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()),
            "table row with malformed code cell `{code}`"
        );
        let prev = rows.insert(
            code.to_string(),
            Row {
                severity: cells[1].to_string(),
                invariant: cells[2].to_string(),
                paper: cells[3].to_string(),
            },
        );
        assert!(prev.is_none(), "{code} documented twice");
    }
    rows
}

#[test]
fn every_code_is_documented_and_every_documented_code_exists() {
    let rows = doc_rows();
    for code in Code::ALL {
        assert!(
            rows.contains_key(code.as_str()),
            "{} has no table row in docs/DIAGNOSTICS.md",
            code.as_str()
        );
    }
    for doc_code in rows.keys() {
        assert!(
            Code::ALL.iter().any(|c| c.as_str() == doc_code),
            "docs/DIAGNOSTICS.md documents `{doc_code}`, which is not a corun_verify::Code"
        );
    }
    assert_eq!(rows.len(), Code::ALL.len());
}

#[test]
fn documented_severities_match_the_defaults() {
    let rows = doc_rows();
    for code in Code::ALL {
        let row = &rows[code.as_str()];
        // Footnote daggers (¹) annotate conditional escalation; the
        // leading word must still be the default severity.
        let doc_sev: String = row
            .severity
            .chars()
            .take_while(char::is_ascii_lowercase)
            .collect();
        let expect = match code.default_severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        assert_eq!(
            doc_sev,
            expect,
            "{}: doc says `{}`, default_severity() says `{expect}`",
            code.as_str(),
            row.severity
        );
    }
}

#[test]
fn documented_invariants_are_verbatim() {
    let rows = doc_rows();
    for code in Code::ALL {
        let row = &rows[code.as_str()];
        assert_eq!(
            row.invariant,
            code.invariant(),
            "{}: doc invariant drifted from Code::invariant()",
            code.as_str()
        );
    }
}

#[test]
fn documented_paper_refs_match_for_citing_codes() {
    let rows = doc_rows();
    for code in Code::ALL {
        let cite = code.paper_ref();
        if cite == "-" {
            continue;
        }
        assert_eq!(
            rows[code.as_str()].paper,
            cite,
            "{}: doc paper column drifted from Code::paper_ref()",
            code.as_str()
        );
    }
}
