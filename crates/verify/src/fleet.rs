//! `FLT0xx`: static validation of a fleet topology and its budget
//! parameters, before any shard starts.
//!
//! The fleet coordinator (`crates/fleet`) calls [`lint_fleet`] at
//! construction and refuses to start on errors; [`lint_shard_caps`]
//! re-checks the budget invariant on a *live* cap vector after every
//! rebalance. Both take plain numbers so this crate stays independent of
//! the fleet types.

use crate::diag::{Code, Diagnostic, Report};

/// The fleet parameters `lint_fleet` validates.
#[derive(Debug, Clone, Copy)]
pub struct FleetParams {
    /// Shard-worker count.
    pub shards: usize,
    /// Simulated machines each shard drives.
    pub machines_per_shard: usize,
    /// The datacenter-level power cap, watts.
    pub cluster_cap_w: f64,
    /// Minimum cap each live shard is guaranteed, watts.
    pub shard_floor_w: f64,
    /// Queue-depth imbalance (max - min) that triggers work stealing.
    pub steal_threshold: usize,
    /// Placement rounds between budget rebalances.
    pub rebalance_every: usize,
}

/// Total machine count above which the simulation itself becomes the
/// bottleneck (mirrors the spirit of `SPC005`'s instance-count bound).
const MAX_SANE_MACHINES: usize = 1 << 14;

/// Validate a fleet topology and its budget/steal parameters.
pub fn lint_fleet(p: &FleetParams) -> Report {
    let mut report = Report::new();
    if p.shards == 0 || p.machines_per_shard == 0 {
        report.push(
            Diagnostic::new(
                Code::Flt002,
                "fleet",
                format!(
                    "degenerate topology: {} shard(s) x {} machine(s) per shard",
                    p.shards, p.machines_per_shard
                ),
            )
            .with_help("a fleet needs at least one shard and one machine per shard"),
        );
    }
    let total = p.shards.saturating_mul(p.machines_per_shard);
    if total > MAX_SANE_MACHINES {
        report.push(
            Diagnostic::new(
                Code::Flt002,
                "fleet",
                format!(
                    "{total} total simulated machines exceeds the sane bound of {MAX_SANE_MACHINES}"
                ),
            )
            .with_help("shrink --shards or --machines-per-shard"),
        );
    }
    if !p.cluster_cap_w.is_finite() || p.cluster_cap_w <= 0.0 {
        report.push(Diagnostic::new(
            Code::Flt001,
            "fleet",
            format!(
                "cluster cap must be finite and positive, got {} W",
                p.cluster_cap_w
            ),
        ));
    }
    if !p.shard_floor_w.is_finite() || p.shard_floor_w < 0.0 {
        report.push(Diagnostic::new(
            Code::Flt001,
            "fleet",
            format!(
                "shard budget floor must be finite and non-negative, got {} W",
                p.shard_floor_w
            ),
        ));
    } else if p.shards > 0 {
        #[allow(clippy::cast_precision_loss)]
        let floors = p.shard_floor_w * p.shards as f64;
        if p.cluster_cap_w.is_finite() && p.cluster_cap_w < floors {
            report.push(
                Diagnostic::new(
                    Code::Flt001,
                    "fleet",
                    format!(
                        "cluster cap {} W cannot cover {} shards x {} W floor = {floors} W",
                        p.cluster_cap_w, p.shards, p.shard_floor_w
                    ),
                )
                .with_help("raise --cluster-cap, lower the shard floor, or run fewer shards"),
            );
        }
    }
    if p.steal_threshold == 0 {
        report.push(
            Diagnostic::new(
                Code::Flt003,
                "fleet",
                "steal threshold 0 steals on any imbalance (thrashes the queues)",
            )
            .with_help("a threshold of a few jobs lets natural drain absorb small imbalances"),
        );
    } else if p.steal_threshold > 1_000_000 {
        report.push(
            Diagnostic::new(
                Code::Flt003,
                "fleet",
                format!(
                    "steal threshold {} is so high imbalance is never corrected",
                    p.steal_threshold
                ),
            )
            .with_help("pick a threshold comparable to a shard's queue capacity"),
        );
    }
    if p.rebalance_every == 0 {
        report.push(
            Diagnostic::new(
                Code::Flt003,
                "fleet",
                "rebalance cadence 0 re-partitions the budget on every round",
            )
            .with_help("rebalance every few placement rounds so caps settle between moves"),
        );
    }
    report
}

/// Transport and circuit-breaker parameters of a fleet coordinator, as
/// `FLT006` validates them.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Consecutive transport failures before a shard reads `Suspect`.
    pub suspect_after: u32,
    /// Consecutive transport failures before the circuit opens.
    pub dead_after: u32,
    /// Rounds between probes of an open-circuit shard.
    pub probe_every_rounds: u64,
}

/// Validate circuit-breaker thresholds: the breaker must be able to
/// open (`dead_after >= 1`), must not open before it suspects
/// (`dead_after >= suspect_after`), and an open circuit must still be
/// probed on a finite cadence.
pub fn lint_net_config(p: &NetParams) -> Report {
    let mut report = Report::new();
    if p.dead_after == 0 || p.suspect_after == 0 {
        report.push(
            Diagnostic::new(
                Code::Flt006,
                "fleet.net",
                format!(
                    "breaker thresholds must be at least 1 failure \
                     (suspect_after={}, dead_after={})",
                    p.suspect_after, p.dead_after
                ),
            )
            .with_help("a zero threshold would open the circuit on a healthy shard"),
        );
    }
    if p.dead_after < p.suspect_after {
        report.push(
            Diagnostic::new(
                Code::Flt006,
                "fleet.net",
                format!(
                    "dead threshold {} is below the suspect threshold {}",
                    p.dead_after, p.suspect_after
                ),
            )
            .with_help("a circuit must pass through suspect before it opens"),
        );
    }
    if p.probe_every_rounds == 0 {
        report.push(
            Diagnostic::new(
                Code::Flt006,
                "fleet.net",
                "probe cadence 0 would hammer a dead shard every round",
            )
            .with_help("probe an open circuit every few rounds so timeouts stay amortized"),
        );
    } else if p.probe_every_rounds > 1_000_000 {
        report.push(
            Diagnostic::new(
                Code::Flt006,
                "fleet.net",
                format!(
                    "probe cadence {} rounds means a healed shard is never noticed",
                    p.probe_every_rounds
                ),
            )
            .with_help("pick a cadence comparable to the recover backoff"),
        );
    }
    report
}

/// Re-check the fleet budget invariant on a live cap vector: every cap
/// finite and non-negative, and the sum within the cluster cap (up to
/// rounding). Returns an empty report when the invariant holds.
pub fn lint_shard_caps(shard_caps_w: &[f64], cluster_cap_w: f64) -> Report {
    let mut report = Report::new();
    if corun_core::respects_cluster_cap(shard_caps_w, cluster_cap_w) {
        return report;
    }
    let sum: f64 = shard_caps_w.iter().sum();
    report.push(
        Diagnostic::new(
            Code::Flt004,
            "fleet",
            format!(
                "shard caps sum to {sum} W against a cluster cap of {cluster_cap_w} W \
                 (caps: {shard_caps_w:?})"
            ),
        )
        .with_help("shard caps must come from corun_core::partition_cluster_cap"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> FleetParams {
        FleetParams {
            shards: 4,
            machines_per_shard: 8,
            cluster_cap_w: 100.0,
            shard_floor_w: 5.0,
            steal_threshold: 8,
            rebalance_every: 4,
        }
    }

    #[test]
    fn sane_params_lint_clean() {
        assert!(lint_fleet(&sane()).is_empty());
    }

    #[test]
    fn degenerate_topology_is_flt002() {
        let mut p = sane();
        p.shards = 0;
        let r = lint_fleet(&p);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Flt002));
    }

    #[test]
    fn infeasible_floor_is_flt001() {
        let mut p = sane();
        p.cluster_cap_w = 10.0; // 4 shards x 5 W floor = 20 W > 10 W
        let r = lint_fleet(&p);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Flt001));
    }

    #[test]
    fn sluggish_steal_is_a_warning() {
        let mut p = sane();
        p.steal_threshold = 10_000_000;
        let r = lint_fleet(&p);
        assert!(!r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Flt003));
    }

    #[test]
    fn cap_sum_violation_is_flt004() {
        assert!(lint_shard_caps(&[50.0, 50.0], 100.0).is_empty());
        let r = lint_shard_caps(&[60.0, 50.0], 100.0);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::Flt004));
        let r = lint_shard_caps(&[f64::NAN], 100.0);
        assert!(r.has_errors());
    }
}
