//! The `LintPass` trait and the pass registry.
//!
//! A pass inspects whatever slice of the [`LintContext`] it cares about
//! and appends diagnostics. Passes are registered on a [`Linter`], which
//! runs them in registration order; new invariants plug in by adding a
//! type and one `register` call.

use apu_sim::MachineConfig;
use corun_core::{CoRunModel, Schedule};

use crate::diag::{Diagnostic, Report};

/// Everything a pass may look at. Fields are optional so one registry
/// serves schedule-only, config-only, and combined lint runs; a pass
/// that is missing its inputs does nothing.
pub struct LintContext<'a> {
    /// The performance/power model backing schedule semantics.
    pub model: Option<&'a dyn CoRunModel>,
    /// The schedule under inspection.
    pub schedule: Option<&'a Schedule>,
    /// The power cap the schedule must respect, watts.
    pub cap_w: Option<f64>,
    /// Whether the schedule's frequency levels are planned (the
    /// scheduler chose them and is accountable for cap feasibility) or
    /// governor-owned (a runtime governor clips power, so an infeasible
    /// static level is only a warning). Defaults to `true`.
    pub levels_planned: bool,
    /// A makespan claimed for this schedule by an external report, if
    /// any; checked against the lower bound alongside the model's own
    /// evaluation.
    pub reported_makespan_s: Option<f64>,
    /// The machine config under inspection.
    pub machine: Option<&'a MachineConfig>,
}

impl<'a> LintContext<'a> {
    /// Empty context; populate the fields the passes you run need.
    pub fn new() -> Self {
        LintContext {
            model: None,
            schedule: None,
            cap_w: None,
            levels_planned: true,
            reported_makespan_s: None,
            machine: None,
        }
    }

    /// Context for linting a schedule against a model.
    pub fn for_schedule(
        model: &'a dyn CoRunModel,
        schedule: &'a Schedule,
        cap_w: Option<f64>,
    ) -> Self {
        LintContext {
            model: Some(model),
            schedule: Some(schedule),
            cap_w,
            ..Self::new()
        }
    }

    /// Context for linting a machine config.
    pub fn for_machine(machine: &'a MachineConfig) -> Self {
        LintContext {
            machine: Some(machine),
            ..Self::new()
        }
    }
}

impl Default for LintContext<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// One composable check.
pub trait LintPass {
    /// Short stable name, e.g. `"schedule-completeness"`.
    fn name(&self) -> &'static str;

    /// Inspect `ctx` and append findings to `out`. A pass must not
    /// panic on broken input — broken input is exactly what it exists
    /// to report.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered registry of passes.
#[derive(Default)]
pub struct Linter {
    passes: Vec<Box<dyn LintPass>>,
}

impl Linter {
    /// Empty linter.
    pub fn new() -> Self {
        Linter { passes: Vec::new() }
    }

    /// Linter with every built-in pass registered (schedule and machine
    /// passes; spec linting has its own entry point in [`crate::spec`]
    /// because it works on text, not on a built context).
    pub fn with_default_passes() -> Self {
        let mut l = Linter::new();
        l.register(Box::new(crate::schedule::CompletenessPass));
        l.register(Box::new(crate::schedule::LevelRangePass));
        l.register(Box::new(crate::schedule::TheoremPass));
        l.register(Box::new(crate::schedule::CapFeasibilityPass));
        l.register(Box::new(crate::schedule::BoundPass));
        l.register(Box::new(crate::config::MachineConfigPass));
        l
    }

    /// Add a pass; it runs after all previously registered passes.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass over `ctx` and collect the findings.
    pub fn run(&self, ctx: &LintContext<'_>) -> Report {
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(ctx, &mut out);
        }
        Report::from_diagnostics(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    struct AlwaysWarn;
    impl LintPass for AlwaysWarn {
        fn name(&self) -> &'static str {
            "always-warn"
        }
        fn run(&self, _ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new(Code::Spc004, "here", "synthetic"));
        }
    }

    #[test]
    fn custom_passes_register_and_run_in_order() {
        let mut l = Linter::new();
        l.register(Box::new(AlwaysWarn));
        l.register(Box::new(AlwaysWarn));
        let report = l.run(&LintContext::new());
        assert_eq!(report.len(), 2);
        assert_eq!(l.pass_names(), vec!["always-warn", "always-warn"]);
    }

    #[test]
    fn default_passes_do_nothing_on_empty_context() {
        let l = Linter::with_default_passes();
        let report = l.run(&LintContext::new());
        assert!(report.is_empty(), "no inputs, no findings: {report:?}");
    }
}
