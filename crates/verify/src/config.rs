//! `CFG0xx` — machine-configuration and model-quality lints.
//!
//! This module absorbs `apu_sim::validate` and `perf_model::validate`
//! behind the shared [`Diagnostic`] type: config issues map onto stable
//! `CFG001`–`CFG005` codes by the subsystem they touch, leave-one-out
//! model validation reports as `CFG006`, and the `key = value` override
//! files accepted by the CLI lint as `CFG007`.

use apu_sim::{validate::ConfigIssue, MachineConfig, PerDevice};
use perf_model::LooReport;

use crate::diag::{Code, Diagnostic, Report};
use crate::pass::{LintContext, LintPass};

/// LOO mean-absolute-error above which a degradation surface is
/// considered too coarse to trust (matches the acceptance threshold in
/// `perf-model`'s own validation tests).
pub const LOO_MEAN_ERR_THRESHOLD: f64 = 0.10;

/// Map one `apu_sim` validation issue onto the stable code space.
pub fn diagnostic_from_issue(issue: &ConfigIssue) -> Diagnostic {
    let code = if issue.field.starts_with("freqs.") {
        Code::Cfg001
    } else if issue.field.ends_with("params") {
        Code::Cfg002
    } else if issue.field.starts_with("memory.") {
        Code::Cfg003
    } else if issue.field.starts_with("package.") || issue.field.starts_with("multiprog") {
        Code::Cfg004
    } else {
        // tick_s, power_sample_s, and anything a future validator adds
        Code::Cfg005
    };
    Diagnostic::new(
        code,
        format!("machine.{}", issue.field),
        issue.problem.clone(),
    )
}

/// CFG001–CFG005: the absorbed `apu_sim::validate` checks.
pub struct MachineConfigPass;

impl LintPass for MachineConfigPass {
    fn name(&self) -> &'static str {
        "machine-config"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(machine) = ctx.machine else { return };
        for issue in apu_sim::validate::validate(machine) {
            out.push(diagnostic_from_issue(&issue));
        }
    }
}

/// Lint a machine configuration.
pub fn lint_machine(machine: &MachineConfig) -> Report {
    let mut out = Vec::new();
    MachineConfigPass.run(&LintContext::for_machine(machine), &mut out);
    Report::from_diagnostics(out)
}

/// CFG006: check a pair of leave-one-out reports (one degradation
/// surface per device) against [`LOO_MEAN_ERR_THRESHOLD`].
pub fn lint_loo(loo: &PerDevice<LooReport>, stage: &str) -> Report {
    let mut out = Vec::new();
    for (dev, rep) in [("cpu", &loo.cpu), ("gpu", &loo.gpu)] {
        if rep.nodes > 0 && rep.mean_abs_err > LOO_MEAN_ERR_THRESHOLD {
            out.push(
                Diagnostic::new(
                    Code::Cfg006,
                    format!("{stage}.{dev}"),
                    format!(
                        "degradation surface fails leave-one-out validation: mean error {:.3} \
                         over {} interior nodes (threshold {LOO_MEAN_ERR_THRESHOLD})",
                        rep.mean_abs_err, rep.nodes
                    ),
                )
                .with_help("re-characterize with a finer grid (more demand levels per axis)"),
            );
        }
    }
    Report::from_diagnostics(out)
}

/// Apply a `key = value` override file to `cfg`, collecting `CFG007`
/// diagnostics for unknown keys and unparseable values. `#` starts a
/// comment; blank lines are ignored. Keys mirror the `MachineConfig`
/// field paths, e.g. `cpu.dyn_power_w = 9.5` or
/// `memory.arb_weight.gpu = 1.2`.
pub fn apply_overrides(cfg: &mut MachineConfig, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let loc = format!("config:{}", idx + 1);
        let Some((key, value)) = line.split_once('=') else {
            out.push(
                Diagnostic::new(
                    Code::Cfg007,
                    loc,
                    format!("expected `key = value`, got `{line}`"),
                )
                .with_help("one override per line, e.g. `cpu.dyn_power_w = 9.5`"),
            );
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match apply_one(cfg, key, value) {
            Ok(()) => {}
            Err(problem) => {
                out.push(
                    Diagnostic::new(Code::Cfg007, loc, problem)
                        .with_help("see docs/DIAGNOSTICS.md for the list of override keys"),
                );
            }
        }
    }
    out
}

fn apply_one(cfg: &mut MachineConfig, key: &str, value: &str) -> Result<(), String> {
    let parse = || -> Result<f64, String> {
        value
            .parse::<f64>()
            .map_err(|_| format!("cannot parse `{value}` as a number for `{key}`"))
    };
    let slot: &mut f64 = match key {
        "cpu.gflops_per_ghz" => &mut cfg.cpu.gflops_per_ghz,
        "cpu.bw_peak_gbps" => &mut cfg.cpu.bw_peak_gbps,
        "cpu.bw_freq_floor" => &mut cfg.cpu.bw_freq_floor,
        "cpu.idle_power_w" => &mut cfg.cpu.idle_power_w,
        "cpu.dyn_power_w" => &mut cfg.cpu.dyn_power_w,
        "cpu.dyn_power_exp" => &mut cfg.cpu.dyn_power_exp,
        "cpu.mem_power_w_per_gbps" => &mut cfg.cpu.mem_power_w_per_gbps,
        "cpu.stall_power_frac" => &mut cfg.cpu.stall_power_frac,
        "gpu.gflops_per_ghz" => &mut cfg.gpu.gflops_per_ghz,
        "gpu.bw_peak_gbps" => &mut cfg.gpu.bw_peak_gbps,
        "gpu.bw_freq_floor" => &mut cfg.gpu.bw_freq_floor,
        "gpu.idle_power_w" => &mut cfg.gpu.idle_power_w,
        "gpu.dyn_power_w" => &mut cfg.gpu.dyn_power_w,
        "gpu.dyn_power_exp" => &mut cfg.gpu.dyn_power_exp,
        "gpu.mem_power_w_per_gbps" => &mut cfg.gpu.mem_power_w_per_gbps,
        "gpu.stall_power_frac" => &mut cfg.gpu.stall_power_frac,
        "memory.total_bw_gbps" => &mut cfg.memory.total_bw_gbps,
        "memory.pressure_ref_gbps" => &mut cfg.memory.pressure_ref_gbps,
        "memory.llc_mib" => &mut cfg.memory.llc_mib,
        "memory.inflation_coeff.cpu" => &mut cfg.memory.inflation_coeff.cpu,
        "memory.inflation_coeff.gpu" => &mut cfg.memory.inflation_coeff.gpu,
        "memory.inflation_exp.cpu" => &mut cfg.memory.inflation_exp.cpu,
        "memory.inflation_exp.gpu" => &mut cfg.memory.inflation_exp.gpu,
        "memory.arb_weight.cpu" => &mut cfg.memory.arb_weight.cpu,
        "memory.arb_weight.gpu" => &mut cfg.memory.arb_weight.gpu,
        "package.uncore_w" => &mut cfg.package.uncore_w,
        "multiprog.cs_overhead" => &mut cfg.multiprog.cs_overhead,
        "multiprog.locality_penalty" => &mut cfg.multiprog.locality_penalty,
        "tick_s" => &mut cfg.tick_s,
        "power_sample_s" => &mut cfg.power_sample_s,
        "multiprog.max_cpu_slots" => {
            cfg.multiprog.max_cpu_slots = value
                .parse::<usize>()
                .map_err(|_| format!("cannot parse `{value}` as an integer for `{key}`"))?;
            return Ok(());
        }
        _ => return Err(format!("unknown machine-config key `{key}`")),
    };
    *slot = parse()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::leave_one_out;

    #[test]
    fn presets_lint_clean() {
        assert!(lint_machine(&MachineConfig::ivy_bridge()).is_empty());
        assert!(lint_machine(&MachineConfig::kaveri()).is_empty());
    }

    #[test]
    fn issue_mapping_covers_every_subsystem() {
        let mut cfg = MachineConfig::ivy_bridge();
        cfg.memory.total_bw_gbps = -1.0; // CFG003 + cascading CFG002
        cfg.cpu.dyn_power_exp = 9.0; // CFG002
        cfg.package.uncore_w = -2.0; // CFG004
        cfg.tick_s = -0.5; // CFG005
        let report = lint_machine(&cfg);
        for code in [Code::Cfg002, Code::Cfg003, Code::Cfg004, Code::Cfg005] {
            assert!(
                report.has(code),
                "missing {code}: {}",
                report.render_human()
            );
        }
        assert!(report.has_errors());
    }

    #[test]
    fn freq_ladder_issue_maps_to_cfg001() {
        let issue = ConfigIssue {
            field: "freqs.cpu".into(),
            problem: "needs at least two DVFS levels".into(),
        };
        assert_eq!(diagnostic_from_issue(&issue).code, Code::Cfg001);
    }

    #[test]
    fn loo_threshold_flags_coarse_surface() {
        // Steep non-linear surface on a coarse grid: LOO error is large.
        let ax: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let vals: Vec<f64> = (0..4)
            .flat_map(|i| (0..4).map(move |j| if (i + j) % 2 == 0 { 1.0 } else { 0.0 }))
            .collect();
        let bad = leave_one_out(&perf_model::Grid2D::new(ax.clone(), ax.clone(), vals));
        let good = leave_one_out(&perf_model::Grid2D::new(
            ax.clone(),
            ax,
            (0..16).map(|k| k as f64 * 0.001).collect(),
        ));
        let report = lint_loo(&PerDevice::new(bad, good), "stage0");
        assert_eq!(report.count(Code::Cfg006), 1, "{}", report.render_human());
        assert!(report.is_clean(), "CFG006 is a warning");
    }

    #[test]
    fn overrides_apply_and_lint() {
        let mut cfg = MachineConfig::ivy_bridge();
        let diags = apply_overrides(
            &mut cfg,
            "# tuning\ncpu.dyn_power_w = 9.5\nmemory.arb_weight.gpu = 1.25\n\
             multiprog.max_cpu_slots = 3\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(cfg.cpu.dyn_power_w, 9.5);
        assert_eq!(cfg.memory.arb_weight.gpu, 1.25);
        assert_eq!(cfg.multiprog.max_cpu_slots, 3);
    }

    #[test]
    fn bad_overrides_are_cfg007() {
        let mut cfg = MachineConfig::ivy_bridge();
        let diags = apply_overrides(
            &mut cfg,
            "nonsense line\ncpu.no_such_field = 1\ncpu.dyn_power_w = abc\n",
        );
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code == Code::Cfg007));
    }
}
