//! Text schedule files, so `corun lint` can check schedules produced
//! outside this process (hand-written, or dumped by another tool).
//!
//! ```text
//! # four jobs under a 15 W cap
//! jobs 4
//! cap 15
//! makespan 42.5        # optional claimed makespan, checked by SCH004
//! cpu j0@L3 j2@L1      # CPU co-run queue, in order
//! gpu j1@L4
//! solo j3 cpu L2       # solo tail: job, device, level
//! ```

use apu_sim::Device;
use corun_core::{Assignment, Schedule, SoloRun};

/// A parsed schedule file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleFile {
    /// The schedule itself.
    pub schedule: Schedule,
    /// Declared workload size (`jobs N`), if present.
    pub jobs: Option<usize>,
    /// Declared power cap (`cap W`), if present.
    pub cap_w: Option<f64>,
    /// Claimed makespan (`makespan S`), if present.
    pub makespan_s: Option<f64>,
}

/// Parse the text schedule format. Returns the first syntax error with
/// its line number; semantic problems are the lint passes' job.
pub fn parse_schedule_file(text: &str) -> Result<ScheduleFile, String> {
    let mut out = ScheduleFile {
        schedule: Schedule::new(),
        jobs: None,
        cap_w: None,
        makespan_s: None,
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap_or("");
        match head {
            "jobs" => out.jobs = Some(parse_tail(&mut toks, lineno, "jobs")?),
            "cap" => out.cap_w = Some(parse_tail(&mut toks, lineno, "cap")?),
            "makespan" => out.makespan_s = Some(parse_tail(&mut toks, lineno, "makespan")?),
            "cpu" | "gpu" => {
                let queue = if head == "cpu" {
                    &mut out.schedule.cpu
                } else {
                    &mut out.schedule.gpu
                };
                for tok in toks {
                    let (job, level) = parse_assignment(tok, lineno)?;
                    queue.push(Assignment { job, level });
                }
            }
            "solo" => {
                let job_tok = toks
                    .next()
                    .ok_or_else(|| format!("line {lineno}: `solo` needs a job, got nothing"))?;
                let job = parse_job_id(job_tok, lineno)?;
                let device = match toks.next() {
                    Some("cpu") => Device::Cpu,
                    Some("gpu") => Device::Gpu,
                    other => {
                        return Err(format!(
                            "line {lineno}: `solo` device must be cpu or gpu, got `{}`",
                            other.unwrap_or("")
                        ))
                    }
                };
                let level_tok = toks
                    .next()
                    .ok_or_else(|| format!("line {lineno}: `solo` needs a level like L2"))?;
                let level = parse_level(level_tok, lineno)?;
                if let Some(extra) = toks.next() {
                    return Err(format!("line {lineno}: unexpected token `{extra}`"));
                }
                out.schedule.solo_tail.push(SoloRun { job, device, level });
            }
            _ => {
                return Err(format!(
                    "line {lineno}: unknown directive `{head}` \
                     (expected jobs/cap/makespan/cpu/gpu/solo)"
                ))
            }
        }
    }
    Ok(out)
}

fn parse_tail<'a, T: std::str::FromStr>(
    toks: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, String> {
    let tok = toks
        .next()
        .ok_or_else(|| format!("line {lineno}: `{what}` needs a value"))?;
    if let Some(extra) = toks.next() {
        return Err(format!(
            "line {lineno}: unexpected token `{extra}` after `{what}`"
        ));
    }
    tok.parse()
        .map_err(|_| format!("line {lineno}: cannot parse `{tok}` as a value for `{what}`"))
}

/// `j3@L2` → (3, 2).
fn parse_assignment(tok: &str, lineno: usize) -> Result<(usize, usize), String> {
    let (job, level) = tok
        .split_once('@')
        .ok_or_else(|| format!("line {lineno}: expected `jN@LM`, got `{tok}`"))?;
    Ok((parse_job_id(job, lineno)?, parse_level(level, lineno)?))
}

fn parse_job_id(tok: &str, lineno: usize) -> Result<usize, String> {
    tok.strip_prefix('j')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a job id like j3, got `{tok}`"))
}

fn parse_level(tok: &str, lineno: usize) -> Result<usize, String> {
    tok.strip_prefix('L')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a level like L2, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_format() {
        let f = parse_schedule_file(
            "# header\njobs 4\ncap 15\nmakespan 42.5\ncpu j0@L3 j2@L1\ngpu j1@L4\nsolo j3 cpu L2\n",
        )
        .unwrap();
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.cap_w, Some(15.0));
        assert_eq!(f.makespan_s, Some(42.5));
        assert_eq!(f.schedule.cpu.len(), 2);
        assert_eq!(f.schedule.cpu[1], Assignment { job: 2, level: 1 });
        assert_eq!(f.schedule.gpu, vec![Assignment { job: 1, level: 4 }]);
        assert_eq!(
            f.schedule.solo_tail,
            vec![SoloRun {
                job: 3,
                device: Device::Cpu,
                level: 2
            }]
        );
    }

    #[test]
    fn multiple_queue_lines_append() {
        let f = parse_schedule_file("cpu j0@L0\ncpu j1@L1\n").unwrap();
        assert_eq!(f.schedule.cpu.len(), 2);
        assert_eq!(f.jobs, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "wat j0@L1",
            "cpu j0",
            "cpu 0@L1",
            "cpu j0@M1",
            "solo j0 tpu L1",
            "solo j0 cpu",
            "jobs many",
            "cap",
            "cap 15 16",
            "solo j0 cpu L1 extra",
        ] {
            let r = parse_schedule_file(bad);
            assert!(r.is_err(), "`{bad}` must be rejected");
            assert!(r.unwrap_err().contains("line 1"));
        }
    }

    #[test]
    fn empty_file_is_an_empty_schedule() {
        let f = parse_schedule_file("# nothing\n").unwrap();
        assert!(f.schedule.is_empty());
    }
}
