//! # corun-verify — workspace-wide static verification & lints
//!
//! A compiler-style diagnostics engine for the co-run scheduling stack:
//! every checkable invariant — from the Co-Run Theorem (paper Sec. IV-A)
//! down to "this spec line parses" — reports through one [`Diagnostic`]
//! type with a stable code, a severity, a location, and help text.
//! `docs/DIAGNOSTICS.md` catalogs every code.
//!
//! * `SCH0xx` — schedule lints ([`schedule`]): completeness, theorem
//!   compliance, cap feasibility, lower-bound consistency, level ranges.
//! * `CFG0xx` — machine-config and model-quality lints ([`config`]),
//!   absorbing `apu_sim::validate` and `perf_model::validate`.
//! * `SPC0xx` — workload-spec lints ([`spec`]).
//! * `SIM0xx` — runtime sanitizer findings ([`sim`], feature
//!   `sanitize`), fed by `apu_sim::sanitize` hooks in the engine.
//! * `SRV0xx` — service/fault-tolerance findings: `@chaos` fault-plan
//!   lints ([`lint_chaos`]) plus the runtime events `corun-serve` emits
//!   on crashes, retries, dead-letters, journal problems, and oversized
//!   frames (see `docs/FAULTS.md`). `SRV011` is the static wall-clock
//!   source lint ([`source`]) guarding deterministic replay.
//! * `RPL0xx` — deterministic-replay findings emitted by `corun-replay`
//!   when re-executing a journal diverges from the recorded run
//!   (`docs/REPLAY.md`).
//!
//! Checks compose through the [`LintPass`] trait: a pass reads the
//! [`LintContext`] and appends diagnostics, and a [`Linter`] runs a
//! registered sequence of passes. [`lint_schedule`], [`lint_machine`],
//! and [`lint_spec_full`] are one-call conveniences over the same
//! passes.
//!
//! ```
//! use corun_verify::{lint_spec_full, Code};
//!
//! let (_lines, report) = lint_spec_full("lud x0.8 *3\nnosuchprogram\n");
//! assert!(report.has(Code::Spc003));
//! assert!(report.has_errors());
//! ```

pub mod cert;
pub mod config;
pub mod diag;
pub mod fleet;
pub mod pass;
pub mod schedfile;
pub mod schedule;
#[cfg(feature = "sanitize")]
pub mod sim;
pub mod source;
pub mod spec;

pub use cert::{check_certificate, check_certificate_text, check_parsed};
pub use config::{apply_overrides, diagnostic_from_issue, lint_loo, lint_machine};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use fleet::{lint_fleet, lint_net_config, lint_shard_caps, FleetParams, NetParams};
pub use pass::{LintContext, LintPass, Linter};
pub use schedfile::{parse_schedule_file, ScheduleFile};
pub use source::{lint_wall_clock, ALLOW_MARKER};
pub use spec::{
    build_jobs, lint_chaos, lint_spec, lint_spec_full, lint_spec_programs, parse_spec, SpecLine,
};

use corun_core::{CoRunModel, Schedule};

/// Run every schedule pass (`SCH001`–`SCH005`) over one schedule.
///
/// `levels_planned` says who owns the frequency levels: `true` when the
/// scheduler planned them (cap infeasibility is an error), `false` when
/// a runtime governor will clip power (cap infeasibility downgrades to
/// a warning — e.g. the Random baseline always assigns maximum levels).
pub fn lint_schedule(
    model: &dyn CoRunModel,
    schedule: &Schedule,
    cap_w: Option<f64>,
    levels_planned: bool,
) -> Report {
    let ctx = LintContext {
        levels_planned,
        ..LintContext::for_schedule(model, schedule, cap_w)
    };
    schedule_linter().run(&ctx)
}

/// Structural schedule lints only (`SCH001`, `SCH005`): cheap enough
/// for debug assertions on every scheduler output.
pub fn lint_schedule_structure(model: &dyn CoRunModel, schedule: &Schedule) -> Report {
    let mut linter = Linter::new();
    linter.register(Box::new(schedule::CompletenessPass));
    linter.register(Box::new(schedule::LevelRangePass));
    linter.run(&LintContext::for_schedule(model, schedule, None))
}

/// Lint a schedule together with an externally reported makespan
/// (`SCH004` checks the claim against the lower bound).
pub fn lint_run_report(
    model: &dyn CoRunModel,
    schedule: &Schedule,
    cap_w: Option<f64>,
    levels_planned: bool,
    reported_makespan_s: f64,
) -> Report {
    let ctx = LintContext {
        levels_planned,
        reported_makespan_s: Some(reported_makespan_s),
        ..LintContext::for_schedule(model, schedule, cap_w)
    };
    schedule_linter().run(&ctx)
}

fn schedule_linter() -> Linter {
    let mut linter = Linter::new();
    linter.register(Box::new(schedule::CompletenessPass));
    linter.register(Box::new(schedule::LevelRangePass));
    linter.register(Box::new(schedule::TheoremPass));
    linter.register(Box::new(schedule::CapFeasibilityPass));
    linter.register(Box::new(schedule::BoundPass));
    linter
}
