//! `SPC0xx` — workload-spec parsing and lints.
//!
//! A spec is a plain text file, one job per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! streamcluster            # one instance, default input
//! dwt2d x1.5               # one instance, input scaled 1.5x
//! lud x0.8 *3              # three instances at 0.8x input
//! ```
//!
//! This module (moved here from the CLI so every tool lints specs the
//! same way) offers two entry points: [`lint_spec`] is tolerant — it
//! collects *all* problems as diagnostics and returns whatever lines
//! still parsed — while [`parse_spec`] is strict and fails on the first
//! error, for call sites that just want jobs or a refusal.

use apu_sim::{FaultPlan, JobSpec, MachineConfig};
use kernels::{by_name, program_defs, with_input_scale};

use crate::diag::{Code, Diagnostic, Report};

/// Input scales outside this range are far from the calibrated Table I
/// workloads and get an SPC004 warning.
pub const SCALE_RANGE: (f64, f64) = (0.05, 20.0);

/// Instance counts above this get an SPC005 warning (the simulator is
/// fine, but a single spec line this wide is usually a typo).
pub const MAX_SANE_COUNT: usize = 64;

/// One parsed spec line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecLine {
    /// Program name (must exist in the calibrated suite).
    pub name: String,
    /// Input scale.
    pub scale: f64,
    /// Instance count.
    pub count: usize,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

/// Tolerant spec lint: parse what parses, report everything that does
/// not. Purely syntactic (SPC001, SPC002, SPC004–SPC006); resolve
/// program names with [`lint_spec_programs`] or go through
/// [`lint_spec_full`].
pub fn lint_spec(text: &str) -> (Vec<SpecLine>, Report) {
    let mut lines = Vec::new();
    let mut report = Report::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let loc = format!("spec:{lineno}");
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("@chaos") {
            // Fault-plan directives ride along in specs; they are linted
            // separately by [`lint_chaos`] (SRV001) and are not jobs.
            continue;
        }
        if let Some(directive) = line
            .split_whitespace()
            .next()
            .filter(|t| t.starts_with('@'))
        {
            report.push(
                Diagnostic::new(
                    Code::Spc001,
                    loc.clone(),
                    format!("unknown directive `{directive}`"),
                )
                .with_help("the only recognized directive is `@chaos key=value ...`"),
            );
            continue;
        }
        let mut name = None;
        let mut scale = 1.0;
        let mut count = 1usize;
        let mut ok = true;
        for tok in line.split_whitespace() {
            if let Some(s) = tok.strip_prefix('x') {
                match s.parse::<f64>() {
                    Ok(v) if v > 0.0 => scale = v,
                    Ok(v) => {
                        report.push(Diagnostic::new(
                            Code::Spc001,
                            loc.clone(),
                            format!("scale must be positive, got x{v}"),
                        ));
                        ok = false;
                    }
                    Err(_) => {
                        report.push(Diagnostic::new(
                            Code::Spc001,
                            loc.clone(),
                            format!("bad scale `{tok}`"),
                        ));
                        ok = false;
                    }
                }
            } else if let Some(c) = tok.strip_prefix('*') {
                match c.parse::<usize>() {
                    Ok(v) if v >= 1 => count = v,
                    _ => {
                        report.push(
                            Diagnostic::new(
                                Code::Spc001,
                                loc.clone(),
                                format!("bad count `{tok}`"),
                            )
                            .with_help("counts are written `*N` with N >= 1"),
                        );
                        ok = false;
                    }
                }
            } else if name.is_none() {
                name = Some(tok.to_owned());
            } else {
                report.push(
                    Diagnostic::new(
                        Code::Spc001,
                        loc.clone(),
                        format!("unexpected token `{tok}`"),
                    )
                    .with_help("a spec line is `name [xSCALE] [*COUNT]`"),
                );
                ok = false;
            }
        }
        let Some(name) = name else {
            report.push(Diagnostic::new(Code::Spc001, loc, "missing program name"));
            continue;
        };
        if !ok {
            continue;
        }
        if scale < SCALE_RANGE.0 || scale > SCALE_RANGE.1 {
            report.push(
                Diagnostic::new(
                    Code::Spc004,
                    loc.clone(),
                    format!(
                        "input scale x{scale} is far outside the calibrated range \
                         [x{}, x{}]",
                        SCALE_RANGE.0, SCALE_RANGE.1
                    ),
                )
                .with_help("predictions degrade away from the characterized inputs"),
            );
        }
        if count > MAX_SANE_COUNT {
            report.push(Diagnostic::new(
                Code::Spc005,
                loc.clone(),
                format!("{count} instances on one line (more than {MAX_SANE_COUNT}); typo?"),
            ));
        }
        if let Some(prev) = lines
            .iter()
            .find(|p: &&SpecLine| p.name == name && (p.scale - scale).abs() < 1e-12)
        {
            report.push(
                Diagnostic::new(
                    Code::Spc006,
                    loc.clone(),
                    format!("duplicate of line {} (`{} x{}`)", prev.line, name, scale),
                )
                .with_help("use `*N` on one line to ask for N instances"),
            );
        }
        lines.push(SpecLine {
            name,
            scale,
            count,
            line: lineno,
        });
    }
    if lines.is_empty() && !report.has_errors() {
        report.push(
            Diagnostic::new(Code::Spc002, "spec", "spec contains no jobs")
                .with_help("add at least one `name [xSCALE] [*COUNT]` line"),
        );
    }
    (lines, report)
}

/// SPC003: check every parsed line names a program in the calibrated
/// suite.
pub fn lint_spec_programs(lines: &[SpecLine]) -> Report {
    let known: Vec<&str> = program_defs().iter().map(|d| d.name).collect();
    let mut report = Report::new();
    for l in lines {
        if !known.contains(&l.name.as_str()) {
            report.push(
                Diagnostic::new(
                    Code::Spc003,
                    format!("spec:{}", l.line),
                    format!("unknown program `{}`", l.name),
                )
                .with_help(format!("calibrated programs: {}", known.join(", "))),
            );
        }
    }
    report
}

/// SRV001: lint the `@chaos` fault-plan directives embedded in a spec.
/// Returns the accumulated [`FaultPlan`] when every directive parses
/// (and at least one `@chaos` line exists), plus the report.
pub fn lint_chaos(text: &str) -> (Option<FaultPlan>, Report) {
    let mut plan = FaultPlan::default();
    let mut report = Report::new();
    let mut saw = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let Some(rest) = line.strip_prefix("@chaos") else {
            continue;
        };
        saw = true;
        if let Err(e) = plan.apply_directive(rest) {
            report.push(
                Diagnostic::new(Code::Srv001, format!("spec:{}", idx + 1), e).with_help(
                    "chaos directives are `@chaos key=value ...` with keys seed, crash, \
                     meter-noise, meter-spike, job-fail, straggle (see docs/FAULTS.md)",
                ),
            );
        }
    }
    if !saw || report.has_errors() {
        (None, report)
    } else {
        (Some(plan), report)
    }
}

/// All spec lints at once: syntax, program-name resolution, and any
/// embedded `@chaos` directives.
pub fn lint_spec_full(text: &str) -> (Vec<SpecLine>, Report) {
    let (lines, mut report) = lint_spec(text);
    report.merge(lint_spec_programs(&lines));
    report.merge(lint_chaos(text).1);
    (lines, report)
}

/// Strict parse: the first error-severity finding aborts. Warnings are
/// tolerated silently — use [`lint_spec`] to see them.
pub fn parse_spec(text: &str) -> Result<Vec<SpecLine>, String> {
    let (lines, report) = lint_spec(text);
    if let Some(d) = report.errors().next() {
        return Err(d.to_string());
    }
    Ok(lines)
}

/// Materialize a parsed spec into jobs on `machine`.
pub fn build_jobs(machine: &MachineConfig, spec: &[SpecLine]) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for line in spec {
        let base = by_name(machine, &line.name)
            .ok_or_else(|| format!("unknown program `{}`", line.name))?;
        for k in 0..line.count {
            let mut j = if (line.scale - 1.0).abs() < 1e-12 {
                base.clone()
            } else {
                with_input_scale(&base, line.scale)
            };
            if line.count > 1 {
                j.name = format!("{}@{k}", j.name);
            }
            jobs.push(j);
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, scale: f64, count: usize, line: usize) -> SpecLine {
        SpecLine {
            name: name.into(),
            scale,
            count,
            line,
        }
    }

    #[test]
    fn parses_full_grammar() {
        let spec = parse_spec(
            "# batch\nstreamcluster\ndwt2d x1.5\nlud x0.8 *3\n\nhotspot *2 # trailing\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 4);
        assert_eq!(spec[0], line("streamcluster", 1.0, 1, 2));
        assert_eq!(spec[1], line("dwt2d", 1.5, 1, 3));
        assert_eq!(spec[2], line("lud", 0.8, 3, 4));
        assert_eq!(spec[3], line("hotspot", 1.0, 2, 6));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("lud xbad").is_err());
        assert!(parse_spec("lud *0").is_err());
        assert!(parse_spec("lud extra tokens").is_err());
        assert!(parse_spec("x1.5").is_err());
    }

    #[test]
    fn lint_collects_every_problem_at_once() {
        let (lines, report) =
            lint_spec_full("lud xbad\nnosuchprog\nlud x100\nlud *500\nhotspot\nhotspot\n");
        assert!(report.has(Code::Spc001), "{}", report.render_human());
        assert!(report.has(Code::Spc003));
        assert!(report.has(Code::Spc004));
        assert!(report.has(Code::Spc005));
        assert!(report.has(Code::Spc006));
        // the broken line is dropped, the rest parse
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn empty_spec_is_spc002() {
        let (lines, report) = lint_spec("# nothing here\n");
        assert!(lines.is_empty());
        assert_eq!(report.count(Code::Spc002), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn warnings_do_not_fail_strict_parse() {
        let spec = parse_spec("lud x15\n").unwrap();
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn builds_jobs_with_instancing() {
        let machine = MachineConfig::ivy_bridge();
        let spec = parse_spec("lud x0.5 *2\ndwt2d").unwrap();
        let jobs = build_jobs(&machine, &spec).unwrap();
        assert_eq!(jobs.len(), 3);
        assert!(jobs[0].name.contains("@0"));
        assert!(jobs[1].name.contains("@1"));
        assert_eq!(jobs[2].name, "dwt2d");
    }

    #[test]
    fn chaos_directives_are_not_jobs() {
        let (lines, report) = lint_spec("lud x0.5\n@chaos seed=1 job-fail=0.2\nhotspot\n");
        assert_eq!(lines.len(), 2, "{}", report.render_human());
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn unknown_directive_is_spc001() {
        let (lines, report) = lint_spec("@nochaos seed=1\nlud\n");
        assert_eq!(lines.len(), 1);
        assert!(report.has(Code::Spc001));
    }

    #[test]
    fn chaos_lint_accepts_valid_plans() {
        let (plan, report) = lint_chaos("lud\n@chaos seed=5 crash=0:10\n@chaos job-fail=0.3\n");
        assert!(report.is_empty(), "{}", report.render_human());
        let plan = plan.unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.job_fail_prob, 0.3);
    }

    #[test]
    fn chaos_lint_rejects_bad_directives_with_srv001() {
        let (plan, report) = lint_chaos("@chaos job-fail=2\n");
        assert!(plan.is_none());
        assert_eq!(report.count(Code::Srv001), 1);
        assert!(report.has_errors());
        // No @chaos line at all: nothing to lint, no plan either.
        let (plan, report) = lint_chaos("lud\n");
        assert!(plan.is_none());
        assert!(report.is_empty());
    }

    #[test]
    fn full_lint_gates_on_bad_chaos() {
        let (_lines, report) = lint_spec_full("lud\n@chaos crash=zero:5\n");
        assert!(report.has(Code::Srv001));
        assert!(report.has_errors());
        // Valid chaos sections pass the gate untouched.
        let (_lines, report) = lint_spec_full("lud\n@chaos crash=0:5\n");
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn unknown_program_is_an_error() {
        let machine = MachineConfig::ivy_bridge();
        let spec = parse_spec("doesnotexist").unwrap();
        assert!(build_jobs(&machine, &spec).is_err());
        assert!(lint_spec_programs(&spec).has(Code::Spc003));
    }
}
