//! Independent validation of proof-carrying schedule certificates
//! (CRT0xx).
//!
//! The trusted computing base here is deliberately tiny: this module
//! never consults a [`CoRunModel`](corun_core::CoRunModel), never runs
//! the evaluator, and never re-plans anything. A certificate carries
//! every number its claims rest on, so checking it is pure arithmetic —
//! O(segments + pairs + jobs) — against formulas re-derived *inline*
//! from the paper rather than shared with the optimizer. An optimizer
//! bug that leaks wrong facts into a certificate is caught by the
//! arithmetic; a tampered file is caught by the checksum before
//! semantics are even considered.
//!
//! Checks, in order:
//!
//! * **CRT001** — the file does not parse as a certificate at all;
//! * **CRT002** — the embedded FNV-1a checksum does not match the body;
//! * **CRT006** — the segments do not tile `[0, makespan]` contiguously,
//!   reference out-of-range jobs, or fail to cover every job;
//! * **CRT003** — a segment's claimed power disagrees with the paper's
//!   composition law (`P_pair = P_cpu + P_gpu − P_idle`, Sec. II) or
//!   exceeds the cap;
//! * **CRT004** — a co-run pair lacks its Co-Run Theorem witness, or the
//!   witness's `beneficial` claim contradicts `l_a·d_a < l_b`
//!   (Sec. IV-A);
//! * **CRT005** — the lower-bound witness is inconsistent
//!   (`T_low ≠ ½ Σ l'_i`) or the claimed makespan undercuts it
//!   (Sec. IV-B).

use crate::diag::{Code, Diagnostic, Report};
use corun_core::certificate::{parse_certificate, Certificate, ParsedCertificate};

/// Relative tolerance for re-derived arithmetic. Certificates round-trip
/// floats exactly, so honest files pass with margin to spare; the slack
/// only forgives final-ulp noise, never a wrong term.
const EPS: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// Check a certificate file's text end to end: parse (CRT001), checksum
/// (CRT002), then the semantic checks of [`check_certificate`].
pub fn check_certificate_text(text: &str) -> Report {
    let mut report = Report::new();
    let parsed = match parse_certificate(text) {
        Ok(p) => p,
        Err(e) => {
            report.push(Diagnostic::new(
                Code::Crt001,
                "certificate".to_string(),
                format!("not a valid certificate: {e}"),
            ));
            return report;
        }
    };
    report.merge(check_parsed(&parsed));
    report
}

/// Checksum gate plus semantic checks for an already-parsed certificate.
pub fn check_parsed(parsed: &ParsedCertificate) -> Report {
    let mut report = Report::new();
    if parsed.stored_fnv != parsed.computed_fnv {
        report.push(
            Diagnostic::new(
                Code::Crt002,
                "certificate [checksum]".to_string(),
                format!(
                    "checksum mismatch: file claims {:016x}, body hashes to {:016x}",
                    parsed.stored_fnv, parsed.computed_fnv
                ),
            )
            .with_help(
                "the certificate was edited after issuance; re-run `corun schedule --cert` \
                 to reissue it"
                    .to_string(),
            ),
        );
        // A tampered body makes every semantic verdict unreliable; stop.
        return report;
    }
    report.merge(check_certificate(&parsed.cert));
    report
}

/// The semantic checks (CRT003–CRT006) over certificate content.
pub fn check_certificate(cert: &Certificate) -> Report {
    let mut report = Report::new();
    check_tiling(cert, &mut report);
    check_power(cert, &mut report);
    check_pairs(cert, &mut report);
    check_bound(cert, &mut report);
    report
}

/// CRT006: segments must tile `[0, makespan]` contiguously, reference
/// only in-range jobs, and jointly cover every job in the batch.
fn check_tiling(cert: &Certificate, report: &mut Report) {
    let mut covered = vec![false; cert.jobs];
    if cert.segments.is_empty() && cert.makespan_s > EPS {
        report.push(Diagnostic::new(
            Code::Crt006,
            "certificate".to_string(),
            format!(
                "claims makespan {:.4}s but carries no segments",
                cert.makespan_s
            ),
        ));
        return;
    }
    for (k, s) in cert.segments.iter().enumerate() {
        let at = format!("certificate segment {k}");
        if !(s.t0.is_finite() && s.t1.is_finite()) || s.t1 < s.t0 - EPS {
            report.push(Diagnostic::new(
                Code::Crt006,
                at.clone(),
                format!("degenerate interval [{:?}, {:?}]", s.t0, s.t1),
            ));
        }
        if k == 0 && !close(s.t0, 0.0) {
            report.push(Diagnostic::new(
                Code::Crt006,
                at.clone(),
                format!("timeline starts at {:?}, not 0", s.t0),
            ));
        }
        if k > 0 && !close(cert.segments[k - 1].t1, s.t0) {
            report.push(Diagnostic::new(
                Code::Crt006,
                at.clone(),
                format!(
                    "gap or overlap: previous segment ends at {:?}, this one starts at {:?}",
                    cert.segments[k - 1].t1,
                    s.t0
                ),
            ));
        }
        for (side, slot) in [("cpu", s.cpu), ("gpu", s.gpu)] {
            if let Some((job, _)) = slot {
                if job >= cert.jobs {
                    report.push(Diagnostic::new(
                        Code::Crt006,
                        at.clone(),
                        format!("{side} side references job {job}, batch has {}", cert.jobs),
                    ));
                } else {
                    covered[job] = true;
                }
            }
        }
    }
    if let Some(last) = cert.segments.last() {
        if !close(last.t1, cert.makespan_s) {
            report.push(Diagnostic::new(
                Code::Crt006,
                format!("certificate segment {}", cert.segments.len() - 1),
                format!(
                    "timeline ends at {:?} but the claimed makespan is {:?}",
                    last.t1, cert.makespan_s
                ),
            ));
        }
    }
    for (job, seen) in covered.iter().enumerate() {
        if !seen {
            report.push(
                Diagnostic::new(
                    Code::Crt006,
                    "certificate".to_string(),
                    format!("job {job} never appears in any segment"),
                )
                .with_help("a certificate must cover the complete batch".to_string()),
            );
        }
    }
}

/// CRT003: each segment's claimed power must match the paper's
/// composition law for its occupancy and stay under the cap.
fn check_power(cert: &Certificate, report: &mut Report) {
    for (k, s) in cert.segments.iter().enumerate() {
        let at = format!("certificate segment {k}");
        // Re-derive the composition (Sec. II): sum of solo powers minus
        // the double-counted idle floor; a lone side is its solo power.
        let expected = match (s.cpu.is_some(), s.gpu.is_some()) {
            (true, true) => match (s.cpu_w, s.gpu_w) {
                (Some(c), Some(g)) => Some(c + g - cert.idle_w),
                _ => {
                    report.push(Diagnostic::new(
                        Code::Crt003,
                        at.clone(),
                        "co-run segment is missing its per-device power witnesses".to_string(),
                    ));
                    None
                }
            },
            (true, false) => s.cpu_w,
            (false, true) => s.gpu_w,
            (false, false) => Some(cert.idle_w),
        };
        if let Some(expected) = expected {
            if !close(s.power_w, expected) {
                report.push(Diagnostic::new(
                    Code::Crt003,
                    at.clone(),
                    format!(
                        "claimed power {:?} W does not follow from the witnesses (expected {:?} W)",
                        s.power_w, expected
                    ),
                ));
            }
        }
        if cert.cap_w.is_finite() && s.power_w > cert.cap_w + EPS * (1.0 + cert.cap_w) {
            report.push(
                Diagnostic::new(
                    Code::Crt003,
                    at,
                    format!(
                        "segment power {:?} W exceeds the cap {:?} W",
                        s.power_w, cert.cap_w
                    ),
                )
                .with_help(
                    "the certified schedule violates its own power cap; it must not be deployed"
                        .to_string(),
                ),
            );
        }
    }
}

/// CRT004: every co-run pairing needs a witness whose `beneficial` claim
/// follows from the Co-Run Theorem, re-derived here from the paper.
fn check_pairs(cert: &Certificate, report: &mut Report) {
    for (k, s) in cert.segments.iter().enumerate() {
        if let (Some(c), Some(g)) = (s.cpu, s.gpu) {
            if !cert.pairs.iter().any(|p| p.cpu == c && p.gpu == g) {
                report.push(Diagnostic::new(
                    Code::Crt004,
                    format!("certificate segment {k}"),
                    format!(
                        "co-run of job {} (cpu, level {}) with job {} (gpu, level {}) has no \
                         theorem witness",
                        c.0, c.1, g.0, g.1
                    ),
                ));
            }
        }
    }
    for (k, p) in cert.pairs.iter().enumerate() {
        let at = format!("certificate pair {k}");
        let facts = [p.l_cpu, p.d_cpu, p.l_gpu, p.d_gpu];
        if facts.iter().any(|v| !v.is_finite() || *v < 0.0) {
            report.push(Diagnostic::new(
                Code::Crt004,
                at,
                format!(
                    "witness facts out of domain: l_cpu={:?} d_cpu={:?} l_gpu={:?} d_gpu={:?}",
                    p.l_cpu, p.d_cpu, p.l_gpu, p.d_gpu
                ),
            ));
            continue;
        }
        // Co-Run Theorem, Sec. IV-A, re-derived: with `a` the side whose
        // co-run length `l·(1+d)` is larger, the pair beats sequential
        // execution iff `l_a · d_a < l_b`.
        let c_cpu = p.l_cpu * (1.0 + p.d_cpu);
        let c_gpu = p.l_gpu * (1.0 + p.d_gpu);
        let beneficial = if c_cpu >= c_gpu {
            p.l_cpu * p.d_cpu < p.l_gpu
        } else {
            p.l_gpu * p.d_gpu < p.l_cpu
        };
        if beneficial != p.beneficial {
            report.push(
                Diagnostic::new(
                    Code::Crt004,
                    at,
                    format!(
                        "witness claims beneficial = {}, but l_cpu={:?} d_cpu={:?} l_gpu={:?} \
                         d_gpu={:?} derive beneficial = {}",
                        p.beneficial, p.l_cpu, p.d_cpu, p.l_gpu, p.d_gpu, beneficial
                    ),
                )
                .with_help(
                    "the Co-Run Theorem precondition (Sec. IV-A) fails for this pairing"
                        .to_string(),
                ),
            );
        }
    }
}

/// CRT005: the lower-bound witness must satisfy `T_low = ½ Σ l'_i` and
/// the claimed makespan must not undercut it.
fn check_bound(cert: &Certificate, report: &mut Report) {
    let at = "certificate [bound]".to_string();
    if cert.bound.l_prime_s.len() != cert.jobs {
        report.push(Diagnostic::new(
            Code::Crt005,
            at,
            format!(
                "witness has {} l' entries for a {}-job batch",
                cert.bound.l_prime_s.len(),
                cert.jobs
            ),
        ));
        return;
    }
    if cert
        .bound
        .l_prime_s
        .iter()
        .any(|v| !v.is_finite() || *v < 0.0)
    {
        report.push(Diagnostic::new(
            Code::Crt005,
            at,
            "witness contains a negative or non-finite l'".to_string(),
        ));
        return;
    }
    // Sec. IV-B, re-derived: two processors cannot retire the summed
    // best-case demand faster than half of it.
    let derived = 0.5 * cert.bound.l_prime_s.iter().sum::<f64>();
    if !close(cert.bound.t_low_s, derived) {
        report.push(Diagnostic::new(
            Code::Crt005,
            at.clone(),
            format!(
                "witness claims T_low = {:?} but ½ Σ l' = {:?}",
                cert.bound.t_low_s, derived
            ),
        ));
    }
    if cert.makespan_s < cert.bound.t_low_s - EPS * (1.0 + cert.bound.t_low_s) {
        report.push(
            Diagnostic::new(
                Code::Crt005,
                at,
                format!(
                    "claimed makespan {:?}s undercuts the certified lower bound {:?}s",
                    cert.makespan_s, cert.bound.t_low_s
                ),
            )
            .with_help(
                "no schedule can beat T_low (Sec. IV-B); the makespan claim is impossible"
                    .to_string(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corun_core::certificate::certify;
    use corun_core::hcs::{hcs, HcsConfig};
    use corun_core::TableModel;

    fn model() -> TableModel {
        // The same synthetic-model recipe core's own tests use, built
        // through the public constructor so this crate stays decoupled
        // from core's test internals.
        let n = 6;
        let (kc, kg) = (4, 4);
        let base: Vec<(f64, f64, f64)> = (0..n)
            .map(|i| {
                let phase = i as f64 * 0.7;
                (
                    6.0 + 4.0 * (1.3 * phase).sin().abs(),
                    4.0 + 3.0 * (0.9 * phase).cos().abs(),
                    0.2 + 0.6 * (0.5 + 0.5 * (2.1 * phase).sin()),
                )
            })
            .collect();
        TableModel::build(
            (0..n).map(|i| format!("job{i}")).collect(),
            kc,
            kg,
            4.0,
            |i, dev, f| {
                let (c, g, _) = base[i];
                let t = match dev {
                    apu_sim::Device::Cpu => c,
                    apu_sim::Device::Gpu => g,
                };
                t * (kc as f64) / (f as f64 + 1.0)
            },
            |i, _dev, _f, j, _g| (base[i].2 * base[j].2).min(0.9),
            |_i, dev, f| match dev {
                apu_sim::Device::Cpu => 3.0 + 2.5 * f as f64,
                apu_sim::Device::Gpu => 5.0 + 3.0 * f as f64,
            },
        )
    }

    fn good() -> (TableModel, f64) {
        (model(), 24.0)
    }

    #[test]
    fn honest_certificates_pass_every_check() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let cert = certify(&m, &out.schedule, cap);
        let report = check_certificate_text(&cert.render());
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn garbage_is_crt001() {
        let report = check_certificate_text("not a certificate at all");
        assert!(report.has(Code::Crt001));
        assert!(report.has_errors());
    }

    #[test]
    fn tampering_with_any_witness_is_crt002() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        // Tamper with the makespan claim, a power witness, and a theorem
        // fact in turn: the checksum gate must refuse each one.
        for (needle, swap) in [
            ("makespan_s = ", "makespan_s = 0"),
            ("power_w = ", "power_w = 0"),
            ("d_cpu = ", "d_cpu = 9"),
        ] {
            let tampered = text.replacen(needle, swap, 1);
            assert_ne!(tampered, text, "tamper needle `{needle}` missed");
            let report = check_certificate_text(&tampered);
            assert!(report.has(Code::Crt002), "{}", report.render_human());
            assert!(report.has_errors());
        }
    }

    /// Re-seal a doctored certificate so semantic checks, not the
    /// checksum, must catch the lie.
    fn reseal(parsed: &mut corun_core::certificate::ParsedCertificate) -> Report {
        let text = parsed.cert.render();
        check_certificate_text(&text)
    }

    #[test]
    fn impossible_makespan_is_crt005_even_resealed() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        // Claim a makespan below the certified lower bound and adjust the
        // last segment to match, then reseal with a fresh checksum.
        let fake = parsed.cert.bound.t_low_s * 0.5;
        parsed.cert.makespan_s = fake;
        parsed.cert.segments.last_mut().unwrap().t1 = fake;
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt005), "{}", report.render_human());
    }

    #[test]
    fn broken_power_accounting_is_crt003() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        parsed.cert.segments[0].power_w = 0.0;
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt003), "{}", report.render_human());
    }

    #[test]
    fn lying_theorem_witness_is_crt004() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        assert!(!parsed.cert.pairs.is_empty(), "schedule has no co-runs");
        let p = &mut parsed.cert.pairs[0];
        p.beneficial = !p.beneficial;
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt004), "{}", report.render_human());
    }

    #[test]
    fn torn_timeline_and_missing_jobs_are_crt006() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        parsed.cert.segments[0].t1 += 0.5; // gap to the next segment
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt006), "{}", report.render_human());

        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        parsed.cert.jobs += 1; // job never covered
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt006), "{}", report.render_human());
    }

    #[test]
    fn cap_violation_is_crt003_with_deploy_warning() {
        let (m, cap) = good();
        let out = hcs(&m, &HcsConfig::with_cap(cap));
        let text = certify(&m, &out.schedule, cap).render();
        let mut parsed = corun_core::certificate::parse_certificate(&text).unwrap();
        // Lower the cap below the hottest honest segment; power
        // composition still holds, only the cap check can fire.
        let peak = parsed
            .cert
            .segments
            .iter()
            .map(|s| s.power_w)
            .fold(0.0_f64, f64::max);
        parsed.cert.cap_w = peak - 1.0;
        let report = reseal(&mut parsed);
        assert!(report.has(Code::Crt003), "{}", report.render_human());
    }
}
