//! `SIM0xx` — conversion of `apu_sim::sanitize` violation records into
//! diagnostics. Only built with the `sanitize` feature, which forwards
//! to `apu-sim/sanitize`.

use apu_sim::sanitize::{self, Violation};

use crate::diag::{Code, Diagnostic, Report};

/// Convert recorded violations into diagnostics.
pub fn diagnostics_from(violations: &[Violation]) -> Vec<Diagnostic> {
    violations
        .iter()
        .map(|v| match v {
            Violation::ClockWentBackwards { from_s, to_s } => Diagnostic::new(
                Code::Sim001,
                format!("sim t={from_s:.4}s"),
                format!("simulation clock went backwards: {from_s:.6} s -> {to_s:.6} s"),
            ),
            Violation::EnergyMismatch {
                at_s,
                avg_w,
                min_w,
                max_w,
            } => Diagnostic::new(
                Code::Sim002,
                format!("sim t={at_s:.4}s"),
                format!(
                    "window-average power {avg_w:.3} W outside the instantaneous envelope \
                     [{min_w:.3}, {max_w:.3}] W"
                ),
            )
            .with_help("energy integrated over the window does not match the samples"),
            Violation::CapExcursion {
                start_s,
                end_s,
                cap_w,
                peak_w,
            } => Diagnostic::new(
                Code::Sim003,
                format!("sim t={start_s:.4}..{end_s:.4}s"),
                format!(
                    "package power exceeded the {cap_w:.1} W cap (peak {peak_w:.2} W) beyond \
                     the governor reaction tolerance"
                ),
            )
            .with_help("the governor failed to clip power; check its bias and step policy"),
            Violation::NonPhysicalPower { power_w } => Diagnostic::new(
                Code::Sim004,
                "sim power model",
                format!("non-physical package power {power_w} W"),
            ),
            Violation::ZeroProgressWakeup { at_s } => Diagnostic::new(
                Code::Sim005,
                format!("sim t={at_s:.4}s"),
                format!(
                    "event loop livelocked: wake-ups stopped advancing the clock at t={at_s:.6} s"
                ),
            )
            .with_help("a component keeps rescheduling itself at the same timestamp"),
        })
        .collect()
}

/// Drain this thread's sanitizer store into a report.
pub fn drain() -> Report {
    Report::from_diagnostics(diagnostics_from(&sanitize::take()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_violation_kind_maps_to_its_code() {
        let diags = diagnostics_from(&[
            Violation::ClockWentBackwards {
                from_s: 1.0,
                to_s: 0.5,
            },
            Violation::EnergyMismatch {
                at_s: 2.0,
                avg_w: 50.0,
                min_w: 5.0,
                max_w: 10.0,
            },
            Violation::CapExcursion {
                start_s: 0.0,
                end_s: 3.0,
                cap_w: 15.0,
                peak_w: 22.0,
            },
            Violation::NonPhysicalPower { power_w: -4.0 },
            Violation::ZeroProgressWakeup { at_s: 7.0 },
        ]);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::Sim001,
                Code::Sim002,
                Code::Sim003,
                Code::Sim004,
                Code::Sim005
            ]
        );
        assert!(diags
            .iter()
            .all(|d| d.severity == crate::diag::Severity::Error));
    }

    #[test]
    fn drain_converts_and_clears() {
        sanitize::reset();
        sanitize::record(Violation::NonPhysicalPower { power_w: f64::NAN });
        let report = drain();
        assert_eq!(report.count(Code::Sim004), 1);
        assert!(drain().is_empty());
    }
}
