//! `SRV011` — the wall-clock / entropy source lint.
//!
//! Deterministic replay (`docs/REPLAY.md`) requires that scheduling
//! decision paths never read ambient time or entropy: every such input
//! must flow through the injected [`corun_core::Clock`] / `DetRng`
//! abstractions so a journal re-execution sees exactly the values the
//! live run saw. This pass scans Rust sources for direct reads
//! (`Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`,
//! `rand::random`) and reports each unmarked site as an error.
//!
//! Sanctioned I/O-edge reads (client retry deadlines, the TCP accept
//! loop, `WallClock` itself) carry an explicit marker on the same line
//! or within the three lines above the call:
//!
//! ```text
//! // corun-lint: allow(wall-clock) — why this read is an I/O edge
//! ```
//!
//! Run it as `corun lint --wall-clock [DIR]`; CI gates on it.

use crate::diag::{Code, Diagnostic, Report};
use std::path::{Path, PathBuf};

/// How many lines above a call a `corun-lint: allow(wall-clock)` marker
/// still covers (rustfmt may split a marked expression).
const MARKER_REACH: usize = 3;

/// The suppression marker.
pub const ALLOW_MARKER: &str = "corun-lint: allow(wall-clock)";

/// The forbidden call patterns, assembled at runtime so this file's own
/// string literals never flag themselves.
fn forbidden_patterns() -> Vec<String> {
    [
        ("Instant", "::now("),
        ("SystemTime", "::now("),
        ("thread_rng", "("),
        ("from_entropy", "("),
        ("rand::", "random"),
    ]
    .iter()
    .map(|(a, b)| format!("{a}{b}"))
    .collect()
}

/// Recursively lint every `.rs` file under `root` (a directory or a
/// single file) for unmarked wall-clock/entropy reads. `target` and
/// `benches` directories (benchmarks measure wall time by design) and
/// hidden entries are skipped.
pub fn lint_wall_clock(root: &Path) -> Report {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let patterns = forbidden_patterns();
    let mut report = Report::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        lint_text(file, &text, &patterns, &mut report);
    }
    report
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || (entry.path().is_dir() && name == "benches")
        {
            continue;
        }
        collect_rs_files(&entry.path(), out);
    }
}

fn lint_text(file: &Path, text: &str, patterns: &[String], report: &mut Report) {
    // Line number (1-based) of the most recent allow marker.
    let mut last_marker: Option<usize> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(ALLOW_MARKER) {
            last_marker = Some(lineno);
        }
        // Only code counts: cut the line at its first comment start so
        // doc comments discussing `Instant::now()` do not flag.
        let code = line.split("//").next().unwrap_or(line);
        for pat in patterns {
            if !code.contains(pat.as_str()) {
                continue;
            }
            let covered = last_marker.is_some_and(|m| lineno >= m && lineno - m <= MARKER_REACH);
            if covered {
                continue;
            }
            report.push(
                Diagnostic::new(
                    Code::Srv011,
                    format!("{}:{}", file.display(), lineno),
                    format!(
                        "direct `{}` read in a decision path breaks deterministic replay",
                        pat.trim_end_matches('(')
                    ),
                )
                .with_help(format!(
                    "route time/randomness through the injected Clock/DetRng, or mark a \
                     sanctioned I/O edge with `// {ALLOW_MARKER}`"
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(text: &str) -> Report {
        let mut report = Report::new();
        lint_text(Path::new("x.rs"), text, &forbidden_patterns(), &mut report);
        report
    }

    // Test fixtures assemble the forbidden patterns at runtime so this
    // file's own literals never flag under the workspace-wide scan.
    fn call(name: &str) -> String {
        format!("{name}::now()")
    }

    #[test]
    fn flags_unmarked_wall_clock_reads() {
        let report = lint_str(&format!(
            "fn f() {{ let t = std::time::{}; }}\n",
            call("Instant")
        ));
        assert_eq!(report.len(), 1);
        assert!(report.has(Code::Srv011));
        assert!(report.has_errors());
        assert!(report.diagnostics[0].location.ends_with("x.rs:1"));
    }

    #[test]
    fn allow_marker_suppresses_nearby_lines_only() {
        let now = call("Instant");
        let marked = format!("// {ALLOW_MARKER} — I/O edge\nlet t = {now};\n");
        assert!(lint_str(&marked).is_empty());
        // A marker more than MARKER_REACH lines above does not cover.
        let stale = format!("// {ALLOW_MARKER}\n\n\n\nlet t = {now};\n");
        assert_eq!(lint_str(&stale).len(), 1);
    }

    #[test]
    fn comments_do_not_flag() {
        assert!(lint_str(&format!(
            "// calling {} here would be wrong\n",
            call("Instant")
        ))
        .is_empty());
        assert!(lint_str(&format!(
            "//! never use {} in decisions\n",
            call("SystemTime")
        ))
        .is_empty());
    }

    #[test]
    fn entropy_sources_flag_too() {
        let report = lint_str(&format!(
            "let mut r = rand::{}();\nlet x: u8 = rand::{}();\n",
            "thread_rng", "random"
        ));
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn the_workspace_is_clean() {
        // The real gate CI runs: every crate source in this workspace
        // either routes time through Clock or marks its I/O edge.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
        let report = lint_wall_clock(&root);
        assert!(
            report.is_empty(),
            "unmarked wall-clock reads:\n{}",
            report.render_human()
        );
    }
}
