//! `SCH0xx` — lint passes over co-run schedules.
//!
//! Structural passes (SCH001, SCH005) inspect the schedule alone.
//! Semantic passes (SCH002–SCH004) evaluate it under the model; since
//! `corun_core::evaluate` assumes a structurally valid schedule, they
//! run on a sanitized copy (out-of-range and duplicate assignments
//! dropped) so that a schedule broken in several ways still surfaces
//! every defect class in one lint run.

use apu_sim::Device;
use corun_core::{corun_beneficial, evaluate, lower_bound, CoRunModel, Schedule};

use crate::diag::{Code, Diagnostic, Severity};
use crate::pass::{LintContext, LintPass};

/// Relative slack applied to bound and cap comparisons so evaluation
/// round-off never trips a lint.
const REL_TOL: f64 = 1e-6;

/// SCH001: every job assigned exactly once.
pub struct CompletenessPass;

impl LintPass for CompletenessPass {
    fn name(&self) -> &'static str {
        "schedule-completeness"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(model), Some(schedule)) = (ctx.model, ctx.schedule) else {
            return;
        };
        let cov = schedule.coverage(model.len());
        for &j in &cov.duplicates {
            out.push(
                Diagnostic::new(
                    Code::Sch001,
                    "schedule",
                    format!("job j{j} ({}) is scheduled more than once", model.name(j)),
                )
                .with_help(
                    "each job must appear exactly once across the cpu, gpu, and solo queues",
                ),
            );
        }
        for &j in &cov.missing {
            out.push(
                Diagnostic::new(
                    Code::Sch001,
                    "schedule",
                    format!("job j{j} ({}) is never scheduled", model.name(j)),
                )
                .with_help("append the job to a co-run queue or the solo tail"),
            );
        }
        for &j in &cov.out_of_range {
            out.push(Diagnostic::new(
                Code::Sch001,
                "schedule",
                format!(
                    "job id j{j} is out of range for a {}-job workload",
                    model.len()
                ),
            ));
        }
    }
}

/// SCH005: every frequency level indexes the device's DVFS ladder.
pub struct LevelRangePass;

impl LintPass for LevelRangePass {
    fn name(&self) -> &'static str {
        "schedule-level-range"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(model), Some(schedule)) = (ctx.model, ctx.schedule) else {
            return;
        };
        let report = |out: &mut Vec<Diagnostic>, loc: String, level: usize, device: Device| {
            let k = model.levels(device);
            out.push(
                Diagnostic::new(
                    Code::Sch005,
                    loc,
                    format!("frequency level L{level} is out of range for the {device} ladder"),
                )
                .with_help(format!(
                    "the {device} ladder has {k} levels: L0..L{}",
                    k.saturating_sub(1)
                )),
            );
        };
        for (device, queue) in [(Device::Cpu, &schedule.cpu), (Device::Gpu, &schedule.gpu)] {
            for (i, a) in queue.iter().enumerate() {
                if a.level >= model.levels(device) {
                    report(out, format!("schedule.{device}[{i}]"), a.level, device);
                }
            }
        }
        for (i, s) in schedule.solo_tail.iter().enumerate() {
            if s.level >= model.levels(s.device) {
                report(out, format!("schedule.solo[{i}]"), s.level, s.device);
            }
        }
    }
}

/// Copy of `schedule` with out-of-range jobs/levels and repeated job
/// occurrences removed, safe to hand to `corun_core::evaluate`.
fn sanitized(model: &dyn CoRunModel, schedule: &Schedule) -> Schedule {
    let n = model.len();
    let mut seen = vec![false; n];
    let mut keep = |job: usize, level: usize, device: Device| {
        let ok = job < n && level < model.levels(device) && !seen[job];
        if ok {
            seen[job] = true;
        }
        ok
    };
    let mut out = Schedule::new();
    out.cpu = schedule
        .cpu
        .iter()
        .copied()
        .filter(|a| keep(a.job, a.level, Device::Cpu))
        .collect();
    out.gpu = schedule
        .gpu
        .iter()
        .copied()
        .filter(|a| keep(a.job, a.level, Device::Gpu))
        .collect();
    out.solo_tail = schedule
        .solo_tail
        .iter()
        .copied()
        .filter(|s| keep(s.job, s.level, s.device))
        .collect();
    out
}

/// SCH002: warn about co-run pairs where the Co-Run Theorem says solo
/// execution would beat the co-run.
pub struct TheoremPass;

impl LintPass for TheoremPass {
    fn name(&self) -> &'static str {
        "schedule-corun-theorem"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(model), Some(schedule)) = (ctx.model, ctx.schedule) else {
            return;
        };
        let safe = sanitized(model, schedule);
        let eval = evaluate(model, &safe, None);
        let mut seen_pairs = Vec::new();
        for seg in &eval.segments {
            let (Some((cj, cl)), Some((gj, gl))) = (seg.cpu, seg.gpu) else {
                continue;
            };
            if seen_pairs.contains(&(cj, cl, gj, gl)) {
                continue;
            }
            seen_pairs.push((cj, cl, gj, gl));
            let l1 = model.standalone(cj, Device::Cpu, cl);
            let l2 = model.standalone(gj, Device::Gpu, gl);
            let d1 = model.degradation(cj, Device::Cpu, cl, gj, gl);
            let d2 = model.degradation(gj, Device::Gpu, gl, cj, cl);
            if !corun_beneficial(l1, d1, l2, d2) {
                out.push(
                    Diagnostic::new(
                        Code::Sch002,
                        format!("schedule pair (j{cj}@L{cl} cpu, j{gj}@L{gl} gpu)"),
                        format!(
                            "co-running {} with {} is predicted slower than running them \
                             sequentially (l_a*d_a >= l_b)",
                            model.name(cj),
                            model.name(gj),
                        ),
                    )
                    .with_help(
                        "Co-Run Theorem (Sec. IV-A): pair jobs so the larger co-run length \
                         satisfies l_a*d_a < l_b, or move one job to the solo tail",
                    ),
                );
            }
        }
    }
}

/// SCH003: segments whose modeled package power exceeds the cap.
///
/// An error when the schedule's levels are planned (the scheduler chose
/// them and owns cap feasibility); a warning when a runtime governor
/// owns the levels, because the static assignment is then only a hint.
pub struct CapFeasibilityPass;

impl LintPass for CapFeasibilityPass {
    fn name(&self) -> &'static str {
        "schedule-cap-feasibility"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(model), Some(schedule), Some(cap)) = (ctx.model, ctx.schedule, ctx.cap_w) else {
            return;
        };
        if !cap.is_finite() {
            return;
        }
        let safe = sanitized(model, schedule);
        let eval = evaluate(model, &safe, Some(cap));
        let severity = if ctx.levels_planned {
            Severity::Error
        } else {
            Severity::Warning
        };
        let mut seen = Vec::new();
        for seg in &eval.segments {
            if seg.power_w <= cap * (1.0 + REL_TOL) {
                continue;
            }
            let key = (seg.cpu, seg.gpu);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let describe = |side: Option<(usize, usize)>, dev: &str| match side {
                Some((j, l)) => format!("j{j}@L{l} {dev}"),
                None => format!("idle {dev}"),
            };
            let mut d = Diagnostic::new(
                Code::Sch003,
                format!(
                    "schedule segment ({}, {})",
                    describe(seg.cpu, "cpu"),
                    describe(seg.gpu, "gpu")
                ),
                format!(
                    "modeled package power {:.2} W exceeds the {:.2} W cap",
                    seg.power_w, cap
                ),
            )
            .with_severity(severity);
            d = if ctx.levels_planned {
                d.with_help(
                    "pick a feasible frequency pair (see corun_core::feasible_pair_settings) \
                     or raise the cap",
                )
            } else {
                d.with_help(
                    "levels are governor-owned: the runtime governor will clip power, but the \
                     static plan overshoots the cap",
                )
            };
            out.push(d);
        }
    }
}

/// SCH004: makespans below the theoretical lower bound.
///
/// Checks both the model's own evaluation of the schedule and, when the
/// context carries one, an externally reported makespan. Skipped for
/// structurally incomplete schedules — a schedule missing jobs trivially
/// "beats" the bound and SCH001 already covers it.
pub struct BoundPass;

impl LintPass for BoundPass {
    fn name(&self) -> &'static str {
        "schedule-lower-bound"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(model), Some(schedule)) = (ctx.model, ctx.schedule) else {
            return;
        };
        if !schedule.coverage(model.len()).is_complete() {
            return;
        }
        // The cap-constrained bound only binds schedules whose levels
        // were planned under that cap. A governor-owned schedule runs at
        // whatever levels it likes in the model (the governor clips power
        // at runtime), so only the uncapped bound is sound for it.
        let cap = if ctx.levels_planned {
            ctx.cap_w.unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };
        let bound = lower_bound(model, cap);
        let t_low = bound.t_low_s;
        let tol = t_low * REL_TOL + 1e-9;
        let eval = evaluate(model, schedule, ctx.cap_w);
        if eval.makespan_s < t_low - tol {
            out.push(
                Diagnostic::new(
                    Code::Sch004,
                    "schedule",
                    format!(
                        "evaluated makespan {:.3} s is below the theoretical lower bound {:.3} s",
                        eval.makespan_s, t_low
                    ),
                )
                .with_help("the model and the bound disagree; one of them is corrupted"),
            );
        }
        if let Some(reported) = ctx.reported_makespan_s {
            if reported < t_low - tol {
                out.push(
                    Diagnostic::new(
                        Code::Sch004,
                        "report.makespan",
                        format!(
                            "reported makespan {reported:.3} s is below the theoretical lower \
                             bound {t_low:.3} s (Sec. IV-B)",
                        ),
                    )
                    .with_help("no schedule can beat the bound; the report is not trustworthy"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_schedule;
    use corun_core::{Assignment, SoloRun, TableModel};

    /// Four jobs; pairing j0 with j1 is hostile (huge mutual
    /// degradation), everything else benign. Power: 4 W idle, 3 W per
    /// solo device at top level, scaling down with level.
    fn model() -> TableModel {
        let names: Vec<String> = (0..4).map(|i| format!("job{i}")).collect();
        TableModel::build(
            names,
            4,
            3,
            4.0,
            |i, dev, f| {
                let base = 10.0 + 5.0 * i as f64;
                let dev_mult = if dev == Device::Cpu { 1.0 } else { 0.8 };
                // higher level => faster
                base * dev_mult / (1.0 + 0.3 * f as f64)
            },
            |i, _dev, _f, j, _g| {
                if i + j == 1 {
                    2.5 // j0 vs j1: co-run strictly worse than sequential
                } else {
                    0.05
                }
            },
            |_i, dev, f| {
                let k = if dev == Device::Cpu { 4 } else { 3 };
                2.0 + 3.0 * (f as f64 + 1.0) / k as f64
            },
        )
    }

    fn complete_schedule() -> Schedule {
        Schedule {
            cpu: vec![Assignment { job: 0, level: 3 }],
            gpu: vec![Assignment { job: 2, level: 2 }],
            solo_tail: vec![
                SoloRun {
                    job: 1,
                    device: Device::Cpu,
                    level: 3,
                },
                SoloRun {
                    job: 3,
                    device: Device::Gpu,
                    level: 2,
                },
            ],
        }
    }

    #[test]
    fn clean_schedule_lints_clean() {
        let m = model();
        let report = lint_schedule(&m, &complete_schedule(), Some(100.0), true);
        assert!(report.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn sch001_duplicate_missing_and_out_of_range() {
        let m = model();
        let s = Schedule {
            cpu: vec![
                Assignment { job: 0, level: 0 },
                Assignment { job: 0, level: 1 },
            ],
            gpu: vec![Assignment { job: 9, level: 0 }],
            solo_tail: vec![SoloRun {
                job: 2,
                device: Device::Gpu,
                level: 0,
            }],
        };
        let report = lint_schedule(&m, &s, Some(100.0), true);
        // duplicate j0, missing j1 and j3, out-of-range j9
        assert_eq!(report.count(Code::Sch001), 4, "{}", report.render_human());
        assert!(report.has_errors());
    }

    #[test]
    fn sch005_level_out_of_range_everywhere() {
        let m = model();
        let s = Schedule {
            cpu: vec![Assignment { job: 0, level: 99 }],
            gpu: vec![Assignment { job: 1, level: 3 }], // gpu ladder has 3 levels: L0..L2
            solo_tail: vec![SoloRun {
                job: 2,
                device: Device::Cpu,
                level: 4,
            }],
        };
        let report = lint_schedule(&m, &s, None, true);
        assert_eq!(report.count(Code::Sch005), 3, "{}", report.render_human());
    }

    #[test]
    fn sch002_hostile_pair_is_warned() {
        let m = model();
        let s = Schedule {
            cpu: vec![Assignment { job: 0, level: 3 }],
            gpu: vec![Assignment { job: 1, level: 2 }],
            solo_tail: vec![
                SoloRun {
                    job: 2,
                    device: Device::Cpu,
                    level: 3,
                },
                SoloRun {
                    job: 3,
                    device: Device::Gpu,
                    level: 2,
                },
            ],
        };
        let report = lint_schedule(&m, &s, None, true);
        assert!(report.has(Code::Sch002), "{}", report.render_human());
        // theorem violations are warnings, not errors
        assert!(report.is_clean());
    }

    #[test]
    fn sch003_cap_infeasible_pair_severity_tracks_planning() {
        let m = model();
        let s = Schedule {
            cpu: vec![Assignment { job: 0, level: 3 }],
            gpu: vec![Assignment { job: 2, level: 2 }],
            solo_tail: vec![
                SoloRun {
                    job: 1,
                    device: Device::Cpu,
                    level: 3,
                },
                SoloRun {
                    job: 3,
                    device: Device::Gpu,
                    level: 2,
                },
            ],
        };
        // top-level pair power: 4 idle + 3 cpu + 3 gpu (minus idle shares)
        // => anything capped below that trips SCH003.
        let planned = lint_schedule(&m, &s, Some(5.0), true);
        assert!(planned.has(Code::Sch003), "{}", planned.render_human());
        assert!(planned.has_errors());
        let governed = lint_schedule(&m, &s, Some(5.0), false);
        assert!(governed.has(Code::Sch003));
        assert!(
            governed.is_clean(),
            "governor-owned levels downgrade to warning"
        );
    }

    #[test]
    fn sch004_reported_makespan_below_bound() {
        let m = model();
        let s = complete_schedule();
        let ctx = LintContext {
            reported_makespan_s: Some(0.001),
            ..LintContext::for_schedule(&m, &s, Some(100.0))
        };
        let report = crate::pass::Linter::with_default_passes().run(&ctx);
        assert!(report.has(Code::Sch004), "{}", report.render_human());
    }

    #[test]
    fn broken_structure_still_surfaces_semantic_lints() {
        let m = model();
        // duplicate j0 AND a hostile pair AND an out-of-range level:
        // one lint run reports all three classes.
        let s = Schedule {
            cpu: vec![
                Assignment { job: 0, level: 3 },
                Assignment { job: 0, level: 99 },
            ],
            gpu: vec![Assignment { job: 1, level: 2 }],
            solo_tail: vec![SoloRun {
                job: 2,
                device: Device::Cpu,
                level: 3,
            }],
        };
        let report = lint_schedule(&m, &s, None, true);
        assert!(report.has(Code::Sch001));
        assert!(report.has(Code::Sch005));
        assert!(report.has(Code::Sch002), "{}", report.render_human());
    }

    #[test]
    fn incomplete_schedule_skips_bound_check() {
        let m = model();
        let s = Schedule {
            cpu: vec![Assignment { job: 0, level: 3 }],
            ..Schedule::new()
        };
        let report = lint_schedule(&m, &s, Some(100.0), true);
        assert!(report.has(Code::Sch001));
        assert!(!report.has(Code::Sch004), "{}", report.render_human());
    }
}
