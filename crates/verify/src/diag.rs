//! The diagnostic type, stable code catalog, and report rendering.
//!
//! Every check in the workspace — schedule lints, config validation,
//! spec parsing, runtime sanitizers — reports through [`Diagnostic`], a
//! compiler-style record with a stable [`Code`], a [`Severity`], a
//! human-readable location, a message, and optional help text. Tools
//! collect diagnostics into a [`Report`] which renders either for humans
//! (rustc-style) or as JSON for machine consumption.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail a lint run.
    Warning,
    /// A violated invariant; `corun lint` exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// Codes are append-only: once shipped, a code keeps its meaning forever
/// so scripts can match on them. The catalog lives in
/// `docs/DIAGNOSTICS.md`; [`Code::invariant`] and [`Code::paper_ref`]
/// carry the same information programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Duplicate, missing, or out-of-range job assignment in a schedule.
    Sch001,
    /// Co-Run Theorem violation: a scheduled pair where solo execution
    /// would beat the co-run under the model.
    Sch002,
    /// Power-cap infeasible frequency pair: a schedule segment whose
    /// modeled package power exceeds the cap.
    Sch003,
    /// Reported makespan below the theoretical lower bound.
    Sch004,
    /// Frequency level out of range for the device's DVFS ladder.
    Sch005,
    /// Malformed DVFS frequency ladder in a machine config.
    Cfg001,
    /// Non-physical device parameters (compute rate, bandwidth, power).
    Cfg002,
    /// Inconsistent shared-memory model parameters.
    Cfg003,
    /// Bad package power or multiprogramming parameters.
    Cfg004,
    /// Bad simulation timing parameters (tick, power sample period).
    Cfg005,
    /// Performance-model surface fails leave-one-out cross-validation.
    Cfg006,
    /// Unknown or malformed machine-config override.
    Cfg007,
    /// Workload spec syntax error.
    Spc001,
    /// Workload spec contains no jobs.
    Spc002,
    /// Unknown program name in a workload spec.
    Spc003,
    /// Input scale far outside the calibrated range.
    Spc004,
    /// Excessive instance count on one spec line.
    Spc005,
    /// Duplicate spec line (same program and scale).
    Spc006,
    /// Simulation clock went backwards (runtime sanitizer).
    Sim001,
    /// Energy accounting mismatch: a window's average power left the
    /// [min, max] envelope of its instantaneous samples.
    Sim002,
    /// Sustained package-power excursion above the cap beyond the
    /// governor's reaction tolerance.
    Sim003,
    /// Non-physical package power (negative or non-finite).
    Sim004,
    /// Event-loop livelock: the engine saw a sustained run of wake-ups
    /// that did not advance the simulation clock.
    Sim005,
    /// Malformed `@chaos` fault-plan directive.
    Srv001,
    /// A machine crashed (injected or real); its in-flight jobs were
    /// evicted for rescheduling.
    Srv002,
    /// A dispatched job failed mid-run and will be retried.
    Srv003,
    /// A dispatched job straggled (ran slower than modeled).
    Srv004,
    /// The power meter was disturbed (noise or spike) — cap-governor
    /// reactions may be phantom.
    Srv005,
    /// A job exhausted its retry budget and was dead-lettered.
    Srv006,
    /// The service journal is unreadable, torn, or version-mismatched.
    Srv007,
    /// An oversized protocol frame was rejected.
    Srv008,
    /// Journal replay hit an inconsistent record (unknown id, duplicate
    /// completion, machine out of range) or could not rebuild a job.
    Srv009,
    /// Journal records are individually valid but causally out of order
    /// (e.g. `done` before `dispatch`); the journal is abandoned rather
    /// than replayed.
    Srv010,
    /// A scheduling decision path reads a wall-clock or entropy source
    /// directly (`Instant::now`, `SystemTime::now`, thread RNG) instead
    /// of the injected `Clock`/`DetRng`, breaking deterministic replay.
    Srv011,
    /// Model checking reached a state where an accepted job vanished:
    /// not queued, not running, not done, not dead-lettered.
    Mc0001,
    /// Model checking reached a state where one job occupies two device
    /// slots at once (double dispatch).
    Mc0002,
    /// Model checking reached a state whose journal replay disagrees
    /// with the in-memory state, or whose replay is not idempotent.
    Mc0003,
    /// Model checking reached a state whose counters (power/work books)
    /// disagree with the job table.
    Mc0004,
    /// Bounded exploration hit a depth or state budget before
    /// exhausting the scope; the verdict covers only the visited part.
    Mc0005,
    /// Certificate file is malformed or fails to parse.
    Crt001,
    /// Certificate checksum does not match its content (tampering or
    /// corruption).
    Crt002,
    /// A certificate segment's witnessed package power exceeds the cap,
    /// or its power arithmetic does not re-derive.
    Crt003,
    /// A certificate co-run pair witness fails the Co-Run Theorem
    /// precondition arithmetic.
    Crt004,
    /// The certificate lower-bound witness does not re-derive, or the
    /// claimed makespan is below the witnessed bound.
    Crt005,
    /// Certificate segments do not tile the makespan, or a job is
    /// missing from / duplicated in the segment accounting.
    Crt006,
    /// The cluster power cap cannot cover every shard's budget floor:
    /// partitioning would degrade and shards may be unable to admit
    /// any job.
    Flt001,
    /// Fleet topology is degenerate (zero shards, zero machines per
    /// shard, or a total machine count outside simulation-friendly
    /// bounds).
    Flt002,
    /// Work-stealing or budget-rebalance parameters are outside
    /// responsive bounds (e.g. a steal threshold so high imbalance is
    /// never corrected, or a rebalance cadence of zero).
    Flt003,
    /// The sum of live shard caps exceeds the cluster cap — the fleet
    /// budget invariant is broken.
    Flt004,
    /// Malformed `@netchaos` network-fault-plan directive.
    Flt005,
    /// Transport or circuit-breaker parameters are outside workable
    /// bounds (e.g. a dead threshold below the suspect threshold).
    Flt006,
    /// A shard's circuit breaker opened: consecutive transport failures
    /// crossed the dead threshold and the coordinator stopped routing
    /// to it.
    Flt007,
    /// A reply carrying a stale fencing epoch was rejected — an old
    /// shard incarnation answered after a newer one was observed.
    Flt008,
    /// The fleet coordinator journal is unreadable, torn, or corrupt.
    Flt009,
    /// Replay reached a journal snapshot whose recorded fingerprint
    /// disagrees with the fingerprint of the re-executed state.
    Rpl001,
    /// The terminal state of a replay disagrees with the live (or last
    /// checkpointed) state it should reproduce bit-identically.
    Rpl002,
    /// Re-applying a journal record produced a different transition than
    /// the journal recorded (divergent id, attempt, or refused
    /// transition).
    Rpl003,
    /// A journal snapshot's embedded state document does not decode.
    Rpl004,
}

impl Code {
    /// Every code, in catalog order.
    pub const ALL: [Code; 58] = [
        Code::Sch001,
        Code::Sch002,
        Code::Sch003,
        Code::Sch004,
        Code::Sch005,
        Code::Cfg001,
        Code::Cfg002,
        Code::Cfg003,
        Code::Cfg004,
        Code::Cfg005,
        Code::Cfg006,
        Code::Cfg007,
        Code::Spc001,
        Code::Spc002,
        Code::Spc003,
        Code::Spc004,
        Code::Spc005,
        Code::Spc006,
        Code::Sim001,
        Code::Sim002,
        Code::Sim003,
        Code::Sim004,
        Code::Sim005,
        Code::Srv001,
        Code::Srv002,
        Code::Srv003,
        Code::Srv004,
        Code::Srv005,
        Code::Srv006,
        Code::Srv007,
        Code::Srv008,
        Code::Srv009,
        Code::Srv010,
        Code::Srv011,
        Code::Mc0001,
        Code::Mc0002,
        Code::Mc0003,
        Code::Mc0004,
        Code::Mc0005,
        Code::Crt001,
        Code::Crt002,
        Code::Crt003,
        Code::Crt004,
        Code::Crt005,
        Code::Crt006,
        Code::Flt001,
        Code::Flt002,
        Code::Flt003,
        Code::Flt004,
        Code::Flt005,
        Code::Flt006,
        Code::Flt007,
        Code::Flt008,
        Code::Flt009,
        Code::Rpl001,
        Code::Rpl002,
        Code::Rpl003,
        Code::Rpl004,
    ];

    /// The stable textual form, e.g. `"SCH001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::Sch001 => "SCH001",
            Code::Sch002 => "SCH002",
            Code::Sch003 => "SCH003",
            Code::Sch004 => "SCH004",
            Code::Sch005 => "SCH005",
            Code::Cfg001 => "CFG001",
            Code::Cfg002 => "CFG002",
            Code::Cfg003 => "CFG003",
            Code::Cfg004 => "CFG004",
            Code::Cfg005 => "CFG005",
            Code::Cfg006 => "CFG006",
            Code::Cfg007 => "CFG007",
            Code::Spc001 => "SPC001",
            Code::Spc002 => "SPC002",
            Code::Spc003 => "SPC003",
            Code::Spc004 => "SPC004",
            Code::Spc005 => "SPC005",
            Code::Spc006 => "SPC006",
            Code::Sim001 => "SIM001",
            Code::Sim002 => "SIM002",
            Code::Sim003 => "SIM003",
            Code::Sim004 => "SIM004",
            Code::Sim005 => "SIM005",
            Code::Srv001 => "SRV001",
            Code::Srv002 => "SRV002",
            Code::Srv003 => "SRV003",
            Code::Srv004 => "SRV004",
            Code::Srv005 => "SRV005",
            Code::Srv006 => "SRV006",
            Code::Srv007 => "SRV007",
            Code::Srv008 => "SRV008",
            Code::Srv009 => "SRV009",
            Code::Srv010 => "SRV010",
            Code::Srv011 => "SRV011",
            Code::Mc0001 => "MC0001",
            Code::Mc0002 => "MC0002",
            Code::Mc0003 => "MC0003",
            Code::Mc0004 => "MC0004",
            Code::Mc0005 => "MC0005",
            Code::Crt001 => "CRT001",
            Code::Crt002 => "CRT002",
            Code::Crt003 => "CRT003",
            Code::Crt004 => "CRT004",
            Code::Crt005 => "CRT005",
            Code::Crt006 => "CRT006",
            Code::Flt001 => "FLT001",
            Code::Flt002 => "FLT002",
            Code::Flt003 => "FLT003",
            Code::Flt004 => "FLT004",
            Code::Flt005 => "FLT005",
            Code::Flt006 => "FLT006",
            Code::Flt007 => "FLT007",
            Code::Flt008 => "FLT008",
            Code::Flt009 => "FLT009",
            Code::Rpl001 => "RPL001",
            Code::Rpl002 => "RPL002",
            Code::Rpl003 => "RPL003",
            Code::Rpl004 => "RPL004",
        }
    }

    /// The severity a diagnostic with this code gets unless a pass
    /// overrides it (e.g. SCH003 downgrades to a warning when frequency
    /// levels are governor-owned rather than planned).
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::Sch002 | Code::Cfg006 | Code::Spc004 | Code::Spc005 | Code::Spc006 => {
                Severity::Warning
            }
            // Injected/observed fault events are expected during chaos
            // runs; only malformed plans (SRV001), lost work (SRV006),
            // and causally broken journals (SRV010, which must abandon
            // recovery) are errors.
            Code::Srv002
            | Code::Srv003
            | Code::Srv004
            | Code::Srv005
            | Code::Srv007
            | Code::Srv008
            | Code::Srv009 => Severity::Warning,
            // Incomplete exploration is a caveat, not a counterexample.
            Code::Mc0005 => Severity::Warning,
            // Sluggish steal/rebalance tuning degrades throughput but
            // breaks no invariant.
            Code::Flt003 => Severity::Warning,
            // Circuit opens and fenced stale replies are the partition
            // machinery *working*: observable events, not failures.
            Code::Flt007 | Code::Flt008 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line statement of the invariant the code enforces.
    pub fn invariant(&self) -> &'static str {
        match self {
            Code::Sch001 => "every job is assigned exactly once across cpu, gpu, and solo queues",
            Code::Sch002 => "co-run pairs satisfy the Co-Run Theorem benefit condition",
            Code::Sch003 => "modeled package power of every segment stays within the power cap",
            Code::Sch004 => "makespan(S) >= lower_bound(model, cap)",
            Code::Sch005 => "every frequency level indexes into the device's DVFS ladder",
            Code::Cfg001 => "DVFS ladders are non-empty, positive, and strictly increasing",
            Code::Cfg002 => "device compute/bandwidth/power parameters are physical",
            Code::Cfg003 => "shared-memory parameters are consistent and positive",
            Code::Cfg004 => "package power and multiprogramming parameters are sane",
            Code::Cfg005 => "simulation tick and power sample period are positive and ordered",
            Code::Cfg006 => "performance-model surfaces interpolate within tolerance (LOO)",
            Code::Cfg007 => "machine-config overrides name real fields with parseable values",
            Code::Spc001 => "workload spec lines follow `name [xSCALE] [*COUNT]`",
            Code::Spc002 => "a workload spec declares at least one job",
            Code::Spc003 => "every program name exists in the calibrated suite",
            Code::Spc004 => "input scales stay near the calibrated range",
            Code::Spc005 => "instance counts stay within simulation-friendly bounds",
            Code::Spc006 => "no two spec lines duplicate the same program and scale",
            Code::Sim001 => "the simulation event clock is monotonic",
            Code::Sim002 => "window-average power lies within the instantaneous min/max envelope",
            Code::Sim003 => {
                "package power never exceeds the cap beyond governor reaction tolerance"
            }
            Code::Sim004 => "package power is finite and non-negative",
            Code::Sim005 => "every simulation wake-up advances the event clock",
            Code::Srv001 => "`@chaos` directives follow the documented key=value grammar",
            Code::Srv002 => "machine crashes evict in-flight jobs for rescheduling, not loss",
            Code::Srv003 => "failed jobs are requeued within their retry budget",
            Code::Srv004 => "straggler slowdowns are recorded, not silently absorbed",
            Code::Srv005 => "power-meter disturbances are visible in the diagnostics stream",
            Code::Srv006 => "jobs that exhaust retries surface as dead-letter, never vanish",
            Code::Srv007 => "the service journal parses under its declared format version",
            Code::Srv008 => "protocol frames stay within the configured size bound",
            Code::Srv009 => "journal replay reconstructs a consistent service state",
            Code::Srv010 => {
                "journal records respect dispatch/completion causality and retry monotonicity"
            }
            Code::Mc0001 => "no accepted job is ever lost in any reachable service state",
            Code::Mc0002 => "no job occupies more than one device slot in any reachable state",
            Code::Mc0003 => "journal replay is idempotent and agrees with the in-memory state",
            Code::Mc0004 => {
                "service counters balance against the job table in every reachable state"
            }
            Code::Mc0005 => "bounded exploration exhausts the declared scope",
            Code::Crt001 => "certificates follow the documented text format",
            Code::Crt002 => "certificate content matches its embedded checksum",
            Code::Crt003 => {
                "every certified segment's witnessed power re-derives and respects the cap"
            }
            Code::Crt004 => "every certified co-run pair carries a valid Co-Run Theorem witness",
            Code::Crt005 => "the certified lower bound re-derives and the makespan respects it",
            Code::Crt006 => {
                "certified segments tile the makespan and account for every job exactly once"
            }
            Code::Flt001 => "the cluster power cap covers every shard's budget floor",
            Code::Flt002 => "the fleet has at least one shard and one machine per shard",
            Code::Flt003 => "steal and rebalance parameters keep the fleet responsive",
            Code::Flt004 => "shard power caps never sum past the cluster cap",
            Code::Flt005 => "`@netchaos` directives follow the documented key=value grammar",
            Code::Flt006 => "transport and circuit-breaker parameters are workable",
            Code::Flt007 => "circuit-breaker opens are visible in the diagnostics stream",
            Code::Flt008 => "replies from stale shard incarnations are fenced, never folded",
            Code::Flt009 => "the fleet journal parses under its declared format version",
            Code::Srv011 => {
                "scheduling decisions read time and randomness only through injected sources"
            }
            Code::Rpl001 => "replaying a journal prefix reproduces every snapshot fingerprint",
            Code::Rpl002 => "full journal replay reproduces the terminal state bit-identically",
            Code::Rpl003 => "every journal record re-applies to exactly the transition it recorded",
            Code::Rpl004 => "journal snapshots decode back into a service state",
        }
    }

    /// The paper section the invariant comes from, or "-" for
    /// implementation-level invariants.
    pub fn paper_ref(&self) -> &'static str {
        match self {
            Code::Sch001 => "Sec. IV (schedule definition)",
            Code::Sch002 => "Sec. IV-A (Co-Run Theorem)",
            Code::Sch003 => "Sec. II (power cap), Sec. IV-C",
            Code::Sch004 => "Sec. IV-B (lower bound)",
            Code::Sch005 => "Sec. II (DVFS levels)",
            Code::Cfg006 => "Sec. V (model validation)",
            Code::Sim003 => "Sec. II (power cap), Sec. VI",
            Code::Crt003 => "Sec. II (power cap), Sec. IV-C",
            Code::Crt004 => "Sec. IV-A (Co-Run Theorem)",
            Code::Crt005 => "Sec. IV-B (lower bound)",
            Code::Flt001 | Code::Flt004 => "Sec. II (power cap)",
            _ => "-",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code identifying the invariant.
    pub code: Code,
    /// Severity (defaults to [`Code::default_severity`]).
    pub severity: Severity,
    /// Where the problem is, e.g. `spec.txt:3` or `schedule.cpu[1]`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when there is something actionable to say.
    pub help: Option<String>,
}

impl Diagnostic {
    /// New diagnostic with the code's default severity.
    pub fn new(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attach help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Override the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// A collection of diagnostics from one lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, in the order the passes produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Report from a list of findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the run is clean enough to proceed: no error-severity
    /// findings (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of findings carrying `code`.
    pub fn count(&self, code: Code) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Append another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Push one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Rustc-style rendering for terminals, ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
            if let Some(help) = &d.help {
                out.push_str(&format!("  help: {help}\n"));
            }
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if errors == 0 && warnings == 0 {
            out.push_str("clean: no diagnostics\n");
        } else {
            out.push_str(&format!(
                "{} error{}, {} warning{}\n",
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            ));
        }
        out
    }

    /// JSON rendering: an array of objects with `code`, `severity`,
    /// `location`, `message`, and (when present) `help` fields.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"code\": \"{}\", \"severity\": \"{}\", \"location\": \"{}\", \"message\": \"{}\"",
                d.code,
                d.severity,
                json_escape(&d.location),
                json_escape(&d.message),
            ));
            if let Some(help) = &d.help {
                out.push_str(&format!(", \"help\": \"{}\"", json_escape(help)));
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert_eq!(c.as_str().len(), 6);
            assert!(!c.invariant().is_empty());
            assert!(!c.paper_ref().is_empty());
        }
        assert_eq!(seen.len(), Code::ALL.len());
    }

    #[test]
    fn severity_defaults() {
        assert_eq!(Code::Sch001.default_severity(), Severity::Error);
        assert_eq!(Code::Sch002.default_severity(), Severity::Warning);
        assert_eq!(Code::Sch003.default_severity(), Severity::Error);
        assert_eq!(Code::Spc006.default_severity(), Severity::Warning);
    }

    #[test]
    fn report_renders_human_and_json() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::Spc003, "spec.txt:2", "unknown program `nope`")
                .with_help("run `corun programs` for the list"),
        );
        r.push(Diagnostic::new(
            Code::Spc004,
            "spec.txt:3",
            "scale x100 is extreme",
        ));
        let human = r.render_human();
        assert!(human.contains("error[SPC003]: spec.txt:2: unknown program `nope`"));
        assert!(human.contains("help: run `corun programs`"));
        assert!(human.contains("1 error, 1 warning"));
        let json = r.render_json();
        assert!(json.contains("\"code\": \"SPC003\""));
        assert!(json.contains("\"severity\": \"warning\""));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        let r = Report::from_diagnostics(vec![Diagnostic::new(
            Code::Spc001,
            "a\"b",
            "line\nbreak\tand \\ slash",
        )]);
        let json = r.render_json();
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("line\\nbreak\\tand \\\\ slash"));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(r.is_empty());
        assert!(r.render_human().contains("clean"));
        assert_eq!(r.render_json().trim(), "[]");
    }
}
