//! The integrated co-scheduling runtime — the paper's prototype.
//!
//! `CoScheduleRuntime::new` performs the offline stage (standalone
//! profiling, micro-benchmark characterization, model materialization);
//! the scheduling methods then produce schedules in microseconds; the
//! execute methods run them on the simulator for ground-truth makespans
//! and power traces.

use crate::executor::{execute_default, execute_schedule, LevelPolicy};
use crate::modelbuild::build_table_model;
use apu_sim::{
    Bias, BiasedGovernor, FreqSetting, JobSpec, MachineConfig, NullGovernor, RunReport, SimError,
};
use corun_core::{
    default_partition, hcs, lower_bound, random_schedule, refine, BoundReport, DefaultPartition,
    HcsConfig, HcsOutcome, RefineConfig, Schedule, TableModel,
};
use perf_model::{
    characterize, probe_batch, profile_batch, CharacterizeConfig, JobProfile, LlcVulnerability,
    ProfileMethod, StagedPredictor,
};

/// Configuration of the runtime's offline stage and policies.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Package power cap, watts.
    pub cap_w: f64,
    /// How standalone profiles are collected.
    pub profile_method: ProfileMethod,
    /// Micro-benchmark characterization setup.
    pub characterization: CharacterizeConfig,
    /// Probability that the Random baseline leaves a job to run alone.
    pub random_solo_prob: f64,
    /// HCS+ refinement parameters (cap is filled in from `cap_w`).
    pub refine_random_swaps: usize,
    /// HCS+ cross-device swap samples.
    pub refine_cross_swaps: usize,
    /// Refinement RNG seed.
    pub refine_seed: u64,
    /// Run the O(N) LLC-vulnerability probe and fold its correction into
    /// the scheduler's model (our extension; the paper's model is
    /// bandwidth-only and blind to dwt2d-style LLC thrashing).
    pub llc_probe: bool,
    /// If set, cache the machine characterization under this directory
    /// (keyed by a machine+parameters fingerprint).
    pub cache_dir: Option<std::path::PathBuf>,
}

impl RuntimeConfig {
    /// The paper's setup: 15 W cap, measured profiles, 3x3-stage 11-point
    /// characterization.
    pub fn paper(cfg: &MachineConfig) -> Self {
        RuntimeConfig {
            cap_w: 15.0,
            profile_method: ProfileMethod::Measured,
            characterization: CharacterizeConfig::paper(cfg),
            random_solo_prob: 0.05,
            refine_random_swaps: 32,
            refine_cross_swaps: 32,
            refine_seed: 0x5eed,
            llc_probe: true,
            cache_dir: None,
        }
    }

    /// Coarse, fast setup for tests.
    pub fn fast(cfg: &MachineConfig) -> Self {
        let mut c = Self::paper(cfg);
        c.profile_method = ProfileMethod::Analytic;
        c.characterization = CharacterizeConfig::fast(cfg);
        c.characterization.grid_points = 4;
        c.characterization.micro_duration_s = 1.5;
        c.refine_random_swaps = 16;
        c.refine_cross_swaps = 16;
        c
    }
}

/// The assembled runtime for one machine and one batch of jobs.
pub struct CoScheduleRuntime {
    machine: MachineConfig,
    jobs: Vec<JobSpec>,
    config: RuntimeConfig,
    profiles: Vec<JobProfile>,
    predictor: StagedPredictor,
    vulnerabilities: Option<Vec<LlcVulnerability>>,
    model: TableModel,
}

impl CoScheduleRuntime {
    /// Run the offline stage and assemble the runtime.
    pub fn new(machine: MachineConfig, jobs: Vec<JobSpec>, config: RuntimeConfig) -> Self {
        let profiles = profile_batch(&machine, &jobs, config.profile_method);
        let stages = match &config.cache_dir {
            Some(dir) => {
                crate::cache::characterize_cached(&machine, &config.characterization, dir).0
            }
            None => characterize(&machine, &config.characterization),
        };
        let predictor = StagedPredictor::new(&machine, stages);
        let vulnerabilities = config
            .llc_probe
            .then(|| probe_batch(&machine, &predictor, &jobs, &profiles));
        let model = build_table_model(&machine, &profiles, &predictor, vulnerabilities.as_deref());
        CoScheduleRuntime {
            machine,
            jobs,
            config,
            profiles,
            predictor,
            vulnerabilities,
            model,
        }
    }

    /// The probed LLC vulnerabilities, if the probe ran.
    pub fn vulnerabilities(&self) -> Option<&[LlcVulnerability]> {
        self.vulnerabilities.as_deref()
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The job batch.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Standalone profiles (Table I data).
    pub fn profiles(&self) -> &[JobProfile] {
        &self.profiles
    }

    /// The staged-interpolation predictor.
    pub fn predictor(&self) -> &StagedPredictor {
        &self.predictor
    }

    /// The materialized scheduler-facing model.
    pub fn model(&self) -> &TableModel {
        &self.model
    }

    /// Run HCS.
    pub fn schedule_hcs(&self) -> HcsOutcome {
        let out = hcs(&self.model, &HcsConfig::with_cap(self.config.cap_w));
        self.debug_lint(&out.schedule, "hcs");
        out
    }

    /// Run HCS followed by the HCS+ refinement; returns the refined
    /// schedule.
    pub fn schedule_hcs_plus(&self) -> Schedule {
        let out = self.schedule_hcs();
        let rc = RefineConfig {
            cap_w: self.config.cap_w,
            random_swaps: self.config.refine_random_swaps,
            cross_swaps: self.config.refine_cross_swaps,
            seed: self.config.refine_seed,
            objective: corun_core::Objective::Makespan,
        };
        let s = refine(&self.model, &out.schedule, &rc).schedule;
        self.debug_lint(&s, "hcs+");
        s
    }

    /// One Random-baseline schedule.
    pub fn schedule_random(&self, seed: u64) -> Schedule {
        let s = random_schedule(&self.model, seed, self.config.random_solo_prob);
        self.debug_lint(&s, "random");
        s
    }

    /// The Default baseline's partition.
    pub fn schedule_default(&self) -> DefaultPartition {
        default_partition(&self.model)
    }

    /// The lower bound on the optimal makespan.
    pub fn lower_bound(&self) -> BoundReport {
        lower_bound(&self.model, self.config.cap_w)
    }

    /// Lint a schedule against this runtime's model and cap.
    ///
    /// `levels_planned` follows [`corun_verify::lint_schedule`]: pass
    /// `true` for HCS/HCS+ output (the scheduler owns cap feasibility)
    /// and `false` for Random/Default schedules executed under a
    /// reactive governor.
    pub fn lint_schedule(&self, schedule: &Schedule, levels_planned: bool) -> corun_verify::Report {
        corun_verify::lint_schedule(
            &self.model,
            schedule,
            Some(self.config.cap_w),
            levels_planned,
        )
    }

    /// In debug builds, panic if a scheduler emitted a structurally
    /// broken schedule (SCH001/SCH005) — always a bug in the algorithm,
    /// never a property of the workload.
    fn debug_lint(&self, schedule: &Schedule, who: &str) {
        if cfg!(debug_assertions) {
            let report = corun_verify::lint_schedule_structure(&self.model, schedule);
            debug_assert!(
                report.is_clean(),
                "{who} produced a structurally invalid schedule:\n{}",
                report.render_human()
            );
        }
    }

    /// Execute a planned schedule (HCS/HCS+): levels applied from the
    /// schedule, no reactive governor.
    ///
    /// Panics if the simulation stalls; use
    /// [`try_execute_planned`](Self::try_execute_planned) to surface
    /// the error instead.
    pub fn execute_planned(&self, schedule: &Schedule) -> RunReport {
        self.try_execute_planned(schedule)
            .expect("planned execution cannot stall")
    }

    /// Fallible variant of [`execute_planned`](Self::execute_planned).
    pub fn try_execute_planned(&self, schedule: &Schedule) -> Result<RunReport, SimError> {
        let mut gov = NullGovernor;
        execute_schedule(
            &self.machine,
            &self.jobs,
            schedule,
            &mut gov,
            LevelPolicy::Planned,
            self.initial_setting(),
        )
    }

    /// Execute a schedule with a reactive biased governor owning the clocks
    /// (the Random baseline's execution mode).
    ///
    /// Panics if the simulation stalls; use
    /// [`try_execute_governed`](Self::try_execute_governed) to surface
    /// the error instead.
    pub fn execute_governed(&self, schedule: &Schedule, bias: Bias) -> RunReport {
        self.try_execute_governed(schedule, bias)
            .expect("governed execution cannot stall")
    }

    /// Fallible variant of [`execute_governed`](Self::execute_governed).
    pub fn try_execute_governed(
        &self,
        schedule: &Schedule,
        bias: Bias,
    ) -> Result<RunReport, SimError> {
        let mut gov = self.governor(bias);
        execute_schedule(
            &self.machine,
            &self.jobs,
            schedule,
            &mut gov,
            LevelPolicy::GovernorOwned,
            self.machine.freqs.max_setting(),
        )
    }

    /// Execute the Default baseline (multiprogrammed CPU partition) with a
    /// biased governor.
    ///
    /// Panics if the simulation stalls; use
    /// [`try_execute_default`](Self::try_execute_default) to surface
    /// the error instead.
    pub fn execute_default(&self, partition: &DefaultPartition, bias: Bias) -> RunReport {
        self.try_execute_default(partition, bias)
            .expect("default execution cannot stall")
    }

    /// Fallible variant of [`execute_default`](Self::execute_default).
    pub fn try_execute_default(
        &self,
        partition: &DefaultPartition,
        bias: Bias,
    ) -> Result<RunReport, SimError> {
        let mut gov = self.governor(bias);
        execute_default(&self.machine, &self.jobs, partition, &mut gov)
    }

    /// Average ground-truth makespan of the Random baseline over `seeds`
    /// (the paper averages 20 seeds), executed with a GPU-biased governor.
    pub fn random_avg_makespan(&self, seeds: std::ops::Range<u64>) -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        for seed in seeds {
            let s = self.schedule_random(seed);
            total += self.execute_governed(&s, Bias::Gpu).makespan_s;
            count += 1;
        }
        total / count as f64
    }

    fn governor(&self, bias: Bias) -> BiasedGovernor {
        match bias {
            Bias::Gpu => BiasedGovernor::gpu_biased(self.config.cap_w),
            Bias::Cpu => BiasedGovernor::cpu_biased(self.config.cap_w),
        }
    }

    fn initial_setting(&self) -> FreqSetting {
        // Planned schedules set per-dispatch levels; start from the floor so
        // the brief pre-dispatch instant cannot violate the cap.
        self.machine.freqs.min_setting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corun_core::{evaluate, CoRunModel};

    fn small_runtime() -> CoScheduleRuntime {
        let machine = MachineConfig::ivy_bridge();
        let jobs: Vec<JobSpec> = kernels::rodinia_suite(&machine)
            .iter()
            .map(|j| kernels::with_input_scale(j, 0.12))
            .collect();
        let cfg = RuntimeConfig::fast(&machine);
        CoScheduleRuntime::new(machine, jobs, cfg)
    }

    #[test]
    fn pipeline_builds_and_schedules() {
        let rt = small_runtime();
        assert_eq!(rt.model().len(), 8);
        let out = rt.schedule_hcs();
        assert!(out.schedule.is_complete_for(8), "{}", out.schedule);
        let plus = rt.schedule_hcs_plus();
        assert!(plus.is_complete_for(8));
    }

    #[test]
    fn hcs_plus_not_worse_than_hcs_in_model() {
        let rt = small_runtime();
        let h = rt.schedule_hcs().schedule;
        let hp = rt.schedule_hcs_plus();
        let cap = Some(rt.config().cap_w);
        let mh = evaluate(rt.model(), &h, cap).makespan_s;
        let mhp = evaluate(rt.model(), &hp, cap).makespan_s;
        assert!(mhp <= mh + 1e-9);
    }

    #[test]
    fn planned_execution_completes_all_jobs() {
        let rt = small_runtime();
        let s = rt.schedule_hcs_plus();
        let r = rt.execute_planned(&s);
        assert_eq!(r.records.len(), 8);
    }

    #[test]
    fn hcs_beats_random_average_in_ground_truth() {
        let rt = small_runtime();
        let rand_avg = rt.random_avg_makespan(0..5);
        let hcs_span = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
        assert!(
            hcs_span < rand_avg,
            "HCS+ {hcs_span} must beat random average {rand_avg}"
        );
    }

    #[test]
    fn lower_bound_below_all_achieved_makespans() {
        let rt = small_runtime();
        let b = rt.lower_bound();
        let hcs_span = rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s;
        assert!(
            b.t_low_s <= hcs_span * 1.05,
            "bound {} vs {}",
            b.t_low_s,
            hcs_span
        );
    }

    #[test]
    fn default_partition_executes() {
        let rt = small_runtime();
        let p = rt.schedule_default();
        let r = rt.execute_default(&p, Bias::Gpu);
        assert_eq!(r.records.len(), 8);
    }

    #[test]
    fn scheduler_outputs_lint_clean() {
        let rt = small_runtime();
        let hcs = rt.lint_schedule(&rt.schedule_hcs().schedule, true);
        assert!(hcs.is_clean(), "{}", hcs.render_human());
        let plus = rt.lint_schedule(&rt.schedule_hcs_plus(), true);
        assert!(plus.is_clean(), "{}", plus.render_human());
        let random = rt.lint_schedule(&rt.schedule_random(7), false);
        assert!(random.is_clean(), "{}", random.render_human());
        let default = rt.schedule_default().to_schedule(rt.model());
        let default = rt.lint_schedule(&default, false);
        assert!(default.is_clean(), "{}", default.render_human());
    }

    #[test]
    fn try_execute_variants_agree_with_panicking_ones() {
        let rt = small_runtime();
        let s = rt.schedule_hcs_plus();
        let r = rt.try_execute_planned(&s).unwrap();
        assert_eq!(r.records.len(), 8);
        let r = rt.try_execute_governed(&s, Bias::Gpu).unwrap();
        assert_eq!(r.records.len(), 8);
        let p = rt.schedule_default();
        let r = rt.try_execute_default(&p, Bias::Gpu).unwrap();
        assert_eq!(r.records.len(), 8);
    }

    #[test]
    fn planned_execution_power_stays_near_cap() {
        let rt = small_runtime();
        let s = rt.schedule_hcs_plus();
        let r = rt.execute_planned(&s);
        let cap = rt.config().cap_w;
        // Planned levels are model-feasible; ground-truth power may exceed
        // the cap only slightly (model error), as in the paper's Figure 9.
        assert!(
            r.trace.max_w() <= cap + 2.5,
            "peak {} too far above cap {cap}",
            r.trace.max_w()
        );
    }
}
