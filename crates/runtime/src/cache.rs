//! On-disk caching of the per-machine characterization.
//!
//! Characterizing the co-run degradation space costs hundreds of
//! micro-benchmark co-runs, but depends only on the *machine* — not on the
//! batch. A deployed runtime therefore measures it once and reuses it; this
//! module keys the cached stages by a fingerprint of the machine
//! configuration and the characterization parameters, so any change to
//! either invalidates the cache.

use apu_sim::MachineConfig;
use perf_model::{characterize, load_stages, save_stages, CharacterizeConfig, Stage};
use std::path::{Path, PathBuf};

/// Version of the fingerprint input format.
///
/// The fingerprint hashes `Debug` renderings, which are not a stable
/// serialization: adding a field, renaming one, or a rustc change to derived
/// `Debug` output alters the rendering without any semantic change — or,
/// worse, a semantic change could in principle render identically. Folding an
/// explicit version into the hashed text gives us a manual override: bump
/// this constant whenever the *meaning* of the rendered configuration
/// changes, and every existing cache entry is invalidated at once.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// A stable fingerprint of the machine + characterization parameters.
///
/// FNV-1a over [`CACHE_FORMAT_VERSION`] plus the serde-debug rendering of
/// both structures: not cryptographic, just collision-resistant enough to
/// key cache files.
pub fn fingerprint(cfg: &MachineConfig, ccfg: &CharacterizeConfig) -> u64 {
    let text = format!("v{CACHE_FORMAT_VERSION}|{cfg:?}|{ccfg:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Cache file path for a fingerprint inside `dir`.
pub fn cache_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("corun-stages-{fp:016x}.txt"))
}

/// Load the characterization from `dir` if a valid cache exists; otherwise
/// characterize and write the cache. Returns the stages and whether they
/// came from the cache.
pub fn characterize_cached(
    cfg: &MachineConfig,
    ccfg: &CharacterizeConfig,
    dir: &Path,
) -> (Vec<Stage>, bool) {
    let fp = fingerprint(cfg, ccfg);
    let path = cache_path(dir, fp);
    if let Ok(stages) = load_stages(&path) {
        let expected = ccfg.cpu_stage_levels.len() * ccfg.gpu_stage_levels.len();
        if stages.len() == expected {
            return (stages, true);
        }
    }
    let stages = characterize(cfg, ccfg);
    if std::fs::create_dir_all(dir).is_ok() {
        // Caching is best-effort: failure to persist must not fail the run.
        let _ = save_stages(&path, &stages);
    }
    (stages, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("corun-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fast_cfg(cfg: &MachineConfig) -> CharacterizeConfig {
        let mut c = CharacterizeConfig::fast(cfg);
        c.grid_points = 3;
        c.micro_duration_s = 1.0;
        c
    }

    #[test]
    fn second_call_hits_the_cache() {
        let cfg = MachineConfig::ivy_bridge();
        let ccfg = fast_cfg(&cfg);
        let dir = tmpdir("hit");
        let (a, cached_a) = characterize_cached(&cfg, &ccfg, &dir);
        assert!(!cached_a, "first call must measure");
        let (b, cached_b) = characterize_cached(&cfg, &ccfg, &dir);
        assert!(cached_b, "second call must hit the cache");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.setting, y.setting);
            assert_eq!(x.surface, y.surface);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_machine_different_fingerprint() {
        let ivy = MachineConfig::ivy_bridge();
        let kav = MachineConfig::kaveri();
        let c1 = fast_cfg(&ivy);
        let c2 = fast_cfg(&kav);
        assert_ne!(fingerprint(&ivy, &c1), fingerprint(&kav, &c2));
        // parameter changes also invalidate
        let mut c3 = c1.clone();
        c3.grid_points = 4;
        assert_ne!(fingerprint(&ivy, &c1), fingerprint(&ivy, &c3));
    }

    /// Pins the exact fingerprint for a known configuration. If this test
    /// fails, a `Debug` rendering (or [`CACHE_FORMAT_VERSION`]) changed and
    /// every deployed cache is invalid — that is usually correct, but it must
    /// be a *noticed* decision: re-pin the value here after confirming the
    /// invalidation is intended.
    #[test]
    fn fingerprint_is_pinned_for_known_config() {
        let cfg = MachineConfig::ivy_bridge();
        let ccfg = fast_cfg(&cfg);
        assert_eq!(
            fingerprint(&cfg, &ccfg),
            0x9493eb04efbebbfb,
            "fingerprint input format changed; bump CACHE_FORMAT_VERSION \
             and re-pin (current: {:#018x})",
            fingerprint(&cfg, &ccfg)
        );
    }

    #[test]
    fn corrupt_cache_is_remeasured() {
        let cfg = MachineConfig::ivy_bridge();
        let ccfg = fast_cfg(&cfg);
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache_path(&dir, fingerprint(&cfg, &ccfg));
        std::fs::write(
            &path,
            "format = corun-stages\nversion = 1\nstages = garbage\n",
        )
        .unwrap();
        let (stages, cached) = characterize_cached(&cfg, &ccfg, &dir);
        assert!(!cached, "corrupt cache must be ignored");
        assert_eq!(stages.len(), 4);
        // and the rewrite fixed the file
        let (_, cached2) = characterize_cached(&cfg, &ccfg, &dir);
        assert!(cached2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
