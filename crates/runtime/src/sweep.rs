//! Structured parameter sweeps: run a set of scheduling methods across a
//! set of power caps (or machines) and collect a result table.
//!
//! The paper evaluates two workload sizes at one cap; deployments want the
//! whole frontier. These helpers are what the `power_cap_sweep` example and
//! the CLI's `sweep` subcommand are built on.

use crate::pipeline::{CoScheduleRuntime, RuntimeConfig};
use apu_sim::{Bias, JobSpec, MachineConfig};
use serde::{Deserialize, Serialize};

/// A scheduling method included in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Random baseline (average over a few seeds), GPU-biased governor.
    Random,
    /// Default baseline, GPU-biased governor.
    DefaultG,
    /// The paper's heuristic.
    Hcs,
    /// Heuristic plus refinement.
    HcsPlus,
}

impl Method {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Random => "random",
            Method::DefaultG => "default_g",
            Method::Hcs => "hcs",
            Method::HcsPlus => "hcs+",
        }
    }

    /// All methods in canonical order.
    pub const ALL: [Method; 4] = [
        Method::Random,
        Method::DefaultG,
        Method::Hcs,
        Method::HcsPlus,
    ];
}

/// One sweep cell: a method at a cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Power cap, watts.
    pub cap_w: f64,
    /// Method.
    pub method: Method,
    /// Ground-truth makespan, seconds.
    pub makespan_s: f64,
    /// Ground-truth energy, joules.
    pub energy_j: f64,
    /// Peak sampled power, watts.
    pub peak_power_w: f64,
}

/// Sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// All cells, in (cap, method) order.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// The cell for `(cap, method)`, if present.
    pub fn cell(&self, cap_w: f64, method: Method) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| (c.cap_w - cap_w).abs() < 1e-9 && c.method == method)
    }

    /// Render as an aligned text table (rows = caps, columns = methods).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut caps: Vec<f64> = self.cells.iter().map(|c| c.cap_w).collect();
        caps.sort_by(f64::total_cmp);
        caps.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "cap");
        for m in Method::ALL {
            let _ = write!(out, "{:>12}", m.name());
        }
        out.push('\n');
        for cap in caps {
            let _ = write!(out, "{cap:>5}W");
            for m in Method::ALL {
                match self.cell(cap, m) {
                    Some(c) => {
                        let _ = write!(out, "{:>11.1}s", c.makespan_s);
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Run the sweep: every method at every cap over the same workload.
/// A fresh runtime (profiling + characterization) is built per cap since
/// the cap changes the scheduler's feasible set; with `cache_dir` set in
/// `base`, characterization is measured only once.
pub fn cap_sweep(
    machine: &MachineConfig,
    jobs: &[JobSpec],
    base: &RuntimeConfig,
    caps_w: &[f64],
    methods: &[Method],
    random_seeds: u64,
) -> SweepResult {
    let mut cells = Vec::new();
    for &cap in caps_w {
        let mut cfg = base.clone();
        cfg.cap_w = cap;
        let rt = CoScheduleRuntime::new(machine.clone(), jobs.to_vec(), cfg);
        for &method in methods {
            let report = match method {
                Method::Random => {
                    // Makespan averaged over seeds; the energy/peak columns
                    // come from the last seed's run (representative, since
                    // the governor pins power near the cap regardless of
                    // the placement draw).
                    let mut last_report = None;
                    let mut total = 0.0;
                    for seed in 0..random_seeds {
                        let r = rt.execute_governed(&rt.schedule_random(seed), Bias::Gpu);
                        total += r.makespan_s;
                        last_report = Some(r);
                    }
                    let mut r = last_report.expect("at least one seed");
                    r.makespan_s = total / random_seeds as f64;
                    r
                }
                Method::DefaultG => rt.execute_default(&rt.schedule_default(), Bias::Gpu),
                Method::Hcs => rt.execute_planned(&rt.schedule_hcs().schedule),
                Method::HcsPlus => rt.execute_planned(&rt.schedule_hcs_plus()),
            };
            cells.push(SweepCell {
                cap_w: cap,
                method,
                makespan_s: report.makespan_s,
                energy_j: report.trace.energy_j(),
                peak_power_w: report.trace.max_w(),
            });
        }
    }
    SweepResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid_and_orders_methods() {
        let machine = MachineConfig::ivy_bridge();
        let jobs: Vec<JobSpec> = kernels::rodinia8(&machine)
            .jobs
            .iter()
            .map(|j| kernels::with_input_scale(j, 0.1))
            .collect();
        let base = RuntimeConfig::fast(&machine);
        let caps = [18.0, 12.0];
        let r = cap_sweep(&machine, &jobs, &base, &caps, &Method::ALL, 3);
        assert_eq!(r.cells.len(), 8);
        for &cap in &caps {
            let rand = r.cell(cap, Method::Random).unwrap().makespan_s;
            let plus = r.cell(cap, Method::HcsPlus).unwrap().makespan_s;
            assert!(plus < rand, "HCS+ beats random at {cap} W");
        }
        // Tighter cap is slower for the planned scheduler.
        let loose = r.cell(18.0, Method::HcsPlus).unwrap().makespan_s;
        let tight = r.cell(12.0, Method::HcsPlus).unwrap().makespan_s;
        assert!(tight > loose);
        let table = r.render();
        assert!(table.contains("hcs+"));
        assert!(table.contains("12W") || table.contains(" 12W"));
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let r = SweepResult {
            cells: vec![SweepCell {
                cap_w: 15.0,
                method: Method::Hcs,
                makespan_s: 100.0,
                energy_j: 1000.0,
                peak_power_w: 14.0,
            }],
        };
        let t = r.render();
        assert!(t.contains('-'));
        assert!(r.cell(15.0, Method::Random).is_none());
    }
}
