//! Ground-truth co-run measurement on the simulator — what the paper gets
//! by actually co-running programs on hardware. Used to validate the
//! predictive models (Figures 7 and 8) and to report true makespans.

use apu_sim::{
    run_pair, run_solo, run_with_background, Device, FreqSetting, JobSpec, MachineConfig,
    NullGovernor,
};

/// Ground truth for one ordered pair at one frequency setting.
#[derive(Debug, Clone)]
pub struct PairTruth {
    /// Steady-state co-run time of the CPU job (its co-runner kept running
    /// for the whole measurement).
    pub cpu_time_s: f64,
    /// Steady-state co-run time of the GPU job.
    pub gpu_time_s: f64,
    /// Steady-state degradation of the CPU job.
    pub cpu_deg: f64,
    /// Steady-state degradation of the GPU job.
    pub gpu_deg: f64,
    /// Mean package power while both jobs were running.
    pub corun_power_w: f64,
}

/// Measure the steady-state ground truth for `cpu_job` x `gpu_job` at
/// `setting`.
pub fn measure_pair_truth(
    cfg: &MachineConfig,
    cpu_job: &JobSpec,
    gpu_job: &JobSpec,
    setting: FreqSetting,
) -> PairTruth {
    let cpu_solo = run_solo(cfg, cpu_job, Device::Cpu, setting)
        .expect("solo")
        .time_s;
    let gpu_solo = run_solo(cfg, gpu_job, Device::Gpu, setting)
        .expect("solo")
        .time_s;
    let cpu_co = run_with_background(cfg, cpu_job, Device::Cpu, gpu_job, setting).expect("co");
    let gpu_co = run_with_background(cfg, gpu_job, Device::Gpu, cpu_job, setting).expect("co");

    // Power while both run: average the pair trace over the overlap window.
    let mut gov = NullGovernor;
    let pair = run_pair(cfg, cpu_job, gpu_job, setting, &mut gov).expect("pair");
    let overlap_end = pair.cpu_time_s.min(pair.gpu_time_s);
    let n = ((overlap_end / pair.trace.interval_s) as usize)
        .max(1)
        .min(pair.trace.len());
    let corun_power_w = if n > 0 {
        pair.trace.samples_w[..n].iter().sum::<f64>() / n as f64
    } else {
        0.0
    };

    PairTruth {
        cpu_time_s: cpu_co,
        gpu_time_s: gpu_co,
        cpu_deg: (cpu_co / cpu_solo - 1.0).max(0.0),
        gpu_deg: (gpu_co / gpu_solo - 1.0).max(0.0),
        corun_power_w,
    }
}

/// Measured standalone time (ground truth) of `job` on `device`.
pub fn measure_solo(
    cfg: &MachineConfig,
    job: &JobSpec,
    device: Device,
    setting: FreqSetting,
) -> f64 {
    run_solo(cfg, job, device, setting).expect("solo").time_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_for_hostile_pair_shows_degradation() {
        let cfg = MachineConfig::ivy_bridge();
        let s = cfg.freqs.max_setting();
        let sc = kernels::with_input_scale(&kernels::by_name(&cfg, "streamcluster").unwrap(), 0.15);
        let cfd = kernels::with_input_scale(&kernels::by_name(&cfg, "cfd").unwrap(), 0.15);
        let t = measure_pair_truth(&cfg, &cfd, &sc, s);
        // CPU-side contention at max frequency is mild for compute-leaning
        // CPU runs (consistent with Table I's streamcluster: 62.70 vs 59.71).
        assert!(t.cpu_deg > 0.002, "cpu deg {}", t.cpu_deg);
        assert!(t.gpu_deg > 0.03, "gpu deg {}", t.gpu_deg);
        assert!(t.corun_power_w > 10.0, "power {}", t.corun_power_w);
        assert!(t.cpu_time_s > 0.0 && t.gpu_time_s > 0.0);
    }

    #[test]
    fn truth_for_gentle_pair_is_mild() {
        let cfg = MachineConfig::ivy_bridge();
        let s = cfg.freqs.max_setting();
        let lud = kernels::with_input_scale(&kernels::by_name(&cfg, "lud").unwrap(), 0.15);
        let leu = kernels::with_input_scale(&kernels::by_name(&cfg, "leukocyte").unwrap(), 0.15);
        let t = measure_pair_truth(&cfg, &lud, &leu, s);
        assert!(t.cpu_deg < 0.15, "cpu deg {}", t.cpu_deg);
        assert!(t.gpu_deg < 0.15, "gpu deg {}", t.gpu_deg);
    }
}
