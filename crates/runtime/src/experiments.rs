//! Programmatic versions of the paper's headline studies, shared by the
//! experiment binaries and the test suite.

use crate::oracle::measure_pair_truth;
use crate::pipeline::CoScheduleRuntime;
use apu_sim::{Bias, FreqSetting, JobSpec, MachineConfig};
use crossbeam::thread;
use perf_model::{relative_error, ErrorHistogram, JobProfile, StagedPredictor};
use serde::{Deserialize, Serialize};

/// Results of a Figure-10/11-style speedup study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupStudy {
    /// Random baseline, averaged over seeds (GPU-biased governor).
    pub random_avg_s: f64,
    /// Default with the GPU-biased governor.
    pub default_g_s: f64,
    /// Default with the CPU-biased governor.
    pub default_c_s: f64,
    /// HCS (planned execution).
    pub hcs_s: f64,
    /// HCS+ (planned execution).
    pub hcs_plus_s: f64,
    /// The paper's lower bound.
    pub bound_s: f64,
}

impl SpeedupStudy {
    /// Speedup of `span` over the random baseline (the paper's y-axis).
    pub fn speedup_over_random(&self, span_s: f64) -> f64 {
        self.random_avg_s / span_s - 1.0
    }
}

/// Run the full speedup comparison on an assembled runtime.
pub fn speedup_study(rt: &CoScheduleRuntime, random_seeds: std::ops::Range<u64>) -> SpeedupStudy {
    let random_avg_s = rt.random_avg_makespan(random_seeds);
    let default = rt.schedule_default();
    SpeedupStudy {
        random_avg_s,
        default_g_s: rt.execute_default(&default, Bias::Gpu).makespan_s,
        default_c_s: rt.execute_default(&default, Bias::Cpu).makespan_s,
        hcs_s: rt.execute_planned(&rt.schedule_hcs().schedule).makespan_s,
        hcs_plus_s: rt.execute_planned(&rt.schedule_hcs_plus()).makespan_s,
        bound_s: rt.lower_bound().t_low_s,
    }
}

/// Figure-7-style model-accuracy study over every ordered pair of a batch
/// at one frequency setting. Ground truth comes from steady-state co-runs
/// on the simulator, fanned out over worker threads.
pub fn perf_model_errors(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    profiles: &[JobProfile],
    predictor: &StagedPredictor,
    setting: FreqSetting,
) -> ErrorHistogram {
    let n = jobs.len();
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let n_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let chunk = pairs.len().div_ceil(n_threads);
    let errors: Vec<Vec<f64>> = thread::scope(|s| {
        pairs
            .chunks(chunk)
            .map(|ch| {
                s.spawn(move |_| {
                    ch.iter()
                        .flat_map(|&(ci, gi)| {
                            let truth = measure_pair_truth(cfg, &jobs[ci], &jobs[gi], setting);
                            let pred = predictor.predict_pair_times(
                                cfg,
                                &profiles[ci],
                                setting.cpu,
                                &profiles[gi],
                                setting.gpu,
                            );
                            [
                                relative_error(pred.cpu, truth.cpu_time_s),
                                relative_error(pred.gpu, truth.gpu_time_s),
                            ]
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");
    let mut hist = ErrorHistogram::paper_buckets();
    for e in errors.into_iter().flatten() {
        hist.add(e);
    }
    hist
}

/// Best cap-feasible frequency setting for one ordered pair by predicted
/// conservative makespan; `None` if no setting fits the cap.
pub fn best_pair_setting(
    cfg: &MachineConfig,
    profiles: &[JobProfile],
    predictor: &StagedPredictor,
    cpu_job: usize,
    gpu_job: usize,
    cap_w: f64,
) -> Option<FreqSetting> {
    let mut best: Option<(FreqSetting, f64)> = None;
    for f in 0..cfg.freqs.cpu.len() {
        for g in 0..cfg.freqs.gpu.len() {
            let power = predictor
                .predict_power(Some((&profiles[cpu_job], f)), Some((&profiles[gpu_job], g)));
            if power > cap_w {
                continue;
            }
            let t = predictor.predict_pair_times(cfg, &profiles[cpu_job], f, &profiles[gpu_job], g);
            let span = t.cpu.max(t.gpu);
            if best.is_none_or(|(_, b)| span < b) {
                best = Some((FreqSetting::new(f, g), span));
            }
        }
    }
    best.map(|(s, _)| s)
}

/// Figure-8-style power-model error study over every ordered pair, each at
/// its best cap-feasible setting.
pub fn power_model_errors(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    profiles: &[JobProfile],
    predictor: &StagedPredictor,
    cap_w: f64,
) -> ErrorHistogram {
    let n = jobs.len();
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let n_threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let chunk = pairs.len().div_ceil(n_threads);
    let errors: Vec<Vec<f64>> = thread::scope(|s| {
        pairs
            .chunks(chunk)
            .map(|ch| {
                s.spawn(move |_| {
                    ch.iter()
                        .filter_map(|&(ci, gi)| {
                            let setting =
                                best_pair_setting(cfg, profiles, predictor, ci, gi, cap_w)?;
                            let truth = measure_pair_truth(cfg, &jobs[ci], &jobs[gi], setting);
                            let pred = predictor.predict_power(
                                Some((&profiles[ci], setting.cpu)),
                                Some((&profiles[gi], setting.gpu)),
                            );
                            Some(relative_error(pred, truth.corun_power_w))
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
    .expect("scope");
    let mut hist = ErrorHistogram::power_buckets();
    for e in errors.into_iter().flatten() {
        hist.add(e);
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RuntimeConfig;

    fn small_rt() -> CoScheduleRuntime {
        let machine = MachineConfig::ivy_bridge();
        let jobs: Vec<JobSpec> = kernels::rodinia8(&machine)
            .jobs
            .iter()
            .take(5)
            .map(|j| kernels::with_input_scale(j, 0.1))
            .collect();
        let mut cfg = RuntimeConfig::fast(&machine);
        cfg.cap_w = 15.0;
        CoScheduleRuntime::new(machine, jobs, cfg)
    }

    #[test]
    fn speedup_study_is_internally_consistent() {
        let rt = small_rt();
        let s = speedup_study(&rt, 0..3);
        assert!(s.hcs_plus_s <= s.random_avg_s, "HCS+ beats random");
        assert!(s.bound_s <= s.hcs_plus_s * 1.05, "bound below achieved");
        assert!(s.speedup_over_random(s.hcs_plus_s) >= 0.0);
        assert!((s.speedup_over_random(s.random_avg_s)).abs() < 1e-9);
    }

    #[test]
    fn perf_errors_cover_all_pairs() {
        let rt = small_rt();
        let h = perf_model_errors(
            rt.machine(),
            rt.jobs(),
            rt.profiles(),
            rt.predictor(),
            rt.machine().freqs.max_setting(),
        );
        assert_eq!(h.len(), 2 * 5 * 5, "two predictions per ordered pair");
        assert!(h.mean() < 0.6, "errors stay bounded: {}", h.mean());
    }

    #[test]
    fn best_pair_setting_respects_cap() {
        let rt = small_rt();
        let s = best_pair_setting(rt.machine(), rt.profiles(), rt.predictor(), 0, 1, 15.0)
            .expect("feasible setting exists");
        let p = rt.predictor().predict_power(
            Some((&rt.profiles()[0], s.cpu)),
            Some((&rt.profiles()[1], s.gpu)),
        );
        assert!(p <= 15.0 + 1e-9);
        // an impossible cap yields None
        assert!(
            best_pair_setting(rt.machine(), rt.profiles(), rt.predictor(), 0, 1, 0.5).is_none()
        );
    }

    #[test]
    fn power_errors_bounded() {
        let rt = small_rt();
        let h = power_model_errors(rt.machine(), rt.jobs(), rt.profiles(), rt.predictor(), 16.0);
        assert_eq!(h.len(), 25);
        assert!(h.mean() < 0.25, "power model accurate: {}", h.mean());
    }
}
