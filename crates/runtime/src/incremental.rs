//! A co-run model that grows one job at a time — the model a resident
//! scheduling service needs.
//!
//! [`crate::modelbuild::build_table_model`] materializes a dense
//! [`corun_core::TableModel`] over a *fixed* batch, which is the right
//! shape for offline scheduling but useless for a daemon whose job
//! universe grows with every submission: appending to the dense layout
//! means an `O(N^2 K^2)` rebuild per arrival. [`IncrementalModel`] keeps
//! the per-job standalone ladders dense (they are `O(K)` per job) and
//! computes pair degradations on demand from the same
//! [`StagedPredictor`] interpolation `build_table_model` bakes in, so
//! admitting job `N+1` costs one profiling pass and nothing else — and
//! both models return bit-identical numbers for the same inputs.

use apu_sim::{Device, FreqSetting, JobSpec, MachineConfig};
use corun_core::{CoRunModel, JobId};
use perf_model::{
    idle_package_power, measure_llc_vulnerability, profile_job, JobProfile, LlcVulnerability,
    ProfileMethod, StagedPredictor,
};
use std::sync::Arc;

/// A growable scheduler-facing co-run model (see module docs).
pub struct IncrementalModel {
    machine: MachineConfig,
    predictor: StagedPredictor,
    profile_method: ProfileMethod,
    llc_probe: bool,
    idle_power_w: f64,
    jobs: Vec<Arc<JobSpec>>,
    profiles: Vec<JobProfile>,
    vulnerabilities: Vec<LlcVulnerability>,
}

impl IncrementalModel {
    /// New empty model over `machine` using `predictor` for pair
    /// degradations. `llc_probe` enables the per-job LLC-vulnerability
    /// probe on admission (more accurate, but each probe costs a handful
    /// of co-run simulations).
    pub fn new(
        machine: MachineConfig,
        predictor: StagedPredictor,
        profile_method: ProfileMethod,
        llc_probe: bool,
    ) -> Self {
        let idle_power_w = idle_package_power(&machine);
        IncrementalModel {
            machine,
            predictor,
            profile_method,
            llc_probe,
            idle_power_w,
            jobs: Vec::new(),
            profiles: Vec::new(),
            vulnerabilities: Vec::new(),
        }
    }

    /// Profile `job` (and probe it, if enabled) and append it to the
    /// model. Returns its [`JobId`].
    pub fn push_job(&mut self, job: &JobSpec) -> JobId {
        let profile = profile_job(&self.machine, job, self.profile_method);
        if self.llc_probe {
            self.vulnerabilities.push(measure_llc_vulnerability(
                &self.machine,
                &self.predictor,
                job,
                &profile,
            ));
        }
        self.jobs.push(Arc::new(job.clone()));
        self.profiles.push(profile);
        self.jobs.len() - 1
    }

    /// The machine this model describes.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The job spec behind `i`.
    pub fn job(&self, i: JobId) -> &Arc<JobSpec> {
        &self.jobs[i]
    }

    /// All admitted job specs, indexed by [`JobId`].
    pub fn jobs(&self) -> &[Arc<JobSpec>] {
        &self.jobs
    }

    /// The standalone profile of job `i`.
    pub fn profile(&self, i: JobId) -> &JobProfile {
        &self.profiles[i]
    }
}

impl CoRunModel for IncrementalModel {
    fn len(&self) -> usize {
        self.profiles.len()
    }

    fn name(&self, i: JobId) -> &str {
        &self.profiles[i].name
    }

    fn levels(&self, device: Device) -> usize {
        match device {
            Device::Cpu => self.machine.freqs.cpu.len(),
            Device::Gpu => self.machine.freqs.gpu.len(),
        }
    }

    fn standalone(&self, i: JobId, device: Device, f: usize) -> f64 {
        self.profiles[i].time(device, f)
    }

    fn degradation(&self, i: JobId, device: Device, f_own: usize, j: JobId, g_other: usize) -> f64 {
        // Mirror of the closure in `build_table_model`: same predictor,
        // same LLC correction, evaluated lazily instead of pre-tabulated.
        let setting = match device {
            Device::Cpu => FreqSetting::new(f_own, g_other),
            Device::Gpu => FreqSetting::new(g_other, f_own),
        };
        let cpu_ghz = self.machine.freqs.ghz(Device::Cpu, setting);
        let gpu_ghz = self.machine.freqs.ghz(Device::Gpu, setting);
        let own = self.profiles[i].demand(device, f_own);
        let co = self.profiles[j].demand(device.other(), g_other);
        let base = self
            .predictor
            .degradation_at(device, own, co, cpu_ghz, gpu_ghz);
        let extra = if self.llc_probe {
            self.vulnerabilities[i].extra_degradation(device, co)
        } else {
            0.0
        };
        base + extra
    }

    fn solo_power(&self, i: JobId, device: Device, f: usize) -> f64 {
        self.profiles[i].power(device, f)
    }

    fn idle_power(&self) -> f64 {
        self.idle_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelbuild::build_table_model;
    use perf_model::{characterize, probe_batch, profile_batch, CharacterizeConfig};

    fn setup() -> (MachineConfig, StagedPredictor, Vec<JobSpec>) {
        let cfg = MachineConfig::ivy_bridge();
        let jobs: Vec<JobSpec> = kernels::rodinia8(&cfg)
            .jobs
            .iter()
            .take(4)
            .map(|j| kernels::with_input_scale(j, 0.15))
            .collect();
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 3;
        ccfg.micro_duration_s = 1.0;
        let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));
        (cfg, predictor, jobs)
    }

    #[test]
    fn matches_dense_table_model_exactly() {
        let (cfg, predictor, jobs) = setup();
        let profiles = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
        let dense = build_table_model(&cfg, &profiles, &predictor, None);

        let mut inc = IncrementalModel::new(cfg.clone(), predictor, ProfileMethod::Analytic, false);
        for job in &jobs {
            inc.push_job(job);
        }

        assert_eq!(inc.len(), dense.len());
        for d in Device::ALL {
            assert_eq!(inc.levels(d), dense.levels(d));
        }
        assert_eq!(inc.idle_power(), dense.idle_power());
        let kc = inc.levels(Device::Cpu);
        let kg = inc.levels(Device::Gpu);
        for i in 0..inc.len() {
            assert_eq!(inc.name(i), dense.name(i));
            for f in [0, kc / 2, kc - 1] {
                assert_eq!(
                    inc.standalone(i, Device::Cpu, f),
                    dense.standalone(i, Device::Cpu, f)
                );
                assert_eq!(
                    inc.solo_power(i, Device::Cpu, f),
                    dense.solo_power(i, Device::Cpu, f)
                );
            }
            for g in [0, kg / 2, kg - 1] {
                assert_eq!(
                    inc.standalone(i, Device::Gpu, g),
                    dense.standalone(i, Device::Gpu, g)
                );
                assert_eq!(
                    inc.solo_power(i, Device::Gpu, g),
                    dense.solo_power(i, Device::Gpu, g)
                );
            }
            for j in 0..inc.len() {
                for f in [0, kc - 1] {
                    for g in [0, kg - 1] {
                        assert_eq!(
                            inc.degradation(i, Device::Cpu, f, j, g),
                            dense.degradation(i, Device::Cpu, f, j, g),
                            "cpu deg mismatch at ({i},{f},{j},{g})"
                        );
                        assert_eq!(
                            inc.degradation(i, Device::Gpu, g, j, f),
                            dense.degradation(i, Device::Gpu, g, j, f),
                            "gpu deg mismatch at ({i},{g},{j},{f})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn llc_probe_matches_probed_dense_model() {
        let (cfg, predictor, jobs) = setup();
        let jobs = &jobs[..2];
        let profiles = profile_batch(&cfg, jobs, ProfileMethod::Analytic);
        let vulns = probe_batch(&cfg, &predictor, jobs, &profiles);
        let dense = build_table_model(&cfg, &profiles, &predictor, Some(&vulns));

        let mut inc = IncrementalModel::new(cfg.clone(), predictor, ProfileMethod::Analytic, true);
        for job in jobs {
            inc.push_job(job);
        }
        let kc = inc.levels(Device::Cpu) - 1;
        let kg = inc.levels(Device::Gpu) - 1;
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    inc.degradation(i, Device::Cpu, kc, j, kg),
                    dense.degradation(i, Device::Cpu, kc, j, kg)
                );
                assert_eq!(
                    inc.degradation(i, Device::Gpu, kg, j, kc),
                    dense.degradation(i, Device::Gpu, kg, j, kc)
                );
            }
        }
    }

    #[test]
    fn grows_one_job_at_a_time() {
        let (cfg, predictor, jobs) = setup();
        let mut inc = IncrementalModel::new(cfg, predictor, ProfileMethod::Analytic, false);
        assert!(inc.is_empty());
        for (k, job) in jobs.iter().enumerate() {
            let id = inc.push_job(job);
            assert_eq!(id, k);
            assert_eq!(inc.len(), k + 1);
            assert_eq!(inc.job(id).name, job.name);
        }
    }
}
