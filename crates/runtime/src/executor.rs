//! Execute schedules on the simulator — the ground-truth side of every
//! experiment.
//!
//! Three execution shapes cover all the paper's scenarios:
//!
//! * [`execute_schedule`] — replay a [`Schedule`] (HCS/HCS+/Random): one
//!   job per device, queues in order, then the solo tail strictly alone.
//!   Planned frequency levels are applied at dispatch when `set_levels` is
//!   on (HCS); otherwise the reactive governor owns the clocks (baselines).
//! * [`execute_default`] — the Default baseline: the GPU partition runs in
//!   order, the whole CPU partition is launched at t=0 and time-shared by
//!   the OS (the paper's Fig 11 explanation for why Default collapses at
//!   16 jobs).
//! * plain solo/pair helpers re-exported from `apu-sim`.

use apu_sim::{
    Device, Dispatch, DispatchCtx, DispatchJob, Dispatcher, Engine, FreqSetting, Governor, JobSpec,
    MachineConfig, RunOptions, RunReport, SimError,
};
use corun_core::{DefaultPartition, Schedule};
use std::collections::VecDeque;
use std::sync::Arc;

/// How the executor treats the schedule's frequency levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelPolicy {
    /// Apply each assignment's level at dispatch (planned schedules).
    Planned,
    /// Ignore planned levels; clocks start at maximum and only the
    /// governor moves them (baselines).
    GovernorOwned,
}

struct ScheduleDispatcher {
    jobs: Vec<Arc<JobSpec>>,
    cpu: VecDeque<corun_core::Assignment>,
    gpu: VecDeque<corun_core::Assignment>,
    solo: VecDeque<corun_core::SoloRun>,
    policy: LevelPolicy,
}

impl ScheduleDispatcher {
    fn corun_drained(&self) -> bool {
        self.cpu.is_empty() && self.gpu.is_empty()
    }
}

impl Dispatcher for ScheduleDispatcher {
    fn next(&mut self, device: Device, _now: f64, ctx: &DispatchCtx) -> Dispatch {
        let q = match device {
            Device::Cpu => &mut self.cpu,
            Device::Gpu => &mut self.gpu,
        };
        if let Some(a) = q.pop_front() {
            let set_freq = match self.policy {
                LevelPolicy::Planned => Some(ctx.setting.with_level(device, a.level)),
                LevelPolicy::GovernorOwned => None,
            };
            return Dispatch::Run(DispatchJob {
                job: self.jobs[a.job].clone(),
                tag: a.job,
                set_freq,
            });
        }
        if !self.corun_drained() {
            return Dispatch::Idle; // other queue still owns its device
        }
        // Solo tail: strictly one at a time — only dispatch when nothing
        // else is running anywhere.
        if ctx.running.cpu + ctx.running.gpu > 0 {
            return Dispatch::Idle;
        }
        match self.solo.front().copied() {
            Some(s) if s.device == device => {
                self.solo.pop_front();
                let set_freq = match self.policy {
                    LevelPolicy::Planned => Some(ctx.setting.with_level(device, s.level)),
                    LevelPolicy::GovernorOwned => None,
                };
                Dispatch::Run(DispatchJob {
                    job: self.jobs[s.job].clone(),
                    tag: s.job,
                    set_freq,
                })
            }
            Some(_) => Dispatch::Idle, // next solo job belongs to the other device
            None => Dispatch::Drained,
        }
    }
}

/// Execute `schedule` over `jobs` on the machine.
pub fn execute_schedule(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    schedule: &Schedule,
    governor: &mut dyn Governor,
    policy: LevelPolicy,
    initial: FreqSetting,
) -> Result<RunReport, SimError> {
    let engine = Engine::new(cfg);
    let mut disp = ScheduleDispatcher {
        jobs: jobs.iter().cloned().map(Arc::new).collect(),
        cpu: schedule.cpu.iter().copied().collect(),
        gpu: schedule.gpu.iter().copied().collect(),
        solo: schedule.solo_tail.iter().copied().collect(),
        policy,
    };
    engine.run(&mut disp, governor, &RunOptions::new(initial))
}

struct DefaultDispatcher {
    jobs: Vec<Arc<JobSpec>>,
    cpu_all: Vec<corun_core::JobId>,
    cpu_issued: usize,
    gpu: VecDeque<corun_core::JobId>,
}

impl Dispatcher for DefaultDispatcher {
    fn next(&mut self, device: Device, _now: f64, _ctx: &DispatchCtx) -> Dispatch {
        match device {
            Device::Cpu => {
                if self.cpu_issued < self.cpu_all.len() {
                    let id = self.cpu_all[self.cpu_issued];
                    self.cpu_issued += 1;
                    Dispatch::Run(DispatchJob {
                        job: self.jobs[id].clone(),
                        tag: id,
                        set_freq: None,
                    })
                } else if self.gpu.is_empty() {
                    Dispatch::Drained
                } else {
                    Dispatch::Idle
                }
            }
            Device::Gpu => match self.gpu.pop_front() {
                Some(id) => Dispatch::Run(DispatchJob {
                    job: self.jobs[id].clone(),
                    tag: id,
                    set_freq: None,
                }),
                None => {
                    if self.cpu_issued >= self.cpu_all.len() {
                        Dispatch::Drained
                    } else {
                        Dispatch::Idle
                    }
                }
            },
        }
    }
}

/// Execute the Default baseline: GPU partition sequential, CPU partition
/// launched all at once and time-shared (multiprogrammed).
pub fn execute_default(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    partition: &DefaultPartition,
    governor: &mut dyn Governor,
) -> Result<RunReport, SimError> {
    let engine = Engine::new(cfg);
    let mut disp = DefaultDispatcher {
        jobs: jobs.iter().cloned().map(Arc::new).collect(),
        cpu_all: partition.cpu.clone(),
        cpu_issued: 0,
        gpu: partition.gpu.iter().copied().collect(),
    };
    let mut opts = RunOptions::new(cfg.freqs.max_setting());
    opts.cpu_slots = partition.cpu.len().max(1);
    engine.run(&mut disp, governor, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::{BiasedGovernor, NullGovernor};
    use corun_core::{Assignment, SoloRun};

    fn cfg() -> MachineConfig {
        MachineConfig::ivy_bridge()
    }

    fn small_jobs(cfg: &MachineConfig) -> Vec<JobSpec> {
        // Scale the suite down so tests run fast.
        kernels::rodinia_suite(cfg)
            .iter()
            .map(|j| kernels::with_input_scale(j, 0.12))
            .collect()
    }

    #[test]
    fn executes_simple_schedule_completely() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 2, level: 15 }); // dwt2d on CPU
        s.gpu.push(Assignment { job: 0, level: 9 }); // streamcluster on GPU
        s.gpu.push(Assignment { job: 3, level: 9 });
        s.solo_tail.push(SoloRun {
            job: 1,
            device: Device::Gpu,
            level: 9,
        });
        let mut gov = NullGovernor;
        let r = execute_schedule(
            &cfg,
            &jobs,
            &s,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        assert_eq!(r.records.len(), 4);
        assert!(r.makespan_s > 0.0);
    }

    #[test]
    fn solo_tail_runs_alone() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 2, level: 15 });
        s.gpu.push(Assignment { job: 0, level: 9 });
        s.solo_tail.push(SoloRun {
            job: 1,
            device: Device::Gpu,
            level: 9,
        });
        s.solo_tail.push(SoloRun {
            job: 3,
            device: Device::Cpu,
            level: 15,
        });
        let mut gov = NullGovernor;
        let r = execute_schedule(
            &cfg,
            &jobs,
            &s,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        // Solo jobs must start only after every co-run job ended, and must
        // not overlap each other.
        let co_end = r
            .records
            .iter()
            .filter(|rec| rec.tag == 0 || rec.tag == 2)
            .map(|rec| rec.end_s)
            .fold(0.0, f64::max);
        let solo1 = r.record(1).unwrap();
        let solo3 = r.record(3).unwrap();
        assert!(solo1.start_s >= co_end - 1e-6);
        assert!(
            solo3.start_s >= solo1.end_s - 1e-6 || solo1.start_s >= solo3.end_s - 1e-6,
            "solo jobs must be disjoint"
        );
    }

    #[test]
    fn planned_levels_change_speed() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let mut fast = Schedule::new();
        fast.gpu.push(Assignment { job: 0, level: 9 });
        let mut slow = Schedule::new();
        slow.gpu.push(Assignment { job: 0, level: 0 });
        let mut gov = NullGovernor;
        let rf = execute_schedule(
            &cfg,
            &jobs,
            &fast,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        let rs = execute_schedule(
            &cfg,
            &jobs,
            &slow,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        assert!(rs.makespan_s > rf.makespan_s * 1.3);
    }

    #[test]
    fn governor_owned_ignores_levels() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let mut s = Schedule::new();
        s.gpu.push(Assignment { job: 0, level: 0 }); // planned slow...
        let mut gov = NullGovernor;
        let r = execute_schedule(
            &cfg,
            &jobs,
            &s,
            &mut gov,
            LevelPolicy::GovernorOwned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        let mut s2 = Schedule::new();
        s2.gpu.push(Assignment { job: 0, level: 9 });
        let r2 = execute_schedule(
            &cfg,
            &jobs,
            &s2,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        // ...but governor-owned execution stays at max: same time.
        assert!((r.makespan_s - r2.makespan_s).abs() / r2.makespan_s < 0.02);
    }

    #[test]
    fn default_multiprogram_launches_cpu_jobs_together() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let part = DefaultPartition {
            gpu: vec![0, 3],
            cpu: vec![1, 2, 4],
        };
        let mut gov = BiasedGovernor::gpu_biased(15.0);
        let r = execute_default(&cfg, &jobs, &part, &mut gov).unwrap();
        assert_eq!(r.records.len(), 5);
        // All CPU jobs start at t=0 (time-shared), unlike sequential queues.
        for id in [1, 2, 4] {
            assert!(
                r.record(id).unwrap().start_s < 1e-6,
                "job {id} must start at 0"
            );
        }
    }

    #[test]
    fn default_time_sharing_slower_than_sequential_cpu() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let part = DefaultPartition {
            gpu: vec![],
            cpu: vec![1, 2, 4, 5],
        };
        let mut gov = NullGovernor;
        let shared = execute_default(&cfg, &jobs, &part, &mut gov).unwrap();
        let mut seq = Schedule::new();
        for id in [1, 2, 4, 5] {
            seq.cpu.push(Assignment { job: id, level: 15 });
        }
        let sequential = execute_schedule(
            &cfg,
            &jobs,
            &seq,
            &mut gov,
            LevelPolicy::Planned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        assert!(
            shared.makespan_s > sequential.makespan_s * 1.1,
            "context switching + locality loss must cost: {} vs {}",
            shared.makespan_s,
            sequential.makespan_s
        );
    }

    #[test]
    fn governed_execution_respects_cap_after_settling() {
        let cfg = cfg();
        let jobs = small_jobs(&cfg);
        let mut s = Schedule::new();
        s.cpu.push(Assignment { job: 6, level: 15 });
        s.gpu.push(Assignment { job: 7, level: 9 });
        let cap = 15.0;
        let mut gov = BiasedGovernor::gpu_biased(cap);
        let r = execute_schedule(
            &cfg,
            &jobs,
            &s,
            &mut gov,
            LevelPolicy::GovernorOwned,
            cfg.freqs.max_setting(),
        )
        .unwrap();
        let n = r.trace.len();
        let late_max = r.trace.samples_w[n / 2..]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(late_max <= cap + 2.0, "late overshoot {late_max} too large");
    }
}
