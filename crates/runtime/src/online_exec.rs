//! Ground-truth execution of the online policy: an arrival-aware
//! dispatcher drives the simulator, making HCS-style decisions the moment
//! a device frees up or a job arrives (via the engine's `WaitUntil`
//! wakeups).

use apu_sim::{
    Device, Dispatch, DispatchCtx, DispatchJob, Dispatcher, Engine, FreqSetting, Governor, JobSpec,
    MachineConfig, RunOptions, RunReport, SimError,
};
use corun_core::{Arrival, CoRunModel, OnlinePolicy};
use std::sync::Arc;

struct OnlineDispatcher<'a> {
    jobs: Vec<Arc<JobSpec>>,
    model: &'a dyn CoRunModel,
    policy: &'a OnlinePolicy,
    /// Arrivals sorted by time, not yet admitted.
    pending: std::collections::VecDeque<Arrival>,
    ready: Vec<usize>,
    /// What this dispatcher believes is running: (job, level) per device.
    running: [Option<(usize, usize)>; 2],
}

impl OnlineDispatcher<'_> {
    fn admit(&mut self, now: f64) {
        while let Some(a) = self.pending.front() {
            if a.at_s <= now + 1e-9 {
                self.ready.push(a.job);
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }
}

impl Dispatcher for OnlineDispatcher<'_> {
    fn next(&mut self, device: Device, now_s: f64, ctx: &DispatchCtx) -> Dispatch {
        self.admit(now_s);
        // Sync belief: a device polling for work has nothing running on it.
        self.running[device.index()] = None;
        if ctx.running.cpu + ctx.running.gpu == 0 {
            self.running = [None, None];
        }

        let co = self.running[device.other().index()];
        match self.policy.pick(self.model, &self.ready, device, co) {
            Some(pick) => {
                self.ready.retain(|&j| j != pick.job);
                self.running[device.index()] = Some((pick.job, pick.level));
                Dispatch::Run(DispatchJob {
                    job: self.jobs[pick.job].clone(),
                    tag: pick.job,
                    set_freq: Some(ctx.setting.with_level(device, pick.level)),
                })
            }
            None => {
                if let Some(a) = self.pending.front() {
                    Dispatch::WaitUntil(a.at_s)
                } else if self.ready.is_empty() {
                    if self.pending.is_empty()
                        && self.ready.is_empty()
                        && ctx.running.cpu + ctx.running.gpu == 0
                        && self.running[device.other().index()].is_none()
                    {
                        Dispatch::Drained
                    } else {
                        Dispatch::Idle
                    }
                } else {
                    // Jobs are ready but the policy declined (steal guard or
                    // cap): wait for the co-runner to finish.
                    Dispatch::Idle
                }
            }
        }
    }
}

/// Execute an arrival trace with the online policy on the simulator.
pub fn execute_online(
    cfg: &MachineConfig,
    jobs: &[JobSpec],
    model: &dyn CoRunModel,
    policy: &OnlinePolicy,
    arrivals: &[Arrival],
    governor: &mut dyn Governor,
    initial: FreqSetting,
) -> Result<RunReport, SimError> {
    let mut sorted: Vec<Arrival> = arrivals.to_vec();
    sorted.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    let engine = Engine::new(cfg);
    let mut disp = OnlineDispatcher {
        jobs: jobs.iter().cloned().map(Arc::new).collect(),
        model,
        policy,
        pending: sorted.into_iter().collect(),
        ready: Vec::new(),
        running: [None, None],
    };
    engine.run(&mut disp, governor, &RunOptions::new(initial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CoScheduleRuntime, RuntimeConfig};
    use apu_sim::NullGovernor;
    use corun_core::HcsConfig;

    fn runtime() -> CoScheduleRuntime {
        let machine = MachineConfig::ivy_bridge();
        let jobs: Vec<JobSpec> = kernels::rodinia8(&machine)
            .jobs
            .iter()
            .map(|j| kernels::with_input_scale(j, 0.1))
            .collect();
        let mut cfg = RuntimeConfig::fast(&machine);
        cfg.cap_w = 15.0;
        CoScheduleRuntime::new(machine, jobs, cfg)
    }

    #[test]
    fn online_batch_completes_everything() {
        let rt = runtime();
        let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
        let arrivals: Vec<Arrival> = (0..8).map(|j| Arrival { job: j, at_s: 0.0 }).collect();
        let mut gov = NullGovernor;
        let r = execute_online(
            rt.machine(),
            rt.jobs(),
            rt.model(),
            &policy,
            &arrivals,
            &mut gov,
            rt.machine().freqs.min_setting(),
        )
        .unwrap();
        assert_eq!(r.records.len(), 8);
    }

    #[test]
    fn staggered_arrivals_delay_starts() {
        let rt = runtime();
        let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
        let arrivals = vec![
            Arrival { job: 0, at_s: 0.0 },
            Arrival { job: 2, at_s: 1.0 },
            Arrival { job: 5, at_s: 20.0 },
        ];
        let mut gov = NullGovernor;
        let r = execute_online(
            rt.machine(),
            rt.jobs(),
            rt.model(),
            &policy,
            &arrivals,
            &mut gov,
            rt.machine().freqs.min_setting(),
        )
        .unwrap();
        assert_eq!(r.records.len(), 3);
        let late = r.record(5).unwrap();
        assert!(
            late.start_s >= 20.0 - 1e-6,
            "job 5 started at {}",
            late.start_s
        );
    }

    #[test]
    fn gap_between_waves_idles_then_resumes() {
        let rt = runtime();
        let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
        let arrivals = vec![
            Arrival { job: 1, at_s: 0.0 },
            Arrival { job: 3, at_s: 60.0 }, // long after job 1 finishes
        ];
        let mut gov = NullGovernor;
        let r = execute_online(
            rt.machine(),
            rt.jobs(),
            rt.model(),
            &policy,
            &arrivals,
            &mut gov,
            rt.machine().freqs.min_setting(),
        )
        .unwrap();
        assert_eq!(r.records.len(), 2);
        let first = r.record(1).unwrap();
        let second = r.record(3).unwrap();
        assert!(first.end_s < 60.0);
        assert!(second.start_s >= 60.0 - 1e-6);
    }

    #[test]
    fn online_beats_gpu_fifo_in_ground_truth() {
        let rt = runtime();
        let policy = OnlinePolicy::new(rt.model(), HcsConfig::with_cap(15.0));
        let arrivals: Vec<Arrival> = (0..8)
            .map(|j| Arrival {
                job: j,
                at_s: j as f64 * 0.5,
            })
            .collect();
        let mut gov = NullGovernor;
        let online = execute_online(
            rt.machine(),
            rt.jobs(),
            rt.model(),
            &policy,
            &arrivals,
            &mut gov,
            rt.machine().freqs.min_setting(),
        )
        .unwrap();
        // FIFO on the GPU only (a reasonable naive online baseline).
        let kg = rt.machine().freqs.gpu.max_level();
        let mut fifo = corun_core::Schedule::new();
        for j in 0..8 {
            fifo.gpu.push(corun_core::Assignment { job: j, level: kg });
        }
        let fifo_run = rt.execute_planned(&fifo);
        assert!(
            online.makespan_s < fifo_run.makespan_s,
            "online {} vs fifo {}",
            online.makespan_s,
            fifo_run.makespan_s
        );
    }
}
