//! Materialize a dense [`TableModel`] for the schedulers from the
//! predictive models — standalone profiles plus the staged-interpolation
//! predictor. This is what makes the scheduling algorithms cheap at run
//! time: all `O(N^2 K^2)` degradations come from interpolation, not from
//! profiling runs.

use apu_sim::{Device, FreqSetting, MachineConfig};
use corun_core::TableModel;
use perf_model::{idle_package_power, JobProfile, LlcVulnerability, StagedPredictor};

/// Build the scheduler-facing model for a batch.
///
/// `vulnerabilities`, when provided (one entry per job, from
/// [`perf_model::probe_batch`]), add the LLC-thrashing correction on top of
/// the paper's bandwidth-only staged interpolation; pass `None` for the
/// paper-pure model.
pub fn build_table_model(
    cfg: &MachineConfig,
    profiles: &[JobProfile],
    predictor: &StagedPredictor,
    vulnerabilities: Option<&[LlcVulnerability]>,
) -> TableModel {
    if let Some(v) = vulnerabilities {
        assert_eq!(v.len(), profiles.len());
    }
    let names = profiles.iter().map(|p| p.name.clone()).collect();
    let k_cpu = cfg.freqs.cpu.len();
    let k_gpu = cfg.freqs.gpu.len();
    TableModel::build(
        names,
        k_cpu,
        k_gpu,
        idle_package_power(cfg),
        |i, device, level| profiles[i].time(device, level),
        |i, device, f_own, j, g_other| {
            // Convention: `i` on `device` at `f_own`; `j` on the other
            // device at `g_other`.
            let (setting, own_dev) = match device {
                Device::Cpu => (FreqSetting::new(f_own, g_other), Device::Cpu),
                Device::Gpu => (FreqSetting::new(g_other, f_own), Device::Gpu),
            };
            let cpu_ghz = cfg.freqs.ghz(Device::Cpu, setting);
            let gpu_ghz = cfg.freqs.ghz(Device::Gpu, setting);
            let own = profiles[i].demand(own_dev, f_own);
            let co = profiles[j].demand(own_dev.other(), g_other);
            let base = predictor.degradation_at(own_dev, own, co, cpu_ghz, gpu_ghz);
            let extra = vulnerabilities.map_or(0.0, |v| v[i].extra_degradation(own_dev, co));
            base + extra
        },
        |i, device, level| profiles[i].power(device, level),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use corun_core::CoRunModel;
    use perf_model::{characterize, profile_batch, CharacterizeConfig, ProfileMethod};

    fn setup() -> (MachineConfig, TableModel) {
        let cfg = MachineConfig::ivy_bridge();
        let jobs = kernels::rodinia_suite(&cfg);
        let profiles = profile_batch(&cfg, &jobs, ProfileMethod::Analytic);
        let mut ccfg = CharacterizeConfig::fast(&cfg);
        ccfg.grid_points = 4;
        ccfg.micro_duration_s = 1.5;
        let predictor = StagedPredictor::new(&cfg, characterize(&cfg, &ccfg));
        let model = build_table_model(&cfg, &profiles, &predictor, None);
        (cfg, model)
    }

    #[test]
    fn model_covers_batch_and_ladders() {
        let (cfg, m) = setup();
        assert_eq!(m.len(), 8);
        assert_eq!(m.levels(Device::Cpu), cfg.freqs.cpu.len());
        assert_eq!(m.levels(Device::Gpu), cfg.freqs.gpu.len());
    }

    #[test]
    fn standalone_times_match_table1() {
        let (cfg, m) = setup();
        let i = (0..8).find(|&i| m.name(i) == "streamcluster").unwrap();
        let t = m.standalone(i, Device::Gpu, cfg.freqs.gpu.max_level());
        assert!((t - 23.72).abs() < 0.5, "got {t}");
    }

    #[test]
    fn degradations_are_sane() {
        let (cfg, m) = setup();
        let kc = cfg.freqs.cpu.max_level();
        let kg = cfg.freqs.gpu.max_level();
        for i in 0..8 {
            for j in 0..8 {
                let d = m.degradation(i, Device::Cpu, kc, j, kg);
                assert!((0.0..1.5).contains(&d), "deg {d} out of range");
            }
        }
        // streamcluster (heavy) hurts more than dwt2d-on-GPU (light)
        let sc = (0..8).find(|&i| m.name(i) == "streamcluster").unwrap();
        let dwt = (0..8).find(|&i| m.name(i) == "dwt2d").unwrap();
        let cfd = (0..8).find(|&i| m.name(i) == "cfd").unwrap();
        let vs_heavy = m.degradation(cfd, Device::Cpu, kc, sc, kg);
        let vs_light = m.degradation(cfd, Device::Cpu, kc, dwt, kg);
        assert!(vs_heavy > vs_light, "{vs_heavy} vs {vs_light}");
    }

    #[test]
    fn power_composition_under_cap_at_low_levels() {
        let (_, m) = setup();
        let p = m.corun_power(Some((0, 0)), Some((1, 0)));
        assert!(p < 15.0, "lowest levels must fit the paper's cap, got {p}");
        let hi = m.corun_power(Some((0, 15)), Some((1, 9)));
        assert!(hi > 15.0, "highest levels must exceed it, got {hi}");
    }
}
