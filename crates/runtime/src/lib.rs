//! # runtime — the integrated co-scheduling runtime
//!
//! Glues the substrate ([`apu_sim`]), the workloads ([`kernels`]), the
//! predictive models ([`perf_model`]) and the algorithms ([`corun_core`])
//! into the prototype the paper evaluates:
//!
//! * [`modelbuild`] — materialize the scheduler-facing [`corun_core::TableModel`]
//!   from profiles + staged interpolation;
//! * [`executor`] — replay schedules on the simulator (planned levels or
//!   governor-owned clocks; Default's multiprogrammed CPU partition);
//! * [`oracle`] — ground-truth pair measurements for model validation;
//! * [`pipeline`] — [`CoScheduleRuntime`]: profile, characterize, schedule,
//!   execute, in one object;
//! * [`experiments`] — programmatic versions of the paper's studies;
//! * [`online_exec`] — ground-truth execution of the online policy;
//! * [`report`] — tables, Gantt timelines, run summaries;
//! * [`sweep`] — cap x method parameter sweeps;
//! * [`cache`] — fingerprint-keyed on-disk characterization caching;
//! * [`incremental`] — a growable [`corun_core::CoRunModel`] for resident
//!   services that admit jobs one at a time.

pub mod cache;
pub mod executor;
pub mod experiments;
pub mod incremental;
pub mod modelbuild;
pub mod online_exec;
pub mod oracle;
pub mod pipeline;
pub mod report;
pub mod sweep;

pub use cache::{cache_path, characterize_cached, fingerprint};
pub use executor::{execute_default, execute_schedule, LevelPolicy};
pub use experiments::{
    best_pair_setting, perf_model_errors, power_model_errors, speedup_study, SpeedupStudy,
};
pub use incremental::IncrementalModel;
pub use modelbuild::build_table_model;
pub use online_exec::execute_online;
pub use oracle::{measure_pair_truth, measure_solo, PairTruth};
pub use pipeline::{CoScheduleRuntime, RuntimeConfig};
pub use report::{full_report, gantt, job_table, summary};
pub use sweep::{cap_sweep, Method, SweepCell, SweepResult};
