//! Human-readable rendering of execution results: per-job tables, ASCII
//! Gantt timelines, and power summaries. Shared by the CLI, the examples,
//! and the experiment binaries.

use apu_sim::{run_stats, Device, RunReport};
use std::fmt::Write as _;

/// Render a per-job table sorted by start time.
pub fn job_table(report: &RunReport) -> String {
    let mut out = String::new();
    let mut recs = report.records.clone();
    recs.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>9} {:>9} {:>9}",
        "job", "dev", "start", "end", "duration"
    );
    for r in &recs {
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>8.1}s {:>8.1}s {:>8.1}s",
            r.name,
            r.device.name(),
            r.start_s,
            r.end_s,
            r.duration_s()
        );
    }
    out
}

/// Render a two-row ASCII Gantt chart (`width` columns). Each job's window
/// is filled with the first letter of its name; gaps are dots.
pub fn gantt(report: &RunReport, width: usize) -> String {
    let mut out = String::new();
    let span = report.makespan_s.max(1e-9);
    for device in Device::ALL {
        let mut line = vec![b'.'; width];
        for rec in report.records.iter().filter(|r| r.device == device) {
            let a = ((rec.start_s / span) * width as f64) as usize;
            let b = (((rec.end_s / span) * width as f64) as usize).min(width);
            let ch = rec
                .name
                .bytes()
                .next()
                .filter(u8::is_ascii_graphic)
                .unwrap_or(b'#');
            for c in line.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        let _ = writeln!(
            out,
            "{:>4} |{}|",
            device.name(),
            String::from_utf8_lossy(&line)
        );
    }
    let _ = writeln!(out, "      0s{:>width$.1}s", span, width = width - 1);
    out
}

/// One-line summary: makespan, utilization, power.
pub fn summary(report: &RunReport) -> String {
    run_stats(report).to_string()
}

/// Full report: summary + gantt + table.
pub fn full_report(report: &RunReport, width: usize) -> String {
    format!(
        "{}\n{}\n{}",
        summary(report),
        gantt(report, width),
        job_table(report)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::{FreqSetting, JobRecord, PowerTrace};

    fn sample() -> RunReport {
        let mut trace = PowerTrace::new(1.0);
        for w in [12.0, 14.0, 13.0] {
            trace.push(w);
        }
        RunReport {
            makespan_s: 30.0,
            records: vec![
                JobRecord {
                    tag: 0,
                    name: "alpha".into(),
                    device: Device::Cpu,
                    start_s: 0.0,
                    end_s: 12.0,
                },
                JobRecord {
                    tag: 1,
                    name: "beta".into(),
                    device: Device::Gpu,
                    start_s: 0.0,
                    end_s: 30.0,
                },
                JobRecord {
                    tag: 2,
                    name: "gamma".into(),
                    device: Device::Cpu,
                    start_s: 12.0,
                    end_s: 20.0,
                },
            ],
            trace,
            final_setting: FreqSetting::new(0, 0),
        }
    }

    #[test]
    fn table_lists_jobs_in_start_order() {
        let t = job_table(&sample());
        let alpha = t.find("alpha").unwrap();
        let gamma = t.find("gamma").unwrap();
        assert!(alpha < gamma);
        assert!(t.contains("beta"));
        assert!(t.contains("12.0s"));
    }

    #[test]
    fn gantt_marks_windows() {
        let g = gantt(&sample(), 30);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with(" cpu"));
        // alpha occupies the first ~40% of the CPU row
        assert!(lines[0].contains("aaaa"));
        assert!(lines[0].contains("ggg"));
        assert!(lines[0].contains('.'), "idle tail dotted");
        // beta fills the whole GPU row
        assert!(lines[1].matches('b').count() >= 28);
    }

    #[test]
    fn gantt_handles_empty_report() {
        let r = RunReport {
            makespan_s: 0.0,
            records: vec![],
            trace: PowerTrace::new(1.0),
            final_setting: FreqSetting::new(0, 0),
        };
        let g = gantt(&r, 20);
        assert!(g.contains("...."));
    }

    #[test]
    fn full_report_composes() {
        let f = full_report(&sample(), 40);
        assert!(f.contains("makespan"));
        assert!(f.contains("cpu |"));
        assert!(f.contains("alpha"));
    }
}
