//! In-process fleet chaos: crash a whole shard mid-drain, recover it
//! from its journal, and check the coordinator's books balance — no job
//! lost, no job double-dispatched, and the sum of shard power caps never
//! exceeds the cluster cap at any point.
//!
//! The full-scale acceptance run (32 shards x 32 machines, 100k jobs) is
//! gated behind `CORUN_FLEET_FULL=1`; the default tests exercise the
//! same paths at a size a one-core CI box drains in seconds.

use corun_fleet::{start_local_shards, Fleet, FleetConfig, FleetMetrics, PlacementKind};
use corun_serve::ServiceConfig;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("corun-fleet-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The shard template every test uses: fast characterization, shared
/// cache so only the first shard pays it.
fn shard_template(dir: &Path) -> ServiceConfig {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = 32;
    cfg.cache_dir = Some(dir.join("cache"));
    cfg
}

/// Every admitted job terminal, books balanced, cap invariant held for
/// the whole run.
fn assert_books_balance(fleet: &Fleet, m: &FleetMetrics) {
    assert!(
        m.drained(),
        "{} of {} jobs terminal ({} backlog, {} in flight)",
        m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
        m.jobs_total,
        m.backlog,
        m.in_flight
    );
    fleet.router().check_books();
    for id in 0..fleet.router().jobs() {
        let job = fleet.router().job(id);
        assert!(
            job.submits <= job.requeues + 1,
            "job {id} double-dispatched: {} accepts for {} requeues",
            job.submits,
            job.requeues
        );
    }
    // The shards' own counters must agree with the coordinator's.
    let shard_terminal: usize = m.shards.iter().map(|s| s.completed + s.dead_lettered).sum();
    assert!(
        shard_terminal >= m.jobs_done + m.jobs_dead_letter,
        "shards finished {shard_terminal} jobs but the fleet folded {}",
        m.jobs_done + m.jobs_dead_letter
    );
    // The central invariant: at no point did the handed-out caps sum
    // past the cluster cap.
    assert!(
        corun_core::respects_cluster_cap(&[m.max_cap_sum_w], m.cluster_cap_w),
        "cap hand-outs peaked at {} W over a {} W cluster cap",
        m.max_cap_sum_w,
        m.cluster_cap_w
    );
    assert!(m.rebalances > 0, "the budget was never partitioned");
}

#[test]
fn fleet_drains_without_faults() {
    let dir = temp_dir("steady");
    let template = shard_template(&dir);
    for placement in [PlacementKind::Ring, PlacementKind::LeastLoaded] {
        let backends = start_local_shards(&template, 3, 2, None, |_| None);
        let mut cfg = FleetConfig::new(3, 2, 60.0);
        cfg.placement = placement;
        cfg.paranoid = true;
        let mut fleet = Fleet::new(cfg, backends).expect("fleet");
        fleet
            .submit_spec("srad x0.05 *12\nlud x0.05 *12\n")
            .expect("submit");
        let m = fleet.drain(120.0).expect("drain");
        assert_books_balance(&fleet, &m);
        assert_eq!(m.jobs_done, 24, "all jobs complete in a fault-free run");
        assert_eq!(m.lost_requeues, 0);
        fleet.begin_shutdown();
        fleet.finish();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_shard_recovers_from_journal_and_books_balance() {
    let dir = temp_dir("chaos");
    let template = shard_template(&dir);
    const SHARDS: usize = 4;
    const VICTIM: usize = 1;
    // Both of the victim's machines stop dead early in simulated time;
    // the shard reads dead (workers_alive == 0) and the coordinator
    // restarts it from its journal.
    let backends = start_local_shards(&template, SHARDS, 2, Some(&dir), |s| {
        (s == VICTIM).then(|| {
            apu_sim::FaultPlan::parse("@chaos seed=5 crash=0:2 crash=1:2\n").expect("plan")
        })
    });
    let mut cfg = FleetConfig::new(SHARDS, 2, 80.0);
    cfg.paranoid = true;
    cfg.recover_backoff_rounds = 5;
    let mut fleet = Fleet::new(cfg, backends).expect("fleet");
    fleet
        .submit_spec("srad x0.05 *20\nlud x0.05 *20\nhotspot x0.05 *20\n")
        .expect("submit");
    let m = fleet.drain(180.0).expect("drain despite the crash");
    assert_books_balance(&fleet, &m);
    // Journal recovery means the crash loses nothing: every job reaches
    // a terminal state and none is silently dropped.
    assert_eq!(
        m.jobs_done + m.jobs_dead_letter,
        m.jobs_total,
        "every admitted job must be terminal after recovery"
    );
    assert!(
        m.alive.iter().all(|&a| a),
        "the crashed shard must be back: {:?}",
        m.alive
    );
    fleet.begin_shutdown();
    fleet.finish();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_shard_runs_under_a_fresh_cap() {
    let dir = temp_dir("cap");
    let template = shard_template(&dir);
    let backends = start_local_shards(&template, 2, 1, Some(&dir), |s| {
        (s == 0).then(|| apu_sim::FaultPlan::parse("@chaos seed=3 crash=0:2\n").expect("plan"))
    });
    let mut cfg = FleetConfig::new(2, 1, 40.0);
    cfg.paranoid = true;
    cfg.recover_backoff_rounds = 3;
    let mut fleet = Fleet::new(cfg, backends).expect("fleet");
    fleet.submit_spec("srad x0.05 *10\n").expect("submit");
    let m = fleet.drain(120.0).expect("drain");
    assert_books_balance(&fleet, &m);
    // The recovered shard's live cap must be a cap the coordinator
    // handed out, and the booked pair must respect the cluster cap.
    assert!(
        corun_core::respects_cluster_cap(&m.caps_w, m.cluster_cap_w),
        "booked caps {:?} exceed the {} W cluster cap",
        m.caps_w,
        m.cluster_cap_w
    );
    for (s, shard) in m.shards.iter().enumerate() {
        assert!(
            shard.cap_w <= m.cluster_cap_w,
            "shard {s} runs at {} W, above the whole cluster cap",
            shard.cap_w
        );
    }
    fleet.begin_shutdown();
    fleet.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI-sized event-driven smoke: 8 shards x 16 machines draining
/// 20k jobs with a shard crash, each shard stepping its machines from a
/// small batched worker pool (the discrete-event engine makes this
/// tractable on a CI box). `ci.sh` runs it with `--ignored`.
#[test]
#[ignore = "CI smoke: run explicitly via ci.sh with --ignored"]
fn event_driven_fleet_smoke_drains_20k_jobs() {
    let dir = temp_dir("smoke");
    let mut template = shard_template(&dir);
    // Four worker threads per shard batch-step 16 machines each: the
    // workers pull the earliest wake-up across their resident sessions
    // instead of ticking machines round-robin.
    template.worker_threads = 4;
    const SHARDS: usize = 8;
    const MACHINES: usize = 16;
    const JOBS: usize = 20_000;
    let backends = start_local_shards(&template, SHARDS, MACHINES, Some(&dir), |s| {
        (s == 2).then(|| {
            let plan: String = (0..MACHINES).map(|m| format!(" crash={m}:5")).collect();
            apu_sim::FaultPlan::parse(&format!("@chaos seed=7{plan}\n")).expect("plan")
        })
    });
    // 20 W per shard on average with a 15 W floor: the load-proportional
    // partitioner must never pin a shard below the level at which the
    // workload stays cap-feasible, or its submissions bounce as
    // infeasible instead of backpressuring.
    let mut cfg = FleetConfig::new(SHARDS, MACHINES, SHARDS as f64 * 20.0);
    cfg.shard_floor_w = 15.0;
    cfg.recover_backoff_rounds = 20;
    let mut fleet = Fleet::new(cfg, backends).expect("fleet");
    let mut admitted = 0usize;
    while admitted < JOBS {
        let batch = (JOBS - admitted).min(1000);
        fleet
            .submit_spec(&format!("srad x0.05 *{batch}\n"))
            .expect("submit");
        admitted += batch;
        fleet.pump();
    }
    let m = fleet.drain(1800.0).expect("drain 20k jobs");
    assert_books_balance(&fleet, &m);
    assert_eq!(m.jobs_done + m.jobs_dead_letter, JOBS);
    fleet.begin_shutdown();
    fleet.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance-scale run: 32 shards x 32 machines draining 100k jobs
/// with a shard crash in the middle. Run it with `CORUN_FLEET_FULL=1` —
/// it wants a real multi-core box.
#[test]
fn full_scale_fleet_drains_100k_jobs_under_chaos() {
    if std::env::var("CORUN_FLEET_FULL").is_err() {
        return;
    }
    let dir = temp_dir("full");
    let template = shard_template(&dir);
    const SHARDS: usize = 32;
    const MACHINES: usize = 32;
    const JOBS: usize = 100_000;
    let backends = start_local_shards(&template, SHARDS, MACHINES, Some(&dir), |s| {
        (s == 3).then(|| {
            let plan: String = (0..MACHINES).map(|m| format!(" crash={m}:5")).collect();
            apu_sim::FaultPlan::parse(&format!("@chaos seed=9{plan}\n")).expect("plan")
        })
    });
    let mut cfg = FleetConfig::new(SHARDS, MACHINES, 32.0 * 15.0);
    cfg.recover_backoff_rounds = 20;
    let mut fleet = Fleet::new(cfg, backends).expect("fleet");
    let mut admitted = 0usize;
    while admitted < JOBS {
        let batch = (JOBS - admitted).min(1000);
        fleet
            .submit_spec(&format!("srad x0.05 *{batch}\n"))
            .expect("submit");
        admitted += batch;
        fleet.pump();
    }
    let m = fleet.drain(3600.0).expect("drain 100k jobs");
    assert_books_balance(&fleet, &m);
    assert_eq!(m.jobs_done + m.jobs_dead_letter, JOBS);
    fleet.begin_shutdown();
    fleet.finish();
    std::fs::remove_dir_all(&dir).ok();
}
