//! Property tests for placement and work-stealing bookkeeping.
//!
//! Three pinned properties:
//!
//! * the consistent-hash ring spreads 10k keys within ±20% of uniform
//!   across 16 shards;
//! * removing one shard remaps only that shard's keys (consistent
//!   hashing's defining property) — about 1/N of the total;
//! * no interleaving of admits, submissions, steals, crashes and
//!   requeues ever double-dispatches a job (same harness shape as the
//!   PR 2 bursty-arrival tests, driving the pure [`Router`]).

use corun_fleet::{HashRing, JobLoc, LeastLoaded, Placement, Router, ShardView};
use proptest::prelude::*;

#[test]
fn ring_spreads_10k_keys_within_20pct_of_uniform() {
    const SHARDS: usize = 16;
    const KEYS: usize = 10_000;
    let ring = HashRing::new(SHARDS);
    let view = ShardView::fresh(SHARDS);
    let mut counts = [0usize; SHARDS];
    for i in 0..KEYS {
        let s = ring.place(&format!("job-key-{i}"), &view).unwrap();
        counts[s] += 1;
    }
    let uniform = KEYS as f64 / SHARDS as f64;
    for (s, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - uniform).abs() / uniform;
        assert!(
            dev <= 0.20,
            "shard {s} got {c} of {KEYS} keys ({:.1}% off uniform {uniform})",
            dev * 100.0
        );
    }
}

#[test]
fn removing_one_shard_remaps_only_its_keys() {
    const SHARDS: usize = 16;
    const KEYS: usize = 10_000;
    let ring = HashRing::new(SHARDS);
    let full = ShardView::fresh(SHARDS);
    let mut down = ShardView::fresh(SHARDS);
    let removed = 7;
    down.alive[removed] = false;

    let mut remapped = 0usize;
    for i in 0..KEYS {
        let key = format!("job-key-{i}");
        let before = ring.place(&key, &full).unwrap();
        let after = ring.place(&key, &down).unwrap();
        if before == removed {
            // Its keys must land somewhere else...
            assert_ne!(after, removed);
            remapped += 1;
        } else {
            // ...and every other key must not move at all.
            assert_eq!(before, after, "key {key} moved without its shard dying");
        }
    }
    // The removed shard owned roughly 1/N of the keys (uniformity says
    // within ±20%), and only those remapped.
    let expect = KEYS as f64 / SHARDS as f64;
    assert!(
        (remapped as f64) <= expect * 1.2 && (remapped as f64) >= expect * 0.8,
        "{remapped} keys remapped, expected about {expect}"
    );
}

/// One scripted coordinator action against the router.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit one job (key derived from a counter).
    Admit,
    /// Pop a backlog job from shard `s % shards` and confirm it.
    Submit(usize),
    /// Pop and abort (backpressure).
    SubmitBounce(usize),
    /// Auto-steal with this threshold.
    Steal(usize),
    /// Kill shard `s % shards`: requeue its submitted jobs (confirmed
    /// lost incarnation) and mark it dead.
    Crash(usize),
    /// Revive every shard.
    ReviveAll,
    /// Complete one submitted job on its shard.
    Complete,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (selector, argument) -> Op; admits and submits are weighted up so
    // scripts actually build and move work.
    (0usize..10, 0usize..64).prop_map(|(kind, arg)| match kind {
        0..=2 => Op::Admit,
        3..=5 => Op::Submit(arg),
        6 => Op::SubmitBounce(arg),
        7 => Op::Steal(arg % 8),
        8 => Op::Crash(arg),
        _ => {
            if arg % 2 == 0 {
                Op::ReviveAll
            } else {
                Op::Complete
            }
        }
    })
}

fn run_script(ops: &[Op], shards: usize, ring: bool) -> Result<(), TestCaseError> {
    let placement: Box<dyn Placement> = if ring {
        Box::new(HashRing::new(shards))
    } else {
        Box::new(LeastLoaded)
    };
    let mut router = Router::new(shards, placement);
    let mut view = ShardView::fresh(shards);
    let mut next_local = vec![0usize; shards];
    // Per shard: the set of fleet ids its *current incarnation* has
    // accepted. The property: a confirm for a job some live incarnation
    // already holds is a double dispatch.
    let mut incarnation: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut admitted = 0usize;

    for &op in ops {
        match op {
            Op::Admit => {
                let key = format!("k{admitted}");
                if router.admit(key, "spec".into(), &view).is_ok() {
                    admitted += 1;
                }
            }
            Op::Submit(s) => {
                let s = s % shards;
                if !view.alive[s] {
                    continue;
                }
                if let Some(id) = router.begin_submit(s) {
                    prop_assert!(
                        !incarnation[s].contains(&id),
                        "job {id} dispatched twice to shard {s}"
                    );
                    // Globally: no *other* live incarnation may hold it
                    // either.
                    for (other, held) in incarnation.iter().enumerate() {
                        prop_assert!(
                            !(view.alive[other] && held.contains(&id)),
                            "job {id} live on shard {other} while dispatching to {s}"
                        );
                    }
                    router.confirm(id, next_local[s]);
                    incarnation[s].push(id);
                    next_local[s] += 1;
                }
            }
            Op::SubmitBounce(s) => {
                let s = s % shards;
                if let Some(id) = router.begin_submit(s) {
                    router.abort(id);
                }
            }
            Op::Steal(threshold) => {
                router.auto_steal(&view, threshold, 8);
            }
            Op::Crash(s) => {
                let s = s % shards;
                view.alive[s] = false;
                // The incarnation is gone: every job it held is
                // confirmed lost and re-routed (the no-journal path).
                let held = std::mem::take(&mut incarnation[s]);
                for id in held {
                    if matches!(router.job(id).loc, JobLoc::Submitted { shard, .. } if shard == s) {
                        router.requeue_lost(id, &view);
                    }
                }
            }
            Op::ReviveAll => {
                for a in &mut view.alive {
                    *a = true;
                }
            }
            Op::Complete => {
                // Finish the oldest outstanding job of the first shard
                // that has one.
                for (s, inc) in incarnation.iter_mut().enumerate() {
                    if !view.alive[s] {
                        continue;
                    }
                    if let Some(pos) = inc.iter().position(|&id| {
                        matches!(router.job(id).loc, JobLoc::Submitted { shard, .. } if shard == s)
                    }) {
                        let id = inc.remove(pos);
                        router.complete(id, s);
                        break;
                    }
                }
            }
        }
        router.check_books();
    }

    // End-state accounting: every admitted job is in exactly one
    // coherent place and was accepted at most once per loss.
    for id in 0..router.jobs() {
        let job = router.job(id);
        prop_assert!(
            job.submits <= job.requeues + 1,
            "job {id}: {} accepts for {} requeues",
            job.submits,
            job.requeues
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_interleaving_double_dispatches(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        shards in 2usize..6,
        ring in any::<bool>(),
    ) {
        run_script(&ops, shards, ring)?;
    }
}
