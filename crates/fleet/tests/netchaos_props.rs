//! Network-partition and coordinator-crash chaos: every coordinator↔
//! shard RPC runs through the seeded fault layer (drops, lost replies,
//! duplicates, truncation, partition windows), the coordinator is
//! `kill -9`'d mid-drain and rebuilt from its write-ahead fleetlog —
//! and the books must still balance: every admitted job terminal
//! exactly once across the shards (no loss, no double dispatch), the
//! handed-out power caps never summing past the cluster cap.
//!
//! The services outlive the coordinator here exactly as daemons outlive
//! a crashed `corun fleet` process: the test holds the `Arc<Service>`s
//! and reconnects fresh RPC backends to them after each "kill".

use corun_core::WallClock;
use corun_fleet::{
    over_local, Fleet, FleetConfig, FleetMetrics, NetConfig, NetFaultPlan, Partition, ShardBackend,
};
use corun_serve::{Service, ServiceConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("corun-netchaos-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// One shared characterization cache for the whole test binary, so only
/// the first service ever started pays the characterization cost.
fn shard_template() -> ServiceConfig {
    let machine = apu_sim::MachineConfig::ivy_bridge();
    let mut cfg = ServiceConfig::fast(&machine);
    cfg.characterization.grid_points = 3;
    cfg.characterization.micro_duration_s = 1.0;
    cfg.queue_capacity = 32;
    cfg.cache_dir =
        Some(std::env::temp_dir().join(format!("corun-netchaos-cache-{}", std::process::id())));
    cfg
}

/// Transport timeouts sized for an in-process shard: tight enough that
/// injected faults resolve in milliseconds, roomy enough to never trip
/// on a healthy exchange.
fn chaos_net() -> NetConfig {
    NetConfig {
        op_timeout_s: 3.0,
        io_timeout_s: 1.0,
        attempts: 4,
        backoff_base_s: 0.002,
        backoff_max_s: 0.02,
        seed: 0x5eed,
    }
}

fn start_services(template: &ServiceConfig, shards: usize, machines: usize) -> Vec<Arc<Service>> {
    (0..shards)
        .map(|_| {
            let mut cfg = template.clone();
            cfg.machines = machines;
            Arc::new(Service::start(cfg))
        })
        .collect()
}

/// Fresh RPC backends over running services — what `Fleet::new` gets at
/// first boot and `Fleet::recover` gets after a coordinator kill.
fn backends_over(services: &[Arc<Service>], plan: &NetFaultPlan) -> Vec<Box<dyn ShardBackend>> {
    services
        .iter()
        .enumerate()
        .map(|(s, svc)| {
            Box::new(over_local(
                Arc::clone(svc),
                Some(plan.clone()),
                s,
                chaos_net(),
                Arc::new(WallClock::new()),
            )) as Box<dyn ShardBackend>
        })
        .collect()
}

/// Books balanced fleet-side AND shard-side: drained, router invariants
/// hold, the shards together finished every folded job exactly once (a
/// double dispatch would overshoot), and cap hand-outs never peaked
/// past the cluster cap.
fn assert_balanced(fleet: &Fleet, m: &FleetMetrics, services: &[Arc<Service>]) {
    assert!(
        m.drained(),
        "{} of {} jobs terminal ({} backlog, {} in flight, {} in doubt)",
        m.jobs_done + m.jobs_dead_letter + m.jobs_rejected,
        m.jobs_total,
        m.backlog,
        m.in_flight,
        m.in_doubt
    );
    fleet.router().check_books();
    let terminal: usize = services
        .iter()
        .map(|s| {
            let sm = s.metrics();
            sm.completed + sm.dead_lettered
        })
        .sum();
    assert_eq!(
        terminal,
        m.jobs_done + m.jobs_dead_letter,
        "shards finished {terminal} jobs but the fleet folded {}: a lost or \
         double-dispatched job",
        m.jobs_done + m.jobs_dead_letter
    );
    assert!(
        corun_core::respects_cluster_cap(&[m.max_cap_sum_w], m.cluster_cap_w),
        "cap hand-outs peaked at {} W over a {} W cluster cap",
        m.max_cap_sum_w,
        m.cluster_cap_w
    );
}

fn shutdown(mut fleet: Fleet, services: &[Arc<Service>]) {
    fleet.begin_shutdown();
    fleet.finish();
    for svc in services {
        svc.shutdown();
    }
}

/// The headline seeded run: drops, lost replies, duplicates, truncated
/// frames, a one-way partition AND a symmetric partition — the fleet
/// must drain with balanced books and must actually have retried.
#[test]
fn seeded_fault_plan_drain_balances_the_books() {
    let dir = temp_dir("plan");
    const SHARDS: usize = 4;
    let services = start_services(&shard_template(), SHARDS, 2);
    let plan = NetFaultPlan::parse(
        "@netchaos seed=11 drop=0.15 drop-reply=0.1 dup=0.1 truncate=0.08 \
         delay=0.05 delay-s=0.001 oneway=1:5..25 partition=2:10..30\n",
    )
    .expect("grammar")
    .expect("directive present");
    let mut cfg = FleetConfig::new(SHARDS, 2, 80.0);
    cfg.paranoid = true;
    let mut fleet = Fleet::new(cfg, backends_over(&services, &plan)).expect("fleet");
    fleet
        .submit_spec("srad x0.05 *18\nlud x0.05 *18\n")
        .expect("submit");
    let m = fleet.drain(240.0).expect("drain under net faults");
    assert_balanced(&fleet, &m, &services);
    assert_eq!(m.jobs_done + m.jobs_dead_letter, 36);
    let ops: u64 = m.rpc.iter().map(|r| r.ops).sum();
    let retries: u64 = m.rpc.iter().map(|r| r.retries).sum();
    assert!(ops > 0, "the RPC layer saw no traffic");
    assert!(retries > 0, "a 15% drop plan retried nothing");
    shutdown(fleet, &services);
    std::fs::remove_dir_all(&dir).ok();
}

/// Coordinator `kill -9` mid-drain: the fleet is dropped without any
/// shutdown, then rebuilt from its write-ahead journal over the same
/// still-running services. Nothing may be lost or dispatched twice.
#[test]
fn coordinator_kill_and_recover_never_double_dispatches() {
    let dir = temp_dir("kill9");
    const SHARDS: usize = 3;
    const JOBS: usize = 24;
    let services = start_services(&shard_template(), SHARDS, 2);
    let plan = NetFaultPlan::parse("@netchaos seed=3 drop=0.05 dup=0.05 truncate=0.05\n")
        .expect("grammar")
        .expect("directive present");
    let mut cfg = FleetConfig::new(SHARDS, 2, 60.0);
    cfg.paranoid = true;
    cfg.journal_path = Some(dir.join("fleet.jsonl"));
    let mut fleet = Fleet::new(cfg.clone(), backends_over(&services, &plan)).expect("fleet");
    fleet
        .submit_spec(&format!("srad x0.05 *{JOBS}\n"))
        .expect("submit");
    for _ in 0..3 {
        fleet.pump();
    }
    // kill -9: no shutdown, no drain, the books die with the process.
    drop(fleet);

    let mut fleet = Fleet::recover(cfg, backends_over(&services, &plan)).expect("recover");
    let m = fleet
        .drain(240.0)
        .expect("drain after coordinator recovery");
    assert_eq!(m.fleet_recoveries, 1, "exactly one recovery boundary");
    assert_eq!(m.jobs_total, JOBS, "the journal must restore every admit");
    assert_balanced(&fleet, &m, &services);
    shutdown(fleet, &services);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random fault plans interleaved with repeated coordinator kills:
    /// whatever the drop/dup/truncate rates, wherever the partition
    /// window lands (one-way or symmetric), however many times the
    /// coordinator dies and recovers — the books balance, nothing is
    /// dispatched twice, and the cap invariant holds.
    #[test]
    fn fault_and_kill_interleavings_preserve_the_books(
        seed in 1u64..4096,
        drop_pm in 0u64..200,
        dup_pm in 0u64..150,
        trunc_pm in 0u64..100,
        victim in 0usize..3,
        from in 1u64..20,
        len in 5u64..30,
        kills in 0usize..3,
    ) {
        let dir = temp_dir("interleave");
        const SHARDS: usize = 3;
        const JOBS: usize = 9;
        let services = start_services(&shard_template(), SHARDS, 1);
        #[allow(clippy::cast_precision_loss)]
        let plan = NetFaultPlan {
            seed,
            drop_p: drop_pm as f64 / 1000.0,
            dup_p: dup_pm as f64 / 1000.0,
            truncate_p: trunc_pm as f64 / 1000.0,
            partitions: vec![Partition {
                shard: victim,
                from_op: from,
                to_op: from + len,
                one_way: seed % 2 == 0,
            }],
            ..NetFaultPlan::default()
        };
        let mut cfg = FleetConfig::new(SHARDS, 1, 45.0);
        cfg.paranoid = true;
        cfg.journal_path = Some(dir.join("fleet.jsonl"));
        let mut fleet =
            Fleet::new(cfg.clone(), backends_over(&services, &plan)).expect("fleet");
        fleet
            .submit_spec(&format!("srad x0.05 *{JOBS}\n"))
            .expect("submit");
        for _ in 0..kills {
            for _ in 0..3 {
                fleet.pump();
            }
            drop(fleet);
            fleet = Fleet::recover(cfg.clone(), backends_over(&services, &plan))
                .expect("recover from the fleetlog");
        }
        let m = fleet.drain(240.0).expect("drain through the interleaving");
        prop_assert_eq!(m.fleet_recoveries, kills);
        prop_assert_eq!(m.jobs_total, JOBS);
        assert_balanced(&fleet, &m, &services);
        shutdown(fleet, &services);
        std::fs::remove_dir_all(&dir).ok();
    }
}
