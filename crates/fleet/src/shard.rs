//! Shard backends: the coordinator's uniform view of one shard, whether
//! it is an in-process [`corun_serve::Service`] or a remote `corun
//! serve` daemon reached over the line-JSON protocol.

use crate::net::RpcSnapshot;
use apu_sim::FaultPlan;
use corun_serve::{JobState, Service, ServiceConfig, SubmitError};
use std::path::Path;

/// What happened to one submission attempt.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The shard accepted the jobs under these shard-local ids.
    Accepted(Vec<usize>),
    /// Queue full; try again after the hint.
    Backpressure {
        /// Server back-off hint, seconds.
        retry_after_s: f64,
    },
    /// Permanently refused (lint failure, cap-infeasible): terminal.
    Refused(String),
    /// The request certainly never reached the shard (connect refused,
    /// shutting down): the job stays with the coordinator and the shard
    /// is marked dead. Safe to re-place elsewhere.
    Down(String),
    /// The RPC failed *after* the request may have been delivered (reply
    /// lost to a partition, timeout, truncated frame): the shard may be
    /// running the job. The coordinator must pin it in-doubt and resolve
    /// by resubmitting the same key to the same shard — never re-place.
    Indeterminate(String),
}

/// Coordinator-level view of one shard-local job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, not yet terminal (queued or running).
    Pending,
    /// Finished.
    Done,
    /// Retry budget exhausted on the shard.
    DeadLetter,
    /// Rejected by the shard's admission gate.
    Rejected,
    /// The shard does not know the id — a restarted, unrecovered
    /// incarnation. The coordinator requeues the job elsewhere.
    Unknown,
}

/// The slice of a shard's metrics the coordinator consumes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardMetrics {
    /// Jobs admitted but not yet dispatched.
    pub queue_depth: usize,
    /// Jobs ever admitted (accepted minus admission-rejected).
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs dead-lettered.
    pub dead_lettered: usize,
    /// Worker threads still alive.
    pub workers_alive: usize,
    /// Simulated machines.
    pub machines: usize,
    /// The shard's live power cap, watts.
    pub cap_w: f64,
    /// Power samples above the cap.
    pub cap_violations: usize,
    /// Power samples observed.
    pub cap_samples: usize,
}

impl ShardMetrics {
    /// Admitted-but-unfinished jobs — the demand weight the budget
    /// partitioner splits the cluster cap by.
    pub fn demand_jobs(&self) -> usize {
        self.submitted
            .saturating_sub(self.completed + self.dead_lettered)
    }

    /// A shard with no live workers can accept but never finish work.
    pub fn is_alive(&self) -> bool {
        self.workers_alive > 0
    }
}

/// One shard as the coordinator drives it.
pub trait ShardBackend: Send {
    /// Submit one spec fragment under a fleet-unique idempotency `key`.
    /// Resubmitting the same key to the same shard is safe: a shard that
    /// already admitted it replies with the original ids instead of
    /// running the job twice.
    fn submit(&mut self, key: &str, spec: &str) -> SubmitOutcome;

    /// Phase of one shard-local job. `Err` means the shard is down.
    fn job_phase(&mut self, local_id: usize) -> Result<JobPhase, String>;

    /// Metrics snapshot. `Err` means the shard is down.
    fn metrics(&mut self) -> Result<ShardMetrics, String>;

    /// Push a rebalanced power cap.
    fn set_cap(&mut self, cap_w: f64) -> Result<(), String>;

    /// Bring a dead shard back under `cap_w`: restart the in-process
    /// service with journal recovery, or reconnect to an externally
    /// restarted daemon and push the cap.
    fn recover(&mut self, cap_w: f64) -> Result<(), String>;

    /// Ask the shard to stop accepting work and drain.
    fn begin_shutdown(&mut self);

    /// Block until the shard is fully stopped.
    fn finish(&mut self);

    /// `"local"` or `"remote"`, for status output.
    fn kind(&self) -> &'static str;

    /// True once since the shard was last observed under a different
    /// boot nonce or a higher fencing epoch — i.e. it restarted or
    /// recovered behind the coordinator's back. The coordinator must
    /// re-resolve every outstanding job it had on the shard.
    fn take_incarnation_change(&mut self) -> bool {
        false
    }

    /// Transport-level RPC counters (zero for in-process shards without
    /// an injected transport).
    fn rpc_stats(&self) -> RpcSnapshot {
        RpcSnapshot::default()
    }
}

/// An in-process shard: a [`Service`] plus the config to rebuild it for
/// journal recovery.
pub struct LocalShard {
    cfg: ServiceConfig,
    service: Option<Service>,
}

impl LocalShard {
    /// Start the shard's service.
    pub fn start(cfg: ServiceConfig) -> LocalShard {
        LocalShard {
            service: Some(Service::start(cfg.clone())),
            cfg,
        }
    }

    /// Direct access for tests.
    pub fn service(&self) -> Option<&Service> {
        self.service.as_ref()
    }
}

impl ShardBackend for LocalShard {
    fn submit(&mut self, key: &str, spec: &str) -> SubmitOutcome {
        let Some(service) = &self.service else {
            return SubmitOutcome::Down("shard stopped".into());
        };
        match service.submit_spec_keyed(spec, key) {
            Ok(ids) => SubmitOutcome::Accepted(ids),
            Err(SubmitError::QueueFull { retry_after_s, .. }) => {
                SubmitOutcome::Backpressure { retry_after_s }
            }
            Err(SubmitError::ShuttingDown) => SubmitOutcome::Down("shutting down".into()),
            Err(e @ (SubmitError::Lint(_) | SubmitError::Infeasible { .. })) => {
                SubmitOutcome::Refused(e.to_string())
            }
        }
    }

    fn job_phase(&mut self, local_id: usize) -> Result<JobPhase, String> {
        let Some(service) = &self.service else {
            return Err("shard stopped".into());
        };
        Ok(match service.job_status(local_id) {
            None => JobPhase::Unknown,
            Some(s) => match s.state {
                JobState::Done { .. } => JobPhase::Done,
                JobState::DeadLetter { .. } => JobPhase::DeadLetter,
                JobState::Rejected => JobPhase::Rejected,
                JobState::Queued | JobState::Running { .. } => JobPhase::Pending,
            },
        })
    }

    fn metrics(&mut self) -> Result<ShardMetrics, String> {
        let Some(service) = &self.service else {
            return Err("shard stopped".into());
        };
        let m = service.metrics();
        Ok(ShardMetrics {
            queue_depth: m.queue_depth,
            submitted: m.submitted,
            completed: m.completed,
            dead_lettered: m.dead_lettered,
            workers_alive: m.workers_alive,
            machines: m.machines,
            cap_w: m.cap_w,
            cap_violations: m.cap_violations,
            cap_samples: m.cap_samples,
        })
    }

    fn set_cap(&mut self, cap_w: f64) -> Result<(), String> {
        match &self.service {
            Some(service) => {
                service.set_cap_w(cap_w);
                Ok(())
            }
            None => Err("shard stopped".into()),
        }
    }

    fn recover(&mut self, cap_w: f64) -> Result<(), String> {
        if self.cfg.journal_path.is_none() {
            return Err("shard has no journal to recover from".into());
        }
        if let Some(old) = self.service.take() {
            // The workers are already dead (that is why we are here);
            // shutdown only reaps the threads.
            old.begin_shutdown();
            old.shutdown();
        }
        let mut cfg = self.cfg.clone();
        cfg.recover = true;
        if cap_w.is_finite() && cap_w > 0.0 {
            cfg.cap_w = cap_w;
        }
        // The injected faults already fired in the dead incarnation;
        // replaying them would crash the recovered shard at the same
        // simulated instants forever.
        cfg.fault_plan = None;
        self.cfg = cfg.clone();
        self.service = Some(Service::start(cfg));
        Ok(())
    }

    fn begin_shutdown(&mut self) {
        if let Some(service) = &self.service {
            service.begin_shutdown();
        }
    }

    fn finish(&mut self) {
        if let Some(service) = self.service.take() {
            service.shutdown();
        }
    }

    fn kind(&self) -> &'static str {
        "local"
    }
}

/// Start `shards` in-process shards from one [`ServiceConfig`]
/// template. Shard `s` journals to `journal_dir/shard-s.jsonl` (when a
/// dir is given) and runs `fault_plan(s)`. Shards start sequentially so
/// the first pays the characterization cost and the rest hit the cache
/// (set `template.cache_dir`).
pub fn start_local_shards(
    template: &ServiceConfig,
    shards: usize,
    machines_per_shard: usize,
    journal_dir: Option<&Path>,
    mut fault_plan: impl FnMut(usize) -> Option<FaultPlan>,
) -> Vec<Box<dyn ShardBackend>> {
    (0..shards)
        .map(|s| {
            let mut cfg = template.clone();
            cfg.machines = machines_per_shard;
            cfg.journal_path = journal_dir.map(|d| d.join(format!("shard-{s}.jsonl")));
            cfg.fault_plan = fault_plan(s);
            Box::new(LocalShard::start(cfg)) as Box<dyn ShardBackend>
        })
        .collect()
}

// The remote backend lives in [`crate::net`]: `RemoteShard` is
// `RpcShard<TcpRaw>` — deadline-bounded line-JSON RPC with reconnect,
// fencing-epoch checks, and per-shard latency counters.
