//! Pure job-routing bookkeeping for the coordinator.
//!
//! The [`Router`] owns the *coordinator-side* life of every fleet job:
//!
//! ```text
//! admit -> Backlog(shard) -> begin_submit -> Submitting(shard)
//!            ^     |                            |       |      \
//!            |   steal                       confirm  abort   mark_in_doubt
//!            |     v                            v       |         v
//!            +-- Backlog(other)          Submitted{...} <+    InDoubt(shard)
//!            |                                  |            /          \
//!            +------- requeue_lost -------------+  resolve_confirm  resolve_reject
//!                                               |        v                v
//!                                               +--> Done / DeadLetter / Rejected
//! ```
//!
//! Double dispatch is impossible *by construction*: a job reaches a
//! shard only through `begin_submit` -> `confirm`, both of which demand
//! the exact predecessor state, and work stealing moves only `Backlog`
//! jobs — never anything a shard has already seen. `requeue_lost` is the
//! single edge back from `Submitted`, and the coordinator takes it only
//! once the owning shard incarnation is confirmed dead (crashed without
//! a journal, or replying `unknown_job` after an unrecovered restart).
//!
//! `InDoubt` is the partition-tolerance edge: a submission whose RPC
//! failed *after* the request may have been delivered
//! ([`crate::net::NetError`] timeout, disconnect, garbled reply) is
//! neither confirmed nor safe to re-place — the shard may be running it.
//! An in-doubt job is pinned to its shard (never stolen, never
//! evacuated, in no backlog) until the coordinator re-submits its
//! idempotent key to that same shard: the shard's keyed dedup then
//! either returns the original id (`resolve_confirm`) or refuses it
//! (`resolve_reject`). The placement proptests drive exactly this type.

use crate::placement::{Placement, ShardView};
use std::collections::VecDeque;

/// Coordinator-global job id (dense, `0..jobs()`).
pub type FleetJobId = usize;

/// Where one fleet job currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobLoc {
    /// Waiting in the coordinator's backlog for `shard`.
    Backlog(usize),
    /// Popped for submission to `shard`; must `confirm`, `abort`, or
    /// `mark_in_doubt`.
    Submitting(usize),
    /// A submit RPC to `shard` failed after the request may have been
    /// delivered. Pinned there until keyed resubmission resolves it.
    InDoubt(usize),
    /// Accepted by `shard` under its local id.
    Submitted {
        /// The owning shard.
        shard: usize,
        /// The shard-local job id.
        local_id: usize,
    },
    /// Finished on `shard`.
    Done(usize),
    /// Dead-lettered on `shard` (retry budget exhausted there).
    DeadLetter(usize),
    /// Rejected outright (lint / infeasible); terminal.
    Rejected,
}

/// One fleet job.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Placement key (hashed onto the ring).
    pub key: String,
    /// The single-line workload spec submitted to the owning shard.
    pub spec: String,
    /// Current location.
    pub loc: JobLoc,
    /// Times a shard accepted this job (for the books: lost incarnations
    /// included).
    pub submits: u32,
    /// Times the coordinator took the `requeue_lost` edge.
    pub requeues: u32,
}

/// One work-stealing transfer, for metrics/logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Steal {
    /// Shard the jobs left.
    pub from: usize,
    /// Shard the jobs joined.
    pub to: usize,
    /// How many moved.
    pub moved: usize,
}

/// The router: placement + per-shard backlogs + the job table.
pub struct Router {
    placement: Box<dyn Placement>,
    jobs: Vec<FleetJob>,
    backlogs: Vec<VecDeque<FleetJobId>>,
}

impl Router {
    /// A router over `shards` shards using `placement`.
    pub fn new(shards: usize, placement: Box<dyn Placement>) -> Router {
        Router {
            placement,
            jobs: Vec::new(),
            backlogs: vec![VecDeque::new(); shards],
        }
    }

    /// Rebuild a router from recovered books (`corun fleet --recover`).
    /// Jobs arriving as `Backlog` or `Submitting` are re-placed against
    /// `view` and parked in a backlog — a `Submitting` job can only be
    /// restored by a caller that knows the RPC never left (otherwise it
    /// must arrive as `InDoubt`). All other states are taken verbatim.
    pub fn restore(
        shards: usize,
        placement: Box<dyn Placement>,
        jobs: Vec<FleetJob>,
        view: &ShardView,
    ) -> Router {
        let mut r = Router {
            placement,
            jobs: Vec::with_capacity(jobs.len()),
            backlogs: vec![VecDeque::new(); shards],
        };
        for mut job in jobs {
            let id = r.jobs.len();
            if let JobLoc::Backlog(old) | JobLoc::Submitting(old) = job.loc {
                let dest = r.placement.place(&job.key, view).unwrap_or(old);
                job.loc = JobLoc::Backlog(dest);
                r.backlogs[dest].push_back(id);
            }
            r.jobs.push(job);
        }
        r
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.backlogs.len()
    }

    /// Total jobs ever admitted.
    pub fn jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The job table entry (valid for every id this router returned).
    pub fn job(&self, id: FleetJobId) -> &FleetJob {
        &self.jobs[id]
    }

    /// Backlog depth of one shard.
    pub fn backlog_depth(&self, shard: usize) -> usize {
        self.backlogs[shard].len()
    }

    /// Count of jobs in a terminal state (done, dead-letter, rejected).
    pub fn terminal(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                matches!(
                    j.loc,
                    JobLoc::Done(_) | JobLoc::DeadLetter(_) | JobLoc::Rejected
                )
            })
            .count()
    }

    /// Admit one job: place it by key against `view` and queue it in the
    /// chosen shard's backlog. Returns the fleet id, or `Err` when no
    /// shard is live.
    pub fn admit(
        &mut self,
        key: String,
        spec: String,
        view: &ShardView,
    ) -> Result<FleetJobId, (String, String)> {
        match self.placement.place(&key, view) {
            Some(shard) => {
                let id = self.jobs.len();
                self.jobs.push(FleetJob {
                    key,
                    spec,
                    loc: JobLoc::Backlog(shard),
                    submits: 0,
                    requeues: 0,
                });
                self.backlogs[shard].push_back(id);
                Ok(id)
            }
            None => Err((key, spec)),
        }
    }

    /// Pop the next backlog job for `shard` and mark it `Submitting`.
    /// The caller must follow with [`Router::confirm`] or
    /// [`Router::abort`].
    pub fn begin_submit(&mut self, shard: usize) -> Option<FleetJobId> {
        let id = self.backlogs[shard].pop_front()?;
        debug_assert_eq!(self.jobs[id].loc, JobLoc::Backlog(shard));
        self.jobs[id].loc = JobLoc::Submitting(shard);
        Some(id)
    }

    /// The shard accepted the job under `local_id`.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitting` — the one edge into
    /// `Submitted`, which is what makes double dispatch unrepresentable.
    pub fn confirm(&mut self, id: FleetJobId, local_id: usize) {
        let job = &mut self.jobs[id];
        let JobLoc::Submitting(shard) = job.loc else {
            panic!(
                "confirm({id}) from {:?}: job was never popped for submission",
                job.loc
            );
        };
        job.loc = JobLoc::Submitted { shard, local_id };
        job.submits += 1;
    }

    /// The submission did not happen (backpressure, connection refused):
    /// push the job back to the *front* of its shard's backlog.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitting`.
    pub fn abort(&mut self, id: FleetJobId) {
        let job = &mut self.jobs[id];
        let JobLoc::Submitting(shard) = job.loc else {
            panic!(
                "abort({id}) from {:?}: job was never popped for submission",
                job.loc
            );
        };
        job.loc = JobLoc::Backlog(shard);
        self.backlogs[shard].push_front(id);
    }

    /// The submission was refused permanently (lint, cap-infeasible):
    /// terminal, never re-routed.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitting`.
    pub fn reject(&mut self, id: FleetJobId) {
        let job = &mut self.jobs[id];
        assert!(
            matches!(job.loc, JobLoc::Submitting(_)),
            "reject({id}) from {:?}",
            job.loc
        );
        job.loc = JobLoc::Rejected;
    }

    /// The submit RPC failed after the request may have been delivered
    /// (reply lost in a partition, timeout, truncated frame): neither
    /// confirmed nor safe to re-place. The job leaves the submission
    /// path but stays pinned to its shard for keyed resolution.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitting`.
    pub fn mark_in_doubt(&mut self, id: FleetJobId) {
        let job = &mut self.jobs[id];
        let JobLoc::Submitting(shard) = job.loc else {
            panic!(
                "mark_in_doubt({id}) from {:?}: job was never popped for submission",
                job.loc
            );
        };
        job.loc = JobLoc::InDoubt(shard);
    }

    /// Keyed resubmission to the pinned shard came back accepted: the
    /// shard either had the job already (dedup hit — the original RPC
    /// landed) or admitted it now. Either way exactly one copy exists,
    /// under `local_id`.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `InDoubt`.
    pub fn resolve_confirm(&mut self, id: FleetJobId, local_id: usize) {
        let job = &mut self.jobs[id];
        let JobLoc::InDoubt(shard) = job.loc else {
            panic!(
                "resolve_confirm({id}) from {:?}: job is not in doubt",
                job.loc
            );
        };
        job.loc = JobLoc::Submitted { shard, local_id };
        job.submits += 1;
    }

    /// Keyed resubmission was permanently refused, so the original RPC
    /// cannot have admitted it either (the shard's dedup would have
    /// answered with the existing id): terminal.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `InDoubt`.
    pub fn resolve_reject(&mut self, id: FleetJobId) {
        let job = &mut self.jobs[id];
        assert!(
            matches!(job.loc, JobLoc::InDoubt(_)),
            "resolve_reject({id}) from {:?}",
            job.loc
        );
        job.loc = JobLoc::Rejected;
    }

    /// Jobs currently in doubt on `shard`, in id order.
    pub fn in_doubt(&self, shard: usize) -> Vec<FleetJobId> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.loc == JobLoc::InDoubt(shard))
            .map(|(id, _)| id)
            .collect()
    }

    /// The owning shard reported the job done.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitted` on `shard`.
    pub fn complete(&mut self, id: FleetJobId, shard: usize) {
        let job = &mut self.jobs[id];
        assert!(
            matches!(job.loc, JobLoc::Submitted { shard: s, .. } if s == shard),
            "complete({id}) from {:?} via shard {shard}",
            job.loc
        );
        job.loc = JobLoc::Done(shard);
    }

    /// The owning shard dead-lettered the job (its retry budget is
    /// spent); terminal at fleet level too, so a poisonous job cannot
    /// cycle through every shard.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitted` on `shard`.
    pub fn dead_letter(&mut self, id: FleetJobId, shard: usize) {
        let job = &mut self.jobs[id];
        assert!(
            matches!(job.loc, JobLoc::Submitted { shard: s, .. } if s == shard),
            "dead_letter({id}) from {:?} via shard {shard}",
            job.loc
        );
        job.loc = JobLoc::DeadLetter(shard);
    }

    /// The owning shard incarnation is confirmed gone (crash without
    /// journal, or `unknown_job` after an unrecovered restart): route the
    /// job again. Placement may pick any live shard.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitted` — the only state a job can be
    /// *lost* from.
    pub fn requeue_lost(&mut self, id: FleetJobId, view: &ShardView) {
        let job = &mut self.jobs[id];
        let JobLoc::Submitted { shard, .. } = job.loc else {
            panic!("requeue_lost({id}) from {:?}", job.loc);
        };
        // Prefer re-placement; a fully dead fleet parks the job on its
        // old shard's backlog until something recovers.
        let dest = self.placement.place(&job.key, view).unwrap_or(shard);
        job.loc = JobLoc::Backlog(dest);
        job.requeues += 1;
        self.backlogs[dest].push_back(id);
    }

    /// Move up to `batch` jobs from the *back* of `from`'s backlog to
    /// `to`'s backlog. Only backlog jobs move — a job a shard has
    /// already accepted is never stolen.
    pub fn steal(&mut self, from: usize, to: usize, batch: usize) -> usize {
        if from == to {
            return 0;
        }
        let mut moved = 0;
        while moved < batch {
            let Some(id) = self.backlogs[from].pop_back() else {
                break;
            };
            debug_assert_eq!(self.jobs[id].loc, JobLoc::Backlog(from));
            self.jobs[id].loc = JobLoc::Backlog(to);
            self.backlogs[to].push_back(id);
            moved += 1;
        }
        moved
    }

    /// One automatic work-stealing round: while the spread between the
    /// most and least loaded *live* shards (backlog + observed remote
    /// depth from `view`) exceeds `threshold`, move up to `batch` backlog
    /// jobs from the deepest to the shallowest. Returns the transfers.
    pub fn auto_steal(&mut self, view: &ShardView, threshold: usize, batch: usize) -> Vec<Steal> {
        let mut steals = Vec::new();
        // Bounded passes: each pass strictly reduces the spread, but cap
        // the rounds so a degenerate threshold cannot spin.
        for _ in 0..self.shards() {
            let loaded = |s: usize| self.backlogs[s].len() + view.load.get(s).copied().unwrap_or(0);
            let live = (0..self.shards()).filter(|&s| view.alive[s]);
            let Some(max_s) = live.clone().max_by_key(|&s| (loaded(s), s)) else {
                break;
            };
            let Some(min_s) = live.min_by_key(|&s| (loaded(s), s)) else {
                break;
            };
            if loaded(max_s) - loaded(min_s) <= threshold {
                break;
            }
            // Move at most half the gap so the pair cannot flip-flop.
            let want = ((loaded(max_s) - loaded(min_s)) / 2).min(batch).max(1);
            let moved = self.steal(max_s, min_s, want);
            if moved == 0 {
                break; // deepest shard's load is all remote; nothing to move
            }
            steals.push(Steal {
                from: max_s,
                to: min_s,
                moved,
            });
        }
        steals
    }

    /// Every job currently backlogged on `shard` (used when a shard dies:
    /// the coordinator re-places them by draining + re-admitting through
    /// steals to live shards).
    pub fn evacuate_backlog(&mut self, shard: usize, view: &ShardView) -> usize {
        let ids: Vec<FleetJobId> = self.backlogs[shard].drain(..).collect();
        let mut moved = 0;
        for id in ids {
            debug_assert_eq!(self.jobs[id].loc, JobLoc::Backlog(shard));
            let dest = self
                .placement
                .place(&self.jobs[id].key, view)
                .unwrap_or(shard);
            self.jobs[id].loc = JobLoc::Backlog(dest);
            self.backlogs[dest].push_back(id);
            if dest != shard {
                moved += 1;
            }
        }
        moved
    }

    /// Internal consistency: every backlog entry is a `Backlog` job on
    /// that shard, every `Backlog` job is in exactly one backlog, and
    /// submit counts match requeues (`submits <= requeues + 1`).
    ///
    /// # Panics
    ///
    /// Panics when the books don't balance; the chaos tests call this
    /// after every pump round.
    pub fn check_books(&self) {
        let mut backlogged = vec![0usize; self.jobs.len()];
        for (shard, q) in self.backlogs.iter().enumerate() {
            for &id in q {
                assert_eq!(
                    self.jobs[id].loc,
                    JobLoc::Backlog(shard),
                    "backlog of shard {shard} holds job {id} in state {:?}",
                    self.jobs[id].loc
                );
                backlogged[id] += 1;
            }
        }
        for (id, job) in self.jobs.iter().enumerate() {
            let expect = usize::from(matches!(job.loc, JobLoc::Backlog(_)));
            assert_eq!(
                backlogged[id], expect,
                "job {id} in {:?} appears {} time(s) in backlogs",
                job.loc, backlogged[id]
            );
            assert!(
                job.submits <= job.requeues + 1,
                "job {id} accepted {} times but requeued only {} times",
                job.submits,
                job.requeues
            );
            // An in-doubt job is pinned: stealing/evacuation must never
            // have touched it (it is in no backlog, checked above via
            // expect == 0), and its shard index must be a real shard.
            if let JobLoc::InDoubt(shard) = job.loc {
                assert!(
                    shard < self.backlogs.len(),
                    "job {id} in doubt on nonexistent shard {shard}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::HashRing;

    fn router(shards: usize) -> Router {
        Router::new(shards, Box::new(HashRing::new(shards)))
    }

    #[test]
    fn admit_submit_complete_roundtrip() {
        let mut r = router(2);
        let view = ShardView::fresh(2);
        let id = r.admit("k0".into(), "lud x0.1".into(), &view).unwrap();
        let JobLoc::Backlog(shard) = r.job(id).loc else {
            panic!()
        };
        assert_eq!(r.begin_submit(shard), Some(id));
        r.confirm(id, 7);
        assert_eq!(r.job(id).loc, JobLoc::Submitted { shard, local_id: 7 });
        r.complete(id, shard);
        assert_eq!(r.terminal(), 1);
        r.check_books();
    }

    #[test]
    fn abort_returns_to_front() {
        let mut r = router(1);
        let view = ShardView::fresh(1);
        let a = r.admit("a".into(), "s".into(), &view).unwrap();
        let b = r.admit("b".into(), "s".into(), &view).unwrap();
        assert_eq!(r.begin_submit(0), Some(a));
        r.abort(a);
        // a went back to the front, ahead of b.
        assert_eq!(r.begin_submit(0), Some(a));
        r.confirm(a, 0);
        assert_eq!(r.begin_submit(0), Some(b));
        r.check_books();
    }

    #[test]
    fn steal_moves_only_backlog() {
        let mut r = router(2);
        let mut view = ShardView::fresh(2);
        // Pin everything to shard 0 via least-loaded-style manual admits:
        // place with shard 1 dead so the ring falls back to 0.
        view.alive[1] = false;
        for i in 0..6 {
            r.admit(format!("k{i}"), "s".into(), &view).unwrap();
        }
        view.alive[1] = true;
        // Submit one job to shard 0; it must never move.
        let submitted = r.begin_submit(0).unwrap();
        r.confirm(submitted, 0);
        let steals = r.auto_steal(&view, 1, 16);
        assert!(!steals.is_empty());
        let moved: usize = steals.iter().map(|s| s.moved).sum();
        assert!(moved >= 2);
        assert!(matches!(
            r.job(submitted).loc,
            JobLoc::Submitted { shard: 0, .. }
        ));
        r.check_books();
        // Spread is now within threshold.
        assert!(r.backlog_depth(0).abs_diff(r.backlog_depth(1)) <= 1);
    }

    #[test]
    fn requeue_lost_reroutes_to_live_shard() {
        let mut r = router(2);
        let mut view = ShardView::fresh(2);
        view.alive[1] = false;
        let id = r.admit("k".into(), "s".into(), &view).unwrap();
        assert_eq!(r.begin_submit(0), Some(id));
        r.confirm(id, 0);
        // Shard 0 dies; 1 recovers.
        view.alive[0] = false;
        view.alive[1] = true;
        r.requeue_lost(id, &view);
        assert_eq!(r.job(id).loc, JobLoc::Backlog(1));
        assert_eq!(r.job(id).requeues, 1);
        r.check_books();
    }

    #[test]
    #[should_panic(expected = "confirm")]
    fn confirm_without_begin_submit_panics() {
        let mut r = router(1);
        let view = ShardView::fresh(1);
        let id = r.admit("k".into(), "s".into(), &view).unwrap();
        r.confirm(id, 0); // still Backlog: the edge is illegal
    }

    #[test]
    fn in_doubt_is_pinned_and_resolves_without_double_dispatch() {
        let mut r = router(2);
        let mut view = ShardView::fresh(2);
        view.alive[1] = false; // pin placement to shard 0
        let id = r.admit("k".into(), "s".into(), &view).unwrap();
        view.alive[1] = true;
        assert_eq!(r.begin_submit(0), Some(id));
        r.mark_in_doubt(id);
        assert_eq!(r.job(id).loc, JobLoc::InDoubt(0));
        assert_eq!(r.in_doubt(0), vec![id]);
        assert!(r.in_doubt(1).is_empty());
        // Stealing and evacuation must not move an in-doubt job.
        assert!(r.auto_steal(&view, 0, 16).is_empty());
        assert_eq!(r.evacuate_backlog(0, &view), 0);
        assert_eq!(r.job(id).loc, JobLoc::InDoubt(0));
        r.check_books();
        // Keyed resolution lands it exactly once.
        r.resolve_confirm(id, 42);
        assert_eq!(
            r.job(id).loc,
            JobLoc::Submitted {
                shard: 0,
                local_id: 42
            }
        );
        assert_eq!(r.job(id).submits, 1);
        r.check_books();
    }

    #[test]
    fn in_doubt_can_resolve_to_rejected() {
        let mut r = router(1);
        let view = ShardView::fresh(1);
        let id = r.admit("k".into(), "s".into(), &view).unwrap();
        assert_eq!(r.begin_submit(0), Some(id));
        r.mark_in_doubt(id);
        r.resolve_reject(id);
        assert_eq!(r.job(id).loc, JobLoc::Rejected);
        assert_eq!(r.terminal(), 1);
        r.check_books();
    }

    #[test]
    #[should_panic(expected = "resolve_confirm")]
    fn resolve_confirm_requires_in_doubt() {
        let mut r = router(1);
        let view = ShardView::fresh(1);
        let id = r.admit("k".into(), "s".into(), &view).unwrap();
        r.resolve_confirm(id, 0); // still Backlog: the edge is illegal
    }

    #[test]
    fn restore_reseats_backlog_and_keeps_pinned_states() {
        let jobs = vec![
            FleetJob {
                key: "a".into(),
                spec: "s".into(),
                loc: JobLoc::Backlog(1),
                submits: 0,
                requeues: 0,
            },
            FleetJob {
                key: "b".into(),
                spec: "s".into(),
                loc: JobLoc::InDoubt(1),
                submits: 0,
                requeues: 0,
            },
            FleetJob {
                key: "c".into(),
                spec: "s".into(),
                loc: JobLoc::Submitted {
                    shard: 0,
                    local_id: 3,
                },
                submits: 1,
                requeues: 0,
            },
            FleetJob {
                key: "d".into(),
                spec: "s".into(),
                loc: JobLoc::Done(0),
                submits: 1,
                requeues: 0,
            },
        ];
        let view = ShardView::fresh(2);
        let r = Router::restore(2, Box::new(HashRing::new(2)), jobs, &view);
        assert!(matches!(r.job(0).loc, JobLoc::Backlog(_)));
        assert_eq!(r.backlog_depth(0) + r.backlog_depth(1), 1);
        assert_eq!(r.job(1).loc, JobLoc::InDoubt(1), "in-doubt stays pinned");
        assert_eq!(
            r.job(2).loc,
            JobLoc::Submitted {
                shard: 0,
                local_id: 3
            }
        );
        assert_eq!(r.job(3).loc, JobLoc::Done(0));
        assert_eq!(r.terminal(), 1);
        r.check_books();
    }
}
