//! Job-to-shard placement policies.
//!
//! Both policies sit behind the [`Placement`] trait so the coordinator
//! (and the placement proptests) can swap them freely:
//!
//! * [`HashRing`] — consistent hashing with virtual nodes. A job key
//!   always lands on the same shard while the shard set is stable, and
//!   removing one shard remaps only that shard's keys (~1/N of the
//!   total) — the property the placement proptests pin down.
//! * [`LeastLoaded`] — pick the live shard with the shallowest load;
//!   used directly, or as the ring's fallback when the owner is down.

/// What a placement policy sees about the fleet when it places one key:
/// per-shard liveness and a load figure (coordinator backlog + observed
/// shard queue depth).
#[derive(Debug, Clone)]
pub struct ShardView {
    /// `false` while a shard is crashed / unreachable.
    pub alive: Vec<bool>,
    /// Jobs waiting for each shard (backlog + remote queue depth).
    pub load: Vec<usize>,
}

impl ShardView {
    /// A view of `n` live, idle shards.
    pub fn fresh(n: usize) -> ShardView {
        ShardView {
            alive: vec![true; n],
            load: vec![0; n],
        }
    }

    /// Shard count.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True when no shard exists.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }
}

/// A placement policy: map a job key to a live shard.
pub trait Placement: Send {
    /// The shard `key` should go to, or `None` when no shard is live.
    fn place(&self, key: &str, view: &ShardView) -> Option<usize>;

    /// Policy name for metrics/status output.
    fn name(&self) -> &'static str;
}

/// FNV-1a (the repo's standard dependency-free hash, same constants as
/// `corun_serve::state`) with a splitmix64 finalizer: raw FNV of short,
/// similar strings clusters in the high bits, and ring lookups compare
/// whole-word order, so the points need avalanche.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Consistent-hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; each shard contributes
    /// `vnodes` points derived from its index.
    ring: Vec<(u64, usize)>,
}

impl HashRing {
    /// Default virtual nodes per shard: enough that a 16-shard ring
    /// spreads 10k keys within a few percent of uniform.
    pub const DEFAULT_VNODES: usize = 128;

    /// A ring over shards `0..shards` with [`HashRing::DEFAULT_VNODES`].
    pub fn new(shards: usize) -> HashRing {
        HashRing::with_vnodes(shards, HashRing::DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count per shard.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> HashRing {
        assert!(vnodes > 0, "a shard needs at least one virtual node");
        let mut ring = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let point = fnv1a(format!("shard-{shard}#vnode-{v}").as_bytes());
                ring.push((point, shard));
            }
        }
        // Sort by point; disambiguate the (astronomically unlikely)
        // collision by shard index so the ring order is total.
        ring.sort_unstable();
        HashRing { ring }
    }

    /// The ring owner of `key` ignoring liveness (the stable assignment
    /// the remap proptest reasons about).
    pub fn owner(&self, key: &str) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a(key.as_bytes());
        // First ring point clockwise of the key's hash, wrapping.
        let idx = self.ring.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.ring[idx % self.ring.len()];
        Some(shard)
    }

    /// Walk clockwise from `key`'s point to the first point owned by a
    /// live shard.
    fn place_alive(&self, key: &str, view: &ShardView) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a(key.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < h);
        for i in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + i) % self.ring.len()];
            if view.alive.get(shard).copied().unwrap_or(false) {
                return Some(shard);
            }
        }
        None
    }
}

impl Placement for HashRing {
    fn place(&self, key: &str, view: &ShardView) -> Option<usize> {
        self.place_alive(key, view)
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// Pick the live shard with the smallest load; ties go to the lowest
/// index so placement stays deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn place(&self, _key: &str, view: &ShardView) -> Option<usize> {
        (0..view.len())
            .filter(|&s| view.alive[s])
            .min_by_key(|&s| (view.load.get(s).copied().unwrap_or(0), s))
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_live() {
        let ring = HashRing::new(8);
        let view = ShardView::fresh(8);
        let a = ring.place("job-42", &view).unwrap();
        let b = ring.place("job-42", &view).unwrap();
        assert_eq!(a, b);
        assert_eq!(ring.owner("job-42"), Some(a));
    }

    #[test]
    fn ring_skips_dead_shards() {
        let ring = HashRing::new(4);
        let mut view = ShardView::fresh(4);
        let owner = ring.place("k", &view).unwrap();
        view.alive[owner] = false;
        let fallback = ring.place("k", &view).unwrap();
        assert_ne!(fallback, owner);
        view.alive = vec![false; 4];
        assert_eq!(ring.place("k", &view), None);
    }

    #[test]
    fn least_loaded_picks_min_and_breaks_ties_low() {
        let mut view = ShardView::fresh(3);
        view.load = vec![5, 2, 2];
        assert_eq!(LeastLoaded.place("any", &view), Some(1));
        view.alive[1] = false;
        assert_eq!(LeastLoaded.place("any", &view), Some(2));
    }

    #[test]
    fn empty_ring_places_nothing() {
        let ring = HashRing::new(0);
        assert_eq!(ring.place("k", &ShardView::fresh(0)), None);
        assert_eq!(ring.owner("k"), None);
    }
}
